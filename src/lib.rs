//! # bakery-suite
//!
//! Umbrella crate for the Bakery++ reproduction: re-exports every crate in
//! the workspace so the examples and the cross-crate integration tests can
//! use one coherent namespace.
//!
//! * [`locks`] — the paper's contribution: [`locks::BakeryLock`] and
//!   [`locks::BakeryPlusPlusLock`] plus the lock traits.
//! * [`baselines`] — every comparison algorithm (Peterson, Filter, Szymanski,
//!   Black-White Bakery, modulo Bakery, Dijkstra, ticket/TAS locks).
//! * [`sim`] — the step-machine simulator (schedulers, faults, traces).
//! * [`spec`] — model-checkable specifications of the algorithms.
//! * [`mc`] — the explicit-state model checker (TLC stand-in).
//! * [`harness`] — workloads, metrics and the E1–E11 experiment runner.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bakery_baselines as baselines;
pub use bakery_core as locks;
pub use bakery_harness as harness;
pub use bakery_json as json;
pub use bakery_mc as mc;
pub use bakery_sim as sim;
pub use bakery_spec as spec;
