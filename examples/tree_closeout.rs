//! The full 4-process tree close-out: exhaustively explores the 2-level
//! binary `TreeBakerySpec` with the symmetry-compressed compact-state
//! explorer and prints (optionally writes) the JSON summary the
//! `mc-exhaustive` CI job uploads as its state-count artifact.
//!
//! ```text
//! cargo run --release --example tree_closeout -- [--out FILE] [--max-states N]
//! ```
//!
//! Exits non-zero if the exploration truncates or any invariant is violated,
//! so the CI job's wall-clock guard plus this exit code *is* the close-out
//! check.

use bakery_mc::ModelChecker;
use bakery_spec::TreeBakerySpec;

fn main() -> std::process::ExitCode {
    let mut out_path: Option<String> = None;
    let mut max_states: usize = 60_000_000;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next(),
            "--max-states" => {
                max_states = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-states takes a number");
            }
            other => {
                eprintln!("unknown argument: {other}");
                return std::process::ExitCode::FAILURE;
            }
        }
    }

    let spec = TreeBakerySpec::new(2, 2);
    eprintln!("exploring the full 4-process, 2-level tree (symmetry-compressed)...");
    let start = std::time::Instant::now();
    // Same configuration as the release-only close-out test in
    // crates/mc/tests/tree_composition.rs — one definition of the invariant
    // lives on the spec so the two cannot drift.
    let report = ModelChecker::new(&spec)
        .with_paper_invariants()
        .with_invariant(TreeBakerySpec::cs_holder_owns_path())
        .with_symmetry_reduction(true)
        .with_max_states(max_states)
        .run();
    let elapsed = start.elapsed().as_secs_f64();

    let json = bakery_json::to_string_pretty(&report).expect("report serialises");
    println!("{json}");
    eprintln!(
        "states={} canonical={} (symmetry /{}) transitions={} depth={} truncated={} \
         violations={} deadlocks={} elapsed={elapsed:.1}s",
        report.states,
        report.canonical_states,
        report.symmetry_order,
        report.transitions,
        report.max_depth,
        report.truncated,
        report.violations.len(),
        report.deadlocks.len(),
    );
    if let Some(path) = out_path {
        std::fs::write(&path, &json).expect("failed to write the summary");
        eprintln!("summary written to {path}");
    }

    if report.truncated || !report.holds() {
        eprintln!("close-out FAILED: truncated or violated");
        return std::process::ExitCode::FAILURE;
    }
    std::process::ExitCode::SUCCESS
}
