//! Runs the full E1–E9 experiment suite in quick mode and prints the Markdown
//! report — the same output as `bakery-experiments --quick`, reachable without
//! installing the binary.
//!
//! ```text
//! cargo run --release --example experiment_report
//! ```

use bakery_suite::harness::experiments::{run_experiments, ExperimentId};

fn main() {
    let quick = std::env::args().all(|arg| arg != "--full");
    eprintln!(
        "running all experiments in {} mode (pass --full for paper-sized runs)...",
        if quick { "quick" } else { "full" }
    );
    let report = run_experiments(ExperimentId::all(), quick);
    println!("{}", report.to_markdown());
}
