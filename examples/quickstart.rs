//! Quickstart: protect a shared counter with Bakery++ across real threads.
//!
//! The counter is updated with a deliberately non-atomic read-modify-write
//! (separate load and store), so lost updates would occur immediately if the
//! lock failed to provide mutual exclusion.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bakery_suite::locks::{BakeryPlusPlusLock, RawMutexAlgorithm};

fn main() {
    const THREADS: usize = 4;
    const ITERATIONS: u64 = 10_000;

    // A lock for up to 4 participating threads with register bound M = 255 —
    // the tickets fit in a single byte, and Bakery++ guarantees they never
    // exceed it.
    let lock = Arc::new(BakeryPlusPlusLock::with_bound(THREADS, 255));

    // The shared resource.  The update below is load-then-store, not
    // fetch_add: without mutual exclusion increments would be lost.
    let counter = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            scope.spawn(move || {
                // Claim a process slot: this thread plays "process i" of the
                // paper's algorithm and only ever writes its own registers.
                let slot = lock.register().expect("a free slot");
                for _ in 0..ITERATIONS {
                    let _guard = lock.lock(&slot);
                    // ---- critical section ----
                    let value = counter.load(Ordering::Relaxed);
                    counter.store(value + 1, Ordering::Relaxed);
                    // ---- guard drops here: number[i] := 0 ----
                }
                println!("thread {t} (slot p{}) finished", slot.pid());
            });
        }
    });

    let stats = lock.stats().snapshot();
    let expected = THREADS as u64 * ITERATIONS;
    println!("\nguarded counter       : {}", counter.load(Ordering::Relaxed));
    println!("expected              : {expected}");
    println!("critical sections     : {}", stats.cs_entries);
    println!(
        "largest ticket        : {} (bound M = {})",
        stats.max_ticket,
        lock.bound()
    );
    println!("overflow attempts     : {}", stats.overflow_attempts);
    println!("overflow-avoid resets : {}", stats.resets);
    assert_eq!(counter.load(Ordering::Relaxed), expected);
    assert_eq!(stats.overflow_attempts, 0, "Bakery++ never overflows");
}
