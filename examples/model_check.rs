//! Model-check Bakery++ the way the paper did with PlusCal + TLC: explore
//! every interleaving of a small instance and check *MutualExclusion* and
//! *NoOverflow* on every reachable state — then show that the classic Bakery
//! on the same bounded registers reaches an overflow state, with the shortest
//! counterexample trace printed in full.
//!
//! ```text
//! cargo run --release --example model_check
//! ```

use bakery_suite::mc::ModelChecker;
use bakery_suite::spec::{BakeryPlusPlusSpec, BakerySpec, RegisterSemantics};

fn main() {
    println!("== Bakery++ (N = 2, M = 3): exhaustive check ==\n");
    let spec = BakeryPlusPlusSpec::new(2, 3);
    let report = ModelChecker::new(&spec).with_paper_invariants().run();
    println!("{report}");
    assert!(report.holds());

    println!("== Bakery++ (N = 2, M = 2) with crash faults and safe registers ==\n");
    let spec = BakeryPlusPlusSpec::new(2, 2).with_semantics(RegisterSemantics::Safe);
    let report = ModelChecker::new(&spec)
        .with_paper_invariants()
        .with_crashes(true)
        .run();
    println!("{report}");
    assert!(report.holds());

    println!("== Classic Bakery (N = 2, M = 3): the overflow is reachable ==\n");
    let spec = BakerySpec::new(2, 3);
    let report = ModelChecker::new(&spec).with_paper_invariants().run();
    println!("{report}");
    assert!(
        !report.holds(),
        "the bounded classic Bakery must reach an overflow state"
    );
}
