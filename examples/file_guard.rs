//! The paper's §7 application sketch: "a multi-core modern laptop may
//! implement it in order to guarantee that only a single thread in a group of
//! threads can access a shared resource, such as a file."
//!
//! Four worker threads append records to the same log file.  Appends are done
//! as two separate writes (a header and a payload), so interleaved access
//! would corrupt records; Bakery++ serialises them.  At the end the file is
//! parsed back and every record is verified to be intact and complete.
//!
//! ```text
//! cargo run --release --example file_guard
//! ```

use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::sync::Arc;

use bakery_suite::locks::{BakeryPlusPlusLock, RawMutexAlgorithm};

fn main() -> std::io::Result<()> {
    const THREADS: usize = 4;
    const RECORDS_PER_THREAD: u64 = 2_000;

    let path = std::env::temp_dir().join("bakery_pp_file_guard.log");
    let _ = std::fs::remove_file(&path);
    File::create(&path)?;

    let lock = Arc::new(BakeryPlusPlusLock::with_bound(THREADS, 1_000));

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let lock = Arc::clone(&lock);
            let path = path.clone();
            scope.spawn(move || {
                let slot = lock.register().expect("a free slot");
                let mut file = OpenOptions::new()
                    .append(true)
                    .open(&path)
                    .expect("open log for append");
                for record in 0..RECORDS_PER_THREAD {
                    let _guard = lock.lock(&slot);
                    // Two separate writes: without mutual exclusion another
                    // thread's header could land between them.
                    write!(file, "BEGIN t{t} r{record} ").expect("write header");
                    writeln!(file, "payload={} END", t as u64 * 1_000_000 + record)
                        .expect("write payload");
                }
            });
        }
    });

    // Verify: every line is a complete, well-formed record.
    let reader = BufReader::new(File::open(&path)?);
    let mut lines = 0u64;
    for line in reader.lines() {
        let line = line?;
        assert!(
            line.starts_with("BEGIN t") && line.ends_with(" END"),
            "corrupted record: {line:?}"
        );
        lines += 1;
    }
    let expected = THREADS as u64 * RECORDS_PER_THREAD;
    let stats = lock.stats().snapshot();
    println!("records written and verified : {lines} (expected {expected})");
    println!("critical sections            : {}", stats.cs_entries);
    println!("largest ticket               : {}", stats.max_ticket);
    println!("overflow attempts            : {}", stats.overflow_attempts);
    assert_eq!(lines, expected);
    assert_eq!(stats.overflow_attempts, 0);
    std::fs::remove_file(&path)?;
    println!("log file verified and removed: {}", path.display());
    Ok(())
}
