//! The paper's Section 3 scenario, end to end: two processes alternate their
//! critical sections so the bakery never empties.  With the classic Bakery on
//! bounded registers the ticket overflows; with Bakery++ it is capped at `M`
//! and the overflow-avoidance path fires instead.
//!
//! ```text
//! cargo run --release --example overflow_demo
//! ```

use bakery_suite::harness::experiments::e1_overflow::{
    run_classic_alternation, run_pp_alternation,
};

fn main() {
    let rounds = 50_000;
    println!("Section 3 alternation scenario, {rounds} rounds per configuration\n");
    println!(
        "{:>8} | {:>28} | {:>18} | {:>20} | {:>16} | {:>14}",
        "M", "bakery first overflow round", "bakery overflows", "bakery++ max ticket", "bakery++ resets", "pp overflows"
    );
    println!("{}", "-".repeat(120));
    for bound in [7u64, 15, 255, 4_095, 65_535] {
        let classic = run_classic_alternation(bound, rounds);
        let pp = run_pp_alternation(bound, rounds);
        println!(
            "{:>8} | {:>28} | {:>18} | {:>20} | {:>16} | {:>14}",
            bound,
            classic
                .first_overflow_round
                .map_or_else(|| "never".to_string(), |r| r.to_string()),
            classic.overflow_attempts,
            pp.max_ticket,
            pp.resets,
            pp.overflow_attempts,
        );
        assert_eq!(pp.overflow_attempts, 0, "Bakery++ must never overflow");
        assert!(pp.max_ticket <= bound);
    }
    println!(
        "\nThe classic Bakery first overflows after roughly M rounds and keeps overflowing; \
         Bakery++ never stores a value above M (the paper's Theorem, §6.1)."
    );

    println!("\nUnbounded ticket growth while the bakery never empties (§3):");
    for rounds in [10u64, 100, 1_000, 10_000] {
        let growth = run_classic_alternation(u64::MAX, rounds);
        println!(
            "  after {:>6} rounds the classic Bakery ticket has reached {:>6}",
            rounds, growth.max_ticket
        );
    }
}
