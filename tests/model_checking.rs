//! Cross-crate integration test: the model checker (bakery-mc) verifies the
//! specifications (bakery-spec) exactly as the paper's TLC run did, and the
//! verdicts line up with the behaviour of the real locks (bakery-core).

use bakery_suite::locks::{
    BakeryLock, BakeryPlusPlusLock, DoorwayOutcome, RawMutexAlgorithm,
};
use bakery_suite::mc::{find_starvation_cycle_where, ModelChecker};
use bakery_suite::sim::{Algorithm, Invariant};
use bakery_suite::spec::{pc, BakeryPlusPlusSpec, BakerySpec, RegisterSemantics};

#[test]
fn paper_verification_bakery_pp_holds_classic_overflows() {
    // The paper's TLC result, reproduced end to end.
    let pp = BakeryPlusPlusSpec::new(2, 3);
    let pp_report = ModelChecker::new(&pp).with_paper_invariants().run();
    assert!(pp_report.holds(), "{pp_report}");

    let classic = BakerySpec::new(2, 3);
    let classic_report = ModelChecker::new(&classic).with_paper_invariants().run();
    assert!(!classic_report.holds());
    assert_eq!(
        classic_report.violated_invariants(),
        vec!["NoOverflow".to_string()]
    );
}

#[test]
fn spec_verdict_matches_real_lock_behaviour() {
    // The model checker says the classic Bakery overflows with M = 3 and two
    // processes; drive the real lock through the §3 alternation and observe
    // the same failure, then observe Bakery++ avoiding it.
    let bound = 3;
    let classic = BakeryLock::with_bound(2, bound);
    let _ = classic.try_doorway(0);
    let mut overflowed = false;
    for round in 0..20 {
        let entering = 1 - (round % 2);
        if matches!(
            classic.try_doorway(entering),
            DoorwayOutcome::Overflowed { .. }
        ) {
            overflowed = true;
            break;
        }
        classic.release(1 - entering);
    }
    assert!(overflowed, "the real bounded Bakery must overflow like its spec");

    let pp = BakeryPlusPlusLock::with_bound(2, bound);
    let _ = pp.try_doorway(0);
    for round in 0..50 {
        let entering = 1 - (round % 2);
        let outcome = pp.try_doorway(entering);
        assert!(
            !matches!(outcome, DoorwayOutcome::Overflowed { .. }),
            "Bakery++ overflowed at round {round}"
        );
        pp.release(1 - entering);
    }
    assert_eq!(pp.stats().snapshot().overflow_attempts, 0);
}

#[test]
fn crash_faults_and_flicker_reads_do_not_break_bakery_pp() {
    let spec = BakeryPlusPlusSpec::new(2, 2).with_semantics(RegisterSemantics::Safe);
    let report = ModelChecker::new(&spec)
        .with_paper_invariants()
        .with_invariant(Invariant::crashed_registers_are_zero())
        .with_crashes(true)
        .run();
    assert!(report.holds(), "{report}");
}

#[test]
fn liveness_scenario_from_section_6_3() {
    // A process parked at L1 can be starved by two fast processes (the paper
    // concedes this); a process that holds a ticket below M cannot.
    let spec = BakeryPlusPlusSpec::new(3, 2);
    let parked = find_starvation_cycle_where(&spec, 2, 150_000, |_, s| s.pc(2) == pc::L1_SCAN);
    assert!(parked.is_some());

    let spec2 = BakeryPlusPlusSpec::new(2, 4);
    let holder = find_starvation_cycle_where(&spec2, 1, 150_000, |alg, s| {
        let ticket = s.read(2 + 1);
        alg.is_trying(s, 1)
            && ticket != 0
            && ticket < 4
            && s.pc(1) != pc::RESET_NUMBER
            && s.pc(1) != pc::WRITE_MAX
            && s.pc(1) != pc::CHECK_BOUND
    });
    assert!(holder.is_none(), "{holder:?}");
}
