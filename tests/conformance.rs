//! Differential conformance test plane.
//!
//! Each lock in the headline family — classic `Bakery`, `BakeryPlusPlus` and
//! the `TreeBakery` composite — exists twice in this repository: as a real
//! atomics-based lock in `bakery-core` and as a step-machine specification in
//! `bakery-spec`.  This suite drives both sides on **identical seeded
//! schedules** and asserts they agree, instead of trusting either by
//! inspection:
//!
//! 1. **Spec plane** — the simulator runs every specification under the same
//!    deterministic seeded schedules with the mutual-exclusion and
//!    register-bound invariants checked after *every* step, and replays each
//!    recorded trace to a bit-identical final state.
//! 2. **Doorway differential** — a seeded sequential schedule of doorway /
//!    serve operations is applied to the real lock (via its split-phase
//!    `try_doorway` / `await_turn` API) and to the specification (by stepping
//!    the same process through the same phases), asserting **step-for-step**
//!    agreement on the outcome kind (`Ticket` / `Blocked` / `Reset` /
//!    `Overflowed`) and on the drawn ticket values.
//! 3. **Tree path differential** — the composite lock's per-level node
//!    tickets are compared against the tree specification's node registers
//!    on the same acquisition schedule, and release must drain both to zero.
//! 4. **Invariant differential under real threads** — the real locks run
//!    under genuine contention and must report exactly the invariant profile
//!    the spec plane establishes (no overflow attempts, tickets within `M`,
//!    mutual exclusion).
//!
//! The real-lock parts run under both [`ScanMode::Packed`] and
//! [`ScanMode::Padded`]; set `BAKERY_SCAN_MODE=packed|padded` to restrict a
//! run to one mode (the CI matrix does).

use std::sync::Arc;

use bakery_suite::locks::raw::DoorwayOutcome;
use bakery_suite::locks::{
    AdaptiveBakery, BakeryLock, BakeryPlusPlusLock, OverflowPolicy, RawMutexAlgorithm, ScanMode,
    SessionPlane, TreeBakery,
};
use bakery_suite::sim::{
    Algorithm, ProgState, RandomScheduler, ReplayScheduler, RunConfig, Simulator,
};
use bakery_suite::spec::{pc, AdaptiveHandoffSpec, BakeryPlusPlusSpec, BakerySpec, TreeBakerySpec};

/// Scan modes the real-lock sides run under (`BAKERY_SCAN_MODE` restricts).
fn scan_modes() -> Vec<ScanMode> {
    match std::env::var("BAKERY_SCAN_MODE").as_deref() {
        Ok("packed") => vec![ScanMode::Packed],
        Ok("padded") => vec![ScanMode::Padded],
        Ok(other) => panic!("BAKERY_SCAN_MODE must be 'packed' or 'padded', got '{other}'"),
        Err(_) => vec![ScanMode::Packed, ScanMode::Padded],
    }
}

/// Small deterministic generator so both sides see the same schedule without
/// depending on the `rand` stub from the root test crate.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Self(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Register index of `number[pid]` in the flat Bakery/Bakery++ layout,
/// resolved by name so the test cannot drift from the spec's layout.
fn flat_number_idx<A: Algorithm>(alg: &A, pid: usize) -> usize {
    let name = format!("number[{pid}]");
    alg.registers()
        .iter()
        .position(|r| r.name == name)
        .unwrap_or_else(|| panic!("register {name} not found"))
}

// ---------------------------------------------------------------------------
// 1. Spec plane: seeded schedules, per-step invariants, deterministic replay.
// ---------------------------------------------------------------------------

/// Runs `alg` under seeded random schedules with the paper invariants checked
/// after every step, asserts tickets stay within `ticket_bound`, and replays
/// the recorded schedule to the same final state.
fn spec_plane_holds<A: Algorithm>(alg: &A, ticket_bound: u64, steps: u64) {
    for seed in 0..12 {
        let config = RunConfig::<A>::checked(steps);
        let outcome = Simulator::new().run(alg, &mut RandomScheduler::new(seed), &config);
        assert!(
            outcome.report.violations.is_empty(),
            "{} seed {seed}: {:?}",
            alg.name(),
            outcome.report.violations
        );
        assert!(!outcome.report.deadlocked, "{} seed {seed}", alg.name());
        for (pid, number) in outcome.trace.ticket_order() {
            assert!(
                number >= 1 && number <= ticket_bound,
                "{} seed {seed}: pid {pid} drew ticket {number} outside [1, {ticket_bound}]",
                alg.name()
            );
        }
        // Step-for-step determinism: replaying the recorded schedule must
        // reproduce the exact final state and per-process service counts.
        let mut replay = ReplayScheduler::new(outcome.trace.choices());
        let replayed = Simulator::new().run(alg, &mut replay, &config);
        assert!(!replay.diverged(), "{} seed {seed} diverged", alg.name());
        assert_eq!(
            outcome.final_state,
            replayed.final_state,
            "{} seed {seed}: replay reached a different state",
            alg.name()
        );
        assert_eq!(outcome.report.cs_entries, replayed.report.cs_entries);
    }
}

#[test]
fn spec_plane_bakery() {
    // Unbounded-register regime: tickets stay well under u32::MAX in 3000
    // steps, so the NoOverflow invariant doubles as a sanity check.
    spec_plane_holds(&BakerySpec::new(2, u64::from(u32::MAX)), u64::from(u32::MAX), 3_000);
}

#[test]
fn spec_plane_bakery_pp() {
    spec_plane_holds(&BakeryPlusPlusSpec::new(2, 4), 4, 3_000);
    spec_plane_holds(&BakeryPlusPlusSpec::new(3, 2), 2, 3_000);
}

#[test]
fn spec_plane_tree_bakery() {
    let spec = TreeBakerySpec::new(2, 2);
    spec_plane_holds(&spec, spec.bound(), 6_000);
}

#[test]
fn spec_plane_adaptive_handoff() {
    // The handoff spec draws no tickets (its inner locks are abstracted), so
    // the ticket-bound half of the plane is vacuous; what matters here is
    // per-step invariants, deadlock freedom and bit-identical replay, plus
    // the adaptive-specific invariants checked on every step.
    let spec = AdaptiveHandoffSpec::new(3);
    spec_plane_holds(&spec, 1, 4_000);
    for seed in 0..8 {
        let config = RunConfig::<AdaptiveHandoffSpec>::checked(4_000)
            .with_invariant(AdaptiveHandoffSpec::drained_invariant())
            .with_invariant(AdaptiveHandoffSpec::tree_drained_invariant())
            .with_invariant(AdaptiveHandoffSpec::active_count_invariant())
            .with_invariant(AdaptiveHandoffSpec::no_flap_invariant());
        let outcome = Simulator::new().run(&spec, &mut RandomScheduler::new(seed), &config);
        assert!(
            outcome.report.violations.is_empty(),
            "seed {seed}: {:?}",
            outcome.report.violations
        );
        assert!(!outcome.report.deadlocked, "seed {seed}");
    }
}

// ---------------------------------------------------------------------------
// 2. Doorway differential: real split-phase lock vs spec, same schedule.
// ---------------------------------------------------------------------------

/// Outcome of driving one spec process through the Bakery++ doorway.
#[derive(Debug, PartialEq, Eq)]
enum SpecDoorway {
    Ticket(u64),
    Blocked,
    Reset,
}

/// Steps spec process `pid` through one Bakery++ doorway pass, mirroring the
/// real lock's `try_doorway`.  The process must be idle (NCS) or parked at
/// the L1 scan from an earlier `Blocked`/`Reset`.
fn pp_spec_doorway(
    spec: &BakeryPlusPlusSpec,
    state: &mut ProgState,
    pid: usize,
    n: usize,
) -> SpecDoorway {
    // The L1 guard: with no concurrent movers, a register >= M means the
    // scan can never complete — exactly the lock's `Blocked` return.
    if (0..n).any(|q| state.read(flat_number_idx(spec, q)) >= spec.bound()) {
        return SpecDoorway::Blocked;
    }
    assert!(
        state.pc(pid) == pc::NCS || state.pc(pid) == pc::L1_SCAN,
        "pid {pid} must be outside the doorway, at pc {}",
        state.pc(pid)
    );
    let mut budget = 16 * (n as u32 + 2);
    loop {
        let prev_pc = state.pc(pid);
        let succs = spec.successors_vec(state, pid);
        assert_eq!(succs.len(), 1, "doorway phases are deterministic");
        *state = succs.into_iter().next().unwrap();
        if prev_pc == pc::RESET_CHOOSING && state.pc(pid) == pc::L1_SCAN {
            return SpecDoorway::Reset;
        }
        if prev_pc == pc::CLEAR_CHOOSING && state.pc(pid) == pc::SCAN_CHOOSING {
            return SpecDoorway::Ticket(state.read(flat_number_idx(spec, pid)));
        }
        budget -= 1;
        assert!(budget > 0, "doorway did not terminate for pid {pid}");
    }
}

/// Steps spec process `pid` (holding a ticket, currently eligible) through
/// the L2/L3 scans, the critical section and the release write.
fn spec_serve<A: Algorithm>(spec: &A, state: &mut ProgState, pid: usize) {
    let mut budget = 2_000;
    while !spec.in_critical_section(state, pid) {
        let succs = spec.successors_vec(state, pid);
        assert!(
            !succs.is_empty(),
            "{}: pid {pid} blocked while it should be eligible",
            spec.name()
        );
        *state = succs.into_iter().next().unwrap();
        budget -= 1;
        assert!(budget > 0, "serve did not reach the critical section");
    }
    // Exit the critical section and run any release ladder to completion.
    loop {
        let succs = spec.successors_vec(state, pid);
        *state = succs.into_iter().next().unwrap();
        if state.pc(pid) == pc::NCS {
            return;
        }
        budget -= 1;
        assert!(budget > 0, "release did not return to the noncritical section");
    }
}

#[test]
fn bakery_pp_doorway_agrees_with_spec_step_for_step() {
    let n = 2;
    let bound = 4; // small enough that Blocked and Reset both fire
    for mode in scan_modes() {
        for seed in 0..8u64 {
            let lock = BakeryPlusPlusLock::with_bound_and_mode(n, bound, mode);
            let spec = BakeryPlusPlusSpec::new(n, bound);
            let mut state = spec.initial_state();
            let mut rng = Lcg::new(seed);
            // pids currently holding a ticket, in (number, pid) order.
            let mut holders: Vec<(u64, usize)> = Vec::new();
            let mut saw = [false; 3]; // ticket, blocked, reset

            for step in 0..300 {
                let idle: Vec<usize> =
                    (0..n).filter(|p| !holders.iter().any(|&(_, h)| h == *p)).collect();
                let serve =
                    holders.len() == n || (idle.is_empty() || rng.next().is_multiple_of(3));
                if serve && !holders.is_empty() {
                    holders.sort_unstable();
                    let (_, pid) = holders.remove(0);
                    lock.await_turn(pid);
                    lock.release(pid);
                    spec_serve(&spec, &mut state, pid);
                    assert_eq!(
                        state.read(flat_number_idx(&spec, pid)),
                        lock.registers().read_number(pid),
                        "seed {seed} step {step}: release left different registers"
                    );
                } else {
                    let pid = idle[(rng.next() as usize) % idle.len()];
                    let real = lock.try_doorway(pid);
                    let speced = pp_spec_doorway(&spec, &mut state, pid, n);
                    match (&real, &speced) {
                        (DoorwayOutcome::Ticket(a), SpecDoorway::Ticket(b)) => {
                            assert_eq!(a, b, "seed {seed} step {step}: ticket values differ");
                            holders.push((*a, pid));
                            saw[0] = true;
                        }
                        (DoorwayOutcome::Blocked, SpecDoorway::Blocked) => saw[1] = true,
                        (DoorwayOutcome::Reset, SpecDoorway::Reset) => saw[2] = true,
                        other => panic!(
                            "seed {seed} step {step} ({mode:?}): lock and spec disagree: {other:?}"
                        ),
                    }
                }
            }
            assert_eq!(lock.stats().overflow_attempts(), 0);
            assert!(lock.stats().max_ticket() <= bound);
            assert!(saw[0], "seed {seed}: schedule never drew a ticket");
        }
    }
}

#[test]
fn bakery_pp_cap_outcomes_are_reachable_and_agree() {
    // A targeted §3-style alternation drives tickets to the bound so the
    // Blocked and Reset branches demonstrably fire — and agree — on both
    // sides, in both scan modes.
    for mode in scan_modes() {
        let n = 2;
        let bound = 3;
        let lock = BakeryPlusPlusLock::with_bound_and_mode(n, bound, mode);
        let spec = BakeryPlusPlusSpec::new(n, bound);
        let mut state = spec.initial_state();
        let mut pending = 0usize;
        let mut saw_cap = false;
        assert_eq!(
            pp_spec_doorway(&spec, &mut state, 0, n),
            SpecDoorway::Ticket(1)
        );
        assert_eq!(lock.try_doorway(0), DoorwayOutcome::Ticket(1));
        for round in 0..60 {
            let entering = 1 - pending;
            let real = lock.try_doorway(entering);
            let speced = pp_spec_doorway(&spec, &mut state, entering, n);
            let agreed_cap = matches!(
                (&real, &speced),
                (DoorwayOutcome::Blocked, SpecDoorway::Blocked)
                    | (DoorwayOutcome::Reset, SpecDoorway::Reset)
            );
            if let (DoorwayOutcome::Ticket(a), SpecDoorway::Ticket(b)) = (&real, &speced) {
                assert_eq!(a, b, "round {round}");
                lock.await_turn(pending);
                lock.release(pending);
                spec_serve(&spec, &mut state, pending);
                pending = entering;
            } else {
                assert!(agreed_cap, "round {round}: {real:?} vs {speced:?}");
                saw_cap = true;
                lock.await_turn(pending);
                lock.release(pending);
                spec_serve(&spec, &mut state, pending);
                // Bakery drained: the blocked process retries successfully.
                let retry_real = lock.try_doorway(entering);
                let retry_spec = pp_spec_doorway(&spec, &mut state, entering, n);
                assert!(retry_real.took_ticket(), "round {round}: {retry_real:?}");
                assert!(matches!(retry_spec, SpecDoorway::Ticket(_)));
                pending = entering;
            }
        }
        assert!(saw_cap, "M = {bound} must hit the cap ({mode:?})");
        assert_eq!(lock.stats().overflow_attempts(), 0);
    }
}

#[test]
fn classic_bakery_overflows_at_the_same_step_as_its_spec() {
    // The §3 alternation on bounded registers: lock and spec must agree on
    // every drawn ticket and then flag the overflow at the same operation
    // with the same attempted value.  (After the overflow the two diverge by
    // design: the spec stores the M+1 sentinel, the lock wraps.)
    for mode in scan_modes() {
        let bound = 4;
        let lock = BakeryLock::with_config(2, bound, OverflowPolicy::Wrap, mode);
        let spec = BakerySpec::new(2, bound);
        let mut state = spec.initial_state();

        // Drives the classic spec doorway: NCS -> ... -> SCAN_CHOOSING.
        let classic_doorway = |state: &mut ProgState, pid: usize| -> (u64, u64) {
            assert_eq!(state.pc(pid), pc::NCS);
            let mut attempted = 0;
            loop {
                let prev = state.pc(pid);
                if prev == pc::WRITE_TICKET {
                    attempted = state.local(pid, 1) + 1; // LOCAL_MAX + 1
                }
                let succs = spec.successors_vec(state, pid);
                assert_eq!(succs.len(), 1);
                *state = succs.into_iter().next().unwrap();
                if prev == pc::CLEAR_CHOOSING {
                    return (state.read(flat_number_idx(&spec, pid)), attempted);
                }
            }
        };

        assert!(lock.try_doorway(0).took_ticket());
        let _ = classic_doorway(&mut state, 0);
        let mut overflowed = false;
        for round in 0..40 {
            let (leaving, entering) = if round % 2 == 0 { (0, 1) } else { (1, 0) };
            let real = lock.try_doorway(entering);
            let (spec_stored, spec_attempted) = classic_doorway(&mut state, entering);
            match real {
                DoorwayOutcome::Ticket(number) => {
                    assert!(spec_stored <= bound, "spec overflowed before the lock");
                    assert_eq!(number, spec_stored, "round {round} ({mode:?})");
                }
                DoorwayOutcome::Overflowed { attempted, stored } => {
                    assert!(
                        spec_stored > bound,
                        "lock overflowed at round {round} but the spec did not"
                    );
                    assert_eq!(attempted, spec_attempted, "round {round}");
                    assert!(stored <= bound);
                    overflowed = true;
                    break;
                }
                other => panic!("unexpected outcome {other:?}"),
            }
            lock.await_turn(leaving);
            lock.release(leaving);
            spec_serve(&spec, &mut state, leaving);
        }
        assert!(overflowed, "bounded classic Bakery must overflow ({mode:?})");
        assert!(lock.stats().overflow_attempts() > 0);
    }
}

// ---------------------------------------------------------------------------
// 3. Tree path differential: per-level node tickets, real lock vs spec.
// ---------------------------------------------------------------------------

#[test]
fn tree_bakery_per_level_tickets_agree_with_spec() {
    for mode in scan_modes() {
        for seed in 0..6u64 {
            let lock = TreeBakery::with_config(4, 2, mode);
            let spec = TreeBakerySpec::new(2, 2);
            let mut state = spec.initial_state();
            let mut rng = Lcg::new(seed ^ 0xF00D);

            for step in 0..80 {
                let pid = (rng.next() as usize) % 4;

                // Real side: acquire and read the tickets along the path.
                lock.acquire(pid);
                let real_tickets: Vec<u64> = (0..lock.depth())
                    .map(|level| {
                        let (node, slot) = lock.position(pid, level);
                        lock.node(level, node).current_ticket(slot).number
                    })
                    .collect();

                // Spec side: step the same process into the critical section
                // and read the same node registers.
                let mut budget = 2_000;
                while !spec.in_critical_section(&state, pid) {
                    let succs = spec.successors_vec(&state, pid);
                    assert!(!succs.is_empty(), "lone spec process can never block");
                    state = succs.into_iter().next().unwrap();
                    budget -= 1;
                    assert!(budget > 0, "seed {seed} step {step}: spec never entered CS");
                }
                let spec_tickets: Vec<u64> = (0..spec.levels())
                    .map(|level| {
                        let (node, slot) = spec.position(pid, level);
                        state.read(spec.number_idx(level, node, slot))
                    })
                    .collect();
                assert_eq!(
                    real_tickets, spec_tickets,
                    "seed {seed} step {step} pid {pid} ({mode:?}): path tickets diverged"
                );

                // Release on both sides; all path registers must drain to 0.
                lock.release(pid);
                while state.pc(pid) != pc::NCS {
                    let succs = spec.successors_vec(&state, pid);
                    state = succs.into_iter().next().unwrap();
                }
                for level in 0..lock.depth() {
                    let (node, slot) = lock.position(pid, level);
                    assert_eq!(lock.node(level, node).current_ticket(slot).number, 0);
                    let (snode, sslot) = spec.position(pid, level);
                    assert_eq!(state.read(spec.number_idx(level, snode, sslot)), 0);
                }
            }
            assert_eq!(lock.aggregate_snapshot().overflow_attempts, 0);
        }
    }
}

// ---------------------------------------------------------------------------
// 4. Replay determinism of the canonicalized explorer.
// ---------------------------------------------------------------------------

#[test]
fn canonicalized_explorer_replays_deterministically() {
    // The symmetry-compressed explorer must be exactly reproducible: two
    // runs of the same configuration yield the identical canonical state
    // count AND the identical frontier order (pinned by the discovery-order
    // digest).  The CI matrix runs this test under both BAKERY_SCAN_MODE
    // values — the spec-plane exploration must not depend on how the *real*
    // locks scan, so the counts must also agree across the matrix legs.
    use bakery_suite::mc::ModelChecker;

    // The scan-mode env var is the conformance suite's "seed" for the
    // real-lock side; touching it here documents that the spec plane
    // deliberately ignores it.
    let _ = scan_modes();

    for active in [None, Some([0usize, 1]), Some([0, 2])] {
        let spec = match active {
            Some(pids) => TreeBakerySpec::new(2, 2).with_active_processes(&pids),
            None => TreeBakerySpec::new(2, 2),
        };
        let run = || {
            ModelChecker::new(&spec)
                .with_paper_invariants()
                .with_symmetry_reduction(true)
                .with_max_states(60_000)
                .run()
        };
        let (first, second) = (run(), run());
        assert_eq!(first.states, second.states, "active {active:?}");
        assert_eq!(
            first.canonical_states, second.canonical_states,
            "active {active:?}"
        );
        assert_eq!(
            first.frontier_digest, second.frontier_digest,
            "active {active:?}: frontier order must be identical"
        );
        assert_ne!(first.frontier_digest, 0);
        // Scan-mode independence: the counts for the full 4-process prefix
        // are pinned, so the packed and padded matrix legs provably agree.
        if active.is_none() {
            assert_eq!(first.states, 60_000);
            assert_eq!(first.canonical_states, 10_337);
        }
    }
}

// ---------------------------------------------------------------------------
// 5. Invariant differential under real threads.
// ---------------------------------------------------------------------------

use bakery_suite::baselines::testutil::assert_mutual_exclusion as stress;

/// The adaptive lock through the whole conformance lens, in both scan modes:
/// the real migration fires mid-workload (under threads, like the spec's
/// nondeterministic trigger), mutual exclusion and overflow freedom hold
/// across the handoff, and afterwards both planes are quiescently zero.
#[test]
fn adaptive_real_lock_crosses_the_migration_under_threads() {
    for mode in scan_modes() {
        let lock = Arc::new(AdaptiveBakery::with_config(4, mode, 2, u64::MAX));
        let in_cs = Arc::new(std::sync::atomic::AtomicU64::new(0));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let lock = Arc::clone(&lock);
                let in_cs = Arc::clone(&in_cs);
                scope.spawn(move || {
                    let slot = lock.register().unwrap();
                    for i in 0..250 {
                        if t == 0 && i == 125 {
                            // The threshold crossing, mid-workload.
                            lock.trigger_migration();
                        }
                        let _g = lock.lock(&slot);
                        let inside = in_cs.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        assert_eq!(inside, 0, "mutual exclusion across the handoff");
                        in_cs.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
                    }
                });
            }
        });
        assert!(lock.has_migrated(), "{mode:?}");
        assert_eq!(lock.stats().cs_entries(), 1_000, "{mode:?}");

        // The PR 3 facade-only rule survives the flat->tree migration: the
        // aggregate folds both planes' counters but counts entries exactly
        // once, at the adaptive facade — neither zero nor double.
        let aggregate = lock.aggregate_snapshot();
        assert_eq!(aggregate.cs_entries, 1_000, "{mode:?}: facade-only cs_entries");
        assert_eq!(aggregate.overflow_attempts, 0, "{mode:?}");
        assert!(aggregate.max_ticket <= lock.register_bound().unwrap(), "{mode:?}");

        // Quiescence: every register of both planes drained to zero.
        let flat = lock.flat().registers();
        for pid in 0..flat.len() {
            assert_eq!(flat.read_number(pid), 0, "{mode:?}");
            assert!(!flat.read_choosing(pid), "{mode:?}");
        }
        let tree = lock.tree();
        for level in 0..tree.depth() {
            for node in 0..tree.nodes_at(level) {
                let file = tree.node(level, node).registers();
                for slot in 0..file.len() {
                    assert_eq!(file.read_number(slot), 0, "{mode:?}");
                    assert!(!file.read_choosing(slot), "{mode:?}");
                }
            }
        }
    }
}

/// Session churn over the adaptive lock, crossing the capacity threshold
/// mid-workload: the leased-capacity trigger (not the manual one) fires, no
/// recycled slot ever aliases, and the facade-only cs_entries rule is pinned
/// through the handoff in both scan modes.
#[test]
fn adaptive_session_churn_pins_facade_cs_entries_across_migration() {
    for mode in scan_modes() {
        let adaptive = Arc::new(AdaptiveBakery::with_config(4, mode, 4, u64::MAX));
        let plane = SessionPlane::new(
            Arc::clone(&adaptive) as Arc<dyn RawMutexAlgorithm>
        );
        let live = std::sync::Mutex::new(std::collections::HashSet::new());
        let in_cs = std::sync::atomic::AtomicU64::new(0);
        // Rush: all four seats leased at once, so the capacity trigger is
        // guaranteed to fire during these acquisitions; then churn.
        let all_attached = std::sync::Barrier::new(4);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let plane = &plane;
                let live = &live;
                let in_cs = &in_cs;
                let all_attached = &all_attached;
                scope.spawn(move || {
                    for round in 0..40 {
                        let session = plane.attach();
                        if round == 0 {
                            all_attached.wait();
                        }
                        assert!(
                            live.lock().unwrap().insert(session.pid()),
                            "slot aliasing on pid {}",
                            session.pid()
                        );
                        for _ in 0..5 {
                            let _g = session.lock();
                            assert_eq!(
                                in_cs.fetch_add(1, std::sync::atomic::Ordering::SeqCst),
                                0
                            );
                            in_cs.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
                        }
                        assert!(live.lock().unwrap().remove(&session.pid()));
                        drop(session);
                    }
                });
            }
        });
        assert!(
            adaptive.has_migrated(),
            "{mode:?}: the leased-capacity trigger must fire mid-churn"
        );
        let stats = adaptive.stats();
        assert_eq!(stats.attaches(), 160, "{mode:?}");
        assert_eq!(stats.detaches(), 160, "{mode:?}");
        assert_eq!(stats.cs_entries(), 800, "{mode:?}");
        assert_eq!(
            adaptive.aggregate_snapshot().cs_entries,
            800,
            "{mode:?}: cs_entries counted once at the adaptive facade, never doubled during the handoff"
        );
        assert_eq!(plane.live_sessions(), 0, "{mode:?}");
    }
}

/// The full round trip through the conformance lens, in both scan modes: a
/// rush leases every seat (the capacity trigger fires, flat→tree), a churn
/// era holds the lock loud and tree-resident, a subside era drops below the
/// low watermark until the hysteresis band fires the reverse (tree→flat) —
/// with mutual exclusion asserted across both handoffs, the facade-only
/// `cs_entries` rule pinned over the whole cycle, and the post-round-trip
/// flat plane required to agree **step-for-step** with a *fresh* Bakery++
/// specification on doorway outcomes and ticket values (a completed round
/// trip is observationally indistinguishable from a fresh flat lock).
#[test]
fn adaptive_round_trip_pins_facade_cs_entries_and_doorway_agreement() {
    for mode in scan_modes() {
        let quiet_period = 6;
        let adaptive = Arc::new(AdaptiveBakery::with_hysteresis(
            4,
            mode,
            3,
            u64::MAX,
            2,
            quiet_period,
        ));
        let plane = SessionPlane::new(Arc::clone(&adaptive) as Arc<dyn RawMutexAlgorithm>);
        let in_cs = std::sync::atomic::AtomicU64::new(0);
        let cs_done = std::sync::atomic::AtomicU64::new(0);
        // Rush + churn: all four seats leased at once and held for the whole
        // era, so live sessions sit at 4 — above the capacity threshold (the
        // forward trigger must fire) and above the low watermark (the
        // reverse must NOT fire, every release is loud).
        let all_attached = std::sync::Barrier::new(4);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let plane = &plane;
                let in_cs = &in_cs;
                let cs_done = &cs_done;
                let all_attached = &all_attached;
                scope.spawn(move || {
                    let session = plane.attach();
                    all_attached.wait();
                    for _ in 0..30 {
                        let _g = session.lock();
                        assert_eq!(
                            in_cs.fetch_add(1, std::sync::atomic::Ordering::SeqCst),
                            0,
                            "mutual exclusion across the forward handoff"
                        );
                        cs_done.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        in_cs.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
                    }
                    drop(session);
                });
            }
        });
        assert_eq!(
            adaptive.stats().migrations_forward(),
            1,
            "{mode:?}: the rush must fire the forward trigger exactly once"
        );
        assert!(
            adaptive.stats().migrations_reverse() <= 1,
            "{mode:?}: at most one reverse (the era's tail may already have gone quiet)"
        );

        // Subside: one client at a time (live = 1, below the low watermark of
        // 2), until the quiet streak arms and completes the reverse handoff.
        // (If the churn era finished unevenly enough that its tail already
        // migrated back, the loop is a no-op — the assertions below hold
        // either way.)
        let mut subside_sessions = 0u64;
        while adaptive.has_migrated() {
            let session = plane.attach();
            let _g = session.lock();
            assert_eq!(in_cs.fetch_add(1, std::sync::atomic::Ordering::SeqCst), 0);
            cs_done.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            in_cs.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
            drop(_g);
            drop(session);
            subside_sessions += 1;
            assert!(
                subside_sessions <= 4 * quiet_period,
                "{mode:?}: the reverse migration never fired"
            );
        }
        assert_eq!(adaptive.stats().migrations_reverse(), 1, "{mode:?}");
        assert_eq!(adaptive.cycle(), 1, "{mode:?}: exactly one full round trip");
        assert!(!adaptive.has_migrated(), "{mode:?}: flat-resident again");

        // The facade-only cs_entries rule, pinned across the FULL cycle.
        let total = cs_done.load(std::sync::atomic::Ordering::SeqCst);
        assert_eq!(total, 120 + subside_sessions, "{mode:?}");
        assert_eq!(adaptive.stats().cs_entries(), total, "{mode:?}");
        assert_eq!(
            adaptive.aggregate_snapshot().cs_entries,
            total,
            "{mode:?}: cs_entries counted once at the facade, never doubled by either handoff"
        );
        assert_eq!(adaptive.aggregate_snapshot().overflow_attempts, 0, "{mode:?}");
        assert_eq!(plane.live_sessions(), 0, "{mode:?}");

        // Doorway differential: the post-round-trip flat plane vs a FRESH
        // Bakery++ spec, step for step.  Any residue the reverse drain left
        // in the flat registers would break the very first outcome.
        let flat = adaptive.flat();
        let spec = BakeryPlusPlusSpec::new(4, flat.bound());
        let mut state = spec.initial_state();
        let mut rng = Lcg::new(0xC1C1E ^ total);
        let mut holders: Vec<(u64, usize)> = Vec::new();
        for step in 0..60 {
            let idle: Vec<usize> =
                (0..4).filter(|p| !holders.iter().any(|&(_, h)| h == *p)).collect();
            let serve = holders.len() == 4 || (idle.is_empty() || rng.next().is_multiple_of(3));
            if serve && !holders.is_empty() {
                holders.sort_unstable();
                let (_, pid) = holders.remove(0);
                flat.await_turn(pid);
                flat.release(pid);
                spec_serve(&spec, &mut state, pid);
            } else {
                let pid = idle[(rng.next() as usize) % idle.len()];
                let real = flat.try_doorway(pid);
                let speced = pp_spec_doorway(&spec, &mut state, pid, 4);
                match (&real, &speced) {
                    (DoorwayOutcome::Ticket(a), SpecDoorway::Ticket(b)) => {
                        assert_eq!(
                            a, b,
                            "{mode:?} step {step}: post-round-trip flat plane drew a \
                             different ticket than a fresh spec"
                        );
                        holders.push((*a, pid));
                    }
                    (DoorwayOutcome::Blocked, SpecDoorway::Blocked)
                    | (DoorwayOutcome::Reset, SpecDoorway::Reset) => {}
                    other => panic!(
                        "{mode:?} step {step}: post-round-trip flat plane and fresh \
                         spec disagree: {other:?}"
                    ),
                }
            }
        }
        holders.sort_unstable();
        for (_, pid) in holders {
            flat.await_turn(pid);
            flat.release(pid);
        }
    }
}

#[test]
fn real_locks_match_the_spec_planes_invariant_profile() {
    // The spec plane established: no overflow attempts, tickets within M,
    // mutual exclusion.  The real locks under genuine contention must report
    // exactly the same profile, in both scan modes.
    for mode in scan_modes() {
        let pp = Arc::new(BakeryPlusPlusLock::with_bound_and_mode(4, 4, mode));
        let total = stress(Arc::clone(&pp), 4, 250);
        assert_eq!(total, 1_000);
        assert_eq!(pp.stats().overflow_attempts(), 0);
        assert!(pp.stats().max_ticket() <= 4);

        let adaptive = Arc::new(AdaptiveBakery::with_config(4, mode, 4, u64::MAX));
        let total = stress(
            Arc::clone(&adaptive) as Arc<dyn RawMutexAlgorithm>,
            4,
            250,
        );
        assert_eq!(total, 1_000);
        let aggregate = adaptive.aggregate_snapshot();
        assert_eq!(aggregate.overflow_attempts, 0);
        assert!(aggregate.max_ticket <= adaptive.register_bound().unwrap());

        let tree = Arc::new(TreeBakery::with_config(4, 2, mode));
        let total = stress(Arc::clone(&tree), 4, 250);
        assert_eq!(total, 1_000);
        let aggregate = tree.aggregate_snapshot();
        assert_eq!(aggregate.overflow_attempts, 0);
        assert!(aggregate.max_ticket <= tree.bound());
        // Every node register is quiescently zero after the run.
        for level in 0..tree.depth() {
            for node in 0..tree.nodes_at(level) {
                let file = tree.node(level, node).registers();
                for slot in 0..file.len() {
                    assert_eq!(file.read_number(slot), 0);
                    assert!(!file.read_choosing(slot));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 5. Crash-rule conformance of the try path (assumptions 1.5–1.7): a failed
//    `try_acquire` must be indistinguishable from a crash that restarted in
//    the noncritical section — registers (and packed-mirror lanes) zero, and
//    the pid's next doorway identical to a brand-new process's.
// ---------------------------------------------------------------------------

/// Asserts pid's `choosing`/`number` registers *and* their packed-mirror
/// lanes read zero on `file`.
fn assert_pid_file_zero(file: &bakery_suite::locks::RegisterFile, pid: usize, ctx: &str) {
    assert_eq!(file.read_number(pid), 0, "{ctx}: number residue");
    assert!(!file.read_choosing(pid), "{ctx}: choosing residue");
    if let Some(packed) = file.packed() {
        assert_eq!(packed.number(pid), 0, "{ctx}: packed number lane residue");
        assert!(!packed.choosing(pid), "{ctx}: packed choosing bit residue");
    }
}

#[test]
fn failed_try_acquire_leaves_no_residue_across_the_registry() {
    use bakery_suite::baselines::registry::{AlgorithmId, LockFactory};
    for mode in scan_modes() {
        let factory = LockFactory::new().with_bound(4).with_scan_mode(mode);
        for &id in AlgorithmId::all() {
            let n = id.entry().exact_n.unwrap_or(2);
            let lock = factory.build(id, n);
            // Algorithms without a real try path keep the conservative
            // always-fail default — detectable as an uncontended failure —
            // and have no backout to test.
            if !lock.try_acquire(0) {
                continue;
            }
            lock.release(0);
            // Contended: pid 1 cannot enter while pid 0 holds the CS, and
            // its failed try must back fully out.
            lock.acquire(0);
            assert!(!lock.try_acquire(1), "{id:?} ({mode:?}): mutual exclusion");
            lock.release(0);
            // No residue in either direction: the failed pid enters freely,
            // and the old holder re-enters freely after it.
            assert!(
                lock.try_acquire(1),
                "{id:?} ({mode:?}): backout residue blocked the retry"
            );
            lock.release(1);
            lock.acquire(0);
            lock.release(0);
        }
    }
}

// ---------------------------------------------------------------------------
// 6. Wait-strategy conformance (PR 7): how a process *waits* must never
//    change what the algorithm *does*.  The same seeded schedule under
//    `Spin`, `Yield` and `Park` must produce bit-identical doorway traces,
//    and the Park strategy must honour the episode policy — a fresh wait
//    episode starts in its spin phase, so uncontended paths never park.
// ---------------------------------------------------------------------------

/// One seeded sequential doorway schedule, recorded as a comparable trace.
fn doorway_trace(lock: &BakeryPlusPlusLock, n: usize, seed: u64) -> Vec<(String, u64)> {
    let mut rng = Lcg::new(seed);
    let mut holders: Vec<(u64, usize)> = Vec::new();
    let mut trace = Vec::new();
    for _ in 0..200 {
        let idle: Vec<usize> =
            (0..n).filter(|p| !holders.iter().any(|&(_, h)| h == *p)).collect();
        let serve = holders.len() == n || (idle.is_empty() || rng.next().is_multiple_of(3));
        if serve && !holders.is_empty() {
            holders.sort_unstable();
            let (_, pid) = holders.remove(0);
            lock.await_turn(pid);
            lock.release(pid);
            trace.push(("serve".into(), pid as u64));
        } else {
            let pid = idle[(rng.next() as usize) % idle.len()];
            match lock.try_doorway(pid) {
                DoorwayOutcome::Ticket(t) => {
                    holders.push((t, pid));
                    trace.push(("ticket".into(), t));
                }
                DoorwayOutcome::Blocked => trace.push(("blocked".into(), 0)),
                DoorwayOutcome::Reset => trace.push(("reset".into(), 0)),
                DoorwayOutcome::Overflowed { attempted, .. } => {
                    trace.push(("overflow".into(), attempted));
                }
            }
        }
    }
    holders.sort_unstable();
    for (_, pid) in holders {
        lock.await_turn(pid);
        lock.release(pid);
    }
    trace
}

#[test]
fn wait_strategies_are_behaviour_invariant() {
    use bakery_suite::locks::wait::strategy_by_name;
    for mode in scan_modes() {
        for seed in 0..6u64 {
            let traces: Vec<Vec<(String, u64)>> = ["spin", "yield", "park"]
                .iter()
                .map(|name| {
                    let strategy =
                        strategy_by_name(name).expect("built-in strategy name");
                    let lock =
                        BakeryPlusPlusLock::with_bound_mode_and_strategy(3, 4, mode, strategy);
                    let trace = doorway_trace(&lock, 3, seed);
                    assert_eq!(lock.stats().overflow_attempts(), 0, "{name} ({mode:?})");
                    assert!(lock.stats().max_ticket() <= 4, "{name} ({mode:?})");
                    trace
                })
                .collect();
            assert_eq!(
                traces[0], traces[1],
                "seed {seed} ({mode:?}): spin and yield traces diverged"
            );
            assert_eq!(
                traces[0], traces[2],
                "seed {seed} ({mode:?}): spin and park traces diverged"
            );
        }
    }
    // Under real contention the strategies must also agree on the observable
    // profile: same entry totals, same overflow freedom, mutual exclusion.
    for name in ["spin", "yield", "park"] {
        let strategy = bakery_suite::locks::wait::strategy_by_name(name).unwrap();
        let lock = Arc::new(BakeryPlusPlusLock::with_bound_mode_and_strategy(
            4,
            8,
            ScanMode::Packed,
            strategy,
        ));
        let total = stress(Arc::clone(&lock), 4, 250);
        assert_eq!(total, 1_000, "{name}");
        assert_eq!(lock.stats().overflow_attempts(), 0, "{name}");
    }
}

#[test]
fn park_episode_policy_uncontended_paths_never_park() {
    use bakery_suite::locks::wait::Park;
    // The episode policy's observable half: every wait episode starts with a
    // fresh token in its spin phase, so a sequential workload — where no
    // predicate ever holds long enough to escalate — must record zero parks
    // and zero wait rounds, under every lock in the headline family.
    let park = Arc::new(Park::new());
    let pp = BakeryPlusPlusLock::with_bound_mode_and_strategy(
        2,
        8,
        ScanMode::Packed,
        park.clone(),
    );
    for _ in 0..50 {
        pp.acquire(0);
        pp.release(0);
        pp.acquire(1);
        pp.release(1);
    }
    assert_eq!(park.parks(), 0, "uncontended bakery++ must not park");
    assert_eq!(park.wait_calls(), 0, "uncontended bakery++ must not wait at all");

    let park = Arc::new(Park::new());
    let adaptive = AdaptiveBakery::with_hysteresis_and_strategy(
        2,
        ScanMode::Packed,
        usize::MAX,
        u64::MAX,
        1,
        1_000_000,
        park.clone(),
    );
    for _ in 0..50 {
        adaptive.acquire(0);
        adaptive.release(0);
    }
    assert_eq!(park.parks(), 0, "uncontended adaptive must not park");
}

#[test]
fn failed_try_acquire_resets_registers_and_matches_a_fresh_spec_doorway() {
    let n = 2;
    let bound = 4;
    for mode in scan_modes() {
        // --- Bakery++: registers + packed mirror zero, then the crashed
        //     pid's next doorway replayed against a FRESH spec.
        let lock = BakeryPlusPlusLock::with_bound_and_mode(n, bound, mode);
        lock.acquire(0);
        assert!(!lock.try_acquire(1), "{mode:?}: contended try must fail");
        assert_pid_file_zero(lock.registers(), 1, &format!("bakery++ {mode:?}"));
        lock.release(0);
        // Assumption 1.5: the backed-out pid restarts "as a new process".
        // Its next doorway on the real lock must agree step-for-step with a
        // fresh spec started from the all-zero initial state — any surviving
        // residue would surface as a diverging ticket value.
        let spec = BakeryPlusPlusSpec::new(n, bound);
        let mut state = spec.initial_state();
        match (lock.try_doorway(1), pp_spec_doorway(&spec, &mut state, 1, n)) {
            (DoorwayOutcome::Ticket(real), SpecDoorway::Ticket(speced)) => {
                assert_eq!(real, speced, "{mode:?}: post-backout doorway diverged");
                assert_eq!(real, 1, "{mode:?}: a fresh doorway draws ticket 1");
            }
            other => panic!("{mode:?}: lock and fresh spec disagree: {other:?}"),
        }
        lock.await_turn(1);
        lock.release(1);

        // --- classic Bakery: same doorway registers, same crash rule.
        let classic = BakeryLock::with_config(n, bound, OverflowPolicy::Wrap, mode);
        classic.acquire(0);
        assert!(!classic.try_acquire(1), "{mode:?}");
        assert_pid_file_zero(classic.registers(), 1, &format!("bakery {mode:?}"));
        classic.release(0);
        classic.acquire(1);
        classic.release(1);

        // --- TreeBakery: the backout must drain every engaged level of the
        //     loser's path, leaf to root, without touching the holder's.
        let tree = TreeBakery::with_config(4, 2, mode);
        tree.acquire(0);
        assert!(!tree.try_acquire(1), "{mode:?}: sibling blocked at the leaf");
        // The loser's exclusive leaf slot must be clean.  Its *upper*-level
        // slots are shared with the winning sibling — pid 0's root ticket
        // lives in the very slot pid 1 would have used — so they are checked
        // for the holder's ticket instead: the backout must not have wiped
        // a shared slot it never engaged.
        let (leaf_node, leaf_slot) = tree.position(1, 0);
        assert_pid_file_zero(
            tree.node(0, leaf_node).registers(),
            leaf_slot,
            &format!("tree leaf {mode:?}"),
        );
        let (root_node, root_slot) = tree.position(0, tree.depth() - 1);
        assert_ne!(
            tree.node(tree.depth() - 1, root_node)
                .registers()
                .read_number(root_slot),
            0,
            "{mode:?}: backout wiped the holder's root ticket"
        );
        tree.release(0);
        // Quiescent: with the holder gone, the loser's whole path (leaf and
        // the shared upper slots) reads zero.
        for level in 0..tree.depth() {
            let (node, slot) = tree.position(1, level);
            assert_pid_file_zero(
                tree.node(level, node).registers(),
                slot,
                &format!("tree level {level} post-release {mode:?}"),
            );
        }
        tree.acquire(1);
        tree.release(1);

        // --- AdaptiveBakery (flat-resident): the failed try backs out of
        //     the flat plane and withdraws its announcement.
        let adaptive = AdaptiveBakery::with_mode(n, mode);
        adaptive.acquire(0);
        assert!(!adaptive.try_acquire(1), "{mode:?}");
        assert_pid_file_zero(
            adaptive.flat().registers(),
            1,
            &format!("adaptive flat {mode:?}"),
        );
        adaptive.release(0);
        adaptive.acquire(1);
        adaptive.release(1);
    }
}
