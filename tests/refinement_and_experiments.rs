//! Cross-crate integration test: the simulator, the trace analyses and the
//! experiment harness agree with the paper's claims end to end.

use bakery_suite::harness::experiments::{self, ExperimentId};
use bakery_suite::sim::trace::refinement::{check_fcfs_by_ticket, count_fifo_inversions};
use bakery_suite::sim::{RandomScheduler, RunConfig, Simulator};
use bakery_suite::spec::{BakeryPlusPlusSpec, BakerySpec};

#[test]
fn bakery_pp_traces_satisfy_the_bakery_service_discipline() {
    let sim = Simulator::new();
    for seed in 0..5 {
        let spec = BakeryPlusPlusSpec::new(3, 3);
        let config = RunConfig::<BakeryPlusPlusSpec>::checked(5_000);
        let run = sim.run(&spec, &mut RandomScheduler::new(seed), &config);
        assert!(run.report.is_clean(), "seed {seed}: {:?}", run.report.violations);
        let verdict = check_fcfs_by_ticket(&run.trace);
        assert!(verdict.holds(), "seed {seed}: {:?}", verdict.violations);
        assert_eq!(count_fifo_inversions(&run.trace), 0, "seed {seed}");
    }
}

#[test]
fn classic_bakery_trace_overflows_with_small_bound() {
    let sim = Simulator::new();
    let spec = BakerySpec::new(2, 3);
    let mut saw_violation = false;
    for seed in 0..30 {
        let config = RunConfig::<BakerySpec>::checked(5_000);
        let run = sim.run(&spec, &mut RandomScheduler::new(seed), &config);
        if run
            .report
            .violations
            .iter()
            .any(|v| v.invariant == "NoOverflow")
        {
            saw_violation = true;
            break;
        }
    }
    assert!(saw_violation);
}

#[test]
fn e1_experiment_tables_capture_the_headline_contrast() {
    let tables = experiments::e1_overflow::run(true);
    let main = &tables[0];
    // Column 3 is the classic Bakery's overflow count; column 8 is Bakery++'s.
    for row in &main.rows {
        let m: u64 = row[0].parse().unwrap();
        let classic_overflows: u64 = row[3].parse().unwrap();
        let pp_overflows: u64 = row[8].parse().unwrap();
        assert_eq!(pp_overflows, 0, "M={m}");
        if m < 2_000 {
            assert!(classic_overflows > 0, "M={m} should overflow in 2000 rounds");
        }
        let pp_max: u64 = row[5].parse().unwrap();
        assert!(pp_max <= m);
    }
}

#[test]
fn experiment_registry_is_complete_and_parsable() {
    assert_eq!(ExperimentId::all().len(), 13);
    for id in ExperimentId::all() {
        let round_trip = ExperimentId::parse(&id.to_string()).unwrap();
        assert_eq!(round_trip, *id);
    }
}

#[test]
fn quick_report_renders_markdown_and_json() {
    // Keep this to the cheap experiments so the integration suite stays fast.
    let report = experiments::run_experiments(&[ExperimentId::E1, ExperimentId::E9], true);
    let markdown = report.to_markdown();
    assert!(markdown.contains("E1"));
    assert!(markdown.contains("E9"));
    let json = report.to_json();
    assert!(json.contains("\"tables\""));
}
