//! Cross-crate integration test: every real lock in the suite provides mutual
//! exclusion under genuine thread contention, and the bounded locks respect
//! their declared register bounds.

use std::sync::Arc;

use bakery_suite::baselines::testutil::assert_mutual_exclusion as stress;
use bakery_suite::baselines::{all_algorithms, AlgorithmId, LockFactory};
use bakery_suite::locks::{BakeryPlusPlusLock, RawMutexAlgorithm};

#[test]
fn every_algorithm_excludes_under_contention() {
    let threads = 4;
    let factory = LockFactory::new().with_bound(1_000);
    for (id, lock) in all_algorithms(threads, &factory) {
        let total = stress(lock, threads, 300);
        assert_eq!(total, 1_200, "{id} lost critical sections");
    }
}

#[test]
fn peterson_excludes_with_two_threads() {
    let factory = LockFactory::new();
    let lock = factory.build(AlgorithmId::Peterson, 2);
    let total = stress(lock, 2, 2_000);
    assert_eq!(total, 4_000);
}

#[test]
fn bakery_pp_respects_tiny_bounds_under_heavy_contention() {
    let lock = Arc::new(BakeryPlusPlusLock::with_bound(6, 5));
    let total = stress(
        Arc::clone(&lock) as Arc<dyn RawMutexAlgorithm>,
        6,
        200,
    );
    assert_eq!(total, 1_200);
    let stats = lock.stats().snapshot();
    assert_eq!(stats.overflow_attempts, 0);
    assert!(stats.max_ticket <= 5, "ticket exceeded M: {}", stats.max_ticket);
    assert_eq!(stats.cs_entries, 1_200);
}

#[test]
fn bounded_locks_report_their_bounds() {
    let factory = LockFactory::new().with_bound(123);
    for (id, lock) in all_algorithms(3, &factory) {
        if id == AlgorithmId::BakeryPlusPlus {
            assert_eq!(lock.register_bound(), Some(123));
        }
        if !id.is_bounded() && id == AlgorithmId::TicketLock {
            assert_eq!(lock.register_bound(), None);
        }
    }
}

#[test]
fn slots_are_recyclable_across_thread_waves() {
    // Two consecutive waves of threads reuse the same slots: a departing
    // thread's Drop must leave the lock in a clean state for its successor.
    let lock = Arc::new(BakeryPlusPlusLock::with_bound(4, 100));
    for _wave in 0..3 {
        let total = stress(
            Arc::clone(&lock) as Arc<dyn RawMutexAlgorithm>,
            4,
            100,
        );
        assert_eq!(total, 400);
    }
    assert_eq!(lock.stats().cs_entries(), 1_200);
}
