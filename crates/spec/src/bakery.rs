//! Step-machine specification of Lamport's original Bakery (Algorithm 1),
//! with an explicit register bound `M`.
//!
//! The ticket store at [`pc::WRITE_TICKET`] writes the computed value
//! `1 + maximum`, capped at `M + 1`: one above the bound.  Values above `M`
//! therefore appear in the state exactly when the algorithm *would have
//! overflowed a real register*, which is what the `NoOverflow` invariant
//! detects, while the cap keeps the reachable state space finite.

use bakery_sim::{
    Algorithm, Observation, ProcState, ProgState, RegisterSemantics, RegisterSpec, StateBounds,
    SymmetryGroup,
};

use crate::layout::{
    choosing_idx, choosing_may_read_zero, flat_symmetry, number_idx, read_number, ticket_precedes,
};
use crate::pc;

/// Local-variable slots used by the Bakery-family specs.
pub(crate) const LOCAL_J: usize = 0;
pub(crate) const LOCAL_MAX: usize = 1;

/// Lamport's Bakery algorithm as a checkable specification.
#[derive(Debug, Clone)]
pub struct BakerySpec {
    n: usize,
    bound: u64,
    semantics: RegisterSemantics,
}

impl BakerySpec {
    /// Creates a Bakery spec for `n` processes with register bound `bound`.
    #[must_use]
    pub fn new(n: usize, bound: u64) -> Self {
        assert!(n >= 1, "need at least one process");
        assert!(bound >= 1, "the register bound must be at least 1");
        Self {
            n,
            bound,
            semantics: RegisterSemantics::Atomic,
        }
    }

    /// Selects the register model (atomic or safe/flickering registers).
    #[must_use]
    pub fn with_semantics(mut self, semantics: RegisterSemantics) -> Self {
        self.semantics = semantics;
        self
    }

    /// The register bound `M`.
    #[must_use]
    pub fn bound(&self) -> u64 {
        self.bound
    }

    /// The value physically stored for an attempted ticket `attempted`
    /// (capped at the overflow sentinel `M + 1`).
    fn store_value(&self, attempted: u64) -> u64 {
        attempted.min(self.bound + 1)
    }

    /// A successor in which `pid` stores `value` to register `idx`: the
    /// whole write under atomic semantics, the *begin* step under safe
    /// semantics (the commit is forced as `pid`'s next step).
    fn store(&self, state: &ProgState, pid: usize, idx: usize, value: u64) -> ProgState {
        let mut next = state.clone();
        match self.semantics {
            RegisterSemantics::Atomic => next.set_shared(idx, value),
            RegisterSemantics::Safe => next.begin_write(idx, value, pid),
        }
        next
    }
}

impl Algorithm for BakerySpec {
    fn name(&self) -> &str {
        "bakery"
    }

    fn processes(&self) -> usize {
        self.n
    }

    fn registers(&self) -> Vec<RegisterSpec> {
        crate::layout::registers(self.n, self.bound, true)
    }

    fn initial_state(&self) -> ProgState {
        let procs = (0..self.n)
            .map(|_| ProcState::new(pc::NCS, vec![0, 0]))
            .collect();
        match self.semantics {
            RegisterSemantics::Atomic => ProgState::new(2 * self.n, procs),
            RegisterSemantics::Safe => ProgState::new_weak(2 * self.n, procs),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn successors(&self, state: &ProgState, pid: usize, out: &mut Vec<ProgState>) {
        if state.is_crashed(pid) {
            return;
        }
        // Safe semantics: a begun write must commit before the process takes
        // any other step (program order).  Bakery registers are all
        // single-writer, so the commit is the pending value, never a clash.
        if let Some(idx) = state.write_in_progress_by(pid) {
            for value in state.commit_values(idx, self.bound) {
                let mut next = state.clone();
                next.end_write(idx, pid, value);
                out.push(next);
            }
            return;
        }
        let n = self.n;
        let j = state.local(pid, LOCAL_J) as usize;
        let max = state.local(pid, LOCAL_MAX);
        match state.pc(pid) {
            pc::NCS => {
                // Enter the doorway: choosing[i] := 1.
                let mut next = self.store(state, pid, choosing_idx(pid), 1);
                next.set_local(pid, LOCAL_J, 0);
                next.set_local(pid, LOCAL_MAX, 0);
                next.set_pc(pid, pc::COMPUTE_MAX);
                out.push(next);
            }
            pc::COMPUTE_MAX => {
                if j < n {
                    // Fold number[j] into the running maximum (one read per
                    // step).  Flicker values folding to the same maximum
                    // yield the same successor, so deduplicate by outcome.
                    let mut maxima: Vec<u64> = read_number(state, n, j, self.bound)
                        .into_iter()
                        .map(|value| max.max(value))
                        .collect();
                    maxima.sort_unstable();
                    maxima.dedup();
                    for folded in maxima {
                        let mut next = state.clone();
                        next.set_local(pid, LOCAL_MAX, folded);
                        next.set_local(pid, LOCAL_J, (j + 1) as u64);
                        out.push(next);
                    }
                } else {
                    let mut next = state.clone();
                    next.set_pc(pid, pc::WRITE_TICKET);
                    out.push(next);
                }
            }
            pc::WRITE_TICKET => {
                // number[i] := 1 + maximum — the store that can overflow.
                let attempted = max + 1;
                let mut next =
                    self.store(state, pid, number_idx(n, pid), self.store_value(attempted));
                next.set_pc(pid, pc::CLEAR_CHOOSING);
                out.push(next);
            }
            pc::CLEAR_CHOOSING => {
                let mut next = self.store(state, pid, choosing_idx(pid), 0);
                next.set_local(pid, LOCAL_J, 0);
                next.set_pc(pid, pc::SCAN_CHOOSING);
                out.push(next);
            }
            pc::SCAN_CHOOSING => {
                if j == pid {
                    let mut next = state.clone();
                    next.set_local(pid, LOCAL_J, (j + 1) as u64);
                    out.push(next);
                } else if j >= n {
                    let mut next = state.clone();
                    next.set_pc(pid, pc::CS);
                    out.push(next);
                } else if choosing_may_read_zero(state, j) {
                    let mut next = state.clone();
                    next.set_pc(pid, pc::SCAN_NUMBER);
                    out.push(next);
                }
                // else: blocked at L2.
            }
            pc::SCAN_NUMBER => {
                // Every passing read value yields the same successor, so one
                // push suffices (outcome dedup); a read that can only return
                // blocking values keeps us at L3.
                let my_number = state.read(number_idx(n, pid));
                let passes = read_number(state, n, j, self.bound)
                    .into_iter()
                    .any(|other| other == 0 || !ticket_precedes(other, j, my_number, pid));
                if passes {
                    let mut next = state.clone();
                    next.set_local(pid, LOCAL_J, (j + 1) as u64);
                    next.set_pc(pid, pc::SCAN_CHOOSING);
                    out.push(next);
                }
            }
            pc::CS => {
                // Leave: number[i] := 0.
                let mut next = self.store(state, pid, number_idx(n, pid), 0);
                next.set_pc(pid, pc::NCS);
                out.push(next);
            }
            _ => {}
        }
    }

    fn in_critical_section(&self, state: &ProgState, pid: usize) -> bool {
        state.pc(pid) == pc::CS
    }

    fn is_trying(&self, state: &ProgState, pid: usize) -> bool {
        let p = state.pc(pid);
        p != pc::NCS && p != pc::CS
    }

    fn crash(&self, state: &ProgState, pid: usize) -> Option<ProgState> {
        if state.pc(pid) == pc::NCS
            && state.read(choosing_idx(pid)) == 0
            && state.read(number_idx(self.n, pid)) == 0
            && state.write_in_progress_by(pid).is_none()
        {
            return None;
        }
        let mut next = state.clone();
        // A crash mid-write aborts the write: the pending value is dropped,
        // never committed (safe semantics; no-op under atomic).
        next.abort_writes(pid);
        next.set_shared(choosing_idx(pid), 0);
        next.set_shared(number_idx(self.n, pid), 0);
        next.set_local(pid, LOCAL_J, 0);
        next.set_local(pid, LOCAL_MAX, 0);
        next.set_pc(pid, pc::NCS);
        Some(next)
    }

    fn pc_label(&self, pc_value: u32) -> &'static str {
        pc::label(pc_value)
    }

    fn state_bounds(&self) -> StateBounds {
        // Registers (and hence the folded local maximum) can hold the
        // overflow sentinel M + 1; the loop index never exceeds n.
        StateBounds::new(pc::CS, vec![self.n as u64, self.bound.saturating_add(1)])
    }

    fn register_semantics(&self) -> RegisterSemantics {
        self.semantics
    }

    fn symmetry(&self) -> Option<SymmetryGroup> {
        flat_symmetry(self.n)
    }

    fn observe(&self, prev: &ProgState, next: &ProgState, pid: usize) -> Option<Observation> {
        let (before, after) = (prev.pc(pid), next.pc(pid));
        if before == pc::WRITE_TICKET && after == pc::CLEAR_CHOOSING {
            // Under safe semantics this transition is the write's *begin*
            // step, so the ticket is the pending value, not the (stale)
            // committed one.
            let stored = next.last_stored(number_idx(self.n, pid));
            if stored > self.bound {
                return Some(Observation::Overflowed {
                    pid,
                    attempted: prev.local(pid, LOCAL_MAX) + 1,
                });
            }
            return Some(Observation::TicketTaken {
                pid,
                number: stored,
            });
        }
        if before != pc::CS && after == pc::CS {
            return Some(Observation::EnterCs { pid });
        }
        if before == pc::CS && after == pc::NCS {
            return Some(Observation::ExitCs { pid });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bakery_sim::{Invariant, RandomScheduler, RoundRobinScheduler, RunConfig, Simulator};

    #[test]
    fn single_process_cycles_cleanly() {
        let spec = BakerySpec::new(1, 10);
        let config = RunConfig::<BakerySpec>::checked(200);
        let outcome = Simulator::new().run(&spec, &mut RoundRobinScheduler::new(), &config);
        assert!(outcome.report.is_clean(), "{:?}", outcome.report.violations);
        assert!(outcome.report.total_cs_entries() >= 20);
    }

    #[test]
    fn two_processes_preserve_mutual_exclusion_under_random_schedules() {
        let spec = BakerySpec::new(2, 1_000);
        for seed in 0..20 {
            let config = RunConfig::<BakerySpec>::checked(2_000);
            let outcome = Simulator::new().run(&spec, &mut RandomScheduler::new(seed), &config);
            let mutex_violations: Vec<_> = outcome
                .report
                .violations
                .iter()
                .filter(|v| v.invariant == "MutualExclusion")
                .collect();
            assert!(
                mutex_violations.is_empty(),
                "seed {seed}: {mutex_violations:?}"
            );
        }
    }

    #[test]
    fn flicker_reads_do_not_break_mutual_exclusion() {
        let spec = BakerySpec::new(2, 1_000).with_semantics(RegisterSemantics::Safe);
        for seed in 0..10 {
            let config = RunConfig::<BakerySpec>::checked(2_000);
            let outcome = Simulator::new().run(&spec, &mut RandomScheduler::new(seed), &config);
            assert!(
                !outcome
                    .report
                    .violations
                    .iter()
                    .any(|v| v.invariant == "MutualExclusion"),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn bounded_bakery_eventually_overflows_under_alternation() {
        // Random schedules over a tiny bound: the NoOverflow invariant must
        // eventually fail — this is the §3 malfunction.
        let spec = BakerySpec::new(2, 3);
        let mut saw_overflow = false;
        for seed in 0..50 {
            let config = RunConfig::<BakerySpec>::checked(5_000);
            let outcome = Simulator::new().run(&spec, &mut RandomScheduler::new(seed), &config);
            if outcome
                .report
                .violations
                .iter()
                .any(|v| v.invariant == "NoOverflow")
            {
                saw_overflow = true;
                break;
            }
        }
        assert!(saw_overflow, "bounded classic Bakery must overflow");
    }

    #[test]
    fn tickets_grow_when_the_bakery_never_empties() {
        let spec = BakerySpec::new(2, 1_000_000);
        let config = RunConfig::<BakerySpec>::checked(20_000);
        let outcome = Simulator::new().run(&spec, &mut RandomScheduler::new(7), &config);
        assert!(outcome.report.is_clean());
        assert!(
            outcome.report.max_register_value > 2,
            "under contention tickets should exceed the single-process value"
        );
    }

    #[test]
    fn crash_transition_resets_owned_registers() {
        let spec = BakerySpec::new(2, 10);
        let s0 = spec.initial_state();
        // Advance process 0 into its doorway.
        let s1 = spec.successors_vec(&s0, 0)[0].clone();
        assert_eq!(s1.read(choosing_idx(0)), 1);
        let crashed = spec.crash(&s1, 0).expect("crash transition");
        assert_eq!(crashed.read(choosing_idx(0)), 0);
        assert_eq!(crashed.read(number_idx(2, 0)), 0);
        assert_eq!(crashed.pc(0), pc::NCS);
        // Crashing an idle process is a no-op.
        assert!(spec.crash(&s0, 1).is_none());
    }

    #[test]
    fn observations_include_tickets_and_cs_boundaries() {
        let spec = BakerySpec::new(1, 10);
        let config = RunConfig::<BakerySpec>::checked(40);
        let outcome = Simulator::new().run(&spec, &mut RoundRobinScheduler::new(), &config);
        let tickets = outcome.trace.ticket_order();
        assert!(!tickets.is_empty());
        assert!(tickets.iter().all(|&(p, number)| p == 0 && number == 1));
        assert_eq!(
            outcome.trace.cs_entries(),
            outcome.report.total_cs_entries()
        );
    }

    #[test]
    fn trying_and_cs_predicates() {
        let spec = BakerySpec::new(2, 10);
        let s0 = spec.initial_state();
        assert!(!spec.is_trying(&s0, 0));
        assert!(!spec.in_critical_section(&s0, 0));
        let s1 = spec.successors_vec(&s0, 0)[0].clone();
        assert!(spec.is_trying(&s1, 0));
        assert_eq!(spec.pc_label(pc::SCAN_NUMBER), "L3-scan-number");
    }

    #[test]
    fn custom_invariant_can_observe_bakery_registers() {
        // Sanity check that the spec's registers() names line up with state
        // indices: choosing first, then number.
        let spec = BakerySpec::new(3, 9);
        let regs = spec.registers();
        assert_eq!(regs.len(), 6);
        assert_eq!(regs[0].name, "choosing[0]");
        assert_eq!(regs[3].name, "number[0]");
        assert_eq!(regs[5].bound, 9);
        let inv = Invariant::<BakerySpec>::register_bounds();
        assert!(inv.holds(&spec, &spec.initial_state()));
    }
}
