//! Step-machine specification of Peterson's two-process algorithm.
//!
//! Included to demonstrate that the model checker is algorithm-agnostic and to
//! give the comparison experiments a specification-level baseline that uses a
//! multi-writer shared variable (`turn`) — the design choice the paper
//! contrasts Bakery/Bakery++ against.
//!
//! Peterson **requires atomic registers**: under
//! [`RegisterSemantics::Safe`] its multi-writer `turn` register clashes when
//! both processes write it concurrently, and the weak-register test plane
//! pins the resulting mutual-exclusion violation as the suite's negative
//! control (a semantics knob that never changes any verdict would be
//! vacuous).

use bakery_sim::{Algorithm, Observation, ProcState, ProgState, RegisterSemantics, RegisterSpec};

/// Shared register indices.
const FLAG0: usize = 0;
const FLAG1: usize = 1;
const TURN: usize = 2;

/// Program counters.
mod pc {
    pub const NCS: u32 = 0;
    pub const SET_FLAG: u32 = 1;
    pub const SET_TURN: u32 = 2;
    pub const WAIT: u32 = 3;
    pub const CS: u32 = 4;
}

/// Peterson's algorithm for two processes as a checkable specification.
#[derive(Debug, Clone, Default)]
pub struct PetersonSpec {
    semantics: RegisterSemantics,
}

impl PetersonSpec {
    /// Creates the two-process Peterson specification.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the register model (atomic or safe/flickering registers).
    #[must_use]
    pub fn with_semantics(mut self, semantics: RegisterSemantics) -> Self {
        self.semantics = semantics;
        self
    }

    fn flag_idx(pid: usize) -> usize {
        if pid == 0 {
            FLAG0
        } else {
            FLAG1
        }
    }

    /// A successor in which `pid` stores `value` to register `idx`: the
    /// whole write under atomic semantics, the begin step under safe
    /// semantics (the commit is forced as `pid`'s next step).
    fn store(&self, state: &ProgState, pid: usize, idx: usize, value: u64) -> ProgState {
        let mut next = state.clone();
        match self.semantics {
            RegisterSemantics::Atomic => next.set_shared(idx, value),
            RegisterSemantics::Safe => next.begin_write(idx, value, pid),
        }
        next
    }
}

impl Algorithm for PetersonSpec {
    fn name(&self) -> &str {
        "peterson"
    }

    fn processes(&self) -> usize {
        2
    }

    fn registers(&self) -> Vec<RegisterSpec> {
        vec![
            RegisterSpec::owned("flag[0]", 1, 0),
            RegisterSpec::owned("flag[1]", 1, 1),
            RegisterSpec::shared("turn", 1),
        ]
    }

    fn initial_state(&self) -> ProgState {
        let procs = vec![ProcState::new(pc::NCS, vec![]), ProcState::new(pc::NCS, vec![])];
        match self.semantics {
            RegisterSemantics::Atomic => ProgState::new(3, procs),
            RegisterSemantics::Safe => ProgState::new_weak(3, procs),
        }
    }

    fn successors(&self, state: &ProgState, pid: usize, out: &mut Vec<ProgState>) {
        if state.is_crashed(pid) {
            return;
        }
        // Safe semantics: a begun write must commit before any other step.
        // Unlike the bakery family, `turn` is multi-writer: overlapping
        // writes clash and the commit branches over every in-range value.
        if let Some(idx) = state.write_in_progress_by(pid) {
            for value in state.commit_values(idx, 1) {
                let mut next = state.clone();
                next.end_write(idx, pid, value);
                out.push(next);
            }
            return;
        }
        let other = 1 - pid;
        match state.pc(pid) {
            pc::NCS => out.push(state.with_pc(pid, pc::SET_FLAG)),
            pc::SET_FLAG => {
                let mut next = self.store(state, pid, Self::flag_idx(pid), 1);
                next.set_pc(pid, pc::SET_TURN);
                out.push(next);
            }
            pc::SET_TURN => {
                let mut next = self.store(state, pid, TURN, other as u64);
                next.set_pc(pid, pc::WAIT);
                out.push(next);
            }
            pc::WAIT => {
                // One step reads both flag[other] and turn (kept combined so
                // the atomic-mode state machine is unchanged); under safe
                // semantics the guard branches over every readable pair.
                // All passing pairs yield the same successor (outcome dedup).
                let passes = state.read_values(Self::flag_idx(other), 1).iter().any(
                    |&other_flag| {
                        state
                            .read_values(TURN, 1)
                            .iter()
                            .any(|&turn| other_flag == 0 || turn != other as u64)
                    },
                );
                if passes {
                    out.push(state.with_pc(pid, pc::CS));
                }
                // else blocked.
            }
            pc::CS => {
                let mut next = self.store(state, pid, Self::flag_idx(pid), 0);
                next.set_pc(pid, pc::NCS);
                out.push(next);
            }
            _ => {}
        }
    }

    fn in_critical_section(&self, state: &ProgState, pid: usize) -> bool {
        state.pc(pid) == pc::CS
    }

    fn is_trying(&self, state: &ProgState, pid: usize) -> bool {
        let p = state.pc(pid);
        p != pc::NCS && p != pc::CS
    }

    fn crash(&self, state: &ProgState, pid: usize) -> Option<ProgState> {
        if state.pc(pid) == pc::NCS
            && state.read(Self::flag_idx(pid)) == 0
            && state.write_in_progress_by(pid).is_none()
        {
            return None;
        }
        let mut next = state.with_pc(pid, pc::NCS);
        // A crash mid-write aborts the write (pending value dropped).
        next.abort_writes(pid);
        next.set_shared(Self::flag_idx(pid), 0);
        Some(next)
    }

    fn register_semantics(&self) -> RegisterSemantics {
        self.semantics
    }

    fn pc_label(&self, pc_value: u32) -> &'static str {
        match pc_value {
            pc::NCS => "ncs",
            pc::SET_FLAG => "set-flag",
            pc::SET_TURN => "set-turn",
            pc::WAIT => "wait",
            pc::CS => "critical-section",
            _ => "?",
        }
    }

    fn observe(&self, prev: &ProgState, next: &ProgState, pid: usize) -> Option<Observation> {
        match (prev.pc(pid), next.pc(pid)) {
            (pc::SET_TURN, pc::WAIT) => Some(Observation::TicketTaken { pid, number: 1 }),
            (pc::WAIT, pc::CS) => Some(Observation::EnterCs { pid }),
            (pc::CS, pc::NCS) => Some(Observation::ExitCs { pid }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bakery_sim::{RandomScheduler, RoundRobinScheduler, RunConfig, Simulator};

    #[test]
    fn single_process_progress() {
        let spec = PetersonSpec::new();
        let config = RunConfig::<PetersonSpec>::checked(100);
        let outcome = Simulator::new().run(&spec, &mut RoundRobinScheduler::new(), &config);
        assert!(outcome.report.is_clean(), "{:?}", outcome.report.violations);
        assert!(outcome.report.total_cs_entries() > 5);
    }

    #[test]
    fn mutual_exclusion_under_random_schedules() {
        let spec = PetersonSpec::new();
        for seed in 0..25 {
            let config = RunConfig::<PetersonSpec>::checked(2_000);
            let outcome = Simulator::new().run(&spec, &mut RandomScheduler::new(seed), &config);
            assert!(outcome.report.is_clean(), "seed {seed}");
        }
    }

    #[test]
    fn turn_register_is_multi_writer() {
        let spec = PetersonSpec::new();
        let regs = spec.registers();
        assert_eq!(regs[2].name, "turn");
        assert_eq!(regs[2].owner, None, "turn has no single owner");
        assert_eq!(regs[0].owner, Some(0));
    }

    #[test]
    fn crash_clears_flag() {
        let spec = PetersonSpec::new();
        let s0 = spec.initial_state();
        let s1 = spec.successors_vec(&s0, 0)[0].clone();
        let s2 = spec.successors_vec(&s1, 0)[0].clone();
        assert_eq!(s2.read(FLAG0), 1);
        let crashed = spec.crash(&s2, 0).unwrap();
        assert_eq!(crashed.read(FLAG0), 0);
        assert!(spec.crash(&s0, 0).is_none());
    }

    #[test]
    fn safe_semantics_admits_a_mutual_exclusion_violation() {
        // The negative control, traced by hand: Peterson requires atomic
        // registers.  Overlapping writes to the multi-writer `turn` clash,
        // P0 slips past WAIT on a flickered turn read while P1's write is
        // still in flight, and P1 then passes on the clash-committed value.
        let spec = PetersonSpec::new().with_semantics(RegisterSemantics::Safe);
        let step = |s: &ProgState, pid: usize, pick: usize| -> ProgState {
            let succs = spec.successors_vec(s, pid);
            succs
                .get(pick)
                .unwrap_or_else(|| panic!("need successor {pick}, got {}", succs.len()))
                .clone()
        };
        let mut s = spec.initial_state();
        for pid in [0, 1] {
            s = step(&s, pid, 0); // NCS -> SET_FLAG
            s = step(&s, pid, 0); // begin flag[pid] := 1
            s = step(&s, pid, 0); // commit flag[pid] = 1
        }
        s = step(&s, 0, 0); // P0 begins turn := 1
        s = step(&s, 1, 0); // P1 begins turn := 0 -- overlapping write: clash
        s = step(&s, 0, 1); // P0 commits; clash branches over {0, 1}: pick 1
        assert_eq!(s.read(TURN), 1);
        // P1's write is still in flight, so P0's WAIT read of turn flickers
        // and may return 0, which satisfies the guard.
        s = step(&s, 0, 0);
        assert!(spec.in_critical_section(&s, 0));
        s = step(&s, 1, 1); // P1 commits its clash: pick turn = 1
        assert_eq!(s.read(TURN), 1);
        // P1's WAIT now reads flag[0] = 1, turn = 1 != 0: it passes too.
        s = step(&s, 1, 0);
        assert!(spec.in_critical_section(&s, 1));
        assert_eq!(spec.processes_in_cs(&s), 2, "both inside the CS");
    }

    #[test]
    fn atomic_semantics_has_no_pending_write_machinery() {
        let spec = PetersonSpec::new();
        let s0 = spec.initial_state();
        assert!(s0.writes.is_empty(), "atomic states carry no write cells");
        let s1 = spec.successors_vec(&s0, 0)[0].clone();
        let s2 = spec.successors_vec(&s1, 0)[0].clone();
        assert_eq!(s2.read(FLAG0), 1, "atomic store commits in one step");
    }

    #[test]
    fn labels_and_predicates() {
        let spec = PetersonSpec::new();
        assert_eq!(spec.pc_label(3), "wait");
        assert_eq!(spec.processes(), 2);
        let s = spec.initial_state();
        assert!(!spec.is_trying(&s, 0));
    }
}
