//! Step-machine specification of Peterson's two-process algorithm.
//!
//! Included to demonstrate that the model checker is algorithm-agnostic and to
//! give the comparison experiments a specification-level baseline that uses a
//! multi-writer shared variable (`turn`) — the design choice the paper
//! contrasts Bakery/Bakery++ against.

use bakery_sim::{Algorithm, Observation, ProcState, ProgState, RegisterSpec};

/// Shared register indices.
const FLAG0: usize = 0;
const FLAG1: usize = 1;
const TURN: usize = 2;

/// Program counters.
mod pc {
    pub const NCS: u32 = 0;
    pub const SET_FLAG: u32 = 1;
    pub const SET_TURN: u32 = 2;
    pub const WAIT: u32 = 3;
    pub const CS: u32 = 4;
}

/// Peterson's algorithm for two processes as a checkable specification.
#[derive(Debug, Clone, Default)]
pub struct PetersonSpec;

impl PetersonSpec {
    /// Creates the two-process Peterson specification.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    fn flag_idx(pid: usize) -> usize {
        if pid == 0 {
            FLAG0
        } else {
            FLAG1
        }
    }
}

impl Algorithm for PetersonSpec {
    fn name(&self) -> &str {
        "peterson"
    }

    fn processes(&self) -> usize {
        2
    }

    fn registers(&self) -> Vec<RegisterSpec> {
        vec![
            RegisterSpec::owned("flag[0]", 1, 0),
            RegisterSpec::owned("flag[1]", 1, 1),
            RegisterSpec::shared("turn", 1),
        ]
    }

    fn initial_state(&self) -> ProgState {
        ProgState::new(
            3,
            vec![ProcState::new(pc::NCS, vec![]), ProcState::new(pc::NCS, vec![])],
        )
    }

    fn successors(&self, state: &ProgState, pid: usize, out: &mut Vec<ProgState>) {
        if state.is_crashed(pid) {
            return;
        }
        let other = 1 - pid;
        match state.pc(pid) {
            pc::NCS => out.push(state.with_pc(pid, pc::SET_FLAG)),
            pc::SET_FLAG => {
                let mut next = state.with_pc(pid, pc::SET_TURN);
                next.set_shared(Self::flag_idx(pid), 1);
                out.push(next);
            }
            pc::SET_TURN => {
                let mut next = state.with_pc(pid, pc::WAIT);
                next.set_shared(TURN, other as u64);
                out.push(next);
            }
            pc::WAIT => {
                let other_flag = state.read(Self::flag_idx(other));
                let turn = state.read(TURN);
                if other_flag == 0 || turn != other as u64 {
                    out.push(state.with_pc(pid, pc::CS));
                }
                // else blocked.
            }
            pc::CS => {
                let mut next = state.with_pc(pid, pc::NCS);
                next.set_shared(Self::flag_idx(pid), 0);
                out.push(next);
            }
            _ => {}
        }
    }

    fn in_critical_section(&self, state: &ProgState, pid: usize) -> bool {
        state.pc(pid) == pc::CS
    }

    fn is_trying(&self, state: &ProgState, pid: usize) -> bool {
        let p = state.pc(pid);
        p != pc::NCS && p != pc::CS
    }

    fn crash(&self, state: &ProgState, pid: usize) -> Option<ProgState> {
        if state.pc(pid) == pc::NCS && state.read(Self::flag_idx(pid)) == 0 {
            return None;
        }
        let mut next = state.with_pc(pid, pc::NCS);
        next.set_shared(Self::flag_idx(pid), 0);
        Some(next)
    }

    fn pc_label(&self, pc_value: u32) -> &'static str {
        match pc_value {
            pc::NCS => "ncs",
            pc::SET_FLAG => "set-flag",
            pc::SET_TURN => "set-turn",
            pc::WAIT => "wait",
            pc::CS => "critical-section",
            _ => "?",
        }
    }

    fn observe(&self, prev: &ProgState, next: &ProgState, pid: usize) -> Option<Observation> {
        match (prev.pc(pid), next.pc(pid)) {
            (pc::SET_TURN, pc::WAIT) => Some(Observation::TicketTaken { pid, number: 1 }),
            (pc::WAIT, pc::CS) => Some(Observation::EnterCs { pid }),
            (pc::CS, pc::NCS) => Some(Observation::ExitCs { pid }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bakery_sim::{RandomScheduler, RoundRobinScheduler, RunConfig, Simulator};

    #[test]
    fn single_process_progress() {
        let spec = PetersonSpec::new();
        let config = RunConfig::<PetersonSpec>::checked(100);
        let outcome = Simulator::new().run(&spec, &mut RoundRobinScheduler::new(), &config);
        assert!(outcome.report.is_clean(), "{:?}", outcome.report.violations);
        assert!(outcome.report.total_cs_entries() > 5);
    }

    #[test]
    fn mutual_exclusion_under_random_schedules() {
        let spec = PetersonSpec::new();
        for seed in 0..25 {
            let config = RunConfig::<PetersonSpec>::checked(2_000);
            let outcome = Simulator::new().run(&spec, &mut RandomScheduler::new(seed), &config);
            assert!(outcome.report.is_clean(), "seed {seed}");
        }
    }

    #[test]
    fn turn_register_is_multi_writer() {
        let spec = PetersonSpec::new();
        let regs = spec.registers();
        assert_eq!(regs[2].name, "turn");
        assert_eq!(regs[2].owner, None, "turn has no single owner");
        assert_eq!(regs[0].owner, Some(0));
    }

    #[test]
    fn crash_clears_flag() {
        let spec = PetersonSpec::new();
        let s0 = spec.initial_state();
        let s1 = spec.successors_vec(&s0, 0)[0].clone();
        let s2 = spec.successors_vec(&s1, 0)[0].clone();
        assert_eq!(s2.read(FLAG0), 1);
        let crashed = spec.crash(&s2, 0).unwrap();
        assert_eq!(crashed.read(FLAG0), 0);
        assert!(spec.crash(&s0, 0).is_none());
    }

    #[test]
    fn labels_and_predicates() {
        let spec = PetersonSpec::new();
        assert_eq!(spec.pc_label(3), "wait");
        assert_eq!(spec.processes(), 2);
        let s = spec.initial_state();
        assert!(!spec.is_trying(&s, 0));
    }
}
