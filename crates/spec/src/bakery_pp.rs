//! Step-machine specification of Bakery++ (Algorithm 2).
//!
//! Structurally identical to [`crate::BakerySpec`] plus the two additions the
//! paper makes: the `L1` admission scan and the pre-increment bound check with
//! its reset path.  The specification never stores a value above `M` — the
//! model checker verifies that exhaustively in experiment **E2**.

use bakery_sim::{
    Algorithm, Observation, ProcState, ProgState, RegisterSemantics, RegisterSpec, StateBounds,
    SymmetryGroup,
};

use crate::bakery::{LOCAL_J, LOCAL_MAX};
use crate::layout::{
    choosing_idx, choosing_may_read_zero, flat_symmetry, number_idx, read_number, ticket_precedes,
};
use crate::pc;

/// Bakery++ as a checkable specification.
#[derive(Debug, Clone)]
pub struct BakeryPlusPlusSpec {
    n: usize,
    bound: u64,
    semantics: RegisterSemantics,
}

impl BakeryPlusPlusSpec {
    /// Creates a Bakery++ spec for `n` processes with register bound `M = bound`.
    #[must_use]
    pub fn new(n: usize, bound: u64) -> Self {
        assert!(n >= 1, "need at least one process");
        assert!(bound >= 1, "the register bound M must be at least 1");
        Self {
            n,
            bound,
            semantics: RegisterSemantics::Atomic,
        }
    }

    /// Selects the register model (atomic or safe/flickering registers).
    #[must_use]
    pub fn with_semantics(mut self, semantics: RegisterSemantics) -> Self {
        self.semantics = semantics;
        self
    }

    /// The register bound `M`.
    #[must_use]
    pub fn bound(&self) -> u64 {
        self.bound
    }

    /// A successor in which `pid` stores `value` to register `idx`: the
    /// whole write under atomic semantics, the *begin* step under safe
    /// semantics (the commit is forced as `pid`'s next step).
    fn store(&self, state: &ProgState, pid: usize, idx: usize, value: u64) -> ProgState {
        let mut next = state.clone();
        match self.semantics {
            RegisterSemantics::Atomic => next.set_shared(idx, value),
            RegisterSemantics::Safe => next.begin_write(idx, value, pid),
        }
        next
    }
}

impl Algorithm for BakeryPlusPlusSpec {
    fn name(&self) -> &str {
        "bakery++"
    }

    fn processes(&self) -> usize {
        self.n
    }

    fn registers(&self) -> Vec<RegisterSpec> {
        crate::layout::registers(self.n, self.bound, false)
    }

    fn initial_state(&self) -> ProgState {
        let procs = (0..self.n)
            .map(|_| ProcState::new(pc::NCS, vec![0, 0]))
            .collect();
        match self.semantics {
            RegisterSemantics::Atomic => ProgState::new(2 * self.n, procs),
            RegisterSemantics::Safe => ProgState::new_weak(2 * self.n, procs),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn successors(&self, state: &ProgState, pid: usize, out: &mut Vec<ProgState>) {
        if state.is_crashed(pid) {
            return;
        }
        // Safe semantics: a begun write must commit before the process takes
        // any other step (program order).  Bakery++ registers are all
        // single-writer, so the commit is the pending value, never a clash.
        if let Some(idx) = state.write_in_progress_by(pid) {
            for value in state.commit_values(idx, self.bound) {
                let mut next = state.clone();
                next.end_write(idx, pid, value);
                out.push(next);
            }
            return;
        }
        let n = self.n;
        let j = state.local(pid, LOCAL_J) as usize;
        let max = state.local(pid, LOCAL_MAX);
        match state.pc(pid) {
            pc::NCS => {
                // Start the L1 admission scan.
                let mut next = state.clone();
                next.set_local(pid, LOCAL_J, 0);
                next.set_local(pid, LOCAL_MAX, 0);
                next.set_pc(pid, pc::L1_SCAN);
                out.push(next);
            }
            pc::L1_SCAN => {
                if j >= n {
                    // All registers observed below M: proceed to the doorway.
                    let mut next = state.clone();
                    next.set_local(pid, LOCAL_J, 0);
                    next.set_pc(pid, pc::SET_CHOOSING);
                    out.push(next);
                } else {
                    // Two possible outcomes (restart vs advance); flicker
                    // values with the same outcome yield the same successor,
                    // so push each outcome at most once.
                    let values = read_number(state, n, j, self.bound);
                    if values.iter().any(|&value| value >= self.bound) {
                        // Illegitimate situation: restart the scan (goto L1).
                        let mut next = state.clone();
                        next.set_local(pid, LOCAL_J, 0);
                        out.push(next);
                    }
                    if values.iter().any(|&value| value < self.bound) {
                        let mut next = state.clone();
                        next.set_local(pid, LOCAL_J, (j + 1) as u64);
                        out.push(next);
                    }
                }
            }
            pc::SET_CHOOSING => {
                let mut next = self.store(state, pid, choosing_idx(pid), 1);
                next.set_local(pid, LOCAL_J, 0);
                next.set_local(pid, LOCAL_MAX, 0);
                next.set_pc(pid, pc::COMPUTE_MAX);
                out.push(next);
            }
            pc::COMPUTE_MAX => {
                if j < n {
                    // Deduplicate flicker reads by the folded maximum.
                    let mut maxima: Vec<u64> = read_number(state, n, j, self.bound)
                        .into_iter()
                        .map(|value| max.max(value))
                        .collect();
                    maxima.sort_unstable();
                    maxima.dedup();
                    for folded in maxima {
                        let mut next = state.clone();
                        next.set_local(pid, LOCAL_MAX, folded);
                        next.set_local(pid, LOCAL_J, (j + 1) as u64);
                        out.push(next);
                    }
                } else {
                    let mut next = state.clone();
                    next.set_pc(pid, pc::WRITE_MAX);
                    out.push(next);
                }
            }
            pc::WRITE_MAX => {
                // number[i] := maximum(...).  Always <= M: each register is <= M
                // individually (flicker reads are also capped at the bound).
                let mut next = self.store(state, pid, number_idx(n, pid), max.min(self.bound));
                next.set_pc(pid, pc::CHECK_BOUND);
                out.push(next);
            }
            pc::CHECK_BOUND => {
                let mut next = state.clone();
                if max >= self.bound {
                    next.set_pc(pid, pc::RESET_NUMBER);
                } else {
                    next.set_pc(pid, pc::WRITE_TICKET);
                }
                out.push(next);
            }
            pc::RESET_NUMBER => {
                let mut next = self.store(state, pid, number_idx(n, pid), 0);
                next.set_pc(pid, pc::RESET_CHOOSING);
                out.push(next);
            }
            pc::RESET_CHOOSING => {
                let mut next = self.store(state, pid, choosing_idx(pid), 0);
                next.set_local(pid, LOCAL_J, 0);
                next.set_pc(pid, pc::L1_SCAN);
                out.push(next);
            }
            pc::WRITE_TICKET => {
                // number[i] := max + 1, guarded by max < M so the store is <= M.
                debug_assert!(max < self.bound);
                let mut next = self.store(state, pid, number_idx(n, pid), max + 1);
                next.set_pc(pid, pc::CLEAR_CHOOSING);
                out.push(next);
            }
            pc::CLEAR_CHOOSING => {
                let mut next = self.store(state, pid, choosing_idx(pid), 0);
                next.set_local(pid, LOCAL_J, 0);
                next.set_pc(pid, pc::SCAN_CHOOSING);
                out.push(next);
            }
            pc::SCAN_CHOOSING => {
                if j == pid {
                    let mut next = state.clone();
                    next.set_local(pid, LOCAL_J, (j + 1) as u64);
                    out.push(next);
                } else if j >= n {
                    let mut next = state.clone();
                    next.set_pc(pid, pc::CS);
                    out.push(next);
                } else if choosing_may_read_zero(state, j) {
                    let mut next = state.clone();
                    next.set_pc(pid, pc::SCAN_NUMBER);
                    out.push(next);
                }
            }
            pc::SCAN_NUMBER => {
                // Outcome dedup: every passing read value yields the same
                // successor, so one push suffices.
                let my_number = state.read(number_idx(n, pid));
                let passes = read_number(state, n, j, self.bound)
                    .into_iter()
                    .any(|other| other == 0 || !ticket_precedes(other, j, my_number, pid));
                if passes {
                    let mut next = state.clone();
                    next.set_local(pid, LOCAL_J, (j + 1) as u64);
                    next.set_pc(pid, pc::SCAN_CHOOSING);
                    out.push(next);
                }
            }
            pc::CS => {
                let mut next = self.store(state, pid, number_idx(n, pid), 0);
                next.set_pc(pid, pc::NCS);
                out.push(next);
            }
            _ => {}
        }
    }

    fn in_critical_section(&self, state: &ProgState, pid: usize) -> bool {
        state.pc(pid) == pc::CS
    }

    fn is_trying(&self, state: &ProgState, pid: usize) -> bool {
        let p = state.pc(pid);
        p != pc::NCS && p != pc::CS
    }

    fn crash(&self, state: &ProgState, pid: usize) -> Option<ProgState> {
        if state.pc(pid) == pc::NCS
            && state.read(choosing_idx(pid)) == 0
            && state.read(number_idx(self.n, pid)) == 0
            && state.write_in_progress_by(pid).is_none()
        {
            return None;
        }
        let mut next = state.clone();
        // A crash mid-write aborts the write (pending value dropped).
        next.abort_writes(pid);
        next.set_shared(choosing_idx(pid), 0);
        next.set_shared(number_idx(self.n, pid), 0);
        next.set_local(pid, LOCAL_J, 0);
        next.set_local(pid, LOCAL_MAX, 0);
        next.set_pc(pid, pc::NCS);
        Some(next)
    }

    fn pc_label(&self, pc_value: u32) -> &'static str {
        pc::label(pc_value)
    }

    fn state_bounds(&self) -> StateBounds {
        // Bakery++ never stores above M (even flicker reads cap at the
        // bound), so the folded maximum is at most M; the loop index is at
        // most n.
        StateBounds::new(pc::CS, vec![self.n as u64, self.bound])
    }

    fn register_semantics(&self) -> RegisterSemantics {
        self.semantics
    }

    fn symmetry(&self) -> Option<SymmetryGroup> {
        flat_symmetry(self.n)
    }

    fn observe(&self, prev: &ProgState, next: &ProgState, pid: usize) -> Option<Observation> {
        let (before, after) = (prev.pc(pid), next.pc(pid));
        if before == pc::WRITE_TICKET && after == pc::CLEAR_CHOOSING {
            return Some(Observation::TicketTaken {
                pid,
                // The pending value under safe semantics (this transition is
                // the write's begin step), the committed value otherwise.
                number: next.last_stored(number_idx(self.n, pid)),
            });
        }
        if before == pc::RESET_CHOOSING && after == pc::L1_SCAN {
            return Some(Observation::OverflowAvoided { pid });
        }
        if before != pc::CS && after == pc::CS {
            return Some(Observation::EnterCs { pid });
        }
        if before == pc::CS && after == pc::NCS {
            return Some(Observation::ExitCs { pid });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bakery_sim::{RandomScheduler, RoundRobinScheduler, RunConfig, Simulator};

    #[test]
    fn single_process_cycles_cleanly() {
        let spec = BakeryPlusPlusSpec::new(1, 4);
        let config = RunConfig::<BakeryPlusPlusSpec>::checked(300);
        let outcome = Simulator::new().run(&spec, &mut RoundRobinScheduler::new(), &config);
        assert!(outcome.report.is_clean(), "{:?}", outcome.report.violations);
        assert!(outcome.report.total_cs_entries() >= 20);
        assert!(outcome.report.max_register_value <= 4);
    }

    #[test]
    fn never_overflows_even_with_tiny_bound() {
        // The headline claim (§6.1): with M = 2 and heavy interleaving the
        // NoOverflow invariant holds on every sampled schedule.
        let spec = BakeryPlusPlusSpec::new(3, 2);
        for seed in 0..30 {
            let config = RunConfig::<BakeryPlusPlusSpec>::checked(5_000);
            let outcome = Simulator::new().run(&spec, &mut RandomScheduler::new(seed), &config);
            assert!(
                !outcome
                    .report
                    .violations
                    .iter()
                    .any(|v| v.invariant == "NoOverflow"),
                "seed {seed}: Bakery++ must never overflow"
            );
            assert!(outcome.report.max_register_value <= 2, "seed {seed}");
        }
    }

    #[test]
    fn mutual_exclusion_holds_under_random_schedules() {
        let spec = BakeryPlusPlusSpec::new(2, 5);
        for seed in 0..20 {
            let config = RunConfig::<BakeryPlusPlusSpec>::checked(3_000);
            let outcome = Simulator::new().run(&spec, &mut RandomScheduler::new(seed), &config);
            assert!(
                !outcome
                    .report
                    .violations
                    .iter()
                    .any(|v| v.invariant == "MutualExclusion"),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn flicker_reads_preserve_both_invariants() {
        let spec = BakeryPlusPlusSpec::new(2, 4).with_semantics(RegisterSemantics::Safe);
        for seed in 0..10 {
            let config = RunConfig::<BakeryPlusPlusSpec>::checked(3_000);
            let outcome = Simulator::new().run(&spec, &mut RandomScheduler::new(seed), &config);
            assert!(
                outcome.report.violations.is_empty(),
                "seed {seed}: {:?}",
                outcome.report.violations
            );
        }
    }

    #[test]
    fn reset_branch_is_reachable_under_contention() {
        // With a tiny bound the overflow-avoidance path must actually fire —
        // otherwise the spec would not be exercising the paper's new code.
        let spec = BakeryPlusPlusSpec::new(3, 2);
        let mut saw_reset = false;
        for seed in 0..30 {
            let config = RunConfig::<BakeryPlusPlusSpec>::checked(5_000);
            let outcome = Simulator::new().run(&spec, &mut RandomScheduler::new(seed), &config);
            if outcome.report.overflow_avoidance_resets > 0 {
                saw_reset = true;
                break;
            }
        }
        assert!(saw_reset, "the reset branch should fire for M = 2");
    }

    #[test]
    fn progress_is_comparable_to_classic_bakery_for_large_bounds() {
        // §7: when no overflow machinery triggers, Bakery++ should take about
        // as many steps per CS entry as Bakery (it executes a handful more
        // local steps for the L1 scan).
        use crate::BakerySpec;
        let steps = 20_000;
        let classic = {
            let spec = BakerySpec::new(2, 1_000_000);
            let config = RunConfig::<BakerySpec>::checked(steps);
            Simulator::new()
                .run(&spec, &mut RandomScheduler::new(3), &config)
                .report
                .total_cs_entries()
        };
        let pp = {
            let spec = BakeryPlusPlusSpec::new(2, 1_000_000);
            let config = RunConfig::<BakeryPlusPlusSpec>::checked(steps);
            Simulator::new()
                .run(&spec, &mut RandomScheduler::new(3), &config)
                .report
                .total_cs_entries()
        };
        assert!(pp > 0 && classic > 0);
        let ratio = classic as f64 / pp as f64;
        assert!(
            (0.5..=2.5).contains(&ratio),
            "throughput ratio {ratio} out of expected band (classic {classic}, pp {pp})"
        );
    }

    #[test]
    fn crash_resets_registers_and_restarts() {
        let spec = BakeryPlusPlusSpec::new(2, 3);
        let s0 = spec.initial_state();
        let mut s = s0.clone();
        // Drive process 0 to the point where it holds a ticket.
        for _ in 0..40 {
            let succ = spec.successors_vec(&s, 0);
            if succ.is_empty() || spec.in_critical_section(&s, 0) {
                break;
            }
            s = succ[0].clone();
        }
        assert!(spec.in_critical_section(&s, 0));
        let crashed = spec.crash(&s, 0).expect("crash");
        assert_eq!(crashed.read(number_idx(2, 0)), 0);
        assert_eq!(crashed.pc(0), pc::NCS);
        assert!(spec.crash(&s0, 0).is_none());
    }

    #[test]
    fn observations_report_resets_and_tickets() {
        let spec = BakeryPlusPlusSpec::new(2, 2);
        let config = RunConfig::<BakeryPlusPlusSpec>::checked(5_000);
        let outcome = Simulator::new().run(&spec, &mut RandomScheduler::new(11), &config);
        let tickets = outcome.trace.ticket_order();
        assert!(!tickets.is_empty());
        assert!(tickets.iter().all(|&(_, number)| number <= 2));
        assert_eq!(
            outcome.report.overflow_attempts, 0,
            "Bakery++ never emits an Overflowed observation"
        );
    }

    #[test]
    fn bound_accessor_and_labels() {
        let spec = BakeryPlusPlusSpec::new(2, 9);
        assert_eq!(spec.bound(), 9);
        assert_eq!(spec.pc_label(pc::L1_SCAN), "L1-scan");
        assert_eq!(spec.registers().len(), 4);
    }
}
