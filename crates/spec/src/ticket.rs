//! Step-machine specification of the fetch-and-add ticket lock.
//!
//! The RMW instruction is modelled as a single atomic step (read the
//! dispenser, store the incremented value) — which is precisely the
//! lower-level mutual exclusion the paper says disqualifies such algorithms as
//! "true" solutions.  The dispenser and the service counter are bounded like
//! every other register, so this specification also shows that a counter-based
//! lock inherits the unbounded-growth problem of the classic Bakery: with a
//! small bound the NoOverflow invariant is violated quickly.

use bakery_sim::{Algorithm, Observation, ProcState, ProgState, RegisterSpec};

/// Shared register indices.
const NEXT: usize = 0;
const SERVING: usize = 1;

/// Local slots.
const LOCAL_TICKET: usize = 0;

/// Program counters.
mod pc {
    pub const NCS: u32 = 0;
    pub const DRAW: u32 = 1;
    pub const WAIT: u32 = 2;
    pub const CS: u32 = 3;
}

/// The ticket lock as a checkable specification with bounded counters.
#[derive(Debug, Clone)]
pub struct TicketSpec {
    n: usize,
    bound: u64,
}

impl TicketSpec {
    /// Creates a ticket-lock spec for `n` processes with counter bound `bound`.
    #[must_use]
    pub fn new(n: usize, bound: u64) -> Self {
        assert!(n >= 1, "need at least one process");
        assert!(bound >= 1, "the counter bound must be at least 1");
        Self { n, bound }
    }

    /// The counter bound.
    #[must_use]
    pub fn bound(&self) -> u64 {
        self.bound
    }

    fn store_value(&self, attempted: u64) -> u64 {
        attempted.min(self.bound + 1)
    }
}

impl Algorithm for TicketSpec {
    fn name(&self) -> &str {
        "ticket-lock"
    }

    fn processes(&self) -> usize {
        self.n
    }

    fn registers(&self) -> Vec<RegisterSpec> {
        vec![
            RegisterSpec::shared("next", self.bound),
            RegisterSpec::shared("serving", self.bound),
        ]
    }

    fn initial_state(&self) -> ProgState {
        ProgState::new(
            2,
            (0..self.n)
                .map(|_| ProcState::new(pc::NCS, vec![0]))
                .collect(),
        )
    }

    fn successors(&self, state: &ProgState, pid: usize, out: &mut Vec<ProgState>) {
        if state.is_crashed(pid) {
            return;
        }
        match state.pc(pid) {
            pc::NCS => out.push(state.with_pc(pid, pc::DRAW)),
            pc::DRAW => {
                // Atomic fetch-and-add: one step reads and writes the dispenser.
                let ticket = state.read(NEXT);
                let mut next = state.with_pc_and_local(pid, pc::WAIT, LOCAL_TICKET, ticket);
                next.set_shared(NEXT, self.store_value(ticket + 1));
                out.push(next);
            }
            pc::WAIT if state.read(SERVING) == state.local(pid, LOCAL_TICKET) => {
                out.push(state.with_pc(pid, pc::CS));
            }
            pc::WAIT => {}
            pc::CS => {
                let serving = state.read(SERVING);
                let mut next = state.with_pc(pid, pc::NCS);
                next.set_shared(SERVING, self.store_value(serving + 1));
                out.push(next);
            }
            _ => {}
        }
    }

    fn in_critical_section(&self, state: &ProgState, pid: usize) -> bool {
        state.pc(pid) == pc::CS
    }

    fn is_trying(&self, state: &ProgState, pid: usize) -> bool {
        let p = state.pc(pid);
        p == pc::DRAW || p == pc::WAIT
    }

    fn pc_label(&self, pc_value: u32) -> &'static str {
        match pc_value {
            pc::NCS => "ncs",
            pc::DRAW => "draw-ticket",
            pc::WAIT => "wait-serving",
            pc::CS => "critical-section",
            _ => "?",
        }
    }

    fn observe(&self, prev: &ProgState, next: &ProgState, pid: usize) -> Option<Observation> {
        match (prev.pc(pid), next.pc(pid)) {
            (pc::DRAW, pc::WAIT) => {
                let number = next.local(pid, LOCAL_TICKET);
                if next.read(NEXT) > self.bound {
                    Some(Observation::Overflowed {
                        pid,
                        attempted: prev.read(NEXT) + 1,
                    })
                } else {
                    Some(Observation::TicketTaken { pid, number })
                }
            }
            (pc::WAIT, pc::CS) => Some(Observation::EnterCs { pid }),
            (pc::CS, pc::NCS) => Some(Observation::ExitCs { pid }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bakery_sim::{RandomScheduler, RoundRobinScheduler, RunConfig, Simulator};

    #[test]
    fn single_process_progress_and_overflow() {
        let spec = TicketSpec::new(1, 5);
        let config = RunConfig::<TicketSpec>::checked(200);
        let outcome = Simulator::new().run(&spec, &mut RoundRobinScheduler::new(), &config);
        // The dispenser grows without bound, so a violation is inevitable.
        assert!(outcome
            .report
            .violations
            .iter()
            .any(|v| v.invariant == "NoOverflow"));
    }

    #[test]
    fn mutual_exclusion_holds_before_overflow() {
        let spec = TicketSpec::new(3, 1_000_000);
        for seed in 0..10 {
            let config = RunConfig::<TicketSpec>::checked(2_000);
            let outcome = Simulator::new().run(&spec, &mut RandomScheduler::new(seed), &config);
            assert!(
                !outcome
                    .report
                    .violations
                    .iter()
                    .any(|v| v.invariant == "MutualExclusion"),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn service_is_fifo() {
        let spec = TicketSpec::new(3, 1_000_000);
        let config = RunConfig::<TicketSpec>::checked(3_000);
        let outcome = Simulator::new().run(&spec, &mut RandomScheduler::new(5), &config);
        assert_eq!(
            bakery_sim::trace::refinement::count_fifo_inversions(&outcome.trace),
            0,
            "the ticket lock serves in arrival order"
        );
    }

    #[test]
    fn metadata_and_labels() {
        let spec = TicketSpec::new(2, 7);
        assert_eq!(spec.bound(), 7);
        assert_eq!(spec.processes(), 2);
        assert_eq!(spec.registers().len(), 2);
        assert_eq!(spec.pc_label(1), "draw-ticket");
        let s = spec.initial_state();
        assert!(!spec.is_trying(&s, 0));
        assert!(spec.crash(&s, 0).is_none(), "no crash model for RMW locks");
    }
}
