//! Step-machine specification of the adaptive flat→tree **handoff**.
//!
//! `bakery-core::adaptive::AdaptiveBakery` routes acquisitions to a flat
//! Bakery++ until a threshold fires, then performs a quiescent handoff to a
//! tree: trigger `epoch: FLAT → DRAIN`, wait for `flat_active == 0`, flip
//! `DRAIN → TREE`.  Mutual exclusion of the composite rests on exactly one
//! claim: *a flat acquisition can never overlap a tree acquisition across the
//! migration*.  This module models precisely that claim.
//!
//! ## Abstraction
//!
//! The two inner locks are **verified black boxes** (flat Bakery++ by E2 and
//! the conformance plane; the tree composition by the PR 3 close-out), so the
//! spec abstracts each to a single holder register acquired in one guarded
//! atomic step — the same granularity the ticket spec uses for its
//! fetch-and-add, and justified the same way: the real operation *is* an
//! already-verified mutual-exclusion primitive (or, for `epoch`/`active`, a
//! hardware CAS/fetch-add).  What remains concrete, one shared access per
//! step, is the handoff handshake itself:
//!
//! * the acquirer's Dekker half — `active += 1`, then re-read `epoch`,
//!   aborting the flat route if it moved;
//! * the drainer's Dekker half — `epoch := DRAIN`, then read `active`,
//!   flipping to `TREE` only on zero;
//! * the migration trigger, modelled as a nondeterministic step any idle
//!   process may take at any time, so exhaustive exploration covers a
//!   threshold firing at *every* reachable point.
//!
//! The paper-style invariants close the argument: `MutualExclusion` over the
//! two critical sections (one process in the flat CS and one in the tree CS
//! is a violation of the same invariant), plus the adaptive-specific
//! [`AdaptiveHandoffSpec::drained_invariant`]: once `epoch == TREE`, the
//! flat holder register is zero and stays zero.

use bakery_sim::{Algorithm, Invariant, Observation, ProcState, ProgState, RegisterSpec, StateBounds};

/// Shared register indices.
const EPOCH: usize = 0;
const ACTIVE: usize = 1;
const FLAT: usize = 2;
const TREE: usize = 3;

/// `epoch` values, mirroring `bakery-core::adaptive`.
const FLAT_EPOCH: u64 = 0;
const DRAIN_EPOCH: u64 = 1;
const TREE_EPOCH: u64 = 2;

/// Program counters.
mod pc {
    pub const NCS: u32 = 0;
    /// Read `epoch` and branch on the route.
    pub const READ_EPOCH: u32 = 1;
    /// Announce the flat route: `active += 1`.
    pub const INC_ACTIVE: u32 = 2;
    /// Dekker re-check: re-read `epoch`; abort the flat route if it moved.
    pub const RECHECK: u32 = 3;
    /// Acquire the (abstracted) flat plane: guarded `flat := pid + 1`.
    pub const FLAT_ACQ: u32 = 4;
    /// Critical section, entered through the flat plane.
    pub const CS_FLAT: u32 = 5;
    /// Release the flat plane: `flat := 0`.
    pub const FLAT_REL: u32 = 6;
    /// Withdraw the announcement after a release: `active -= 1`.
    pub const DEC_ACTIVE: u32 = 7;
    /// Withdraw the announcement after a lost re-check: `active -= 1`.
    pub const ABORT_DEC: u32 = 8;
    /// Drain helper: wait for `active == 0`.
    pub const HELP_CHECK: u32 = 9;
    /// Drain helper: flip `epoch: DRAIN → TREE` (CAS; no-op if already flipped).
    pub const HELP_FLIP: u32 = 10;
    /// Acquire the (abstracted) tree plane: guarded `tree := pid + 1`.
    pub const TREE_ACQ: u32 = 11;
    /// Critical section, entered through the tree plane.
    pub const CS_TREE: u32 = 12;
    /// Release the tree plane: `tree := 0`.
    pub const TREE_REL: u32 = 13;
}

/// The adaptive handoff handshake as a checkable specification.
#[derive(Debug, Clone)]
pub struct AdaptiveHandoffSpec {
    n: usize,
}

impl AdaptiveHandoffSpec {
    /// Creates a handoff spec for `n` processes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "need at least one process");
        Self { n }
    }

    /// The adaptive-specific safety invariant: once the epoch reads `TREE`,
    /// the flat plane is and remains quiescent (`flat == 0` — nobody is in,
    /// or can ever re-enter, the flat critical section).
    #[must_use]
    pub fn drained_invariant() -> Invariant<Self> {
        Invariant::new("FlatDrainedBeforeTree", |_, state: &ProgState| {
            state.read(EPOCH) != TREE_EPOCH || state.read(FLAT) == 0
        })
    }

    /// The announcement-count invariant the drain condition relies on:
    /// `active` equals the number of processes currently holding a flat-route
    /// announcement (between their `INC_ACTIVE` and their decrement).
    #[must_use]
    pub fn active_count_invariant() -> Invariant<Self> {
        Invariant::new("ActiveCountsAnnouncements", |alg: &Self, state: &ProgState| {
            let announced = (0..alg.n)
                .filter(|&p| {
                    matches!(
                        state.pc(p),
                        pc::RECHECK
                            | pc::FLAT_ACQ
                            | pc::CS_FLAT
                            | pc::FLAT_REL
                            | pc::DEC_ACTIVE
                            | pc::ABORT_DEC
                    )
                })
                .count() as u64;
            state.read(ACTIVE) == announced
        })
    }
}

impl Algorithm for AdaptiveHandoffSpec {
    fn name(&self) -> &str {
        "adaptive-handoff"
    }

    fn processes(&self) -> usize {
        self.n
    }

    fn registers(&self) -> Vec<RegisterSpec> {
        let n = self.n as u64;
        vec![
            RegisterSpec::shared("epoch", TREE_EPOCH),
            RegisterSpec::shared("active", n),
            RegisterSpec::shared("flat", n),
            RegisterSpec::shared("tree", n),
        ]
    }

    fn initial_state(&self) -> ProgState {
        ProgState::new(
            4,
            (0..self.n)
                .map(|_| ProcState::new(pc::NCS, vec![]))
                .collect(),
        )
    }

    fn successors(&self, state: &ProgState, pid: usize, out: &mut Vec<ProgState>) {
        if state.is_crashed(pid) {
            return;
        }
        match state.pc(pid) {
            pc::NCS => {
                // Start an acquisition…
                out.push(state.with_pc(pid, pc::READ_EPOCH));
                // …or fire the migration trigger (threshold crossing modelled
                // as a nondeterministic choice available at any time).
                if state.read(EPOCH) == FLAT_EPOCH {
                    let mut next = state.clone();
                    next.set_shared(EPOCH, DRAIN_EPOCH);
                    out.push(next);
                }
            }
            pc::READ_EPOCH => {
                let route = match state.read(EPOCH) {
                    FLAT_EPOCH => pc::INC_ACTIVE,
                    DRAIN_EPOCH => pc::HELP_CHECK,
                    _ => pc::TREE_ACQ,
                };
                out.push(state.with_pc(pid, route));
            }
            pc::INC_ACTIVE => {
                let mut next = state.with_pc(pid, pc::RECHECK);
                next.set_shared(ACTIVE, state.read(ACTIVE) + 1);
                out.push(next);
            }
            pc::RECHECK => {
                let target = if state.read(EPOCH) == FLAT_EPOCH {
                    pc::FLAT_ACQ
                } else {
                    pc::ABORT_DEC
                };
                out.push(state.with_pc(pid, target));
            }
            pc::FLAT_ACQ if state.read(FLAT) == 0 => {
                let mut next = state.with_pc(pid, pc::CS_FLAT);
                next.set_shared(FLAT, pid as u64 + 1);
                out.push(next);
            }
            pc::FLAT_ACQ => {}
            pc::CS_FLAT => out.push(state.with_pc(pid, pc::FLAT_REL)),
            pc::FLAT_REL => {
                let mut next = state.with_pc(pid, pc::DEC_ACTIVE);
                next.set_shared(FLAT, 0);
                out.push(next);
            }
            pc::DEC_ACTIVE | pc::ABORT_DEC => {
                let target = if state.pc(pid) == pc::DEC_ACTIVE {
                    pc::NCS
                } else {
                    pc::READ_EPOCH
                };
                let mut next = state.with_pc(pid, target);
                next.set_shared(ACTIVE, state.read(ACTIVE) - 1);
                out.push(next);
            }
            pc::HELP_CHECK if state.read(ACTIVE) == 0 => {
                out.push(state.with_pc(pid, pc::HELP_FLIP));
            }
            pc::HELP_CHECK => {}
            pc::HELP_FLIP => {
                // CAS DRAIN -> TREE; a parallel helper may have won already.
                let mut next = state.with_pc(pid, pc::READ_EPOCH);
                if state.read(EPOCH) == DRAIN_EPOCH {
                    next.set_shared(EPOCH, TREE_EPOCH);
                }
                out.push(next);
            }
            pc::TREE_ACQ if state.read(TREE) == 0 => {
                let mut next = state.with_pc(pid, pc::CS_TREE);
                next.set_shared(TREE, pid as u64 + 1);
                out.push(next);
            }
            pc::TREE_ACQ => {}
            pc::CS_TREE => out.push(state.with_pc(pid, pc::TREE_REL)),
            pc::TREE_REL => {
                let mut next = state.with_pc(pid, pc::NCS);
                next.set_shared(TREE, 0);
                out.push(next);
            }
            _ => {}
        }
    }

    fn in_critical_section(&self, state: &ProgState, pid: usize) -> bool {
        matches!(state.pc(pid), pc::CS_FLAT | pc::CS_TREE)
    }

    fn is_trying(&self, state: &ProgState, pid: usize) -> bool {
        matches!(
            state.pc(pid),
            pc::READ_EPOCH
                | pc::INC_ACTIVE
                | pc::RECHECK
                | pc::FLAT_ACQ
                | pc::ABORT_DEC
                | pc::HELP_CHECK
                | pc::HELP_FLIP
                | pc::TREE_ACQ
        )
    }

    fn pc_label(&self, pc_value: u32) -> &'static str {
        match pc_value {
            pc::NCS => "ncs",
            pc::READ_EPOCH => "read-epoch",
            pc::INC_ACTIVE => "inc-active",
            pc::RECHECK => "recheck-epoch",
            pc::FLAT_ACQ => "flat-acquire",
            pc::CS_FLAT => "cs-flat",
            pc::FLAT_REL => "flat-release",
            pc::DEC_ACTIVE => "dec-active",
            pc::ABORT_DEC => "abort-dec-active",
            pc::HELP_CHECK => "help-check-active",
            pc::HELP_FLIP => "help-flip-epoch",
            pc::TREE_ACQ => "tree-acquire",
            pc::CS_TREE => "cs-tree",
            pc::TREE_REL => "tree-release",
            _ => "?",
        }
    }

    fn observe(&self, prev: &ProgState, next: &ProgState, pid: usize) -> Option<Observation> {
        let entered = !self.in_critical_section(prev, pid) && self.in_critical_section(next, pid);
        let exited = self.in_critical_section(prev, pid) && !self.in_critical_section(next, pid);
        if entered {
            Some(Observation::EnterCs { pid })
        } else if exited {
            Some(Observation::ExitCs { pid })
        } else {
            None
        }
    }

    fn state_bounds(&self) -> StateBounds {
        StateBounds::new(pc::TREE_REL, Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bakery_sim::{RandomScheduler, RoundRobinScheduler, RunConfig, Simulator};

    #[test]
    fn single_process_migrates_and_keeps_entering() {
        let spec = AdaptiveHandoffSpec::new(1);
        let mut state = spec.initial_state();
        // Fire the trigger (second NCS successor), then walk the process
        // through drain-help and a tree entry.
        let succs = spec.successors_vec(&state, 0);
        assert_eq!(succs.len(), 2, "acquire or trigger");
        state = succs.into_iter().nth(1).unwrap();
        assert_eq!(state.read(EPOCH), DRAIN_EPOCH);
        let mut budget = 20;
        while !spec.in_critical_section(&state, 0) {
            let succs = spec.successors_vec(&state, 0);
            assert!(!succs.is_empty(), "lone process can never block");
            state = succs.into_iter().next().unwrap();
            budget -= 1;
            assert!(budget > 0);
        }
        assert_eq!(state.pc(0), pc::CS_TREE, "post-drain entry routes to the tree");
        assert_eq!(state.read(EPOCH), TREE_EPOCH);
        assert_eq!(state.read(TREE), 1);
    }

    #[test]
    fn flat_route_without_trigger() {
        let spec = AdaptiveHandoffSpec::new(2);
        let mut state = spec.initial_state();
        // NCS -> READ_EPOCH -> INC_ACTIVE -> RECHECK -> FLAT_ACQ -> CS_FLAT,
        // always taking the first successor (the acquire path, no trigger).
        for _ in 0..5 {
            state = spec.successors_vec(&state, 0).into_iter().next().unwrap();
        }
        assert_eq!(state.pc(0), pc::CS_FLAT);
        assert_eq!(state.read(FLAT), 1);
        assert_eq!(state.read(ACTIVE), 1);
        assert_eq!(state.read(EPOCH), FLAT_EPOCH);
    }

    #[test]
    fn invariants_hold_under_seeded_schedules() {
        let spec = AdaptiveHandoffSpec::new(3);
        for seed in 0..10 {
            let config = RunConfig::<AdaptiveHandoffSpec>::checked(4_000)
                .with_invariant(AdaptiveHandoffSpec::drained_invariant())
                .with_invariant(AdaptiveHandoffSpec::active_count_invariant());
            let outcome = Simulator::new().run(&spec, &mut RandomScheduler::new(seed), &config);
            assert!(
                outcome.report.violations.is_empty(),
                "seed {seed}: {:?}",
                outcome.report.violations
            );
            assert!(!outcome.report.deadlocked, "seed {seed}");
        }
    }

    #[test]
    fn round_robin_completes_critical_sections() {
        let spec = AdaptiveHandoffSpec::new(2);
        let config = RunConfig::<AdaptiveHandoffSpec>::checked(2_000);
        let outcome = Simulator::new().run(&spec, &mut RoundRobinScheduler::new(), &config);
        assert!(outcome.report.violations.is_empty());
        let total: u64 = outcome.report.cs_entries.iter().sum();
        assert!(total > 0, "processes make progress");
    }

    #[test]
    fn metadata_and_labels() {
        let spec = AdaptiveHandoffSpec::new(2);
        assert_eq!(spec.processes(), 2);
        assert_eq!(spec.registers().len(), 4);
        assert_eq!(spec.pc_label(pc::HELP_FLIP), "help-flip-epoch");
        assert_eq!(spec.pc_label(99), "?");
        let s = spec.initial_state();
        assert!(!spec.is_trying(&s, 0));
        assert!(!spec.in_critical_section(&s, 0));
        assert!(spec.crash(&s, 0).is_none(), "the handoff spec models no crashes");
        assert_eq!(spec.state_bounds().max_pc, pc::TREE_REL);
    }
}
