//! Step-machine specification of the adaptive flat⇄tree **handoff cycle**.
//!
//! `bakery-core::adaptive::AdaptiveBakery` routes acquisitions to a flat
//! Bakery++ until a threshold fires, performs a quiescent handoff to a tree,
//! and — once the tree has been quiet for a full hysteresis period — drains
//! the tree and hands back to flat.  The epoch is one generation-tagged word
//! `(cycle << 2) | phase` walking
//!
//! ```text
//!   FLAT ──trigger──► DRAIN_FLAT ──flip──► TREE ──trigger──► DRAIN_TREE
//!    ▲                                                            │
//!    └───────────────────────────flip────────────────────────────┘
//! ```
//!
//! with every transition a `word → word + 1` CAS, so the word is strictly
//! monotone even though the phase revisits `FLAT`.  Mutual exclusion of the
//! composite rests on exactly one claim: *a flat acquisition can never
//! overlap a tree acquisition, in either migration direction*.  This module
//! models precisely that claim, round trip included.
//!
//! ## Abstraction
//!
//! The two inner locks are **verified black boxes** (flat Bakery++ by E2 and
//! the conformance plane; the tree composition by the PR 3 close-out), so the
//! spec abstracts each to a single holder register acquired in one guarded
//! atomic step — the same granularity the ticket spec uses for its
//! fetch-and-add, and justified the same way: the real operation *is* an
//! already-verified mutual-exclusion primitive (or, for `epoch`/the active
//! counters, a hardware CAS/fetch-add).  What remains concrete, one shared
//! access per step, is the handoff handshake itself:
//!
//! * the acquirer's Dekker half — bump the route's active counter, then
//!   re-read `epoch` and compare the **full word** (phase *and* cycle, the
//!   per-cycle ABA guard) against the word it routed on, aborting if it
//!   moved;
//! * the drainer's Dekker half — advance `epoch` into a drain phase, then
//!   read the draining route's counter, flipping onward only on zero;
//! * both migration triggers, modelled as nondeterministic steps any idle
//!   process may take, so exhaustive exploration covers a threshold firing
//!   at *every* reachable point.  The trigger budget is bounded by the
//!   epoch-word cap ([`MAX_EPOCH_WORD`]) purely to keep the state space
//!   finite: the explored prefix covers a full round trip **plus** a second
//!   forward leg, so re-entering a phase is checked, not assumed.
//!
//! The hysteresis band itself (quiet streaks, watermarks) is a liveness
//! concern and does not participate in the safety argument — the spec is
//! *sound for any trigger timing* because the triggers fire
//! nondeterministically.  One bit of it is modelled: the reverse trigger
//! must be **armed** by a separate quiet-period step, and arming must never
//! survive out of the `TREE` phase — the [`AdaptiveHandoffSpec::no_flap_invariant`]
//! pins the staleness rule the real lock implements by zeroing its quiet
//! streak at every forward flip.
//!
//! The paper-style invariants close the argument: `MutualExclusion` over the
//! two critical sections (one process in the flat CS and one in the tree CS
//! is a violation of the same invariant), plus the adaptive-specific pair
//! [`AdaptiveHandoffSpec::drained_invariant`] (flat quiescent throughout
//! `TREE`/`DRAIN_TREE`) and [`AdaptiveHandoffSpec::tree_drained_invariant`]
//! (tree quiescent throughout `FLAT`/`DRAIN_FLAT`).

use bakery_sim::{Algorithm, Invariant, Observation, ProcState, ProgState, RegisterSpec, StateBounds};

/// Shared register indices (public so the close-out tests can probe them).
pub mod reg {
    /// The generation-tagged epoch word `(cycle << 2) | phase`.
    pub const EPOCH: usize = 0;
    /// Announce counter of the flat route (`flat_active`).
    pub const ACTIVE: usize = 1;
    /// Announce counter of the tree route (`tree_active`).
    pub const TACTIVE: usize = 2;
    /// Holder register of the abstracted flat plane (0 = free, pid + 1).
    pub const FLAT: usize = 3;
    /// Holder register of the abstracted tree plane (0 = free, pid + 1).
    pub const TREE: usize = 4;
    /// The hysteresis arming bit of the reverse trigger.
    pub const ARMED: usize = 5;
}

/// Epoch phase values, mirroring `bakery-core::adaptive`.
const FLAT_PHASE: u64 = 0;
const DRAIN_FLAT_PHASE: u64 = 1;
const TREE_PHASE: u64 = 2;
const DRAIN_TREE_PHASE: u64 = 3;

/// The phase component of an epoch word.
#[inline]
fn phase(word: u64) -> u64 {
    word & 3
}

/// The largest epoch word the spec explores: three triggers (forward,
/// reverse, forward again) and their three flips — a full round trip plus a
/// second forward leg, ending in `TREE` of cycle 1.  Bounding the word keeps
/// the state space finite; every state reachable under unbounded cycling is
/// a cycle-tag relabelling of a state inside this prefix.
pub const MAX_EPOCH_WORD: u64 = 6;

/// Program counters.
mod pc {
    pub const NCS: u32 = 0;
    /// Read `epoch` (remembering the full word) and branch on the route.
    pub const READ_EPOCH: u32 = 1;
    /// Announce the flat route: `active += 1`.
    pub const INC_ACTIVE: u32 = 2;
    /// Dekker re-check: re-read `epoch`; abort the flat route if the *word*
    /// (phase or cycle) moved.
    pub const RECHECK: u32 = 3;
    /// Acquire the (abstracted) flat plane: guarded `flat := pid + 1`.
    pub const FLAT_ACQ: u32 = 4;
    /// Critical section, entered through the flat plane.
    pub const CS_FLAT: u32 = 5;
    /// Release the flat plane: `flat := 0`.
    pub const FLAT_REL: u32 = 6;
    /// Withdraw the announcement after a release: `active -= 1`.
    pub const DEC_ACTIVE: u32 = 7;
    /// Withdraw the announcement after a lost re-check: `active -= 1`.
    pub const ABORT_DEC: u32 = 8;
    /// Drain helper: wait for the draining route's counter to reach 0.
    pub const HELP_CHECK: u32 = 9;
    /// Drain helper: advance `epoch` (CAS; no-op if a helper won already).
    pub const HELP_FLIP: u32 = 10;
    /// Announce the tree route: `tactive += 1`.
    pub const INC_TACTIVE: u32 = 11;
    /// Dekker re-check of the tree route (full-word comparison).
    pub const TRECHECK: u32 = 12;
    /// Acquire the (abstracted) tree plane: guarded `tree := pid + 1`.
    pub const TREE_ACQ: u32 = 13;
    /// Critical section, entered through the tree plane.
    pub const CS_TREE: u32 = 14;
    /// Release the tree plane: `tree := 0`.
    pub const TREE_REL: u32 = 15;
    /// Withdraw the tree announcement after a release: `tactive -= 1`.
    pub const TDEC_ACTIVE: u32 = 16;
    /// Withdraw the tree announcement after a lost re-check: `tactive -= 1`.
    pub const TABORT_DEC: u32 = 17;
}

/// Local-variable slots.
const SEEN: usize = 0;

/// The adaptive handoff cycle as a checkable specification.
#[derive(Debug, Clone)]
pub struct AdaptiveHandoffSpec {
    n: usize,
}

impl AdaptiveHandoffSpec {
    /// Creates a handoff spec for `n` processes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "need at least one process");
        Self { n }
    }

    /// The forward-drain safety invariant: throughout the `TREE` and
    /// `DRAIN_TREE` phases the flat plane is and remains quiescent
    /// (`flat == 0` — nobody is in, or can re-enter, the flat critical
    /// section until the cycle returns to `FLAT`).
    #[must_use]
    pub fn drained_invariant() -> Invariant<Self> {
        Invariant::new("FlatDrainedBeforeTree", |_, state: &ProgState| {
            !matches!(phase(state.read(reg::EPOCH)), TREE_PHASE | DRAIN_TREE_PHASE)
                || state.read(reg::FLAT) == 0
        })
    }

    /// The reverse-drain safety invariant, the mirror of
    /// [`Self::drained_invariant`]: throughout the `FLAT` and `DRAIN_FLAT`
    /// phases of every cycle the tree plane is and remains quiescent.  On a
    /// fresh lock this is vacuous; after a reverse migration it is the claim
    /// that the tree was fully drained before flat traffic resumed.
    #[must_use]
    pub fn tree_drained_invariant() -> Invariant<Self> {
        Invariant::new("TreeDrainedBeforeFlat", |_, state: &ProgState| {
            !matches!(phase(state.read(reg::EPOCH)), FLAT_PHASE | DRAIN_FLAT_PHASE)
                || state.read(reg::TREE) == 0
        })
    }

    /// The announcement-count invariant both drain conditions rely on: each
    /// route's counter equals the number of processes currently holding that
    /// route's announcement (between their increment and their decrement).
    #[must_use]
    pub fn active_count_invariant() -> Invariant<Self> {
        Invariant::new("ActiveCountsAnnouncements", |alg: &Self, state: &ProgState| {
            let flat_announced = (0..alg.n)
                .filter(|&p| {
                    matches!(
                        state.pc(p),
                        pc::RECHECK
                            | pc::FLAT_ACQ
                            | pc::CS_FLAT
                            | pc::FLAT_REL
                            | pc::DEC_ACTIVE
                            | pc::ABORT_DEC
                    )
                })
                .count() as u64;
            let tree_announced = (0..alg.n)
                .filter(|&p| {
                    matches!(
                        state.pc(p),
                        pc::TRECHECK
                            | pc::TREE_ACQ
                            | pc::CS_TREE
                            | pc::TREE_REL
                            | pc::TDEC_ACTIVE
                            | pc::TABORT_DEC
                    )
                })
                .count() as u64;
            state.read(reg::ACTIVE) == flat_announced
                && state.read(reg::TACTIVE) == tree_announced
        })
    }

    /// The no-flap invariant of the hysteresis band: the reverse trigger's
    /// arming never survives outside the `TREE` phase.  A violation is
    /// exactly the stale-arming flap — a quiet period measured in cycle `c`
    /// authorising the reverse migration of cycle `c + 1` — which the real
    /// lock prevents by zeroing its quiet streak at every forward flip.
    #[must_use]
    pub fn no_flap_invariant() -> Invariant<Self> {
        Invariant::new("NoFlapStaleArming", |_, state: &ProgState| {
            state.read(reg::ARMED) == 0 || phase(state.read(reg::EPOCH)) == TREE_PHASE
        })
    }
}

impl Algorithm for AdaptiveHandoffSpec {
    fn name(&self) -> &str {
        "adaptive-handoff"
    }

    fn processes(&self) -> usize {
        self.n
    }

    fn registers(&self) -> Vec<RegisterSpec> {
        let n = self.n as u64;
        vec![
            RegisterSpec::shared("epoch", MAX_EPOCH_WORD),
            RegisterSpec::shared("active", n),
            RegisterSpec::shared("tactive", n),
            RegisterSpec::shared("flat", n),
            RegisterSpec::shared("tree", n),
            RegisterSpec::shared("armed", 1),
        ]
    }

    fn initial_state(&self) -> ProgState {
        ProgState::new(
            6,
            (0..self.n)
                .map(|_| ProcState::new(pc::NCS, vec![0]))
                .collect(),
        )
    }

    fn successors(&self, state: &ProgState, pid: usize, out: &mut Vec<ProgState>) {
        if state.is_crashed(pid) {
            return;
        }
        let epoch = state.read(reg::EPOCH);
        match state.pc(pid) {
            pc::NCS => {
                // Start an acquisition…
                out.push(state.with_pc(pid, pc::READ_EPOCH));
                // …or fire a migration trigger (threshold crossings modelled
                // as nondeterministic choices available at any time, bounded
                // only by the epoch-word cap that keeps the space finite).
                if epoch + 2 <= MAX_EPOCH_WORD {
                    if phase(epoch) == FLAT_PHASE {
                        // Forward trigger: FLAT(c) -> DRAIN_FLAT(c).
                        let mut next = state.clone();
                        next.set_shared(reg::EPOCH, epoch + 1);
                        out.push(next);
                    }
                    if phase(epoch) == TREE_PHASE && state.read(reg::ARMED) == 0 {
                        // The hysteresis quiet period elapses: arm the
                        // reverse trigger.
                        let mut next = state.clone();
                        next.set_shared(reg::ARMED, 1);
                        out.push(next);
                    }
                }
                if phase(epoch) == TREE_PHASE && state.read(reg::ARMED) == 1 {
                    // Reverse trigger: TREE(c) -> DRAIN_TREE(c), consuming
                    // the arming (the real lock's streak resets on firing).
                    let mut next = state.clone();
                    next.set_shared(reg::EPOCH, epoch + 1);
                    next.set_shared(reg::ARMED, 0);
                    out.push(next);
                }
            }
            pc::READ_EPOCH => {
                // One shared read of the full epoch word; remember it for the
                // Dekker re-check (the per-cycle ABA guard).
                let route = match phase(epoch) {
                    FLAT_PHASE => pc::INC_ACTIVE,
                    TREE_PHASE => pc::INC_TACTIVE,
                    _ => pc::HELP_CHECK,
                };
                let mut next = state.with_pc(pid, route);
                next.set_local(pid, SEEN, epoch);
                out.push(next);
            }
            pc::INC_ACTIVE => {
                let mut next = state.with_pc(pid, pc::RECHECK);
                next.set_shared(reg::ACTIVE, state.read(reg::ACTIVE) + 1);
                out.push(next);
            }
            pc::RECHECK => {
                // Full-word comparison: a stale FLAT observation from an
                // earlier cycle fails here even though the phase matches.
                let target = if epoch == state.local(pid, SEEN) {
                    pc::FLAT_ACQ
                } else {
                    pc::ABORT_DEC
                };
                let mut next = state.with_pc(pid, target);
                next.set_local(pid, SEEN, 0); // dead past this point
                out.push(next);
            }
            pc::FLAT_ACQ if state.read(reg::FLAT) == 0 => {
                let mut next = state.with_pc(pid, pc::CS_FLAT);
                next.set_shared(reg::FLAT, pid as u64 + 1);
                out.push(next);
            }
            pc::FLAT_ACQ => {}
            pc::CS_FLAT => out.push(state.with_pc(pid, pc::FLAT_REL)),
            pc::FLAT_REL => {
                let mut next = state.with_pc(pid, pc::DEC_ACTIVE);
                next.set_shared(reg::FLAT, 0);
                out.push(next);
            }
            pc::DEC_ACTIVE | pc::ABORT_DEC => {
                let target = if state.pc(pid) == pc::DEC_ACTIVE {
                    pc::NCS
                } else {
                    pc::READ_EPOCH
                };
                let mut next = state.with_pc(pid, target);
                next.set_shared(reg::ACTIVE, state.read(reg::ACTIVE) - 1);
                out.push(next);
            }
            pc::INC_TACTIVE => {
                let mut next = state.with_pc(pid, pc::TRECHECK);
                next.set_shared(reg::TACTIVE, state.read(reg::TACTIVE) + 1);
                out.push(next);
            }
            pc::TRECHECK => {
                let target = if epoch == state.local(pid, SEEN) {
                    pc::TREE_ACQ
                } else {
                    pc::TABORT_DEC
                };
                let mut next = state.with_pc(pid, target);
                next.set_local(pid, SEEN, 0);
                out.push(next);
            }
            pc::TREE_ACQ if state.read(reg::TREE) == 0 => {
                let mut next = state.with_pc(pid, pc::CS_TREE);
                next.set_shared(reg::TREE, pid as u64 + 1);
                out.push(next);
            }
            pc::TREE_ACQ => {}
            pc::CS_TREE => out.push(state.with_pc(pid, pc::TREE_REL)),
            pc::TREE_REL => {
                let mut next = state.with_pc(pid, pc::TDEC_ACTIVE);
                next.set_shared(reg::TREE, 0);
                out.push(next);
            }
            pc::TDEC_ACTIVE | pc::TABORT_DEC => {
                let target = if state.pc(pid) == pc::TDEC_ACTIVE {
                    pc::NCS
                } else {
                    pc::READ_EPOCH
                };
                let mut next = state.with_pc(pid, target);
                next.set_shared(reg::TACTIVE, state.read(reg::TACTIVE) - 1);
                out.push(next);
            }
            pc::HELP_CHECK => {
                // Read the counter of the route the observed drain phase is
                // draining; proceed only once it is quiescent (otherwise
                // wait — the announced processes can always step).
                let counter = if phase(state.local(pid, SEEN)) == DRAIN_FLAT_PHASE {
                    reg::ACTIVE
                } else {
                    reg::TACTIVE
                };
                if state.read(counter) == 0 {
                    out.push(state.with_pc(pid, pc::HELP_FLIP));
                }
            }
            pc::HELP_FLIP => {
                // CAS `seen -> seen + 1`; a parallel helper may have won.
                let mut next = state.with_pc(pid, pc::READ_EPOCH);
                if epoch == state.local(pid, SEEN) {
                    next.set_shared(reg::EPOCH, epoch + 1);
                }
                next.set_local(pid, SEEN, 0);
                out.push(next);
            }
            _ => {}
        }
    }

    fn in_critical_section(&self, state: &ProgState, pid: usize) -> bool {
        matches!(state.pc(pid), pc::CS_FLAT | pc::CS_TREE)
    }

    fn is_trying(&self, state: &ProgState, pid: usize) -> bool {
        matches!(
            state.pc(pid),
            pc::READ_EPOCH
                | pc::INC_ACTIVE
                | pc::RECHECK
                | pc::FLAT_ACQ
                | pc::ABORT_DEC
                | pc::HELP_CHECK
                | pc::HELP_FLIP
                | pc::INC_TACTIVE
                | pc::TRECHECK
                | pc::TREE_ACQ
                | pc::TABORT_DEC
        )
    }

    fn crash(&self, state: &ProgState, pid: usize) -> Option<ProgState> {
        // One atomic crash+recovery transition, mirroring what the live
        // stack's reaper does for a dead pid: roll back its outstanding
        // announce-counter increment (the ledger rollback of
        // `AdaptiveBakery::crash_abort`), and — when the pid died holding a
        // plane — perform the release on its behalf (the session plane's
        // quarantine + `RecoveredSeat` drop, collapsed into the same step).
        // A process in its NCS holds neither an announcement nor a plane,
        // so it offers no distinct crash successor.
        if state.pc(pid) == pc::NCS {
            return None;
        }
        let mut next = state.clone();
        match state.pc(pid) {
            // Between its `active += 1` and its decrement: withdraw — these
            // are exactly the announced sets of `active_count_invariant`,
            // which therefore survives the crash.
            pc::RECHECK
            | pc::FLAT_ACQ
            | pc::CS_FLAT
            | pc::FLAT_REL
            | pc::DEC_ACTIVE
            | pc::ABORT_DEC => {
                next.set_shared(reg::ACTIVE, state.read(reg::ACTIVE) - 1);
            }
            pc::TRECHECK
            | pc::TREE_ACQ
            | pc::CS_TREE
            | pc::TREE_REL
            | pc::TDEC_ACTIVE
            | pc::TABORT_DEC => {
                next.set_shared(reg::TACTIVE, state.read(reg::TACTIVE) - 1);
            }
            _ => {}
        }
        if state.read(reg::FLAT) == pid as u64 + 1 {
            next.set_shared(reg::FLAT, 0);
        }
        if state.read(reg::TREE) == pid as u64 + 1 {
            next.set_shared(reg::TREE, 0);
        }
        next.set_local(pid, SEEN, 0);
        next.set_pc(pid, pc::NCS);
        Some(next)
    }

    fn pc_label(&self, pc_value: u32) -> &'static str {
        match pc_value {
            pc::NCS => "ncs",
            pc::READ_EPOCH => "read-epoch",
            pc::INC_ACTIVE => "inc-active",
            pc::RECHECK => "recheck-epoch",
            pc::FLAT_ACQ => "flat-acquire",
            pc::CS_FLAT => "cs-flat",
            pc::FLAT_REL => "flat-release",
            pc::DEC_ACTIVE => "dec-active",
            pc::ABORT_DEC => "abort-dec-active",
            pc::HELP_CHECK => "help-check-active",
            pc::HELP_FLIP => "help-flip-epoch",
            pc::INC_TACTIVE => "inc-tree-active",
            pc::TRECHECK => "recheck-epoch-tree",
            pc::TREE_ACQ => "tree-acquire",
            pc::CS_TREE => "cs-tree",
            pc::TREE_REL => "tree-release",
            pc::TDEC_ACTIVE => "dec-tree-active",
            pc::TABORT_DEC => "abort-dec-tree-active",
            _ => "?",
        }
    }

    fn observe(&self, prev: &ProgState, next: &ProgState, pid: usize) -> Option<Observation> {
        let entered = !self.in_critical_section(prev, pid) && self.in_critical_section(next, pid);
        let exited = self.in_critical_section(prev, pid) && !self.in_critical_section(next, pid);
        if entered {
            Some(Observation::EnterCs { pid })
        } else if exited {
            Some(Observation::ExitCs { pid })
        } else {
            None
        }
    }

    fn state_bounds(&self) -> StateBounds {
        StateBounds::new(pc::TABORT_DEC, vec![MAX_EPOCH_WORD])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bakery_sim::{RandomScheduler, RoundRobinScheduler, RunConfig, Simulator};

    /// Walks `pid` forward, always taking the first successor, until `stop`
    /// says so; panics if the process blocks or the budget runs out.
    fn walk_until(
        spec: &AdaptiveHandoffSpec,
        state: &mut ProgState,
        pid: usize,
        mut stop: impl FnMut(&ProgState) -> bool,
    ) {
        let mut budget = 40;
        while !stop(state) {
            let succs = spec.successors_vec(state, pid);
            assert!(!succs.is_empty(), "pid {pid} blocked at pc {}", state.pc(pid));
            *state = succs.into_iter().next().unwrap();
            budget -= 1;
            assert!(budget > 0, "walk did not terminate");
        }
    }

    #[test]
    fn single_process_migrates_and_keeps_entering() {
        let spec = AdaptiveHandoffSpec::new(1);
        let mut state = spec.initial_state();
        // Fire the forward trigger (second NCS successor), then walk the
        // process through drain-help and a tree entry.
        let succs = spec.successors_vec(&state, 0);
        assert_eq!(succs.len(), 2, "acquire or forward trigger");
        state = succs.into_iter().nth(1).unwrap();
        assert_eq!(state.read(reg::EPOCH), 1, "DRAIN_FLAT of cycle 0");
        walk_until(&spec, &mut state, 0, |s| spec.in_critical_section(s, 0));
        assert_eq!(state.pc(0), pc::CS_TREE, "post-drain entry routes to the tree");
        assert_eq!(state.read(reg::EPOCH), 2, "TREE of cycle 0");
        assert_eq!(state.read(reg::TREE), 1);
        assert_eq!(state.read(reg::FLAT), 0);
    }

    #[test]
    fn single_process_round_trip_returns_to_flat() {
        let spec = AdaptiveHandoffSpec::new(1);
        let mut state = spec.initial_state();
        // Forward: trigger, drain, enter through the tree, release.
        state = spec.successors_vec(&state, 0).into_iter().nth(1).unwrap();
        walk_until(&spec, &mut state, 0, |s| s.pc(0) == pc::CS_TREE);
        walk_until(&spec, &mut state, 0, |s| s.pc(0) == pc::NCS);
        assert_eq!(state.read(reg::EPOCH), 2);
        assert_eq!(state.read(reg::TACTIVE), 0, "announcement withdrawn");
        // Reverse: arm (second successor), trigger (now the third), drain,
        // and the next entry routes through the flat plane of cycle 1.
        let succs = spec.successors_vec(&state, 0);
        assert_eq!(succs.len(), 2, "acquire or arm");
        state = succs.into_iter().nth(1).unwrap();
        assert_eq!(state.read(reg::ARMED), 1);
        let succs = spec.successors_vec(&state, 0);
        assert_eq!(succs.len(), 2, "acquire or reverse trigger (already armed)");
        state = succs.into_iter().nth(1).unwrap();
        assert_eq!(state.read(reg::EPOCH), 3, "DRAIN_TREE of cycle 0");
        assert_eq!(state.read(reg::ARMED), 0, "trigger consumed the arming");
        walk_until(&spec, &mut state, 0, |s| spec.in_critical_section(s, 0));
        assert_eq!(state.pc(0), pc::CS_FLAT, "cycle 1 routes flat again");
        assert_eq!(state.read(reg::EPOCH), 4, "FLAT of cycle 1");
        assert_eq!(state.read(reg::FLAT), 1);
        assert_eq!(state.read(reg::TREE), 0, "tree fully drained");
    }

    #[test]
    fn flat_route_without_trigger() {
        let spec = AdaptiveHandoffSpec::new(2);
        let mut state = spec.initial_state();
        // NCS -> READ_EPOCH -> INC_ACTIVE -> RECHECK -> FLAT_ACQ -> CS_FLAT,
        // always taking the first successor (the acquire path, no trigger).
        for _ in 0..5 {
            state = spec.successors_vec(&state, 0).into_iter().next().unwrap();
        }
        assert_eq!(state.pc(0), pc::CS_FLAT);
        assert_eq!(state.read(reg::FLAT), 1);
        assert_eq!(state.read(reg::ACTIVE), 1);
        assert_eq!(state.read(reg::EPOCH), 0);
    }

    #[test]
    fn stale_flat_observation_fails_the_full_word_recheck() {
        // A process reads FLAT(c0), parks before announcing, and the world
        // completes a full round trip back to FLAT(c1).  The phase matches
        // again, but the full-word comparison must rout the stale process to
        // the abort path — the per-cycle ABA guard.
        let spec = AdaptiveHandoffSpec::new(2);
        let mut state = spec.initial_state();
        // pid 1: NCS -> READ_EPOCH -> (reads word 0) -> INC_ACTIVE.
        state = state.with_pc(1, pc::READ_EPOCH);
        state = spec.successors_vec(&state, 1).into_iter().next().unwrap();
        assert_eq!(state.pc(1), pc::INC_ACTIVE);
        assert_eq!(state.local(1, SEEN), 0, "saw FLAT of cycle 0");
        // The world moves on without pid 1: a full round trip to FLAT(c1).
        state.set_shared(reg::EPOCH, 4);
        // pid 1 wakes up: announce, then re-check.
        state = spec.successors_vec(&state, 1).into_iter().next().unwrap();
        assert_eq!(state.pc(1), pc::RECHECK);
        assert_eq!(state.read(reg::ACTIVE), 1);
        state = spec.successors_vec(&state, 1).into_iter().next().unwrap();
        assert_eq!(
            state.pc(1),
            pc::ABORT_DEC,
            "phase is FLAT again but the cycle moved: the full word must fail"
        );
    }

    #[test]
    fn invariants_hold_under_seeded_schedules() {
        let spec = AdaptiveHandoffSpec::new(3);
        for seed in 0..10 {
            let config = RunConfig::<AdaptiveHandoffSpec>::checked(4_000)
                .with_invariant(AdaptiveHandoffSpec::drained_invariant())
                .with_invariant(AdaptiveHandoffSpec::tree_drained_invariant())
                .with_invariant(AdaptiveHandoffSpec::active_count_invariant())
                .with_invariant(AdaptiveHandoffSpec::no_flap_invariant());
            let outcome = Simulator::new().run(&spec, &mut RandomScheduler::new(seed), &config);
            assert!(
                outcome.report.violations.is_empty(),
                "seed {seed}: {:?}",
                outcome.report.violations
            );
            assert!(!outcome.report.deadlocked, "seed {seed}");
        }
    }

    #[test]
    fn round_robin_completes_critical_sections() {
        let spec = AdaptiveHandoffSpec::new(2);
        let config = RunConfig::<AdaptiveHandoffSpec>::checked(2_000);
        let outcome = Simulator::new().run(&spec, &mut RoundRobinScheduler::new(), &config);
        assert!(outcome.report.violations.is_empty());
        let total: u64 = outcome.report.cs_entries.iter().sum();
        assert!(total > 0, "processes make progress");
    }

    #[test]
    fn metadata_and_labels() {
        let spec = AdaptiveHandoffSpec::new(2);
        assert_eq!(spec.processes(), 2);
        assert_eq!(spec.registers().len(), 6);
        assert_eq!(spec.registers()[reg::EPOCH].bound, MAX_EPOCH_WORD);
        assert_eq!(spec.registers()[reg::ARMED].bound, 1);
        assert_eq!(spec.pc_label(pc::HELP_FLIP), "help-flip-epoch");
        assert_eq!(spec.pc_label(pc::TABORT_DEC), "abort-dec-tree-active");
        assert_eq!(spec.pc_label(99), "?");
        let s = spec.initial_state();
        assert!(!spec.is_trying(&s, 0));
        assert!(!spec.in_critical_section(&s, 0));
        assert!(spec.crash(&s, 0).is_none(), "an NCS process offers no crash");
        assert_eq!(spec.state_bounds().max_pc, pc::TABORT_DEC);
        assert_eq!(spec.state_bounds().local_bound(SEEN), MAX_EPOCH_WORD);
    }

    #[test]
    fn crash_rolls_back_the_announcement_and_frees_a_held_plane() {
        let spec = AdaptiveHandoffSpec::new(2);
        let mut state = spec.initial_state();

        // pid 0 crashed inside the flat critical section: announced and
        // holding the flat plane.
        state.set_pc(0, pc::CS_FLAT);
        state.set_shared(reg::ACTIVE, 1);
        state.set_shared(reg::FLAT, 1);
        state.set_local(0, SEEN, 2);
        let crashed = spec.crash(&state, 0).expect("mid-protocol crash exists");
        assert_eq!(crashed.pc(0), pc::NCS);
        assert_eq!(crashed.read(reg::ACTIVE), 0, "flat announcement withdrawn");
        assert_eq!(crashed.read(reg::FLAT), 0, "held flat plane released");
        assert_eq!(crashed.local(0, SEEN), 0);

        // pid 1 crashed while merely spinning for the tree plane: its
        // tree-side announcement rolls back but pid 0's registers and the
        // plane holders are untouched.
        let mut spinning = spec.initial_state();
        spinning.set_pc(1, pc::TREE_ACQ);
        spinning.set_shared(reg::TACTIVE, 1);
        spinning.set_shared(reg::TREE, 1); // held by pid 0, not the crasher
        let crashed = spec.crash(&spinning, 1).expect("mid-protocol crash exists");
        assert_eq!(crashed.read(reg::TACTIVE), 0, "tree announcement withdrawn");
        assert_eq!(crashed.read(reg::TREE), 1, "another pid's plane survives");

        // Before the announce increment lands (READ_EPOCH) nothing is owed.
        let mut early = spec.initial_state();
        early.set_pc(0, pc::READ_EPOCH);
        let crashed = spec.crash(&early, 0).expect("mid-protocol crash exists");
        assert_eq!(crashed.read(reg::ACTIVE), 0);
        assert_eq!(crashed.read(reg::TACTIVE), 0);
        assert_eq!(crashed.pc(0), pc::NCS);
    }

    #[test]
    fn trigger_budget_caps_the_epoch_word() {
        // At the cap (TREE of cycle 1) neither trigger nor arming is offered:
        // the only NCS successor is starting an acquisition.
        let spec = AdaptiveHandoffSpec::new(1);
        let mut state = spec.initial_state();
        state.set_shared(reg::EPOCH, MAX_EPOCH_WORD);
        let succs = spec.successors_vec(&state, 0);
        assert_eq!(succs.len(), 1, "no trigger fuel at the cap");
        assert_eq!(succs[0].pc(0), pc::READ_EPOCH);
    }
}
