//! # bakery-spec
//!
//! Model-checkable specifications of Bakery, Bakery++ and reference
//! algorithms, written against the [`bakery_sim::Algorithm`] step-machine
//! trait.  These play the role of the paper's PlusCal specification: the same
//! description is explored exhaustively by the `bakery-mc` model checker
//! (experiments **E2**, **E3**, **E5**) and sampled at scale by the
//! `bakery-sim` simulator (experiments **E1**, **E4**, **E6**, **E8**).
//!
//! ## Atomicity granularity and register semantics
//!
//! Each specification step performs **at most one shared-register access**,
//! which is the granularity Lamport's correctness argument assumes (and finer
//! than a typical PlusCal label).  The register model itself is a knob:
//! under the default [`RegisterSemantics::Atomic`] every access is one
//! indivisible step (what TLC checks for the paper's own PlusCal
//! specification); under [`RegisterSemantics::Safe`] every write splits into
//! a begin step and a commit step, a read overlapping an in-progress write
//! nondeterministically returns **any** value in `[0, bound]` (Lamport's
//! *safe*/"flickering" registers — the model the bakery was designed to
//! survive), and overlapping writes to a multi-writer register commit an
//! arbitrary in-range value.  See [`RegisterSemantics`] for the exact rules.
//! The Bakery-family specs and [`PetersonSpec`] expose the knob via
//! `with_semantics`; Peterson *requires* atomic registers, which is the
//! suite's negative control.
//!
//! ## Register bounds and the overflow sentinel
//!
//! The classic Bakery specification stores ticket values *as computed*, capped
//! at `M + 1` (one above the declared register bound) so the state space stays
//! finite while the model checker can still reach — and report — the overflow
//! state.  Bakery++ never attempts such a store, which is precisely the
//! theorem the checker verifies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adaptive;
pub mod bakery;
pub mod bakery_pp;
pub mod peterson;
pub mod ticket;
pub mod tree;

pub use adaptive::AdaptiveHandoffSpec;
pub use bakery::BakerySpec;
pub use bakery_pp::BakeryPlusPlusSpec;
pub use peterson::PetersonSpec;
pub use ticket::TicketSpec;
pub use tree::TreeBakerySpec;

pub use bakery_sim::RegisterSemantics;

/// Program-counter labels shared by the Bakery-family specifications.
///
/// Keeping the numbering identical between [`BakerySpec`] and
/// [`BakeryPlusPlusSpec`] makes refinement comparisons and trace reading
/// straightforward: Bakery simply never occupies the Bakery++-only labels.
pub mod pc {
    /// Noncritical section.
    pub const NCS: u32 = 0;
    /// Bakery++ only: the `L1` admission scan over the `number` registers.
    pub const L1_SCAN: u32 = 1;
    /// Doorway: set `choosing[i] := 1`.
    pub const SET_CHOOSING: u32 = 2;
    /// Doorway: fold one `number[j]` into the running maximum.
    pub const COMPUTE_MAX: u32 = 3;
    /// Bakery++ only: write the observed maximum into `number[i]`.
    pub const WRITE_MAX: u32 = 4;
    /// Bakery++ only: branch on `maximum ≥ M`.
    pub const CHECK_BOUND: u32 = 5;
    /// Bakery++ only: reset path, `number[i] := 0`.
    pub const RESET_NUMBER: u32 = 6;
    /// Bakery++ only: reset path, `choosing[i] := 0`, back to `L1`.
    pub const RESET_CHOOSING: u32 = 7;
    /// Store the ticket (`1 + max` for Bakery, `max + 1` for Bakery++).
    pub const WRITE_TICKET: u32 = 8;
    /// Doorway: clear `choosing[i]`.
    pub const CLEAR_CHOOSING: u32 = 9;
    /// Scan loop `L2`: wait for `choosing[j] == 0`.
    pub const SCAN_CHOOSING: u32 = 10;
    /// Scan loop `L3`: wait until `j` does not precede us.
    pub const SCAN_NUMBER: u32 = 11;
    /// Critical section.
    pub const CS: u32 = 12;

    /// Human-readable label for a Bakery-family program counter.
    #[must_use]
    pub fn label(pc: u32) -> &'static str {
        match pc {
            NCS => "ncs",
            L1_SCAN => "L1-scan",
            SET_CHOOSING => "set-choosing",
            COMPUTE_MAX => "compute-max",
            WRITE_MAX => "write-max",
            CHECK_BOUND => "check-bound",
            RESET_NUMBER => "reset-number",
            RESET_CHOOSING => "reset-choosing",
            WRITE_TICKET => "write-ticket",
            CLEAR_CHOOSING => "clear-choosing",
            SCAN_CHOOSING => "L2-scan-choosing",
            SCAN_NUMBER => "L3-scan-number",
            CS => "critical-section",
            _ => "?",
        }
    }
}

/// Shared helpers for the Bakery-family specifications.
pub(crate) mod layout {
    use bakery_sim::{ProgState, RegisterSpec, StatePermutation, SymmetryGroup};

    /// Index of `choosing[pid]` in the shared vector.
    pub fn choosing_idx(pid: usize) -> usize {
        pid
    }

    /// Index of `number[pid]` in the shared vector for `n` processes.
    pub fn number_idx(n: usize, pid: usize) -> usize {
        n + pid
    }

    /// The register layout shared by Bakery and Bakery++: `choosing[0..n]`
    /// followed by `number[0..n]`.
    pub fn registers(n: usize, bound: u64, sentinel: bool) -> Vec<RegisterSpec> {
        let mut regs = Vec::with_capacity(2 * n);
        for pid in 0..n {
            regs.push(RegisterSpec::owned(format!("choosing[{pid}]"), 1, pid));
        }
        for pid in 0..n {
            // The declared bound is M; the classic Bakery may physically hold
            // the sentinel M+1 which is exactly the overflow the invariant
            // reports.  The spec's own bound field stays M in both cases.
            let _ = sentinel;
            regs.push(RegisterSpec::owned(format!("number[{pid}]"), bound, pid));
        }
        regs
    }

    /// Reads `number[j]` under the state's register semantics.
    ///
    /// Returns the set of values the read may yield: the committed value
    /// when no write is in flight (always the case under atomic semantics,
    /// where states carry no pending-write cells), or every value in
    /// `[0, bound]` when the read overlaps an in-progress write.
    pub fn read_number(state: &ProgState, n: usize, j: usize, bound: u64) -> Vec<u64> {
        state.read_values(number_idx(n, j), bound)
    }

    /// True when a read of `choosing[j]` may return zero: either the
    /// committed value is zero, or an in-progress write makes the read
    /// flicker (one of the flicker values is always zero).  This is the
    /// outcome-level view of the L2 guard — the distinct flicker values all
    /// lead to the same successor, so the specs branch on the outcome.
    pub fn choosing_may_read_zero(state: &ProgState, j: usize) -> bool {
        state.read_values(choosing_idx(j), 1).contains(&0)
    }

    /// The paper's `(a, b) < (c, d)` comparison on `(number, pid)` pairs.
    pub fn ticket_precedes(a_num: u64, a_pid: usize, b_num: u64, b_pid: usize) -> bool {
        a_num < b_num || (a_num == b_num && a_pid < b_pid)
    }

    /// Largest group closure the flat specs hand to the model checker —
    /// matched to the checker's 64-bit visited-variant bitmap
    /// (`bakery-mc`'s `canon::MAX_GROUP_ORDER`), which discards any larger
    /// group anyway.  Usable flat sizes are therefore n ≤ 4 (S4 = 24
    /// elements); S5 = 120 falls back to no compression without first
    /// paying for a full closure generation.
    const FLAT_GROUP_CAP: usize = 64;

    /// The full process-permutation group of the flat Bakery layout: every
    /// pid relabelling, with `choosing[i]`/`number[i]` following process `i`.
    /// Returns `None` when `n` is too large for the closure cap (the model
    /// checker then explores without reduction, which is always sound).
    pub fn flat_symmetry(n: usize) -> Option<SymmetryGroup> {
        if n < 2 {
            return None;
        }
        let mut generators = Vec::with_capacity(n - 1);
        for i in 0..n - 1 {
            let mut procs: Vec<usize> = (0..n).collect();
            procs.swap(i, i + 1);
            let mut shared: Vec<usize> = (0..2 * n).collect();
            shared.swap(choosing_idx(i), choosing_idx(i + 1));
            shared.swap(number_idx(n, i), number_idx(n, i + 1));
            generators.push(StatePermutation::new(procs, shared));
        }
        SymmetryGroup::generate(&generators, FLAT_GROUP_CAP)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pc_labels_cover_all_states() {
        for pc in 0..=12 {
            assert_ne!(pc::label(pc), "?", "pc {pc} must have a label");
        }
        assert_eq!(pc::label(99), "?");
    }

    #[test]
    fn layout_indices_do_not_collide() {
        let n = 4;
        let mut seen = std::collections::HashSet::new();
        for pid in 0..n {
            assert!(seen.insert(layout::choosing_idx(pid)));
        }
        for pid in 0..n {
            assert!(seen.insert(layout::number_idx(n, pid)));
        }
        assert_eq!(seen.len(), 2 * n);
    }

    #[test]
    fn ticket_precedes_matches_paper_definition() {
        assert!(layout::ticket_precedes(1, 5, 2, 0));
        assert!(layout::ticket_precedes(2, 0, 2, 1));
        assert!(!layout::ticket_precedes(2, 1, 2, 0));
        assert!(!layout::ticket_precedes(3, 0, 2, 5));
    }

    #[test]
    fn default_register_semantics_is_atomic() {
        assert_eq!(RegisterSemantics::default(), RegisterSemantics::Atomic);
        use bakery_sim::Algorithm;
        assert_eq!(
            BakerySpec::new(2, 3).register_semantics(),
            RegisterSemantics::Atomic
        );
        assert_eq!(
            BakeryPlusPlusSpec::new(2, 2).register_semantics(),
            RegisterSemantics::Atomic
        );
        assert_eq!(
            PetersonSpec::new().register_semantics(),
            RegisterSemantics::Atomic
        );
    }
}
