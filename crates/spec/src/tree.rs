//! Step-machine specification of the tournament-of-bounded-bakeries
//! (`bakery-core::tree::TreeBakery`).
//!
//! The tree places `K^levels` processes at the leaves of a K-ary tree whose
//! nodes are independent Bakery++ instances with per-node bound `M = K + 1`.
//! A process runs the full Bakery++ program (L1 admission scan, doorway,
//! `L2`/`L3` scans) once per level from its leaf node up to the root, enters
//! the critical section after winning the root, and releases the nodes in
//! reverse (root first, leaf last) — one register write per release step.
//!
//! Every step performs at most one shared-register access, the same
//! granularity as [`crate::BakeryPlusPlusSpec`]; in fact each level of the
//! program *is* that specification, re-indexed onto the level's node
//! registers with the process's child slot playing the role of the node-local
//! process id.  Registers are atomic ([`crate::RegisterSemantics::Atomic`]):
//! the composition argument, not the safe-register model, is what this spec
//! exists to check.
//!
//! The `bakery-mc` explorer checks the composition exhaustively for small
//! instances (see `with_active_processes`, which keeps the state space
//! tractable by letting only a chosen subset of leaves compete), and the
//! differential conformance suite replays seeded schedules against the real
//! lock.
//!
//! ## Program counters
//!
//! `pc = 0` is the noncritical section.  While trying at level `l`
//! (0 = leaf), `pc = 16·(l + 1) + phase` where `phase` is the Bakery++ phase
//! constant from [`crate::pc`] (`L1_SCAN ..= SCAN_NUMBER`).  The critical
//! section is `pc = 16·(levels + 1)`, and release step `i` (which clears the
//! `number` register at level `levels − 1 − i`) is `CS + i` for
//! `i ≥ 1` — the transition out of the critical section performs release
//! step 0 (the root) itself, mirroring how the flat specification folds the
//! release write into its CS exit.

use bakery_sim::{
    Algorithm, Invariant, Observation, ProcState, ProgState, RegisterSpec, StateBounds,
    StatePermutation, SymmetryGroup,
};

use crate::bakery::{LOCAL_J, LOCAL_MAX};
use crate::layout::ticket_precedes;
use crate::pc;

/// Stride between the pc blocks of consecutive tree levels.
const LEVEL_STRIDE: u32 = 16;

/// The tree composite as a checkable specification.
#[derive(Debug, Clone)]
pub struct TreeBakerySpec {
    arity: usize,
    levels: usize,
    n: usize,
    /// Per-node register bound `M = arity + 1`.
    bound: u64,
    /// `active[pid] == false` freezes the process in its noncritical section
    /// (no successors), shrinking the state space for exhaustive checking.
    active: Vec<bool>,
}

impl TreeBakerySpec {
    /// Creates a spec for a full K-ary tree: `arity^levels` processes.
    ///
    /// # Panics
    /// Panics if `arity < 2` or `levels == 0`.
    #[must_use]
    pub fn new(arity: usize, levels: usize) -> Self {
        assert!(arity >= 2, "a tree node needs at least two children");
        assert!(levels >= 1, "a tree needs at least one level");
        let n = arity.pow(levels as u32);
        Self {
            arity,
            levels,
            n,
            bound: arity as u64 + 1,
            active: vec![true; n],
        }
    }

    /// Restricts stepping to `pids`; everyone else stays parked in the
    /// noncritical section.  Keeps exhaustive exploration tractable while
    /// still choosing *which* tree paths collide (same leaf node vs paths
    /// that only meet at the root).
    ///
    /// # Panics
    /// Panics if `pids` is empty or names an out-of-range process.
    #[must_use]
    pub fn with_active_processes(mut self, pids: &[usize]) -> Self {
        assert!(!pids.is_empty(), "at least one process must be active");
        self.active = vec![false; self.n];
        for &pid in pids {
            assert!(pid < self.n, "pid {pid} out of range");
            self.active[pid] = true;
        }
        self
    }

    /// Children per node.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tree levels.
    #[must_use]
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// The per-node register bound `M = arity + 1`.
    #[must_use]
    pub fn bound(&self) -> u64 {
        self.bound
    }

    /// Nodes at `level` (level 0 is the leaf level).
    #[must_use]
    pub fn nodes_at(&self, level: usize) -> usize {
        self.arity.pow((self.levels - 1 - level) as u32)
    }

    /// Total node count.
    #[must_use]
    pub fn node_count(&self) -> usize {
        (0..self.levels).map(|l| self.nodes_at(l)).sum()
    }

    /// The `(node index, slot)` process `pid` occupies at `level` — identical
    /// to `TreeBakery::position` in `bakery-core`.
    #[must_use]
    pub fn position(&self, pid: usize, level: usize) -> (usize, usize) {
        let below = self.arity.pow(level as u32);
        ((pid / below) / self.arity, (pid / below) % self.arity)
    }

    /// Global node index of `(level, node)` in level-major order (leaves
    /// first).
    fn node_index(&self, level: usize, node: usize) -> usize {
        (0..level).map(|l| self.nodes_at(l)).sum::<usize>() + node
    }

    /// Shared-register index of `choosing[slot]` of node `(level, node)`.
    #[must_use]
    pub fn choosing_idx(&self, level: usize, node: usize, slot: usize) -> usize {
        self.node_index(level, node) * 2 * self.arity + slot
    }

    /// Shared-register index of `number[slot]` of node `(level, node)`.
    #[must_use]
    pub fn number_idx(&self, level: usize, node: usize, slot: usize) -> usize {
        self.node_index(level, node) * 2 * self.arity + self.arity + slot
    }

    /// The pc at which process enters level `level`'s L1 scan.
    fn level_entry_pc(level: usize) -> u32 {
        (level as u32 + 1) * LEVEL_STRIDE + pc::L1_SCAN
    }

    /// The critical-section pc.
    fn cs_pc(&self) -> u32 {
        (self.levels as u32 + 1) * LEVEL_STRIDE
    }

    /// The tree-specific safety invariant: a process inside the critical
    /// section holds a non-zero ticket on every node of its leaf-to-root
    /// path (it climbed by winning each node and releases only after
    /// leaving the CS).  Defined here — next to the spec it talks about —
    /// so the close-out test, the `tree_closeout` example and the CI job
    /// all check the one definition.
    #[must_use]
    pub fn cs_holder_owns_path() -> Invariant<Self> {
        Invariant::new("CsHolderOwnsPath", |alg: &Self, state| {
            (0..alg.processes()).all(|pid| {
                if !alg.in_critical_section(state, pid) {
                    return true;
                }
                (0..alg.levels()).all(|level| {
                    let (node, slot) = alg.position(pid, level);
                    state.read(alg.number_idx(level, node, slot)) != 0
                })
            })
        })
    }

    /// Lifts a tree-automorphic pid relabelling to the register permutation
    /// it induces: slot `s` of node `m` at level `l` is driven by the pid
    /// block `{p : p / arity^l == m·arity + s}`, and a tree automorphism maps
    /// that block onto another level-`l` block, whose `(node, slot)` the
    /// block's registers follow.
    ///
    /// # Panics
    /// Panics if `proc_map` is not a tree automorphism (some block is torn
    /// apart), so an unsound group can never be handed to the checker.
    fn induced_permutation(&self, proc_map: Vec<usize>) -> StatePermutation {
        let mut shared = vec![0usize; self.node_count() * 2 * self.arity];
        for level in 0..self.levels {
            let below = self.arity.pow(level as u32);
            for node in 0..self.nodes_at(level) {
                for slot in 0..self.arity {
                    let block_start = (node * self.arity + slot) * below;
                    let image = self.position(proc_map[block_start], level);
                    for offset in 1..below {
                        assert_eq!(
                            self.position(proc_map[block_start + offset], level),
                            image,
                            "proc_map is not a tree automorphism at level {level}"
                        );
                    }
                    let (new_node, new_slot) = image;
                    shared[self.choosing_idx(level, node, slot)] =
                        self.choosing_idx(level, new_node, new_slot);
                    shared[self.number_idx(level, node, slot)] =
                        self.number_idx(level, new_node, new_slot);
                }
            }
        }
        StatePermutation::new(proc_map, shared)
    }

    /// Decodes a trying pc into `(level, phase)`; `None` for NCS/CS/release
    /// and for values below the first level block (flat-spec pc constants
    /// such as bare [`pc::L1_SCAN`] are not valid tree pcs).
    fn decode(&self, pc_value: u32) -> Option<(usize, u32)> {
        if pc_value < LEVEL_STRIDE || pc_value >= self.cs_pc() {
            return None;
        }
        let level = (pc_value / LEVEL_STRIDE) as usize - 1;
        Some((level, pc_value % LEVEL_STRIDE))
    }
}

impl Algorithm for TreeBakerySpec {
    fn name(&self) -> &str {
        "tree-bakery"
    }

    fn processes(&self) -> usize {
        self.n
    }

    fn registers(&self) -> Vec<RegisterSpec> {
        let mut regs = Vec::with_capacity(self.node_count() * 2 * self.arity);
        for level in 0..self.levels {
            for node in 0..self.nodes_at(level) {
                // Node slots are driven by different processes over time (a
                // slot belongs to whoever holds the subtree below it), so the
                // registers are declared without a fixed owner.
                for slot in 0..self.arity {
                    regs.push(RegisterSpec::shared(
                        format!("L{level}N{node}.choosing[{slot}]"),
                        1,
                    ));
                }
                for slot in 0..self.arity {
                    regs.push(RegisterSpec::shared(
                        format!("L{level}N{node}.number[{slot}]"),
                        self.bound,
                    ));
                }
            }
        }
        debug_assert_eq!(regs.len(), self.node_count() * 2 * self.arity);
        regs
    }

    fn initial_state(&self) -> ProgState {
        ProgState::new(
            self.node_count() * 2 * self.arity,
            (0..self.n)
                .map(|_| ProcState::new(pc::NCS, vec![0, 0]))
                .collect(),
        )
    }

    #[allow(clippy::too_many_lines)]
    fn successors(&self, state: &ProgState, pid: usize, out: &mut Vec<ProgState>) {
        if state.is_crashed(pid) || !self.active[pid] {
            return;
        }
        let k = self.arity;
        let cs = self.cs_pc();
        let pc_value = state.pc(pid);

        // Noncritical section: start trying at the leaf level.
        if pc_value == pc::NCS {
            let mut next = state.clone();
            next.set_local(pid, LOCAL_J, 0);
            next.set_local(pid, LOCAL_MAX, 0);
            next.set_pc(pid, Self::level_entry_pc(0));
            out.push(next);
            return;
        }

        // Critical section: exit performs release step 0 (the root write).
        if pc_value == cs {
            let (node, slot) = self.position(pid, self.levels - 1);
            let mut next = state.clone();
            next.set_shared(self.number_idx(self.levels - 1, node, slot), 0);
            next.set_pc(pid, if self.levels == 1 { pc::NCS } else { cs + 1 });
            out.push(next);
            return;
        }

        // Release steps i >= 1: clear number at level levels - 1 - i.
        if pc_value > cs {
            let i = (pc_value - cs) as usize;
            let level = self.levels - 1 - i;
            let (node, slot) = self.position(pid, level);
            let mut next = state.clone();
            next.set_shared(self.number_idx(level, node, slot), 0);
            next.set_pc(
                pid,
                if i + 1 == self.levels { pc::NCS } else { cs + i as u32 + 1 },
            );
            out.push(next);
            return;
        }

        // Trying at some level: the Bakery++ program over that node.
        let Some((level, phase)) = self.decode(pc_value) else {
            return;
        };
        let (node, slot) = self.position(pid, level);
        let base = (level as u32 + 1) * LEVEL_STRIDE;
        let j = state.local(pid, LOCAL_J) as usize;
        let max = state.local(pid, LOCAL_MAX);
        let read_number = |st: &ProgState, s: usize| st.read(self.number_idx(level, node, s));

        match phase {
            pc::L1_SCAN => {
                if j >= k {
                    let mut next = state.clone();
                    next.set_local(pid, LOCAL_J, 0);
                    next.set_pc(pid, base + pc::SET_CHOOSING);
                    out.push(next);
                } else if read_number(state, j) >= self.bound {
                    // Illegitimate situation in this node: restart the scan.
                    let mut next = state.clone();
                    next.set_local(pid, LOCAL_J, 0);
                    out.push(next);
                } else {
                    let mut next = state.clone();
                    next.set_local(pid, LOCAL_J, (j + 1) as u64);
                    out.push(next);
                }
            }
            pc::SET_CHOOSING => {
                let mut next = state.clone();
                next.set_shared(self.choosing_idx(level, node, slot), 1);
                next.set_local(pid, LOCAL_J, 0);
                next.set_local(pid, LOCAL_MAX, 0);
                next.set_pc(pid, base + pc::COMPUTE_MAX);
                out.push(next);
            }
            pc::COMPUTE_MAX => {
                if j < k {
                    let mut next = state.clone();
                    next.set_local(pid, LOCAL_MAX, max.max(read_number(state, j)));
                    next.set_local(pid, LOCAL_J, (j + 1) as u64);
                    out.push(next);
                } else {
                    let mut next = state.clone();
                    next.set_pc(pid, base + pc::WRITE_MAX);
                    out.push(next);
                }
            }
            pc::WRITE_MAX => {
                let mut next = state.clone();
                next.set_shared(self.number_idx(level, node, slot), max.min(self.bound));
                next.set_pc(pid, base + pc::CHECK_BOUND);
                out.push(next);
            }
            pc::CHECK_BOUND => {
                let mut next = state.clone();
                next.set_pc(
                    pid,
                    base + if max >= self.bound { pc::RESET_NUMBER } else { pc::WRITE_TICKET },
                );
                out.push(next);
            }
            pc::RESET_NUMBER => {
                let mut next = state.clone();
                next.set_shared(self.number_idx(level, node, slot), 0);
                next.set_pc(pid, base + pc::RESET_CHOOSING);
                out.push(next);
            }
            pc::RESET_CHOOSING => {
                let mut next = state.clone();
                next.set_shared(self.choosing_idx(level, node, slot), 0);
                next.set_local(pid, LOCAL_J, 0);
                next.set_pc(pid, base + pc::L1_SCAN);
                out.push(next);
            }
            pc::WRITE_TICKET => {
                debug_assert!(max < self.bound);
                let mut next = state.clone();
                next.set_shared(self.number_idx(level, node, slot), max + 1);
                next.set_pc(pid, base + pc::CLEAR_CHOOSING);
                out.push(next);
            }
            pc::CLEAR_CHOOSING => {
                let mut next = state.clone();
                next.set_shared(self.choosing_idx(level, node, slot), 0);
                next.set_local(pid, LOCAL_J, 0);
                next.set_pc(pid, base + pc::SCAN_CHOOSING);
                out.push(next);
            }
            pc::SCAN_CHOOSING => {
                if j == slot {
                    let mut next = state.clone();
                    next.set_local(pid, LOCAL_J, (j + 1) as u64);
                    out.push(next);
                } else if j >= k {
                    // Node won: climb, or enter the critical section.
                    let mut next = state.clone();
                    if level + 1 == self.levels {
                        next.set_pc(pid, self.cs_pc());
                    } else {
                        next.set_local(pid, LOCAL_J, 0);
                        next.set_local(pid, LOCAL_MAX, 0);
                        next.set_pc(pid, Self::level_entry_pc(level + 1));
                    }
                    out.push(next);
                } else if state.read(self.choosing_idx(level, node, j)) == 0 {
                    let mut next = state.clone();
                    next.set_pc(pid, base + pc::SCAN_NUMBER);
                    out.push(next);
                }
                // choosing[j] == 1: blocked, no successor from this phase.
            }
            pc::SCAN_NUMBER => {
                let my_number = read_number(state, slot);
                let other = read_number(state, j);
                if other == 0 || !ticket_precedes(other, j, my_number, slot) {
                    let mut next = state.clone();
                    next.set_local(pid, LOCAL_J, (j + 1) as u64);
                    next.set_pc(pid, base + pc::SCAN_CHOOSING);
                    out.push(next);
                }
                // Smaller (number, slot) ahead of us: blocked.
            }
            _ => {}
        }
    }

    fn in_critical_section(&self, state: &ProgState, pid: usize) -> bool {
        state.pc(pid) == self.cs_pc()
    }

    fn is_trying(&self, state: &ProgState, pid: usize) -> bool {
        let p = state.pc(pid);
        p != pc::NCS && p < self.cs_pc()
    }

    fn crash(&self, state: &ProgState, pid: usize) -> Option<ProgState> {
        if !self.active[pid] {
            return None;
        }
        // One atomic crash+restart transition (paper assumptions 1.5–1.7
        // applied per node): the process restarts in its NCS and every
        // register it *owns* reads zero.  Ownership is dynamic in the tree —
        // a slot at level `l` belongs to whoever holds the whole subtree
        // below it — so the crash may only wipe the levels this pid actually
        // reached: zeroing higher levels would destroy a *sibling's* tickets
        // (the sibling shares those `(node, slot)` positions once it holds
        // the subtree).  A process in its NCS owns nothing (every level it
        // touched was released or crash-cleared) and offers no distinct
        // crash successor.
        let pc_value = state.pc(pid);
        if pc_value == pc::NCS {
            return None;
        }
        let cs = self.cs_pc();
        let owned_levels = if pc_value >= cs {
            // CS holds the full path; release step i has already cleared the
            // top i levels (root-first), leaving levels 0 ..= levels-1-i.
            self.levels - (pc_value - cs) as usize
        } else {
            // Trying at (level, _): won levels 0..level, writing at `level`.
            let (level, _) = self.decode(pc_value)?;
            level + 1
        };
        let mut next = state.clone();
        for level in 0..owned_levels {
            let (node, slot) = self.position(pid, level);
            next.set_shared(self.choosing_idx(level, node, slot), 0);
            next.set_shared(self.number_idx(level, node, slot), 0);
        }
        next.set_local(pid, LOCAL_J, 0);
        next.set_local(pid, LOCAL_MAX, 0);
        next.set_pc(pid, pc::NCS);
        Some(next)
    }

    fn pc_label(&self, pc_value: u32) -> &'static str {
        if pc_value == pc::NCS {
            return "ncs";
        }
        if pc_value == self.cs_pc() {
            return "critical-section";
        }
        if pc_value > self.cs_pc() {
            return "release-node";
        }
        match self.decode(pc_value) {
            Some((_, phase)) => pc::label(phase),
            None => "?",
        }
    }

    fn state_bounds(&self) -> StateBounds {
        // Release pcs run to cs_pc + levels - 1; the loop index is at most
        // the arity; the folded maximum never exceeds the per-node bound.
        StateBounds::new(
            self.cs_pc() + self.levels as u32,
            vec![self.arity as u64, self.bound],
        )
    }

    /// The symmetry group induced by leaf placement: sibling-leaf swaps and
    /// same-level subtree permutations — exactly the relabellings that
    /// commute with [`TreeBakerySpec::position`].  Restricted to elements
    /// preserving the active-process mask, so `with_active_processes` specs
    /// are only quotiented by symmetries of their own placement.
    fn symmetry(&self) -> Option<SymmetryGroup> {
        let mut generators = Vec::new();
        for height in 1..=self.levels {
            let block = self.arity.pow((height - 1) as u32); // pids per child
            let span = block * self.arity; // pids per node at this height
            for node_start in (0..self.n).step_by(span) {
                for child in 0..self.arity - 1 {
                    let mut procs: Vec<usize> = (0..self.n).collect();
                    let a = node_start + child * block;
                    for offset in 0..block {
                        procs.swap(a + offset, a + block + offset);
                    }
                    generators.push(self.induced_permutation(procs));
                }
            }
        }
        // The full wreath-product closure: (arity!)^(internal nodes).  The
        // cap keeps degenerate large configurations from exploding; falling
        // back to `None` (no reduction) is always sound.  A closure above
        // the checker's 64-element variant bitmap is still worth generating
        // here — the active-mask stabilizer below can shrink it back into
        // range (e.g. a 3-level tree with a two-process active set) — but
        // the checker discards whatever remains above 64 elements.
        let group = SymmetryGroup::generate(&generators, 4096)?;
        Some(group.stabilizing(&self.active))
    }

    fn observe(&self, prev: &ProgState, next: &ProgState, pid: usize) -> Option<Observation> {
        let (before, after) = (prev.pc(pid), next.pc(pid));
        let cs = self.cs_pc();
        if before != cs && after == cs {
            return Some(Observation::EnterCs { pid });
        }
        if before == cs && after != cs {
            return Some(Observation::ExitCs { pid });
        }
        if let Some((level, phase)) = self.decode(before) {
            let (node, slot) = self.position(pid, level);
            if phase == pc::WRITE_TICKET {
                return Some(Observation::TicketTaken {
                    pid,
                    number: next.read(self.number_idx(level, node, slot)),
                });
            }
            if phase == pc::RESET_CHOOSING {
                return Some(Observation::OverflowAvoided { pid });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bakery_sim::{RandomScheduler, RoundRobinScheduler, RunConfig, Simulator};

    #[test]
    fn geometry_and_accessors() {
        let spec = TreeBakerySpec::new(2, 2);
        assert_eq!(spec.processes(), 4);
        assert_eq!(spec.arity(), 2);
        assert_eq!(spec.levels(), 2);
        assert_eq!(spec.bound(), 3);
        assert_eq!(spec.nodes_at(0), 2);
        assert_eq!(spec.nodes_at(1), 1);
        assert_eq!(spec.node_count(), 3);
        assert_eq!(spec.registers().len(), 12);
        // pid 3: leaf node 1 slot 1; root node 0 slot 1.
        assert_eq!(spec.position(3, 0), (1, 1));
        assert_eq!(spec.position(3, 1), (0, 1));
    }

    #[test]
    fn register_names_and_bounds_follow_layout() {
        let spec = TreeBakerySpec::new(2, 2);
        let regs = spec.registers();
        assert_eq!(regs[spec.choosing_idx(0, 1, 0)].name, "L0N1.choosing[0]");
        assert_eq!(regs[spec.number_idx(1, 0, 1)].name, "L1N0.number[1]");
        for (i, reg) in regs.iter().enumerate() {
            let is_choosing = reg.name.contains("choosing");
            assert_eq!(reg.bound, if is_choosing { 1 } else { 3 }, "register {i}");
        }
    }

    #[test]
    fn single_process_walks_both_levels_and_releases_in_reverse() {
        let spec = TreeBakerySpec::new(2, 2);
        let mut state = spec.initial_state();
        let mut entered = false;
        for _ in 0..200 {
            let succs = spec.successors_vec(&state, 0);
            assert!(!succs.is_empty(), "a lone process can never block");
            state = succs[0].clone();
            if spec.in_critical_section(&state, 0) {
                entered = true;
                // Holding both its leaf and the root tickets.
                assert_eq!(state.read(spec.number_idx(0, 0, 0)), 1);
                assert_eq!(state.read(spec.number_idx(1, 0, 0)), 1);
            }
            if entered && state.pc(0) == pc::NCS {
                break;
            }
        }
        assert!(entered);
        assert_eq!(state.pc(0), pc::NCS);
        // Both registers released.
        assert_eq!(state.read(spec.number_idx(0, 0, 0)), 0);
        assert_eq!(state.read(spec.number_idx(1, 0, 0)), 0);
    }

    #[test]
    fn invariants_hold_on_random_schedules() {
        let spec = TreeBakerySpec::new(2, 2);
        for seed in 0..25 {
            let config = RunConfig::<TreeBakerySpec>::checked(8_000);
            let outcome = Simulator::new().run(&spec, &mut RandomScheduler::new(seed), &config);
            assert!(
                outcome.report.violations.is_empty(),
                "seed {seed}: {:?}",
                outcome.report.violations
            );
            assert!(!outcome.report.deadlocked, "seed {seed}");
            assert!(outcome.report.max_register_value <= spec.bound(), "seed {seed}");
        }
    }

    #[test]
    fn per_node_tickets_stay_within_m_and_resets_fire() {
        // M = 3 per node: contention regularly drives the reset path.
        let spec = TreeBakerySpec::new(2, 2);
        let mut saw_reset = false;
        let mut saw_ticket = false;
        for seed in 0..25 {
            let config = RunConfig::<TreeBakerySpec>::checked(8_000);
            let outcome = Simulator::new().run(&spec, &mut RandomScheduler::new(seed), &config);
            saw_reset |= outcome.report.overflow_avoidance_resets > 0;
            for (_, number) in outcome.trace.ticket_order() {
                saw_ticket = true;
                assert!(number >= 1 && number <= spec.bound(), "ticket {number}");
            }
            assert_eq!(outcome.report.overflow_attempts, 0);
        }
        assert!(saw_ticket, "tickets must be observable");
        assert!(saw_reset, "with M = 3 the overflow-avoidance path should fire");
    }

    #[test]
    fn round_robin_serves_all_four_processes() {
        let spec = TreeBakerySpec::new(2, 2);
        let config = RunConfig::<TreeBakerySpec>::checked(40_000);
        let outcome = Simulator::new().run(&spec, &mut RoundRobinScheduler::new(), &config);
        assert!(outcome.report.is_clean(), "{:?}", outcome.report.violations);
        for pid in 0..4 {
            assert!(
                outcome.report.cs_entries[pid] > 0,
                "pid {pid} starved under round robin: {:?}",
                outcome.report.cs_entries
            );
        }
    }

    #[test]
    fn inactive_processes_never_move() {
        let spec = TreeBakerySpec::new(2, 2).with_active_processes(&[1]);
        let state = spec.initial_state();
        for pid in [0, 2, 3] {
            assert!(spec.successors_vec(&state, pid).is_empty());
        }
        assert_eq!(spec.successors_vec(&state, 1).len(), 1);
        let config = RunConfig::<TreeBakerySpec>::checked(2_000);
        let outcome = Simulator::new().run(&spec, &mut RoundRobinScheduler::new(), &config);
        assert!(outcome.report.is_clean());
        assert!(outcome.report.cs_entries[1] > 0);
        assert_eq!(outcome.report.cs_entries[0], 0);
    }

    #[test]
    fn cs_holder_owns_its_entire_path() {
        // The tree discipline: a process inside the critical section holds a
        // non-zero ticket in every node on its leaf-to-root path (it climbed
        // by winning each node and releases only after leaving the CS).
        let spec = TreeBakerySpec::new(2, 2);
        let path_held = TreeBakerySpec::cs_holder_owns_path();
        for seed in 0..10 {
            let config =
                RunConfig::<TreeBakerySpec>::checked(6_000).with_invariant(path_held.clone());
            let outcome = Simulator::new().run(&spec, &mut RandomScheduler::new(seed), &config);
            assert!(
                outcome.report.violations.is_empty(),
                "seed {seed}: {:?}",
                outcome.report.violations
            );
        }
    }

    #[test]
    fn labels_cover_every_reachable_pc() {
        let spec = TreeBakerySpec::new(2, 2);
        let config = RunConfig::<TreeBakerySpec>::checked(4_000);
        let outcome = Simulator::new().run(&spec, &mut RandomScheduler::new(5), &config);
        for event in &outcome.trace.events {
            assert_ne!(spec.pc_label(event.pc_after), "?", "pc {}", event.pc_after);
        }
    }

    #[test]
    fn flat_spec_pc_constants_are_not_tree_pcs() {
        // Bare phase constants (valid for BakerySpec/BakeryPlusPlusSpec) sit
        // below the first level block; labelling them must not underflow.
        let spec = TreeBakerySpec::new(2, 2);
        for pc_value in [pc::L1_SCAN, pc::SET_CHOOSING, pc::SCAN_NUMBER, 15] {
            assert_eq!(spec.pc_label(pc_value), "?", "pc {pc_value}");
        }
        assert_eq!(spec.pc_label(pc::NCS), "ncs");
        assert_eq!(spec.pc_label(LEVEL_STRIDE + pc::L1_SCAN), "L1-scan");
    }

    #[test]
    fn symmetry_group_is_the_leaf_placement_wreath_product() {
        // 2-level binary tree: swap leaves within either leaf node, swap the
        // two leaf subtrees — S2 ≀ S2, order 8.
        let spec = TreeBakerySpec::new(2, 2);
        let group = spec.symmetry().expect("tree symmetry");
        assert_eq!(group.order(), 8);
        // Every element is a tree automorphism: blocks map to blocks, so
        // position() commutes with the relabelling at every level.
        for perm in group.elements() {
            for pid in 0..4 {
                for level in 0..2 {
                    let (node, slot) = spec.position(pid, level);
                    let (new_node, new_slot) = spec.position(perm.map_process(pid), level);
                    assert_eq!(
                        perm.map_register(spec.choosing_idx(level, node, slot)),
                        spec.choosing_idx(level, new_node, new_slot)
                    );
                    assert_eq!(
                        perm.map_register(spec.number_idx(level, node, slot)),
                        spec.number_idx(level, new_node, new_slot)
                    );
                }
            }
        }
    }

    #[test]
    fn symmetry_group_respects_the_active_mask() {
        // Only placement symmetries that fix the active set survive.
        let shared_leaf = TreeBakerySpec::new(2, 2).with_active_processes(&[0, 1]);
        assert_eq!(shared_leaf.symmetry().unwrap().order(), 4);
        // {0, 2}: only the whole-subtree swap (0 2)(1 3) survives — an inner
        // leaf swap would move an active pid onto an inactive one.
        let split = TreeBakerySpec::new(2, 2).with_active_processes(&[0, 2]);
        assert_eq!(split.symmetry().unwrap().order(), 2);
        let lone = TreeBakerySpec::new(2, 2).with_active_processes(&[1]);
        // Stabilizer of {1}: may still swap the inactive leaves 2 and 3.
        assert_eq!(lone.symmetry().unwrap().order(), 2);
    }

    #[test]
    fn state_bounds_cover_reachable_pcs_and_locals() {
        let spec = TreeBakerySpec::new(2, 2);
        let bounds = spec.state_bounds();
        let config = RunConfig::<TreeBakerySpec>::checked(6_000);
        let outcome = Simulator::new().run(&spec, &mut RandomScheduler::new(7), &config);
        for event in &outcome.trace.events {
            assert!(event.pc_after <= bounds.max_pc, "pc {}", event.pc_after);
        }
        assert_eq!(bounds.local_bound(0), 2, "loop index is at most the arity");
        assert_eq!(bounds.local_bound(1), 3, "max local is at most M");
    }

    #[test]
    #[should_panic(expected = "at least two children")]
    fn unary_spec_is_rejected() {
        let _ = TreeBakerySpec::new(1, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn active_set_must_be_in_range() {
        let _ = TreeBakerySpec::new(2, 2).with_active_processes(&[9]);
    }
}
