//! E9 — ticket draw rate: how fast the classic Bakery's doorway can increment
//! the shared ticket value, which feeds the time-to-overflow extrapolation.

use bakery_bench::quick_criterion;
use bakery_core::{BakeryLock, BakeryPlusPlusLock, RawMutexAlgorithm};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_ticket_draw(c: &mut Criterion) {
    let cfg = quick_criterion();
    let mut group = c.benchmark_group("e9_ticket_draw");
    group
        .sample_size(cfg.sample_size)
        .measurement_time(cfg.measurement)
        .warm_up_time(cfg.warm_up);

    group.bench_function("bakery_draw_release", |b| {
        let lock = BakeryLock::new(2);
        b.iter(|| {
            let outcome = lock.try_doorway(0);
            std::hint::black_box(outcome);
            lock.release(0);
        });
    });

    // The §3 scenario: the bakery never empties, so the ticket actually grows
    // on every draw (the overflow-relevant rate).
    group.bench_function("bakery_draw_with_standing_customer", |b| {
        let lock = BakeryLock::new(2);
        let _ = lock.try_doorway(1); // process 1 stays in the bakery
        b.iter(|| {
            let outcome = lock.try_doorway(0);
            std::hint::black_box(outcome);
            lock.release(0);
        });
    });

    group.bench_function("bakery_pp_draw_release", |b| {
        let lock = BakeryPlusPlusLock::with_bound(2, 65_535);
        b.iter(|| {
            let outcome = lock.try_doorway(0);
            std::hint::black_box(outcome);
            lock.release(0);
        });
    });

    group.finish();
}

criterion_group!(benches, bench_ticket_draw);
criterion_main!(benches);
