//! E7 — contended throughput of the headline locks and key baselines at 2 and
//! 4 threads (the practicality claim).

use bakery_baselines::AlgorithmId;
use bakery_bench::quick_criterion;
use bakery_harness::experiments::e7_throughput::measure;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_throughput(c: &mut Criterion) {
    let cfg = quick_criterion();
    let mut group = c.benchmark_group("e7_contended_throughput");
    group
        .sample_size(cfg.sample_size)
        .measurement_time(cfg.measurement)
        .warm_up_time(cfg.warm_up);
    let algorithms = [
        AlgorithmId::Bakery,
        AlgorithmId::BakeryPlusPlus,
        AlgorithmId::BlackWhiteBakery,
        AlgorithmId::TicketLock,
        AlgorithmId::Ttas,
    ];
    for threads in [2usize, 4] {
        for id in algorithms {
            group.throughput(Throughput::Elements(500 * threads as u64));
            group.bench_with_input(
                BenchmarkId::new(id.name(), threads),
                &threads,
                |b, &threads| {
                    b.iter(|| measure(id, threads, true));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
