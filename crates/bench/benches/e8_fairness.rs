//! E8 — cost of generating an observable trace and analysing it for FIFO
//! inversions (the fairness measurement pipeline itself).

use bakery_bench::quick_criterion;
use bakery_sim::trace::refinement::{check_fcfs_by_ticket, count_fifo_inversions};
use bakery_sim::{RandomScheduler, RunConfig, Simulator};
use bakery_spec::{BakeryPlusPlusSpec, BakerySpec};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fairness_pipeline(c: &mut Criterion) {
    let cfg = quick_criterion();
    let mut group = c.benchmark_group("e8_fairness_pipeline");
    group
        .sample_size(cfg.sample_size)
        .measurement_time(cfg.measurement)
        .warm_up_time(cfg.warm_up);

    group.bench_function("bakery_trace_and_inversions", |b| {
        let spec = BakerySpec::new(3, u64::from(u32::MAX));
        b.iter(|| {
            let run = Simulator::new().run(
                &spec,
                &mut RandomScheduler::new(7),
                &RunConfig::<BakerySpec>::checked(5_000),
            );
            count_fifo_inversions(&run.trace)
        });
    });

    group.bench_function("bakery_pp_trace_and_discipline", |b| {
        let spec = BakeryPlusPlusSpec::new(3, 4);
        b.iter(|| {
            let run = Simulator::new().run(
                &spec,
                &mut RandomScheduler::new(7),
                &RunConfig::<BakeryPlusPlusSpec>::checked(5_000),
            );
            check_fcfs_by_ticket(&run.trace).holds()
        });
    });

    group.finish();
}

criterion_group!(benches, bench_fairness_pipeline);
criterion_main!(benches);
