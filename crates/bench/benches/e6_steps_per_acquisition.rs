//! E6 — uncontended acquire/release cost of every real lock in the suite
//! (the temporal-complexity claim: Bakery++ ≈ Bakery when no overflow occurs).

use bakery_baselines::{all_algorithms, LockFactory};
use bakery_bench::quick_criterion;
use bakery_core::RawMutexAlgorithm;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_uncontended(c: &mut Criterion) {
    let cfg = quick_criterion();
    let mut group = c.benchmark_group("e6_uncontended_acquire_release");
    group
        .sample_size(cfg.sample_size)
        .measurement_time(cfg.measurement)
        .warm_up_time(cfg.warm_up);
    let factory = LockFactory::new();
    for (id, lock) in all_algorithms(4, &factory) {
        let slot = lock.register().expect("slot");
        group.bench_function(id.name(), |b| {
            b.iter(|| {
                let guard = lock.lock(&slot);
                std::hint::black_box(&guard);
                drop(guard);
            });
        });
    }
    group.finish();
}

fn bench_bakery_scan_scaling(c: &mut Criterion) {
    // The O(N) doorway scan: uncontended cost as the slot count grows.
    let cfg = quick_criterion();
    let mut group = c.benchmark_group("e6_scan_scaling_bakery_pp");
    group
        .sample_size(cfg.sample_size)
        .measurement_time(cfg.measurement)
        .warm_up_time(cfg.warm_up);
    for n in [2usize, 8, 32, 128] {
        let lock = bakery_core::BakeryPlusPlusLock::with_bound(n, 65_535);
        let slot = lock.register().expect("slot");
        group.bench_function(format!("n{n}"), |b| {
            b.iter(|| {
                let guard = lock.lock(&slot);
                std::hint::black_box(&guard);
                drop(guard);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_uncontended, bench_bakery_scan_scaling);
criterion_main!(benches);
