//! Ablation benches for the design choices called out in DESIGN.md §7:
//!
//! * register bound `M` — how small can `M` get before the Bakery++ reset
//!   path starts costing throughput (the §7 "price of the guarantee");
//! * overflow policy — what the bounded *classic* Bakery costs under the
//!   different machine behaviours (wrap vs saturate) it might encounter.

use std::sync::Arc;

use bakery_bench::quick_criterion;
use bakery_core::registers::OverflowPolicy;
use bakery_core::{BakeryLock, BakeryPlusPlusLock, RawMutexAlgorithm};
use bakery_harness::workload::{run_workload, Workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_bound_ablation(c: &mut Criterion) {
    let cfg = quick_criterion();
    let mut group = c.benchmark_group("ablation_bakery_pp_bound");
    group
        .sample_size(cfg.sample_size)
        .measurement_time(cfg.measurement)
        .warm_up_time(cfg.warm_up);
    for bound in [3u64, 15, 255, 65_535] {
        group.bench_with_input(BenchmarkId::from_parameter(bound), &bound, |b, &bound| {
            b.iter(|| {
                let lock = Arc::new(BakeryPlusPlusLock::with_bound(2, bound));
                run_workload(
                    lock as Arc<dyn RawMutexAlgorithm>,
                    &Workload {
                        threads: 2,
                        iterations_per_thread: 300,
                        critical_section_work: 4,
                        think_work: 4,
                    },
                )
            });
        });
    }
    group.finish();
}

fn bench_overflow_policy_ablation(c: &mut Criterion) {
    let cfg = quick_criterion();
    let mut group = c.benchmark_group("ablation_classic_bakery_overflow_policy");
    group
        .sample_size(cfg.sample_size)
        .measurement_time(cfg.measurement)
        .warm_up_time(cfg.warm_up);
    for (name, policy) in [
        ("wrap", OverflowPolicy::Wrap),
        ("saturate", OverflowPolicy::Saturate),
        ("report", OverflowPolicy::Report),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                // Single-threaded doorway cycling with a standing customer, so
                // overflow handling is on the hot path without risking the
                // mutual-exclusion corruption a threaded run would suffer.
                let lock = BakeryLock::with_bound_and_policy(2, 63, policy);
                let _ = lock.try_doorway(1);
                for _ in 0..200 {
                    let outcome = lock.try_doorway(0);
                    std::hint::black_box(outcome);
                    lock.release(0);
                }
                lock.stats().snapshot()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bound_ablation, bench_overflow_policy_ablation);
criterion_main!(benches);
