//! E1 — §3 alternation cost per round: classic Bakery (which overflows) vs
//! Bakery++ (which caps and resets), across register bounds.

use bakery_bench::quick_criterion;
use bakery_harness::experiments::e1_overflow::{run_classic_alternation, run_pp_alternation};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_alternation(c: &mut Criterion) {
    let cfg = quick_criterion();
    let mut group = c.benchmark_group("e1_alternation_rounds");
    group
        .sample_size(cfg.sample_size)
        .measurement_time(cfg.measurement)
        .warm_up_time(cfg.warm_up);
    let rounds = 2_000u64;
    for bound in [15u64, 255, 65_535] {
        group.bench_with_input(BenchmarkId::new("bakery", bound), &bound, |b, &bound| {
            b.iter(|| run_classic_alternation(bound, rounds));
        });
        group.bench_with_input(BenchmarkId::new("bakery_pp", bound), &bound, |b, &bound| {
            b.iter(|| run_pp_alternation(bound, rounds));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_alternation);
criterion_main!(benches);
