//! E2 — exhaustive model-checking time for small (N, M) instances of the
//! Bakery++ and classic Bakery specifications (the TLC stand-in cost).

use bakery_bench::quick_criterion;
use bakery_mc::ModelChecker;
use bakery_spec::{BakeryPlusPlusSpec, BakerySpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_model_check(c: &mut Criterion) {
    let cfg = quick_criterion();
    let mut group = c.benchmark_group("e2_model_check");
    group
        .sample_size(cfg.sample_size)
        .measurement_time(cfg.measurement)
        .warm_up_time(cfg.warm_up);
    for bound in [2u64, 3] {
        group.bench_with_input(
            BenchmarkId::new("bakery_pp_n2", bound),
            &bound,
            |b, &bound| {
                b.iter(|| {
                    let spec = BakeryPlusPlusSpec::new(2, bound);
                    ModelChecker::new(&spec).with_paper_invariants().run()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("bakery_n2", bound),
            &bound,
            |b, &bound| {
                b.iter(|| {
                    let spec = BakerySpec::new(2, bound);
                    ModelChecker::new(&spec).with_paper_invariants().run()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_model_check);
criterion_main!(benches);
