//! # bakery-bench
//!
//! Criterion benchmark harness for the Bakery++ reproduction suite.  One
//! bench target per experiment of EXPERIMENTS.md that has a timing component:
//!
//! | bench target | experiment | what it measures |
//! |---|---|---|
//! | `e1_ticket_growth` | E1 | cost of the §3 alternation per round, classic vs Bakery++ |
//! | `e2_model_check` | E2 | exhaustive model-checking time for small (N, M) instances |
//! | `e6_steps_per_acquisition` | E6 | uncontended acquire/release cost of every real lock |
//! | `e7_throughput` | E7 | contended throughput of the main locks at 2 and 4 threads |
//! | `e8_fairness` | E8 | trace generation + FIFO-inversion analysis cost |
//! | `e9_increment_rate` | E9 | ticket draw rate feeding the time-to-overflow extrapolation |
//! | `ablation` | DESIGN §7 | bound size and overflow-policy ablations |
//!
//! All groups use a reduced sample size and measurement time so
//! `cargo bench --workspace` completes in a few minutes; the experiment
//! binary (`bakery-experiments`) is the tool for full-sized runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Duration;

/// Returns a Criterion configuration sized so the whole workspace bench run
/// stays in the minutes range.
#[must_use]
pub fn quick_criterion() -> criterion_config::Config {
    criterion_config::Config {
        sample_size: 10,
        measurement: Duration::from_millis(800),
        warm_up: Duration::from_millis(300),
    }
}

/// A tiny indirection so the library does not itself depend on criterion
/// (criterion is a dev-dependency of the bench targets only).
pub mod criterion_config {
    use std::time::Duration;

    /// Sample-size / timing knobs shared by every bench target.
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// Criterion sample size.
        pub sample_size: usize,
        /// Measurement time per benchmark.
        pub measurement: Duration,
        /// Warm-up time per benchmark.
        pub warm_up: Duration,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_config_is_small() {
        let c = quick_criterion();
        assert_eq!(c.sample_size, 10);
        assert!(c.measurement < Duration::from_secs(2));
        assert!(c.warm_up < c.measurement);
    }
}
