//! `bench-json` — the suite's machine-readable perf baseline.
//!
//! Runs the two timing experiments that gate the packed-snapshot work and
//! writes their results as JSON, establishing the first point of the perf
//! trajectory that later PRs extend:
//!
//! * **E6** (uncontended acquire/release latency): every Bakery-family lock
//!   in both scan modes across a range of process counts;
//! * **E7** (contended throughput): Bakery++ and classic Bakery in both scan
//!   modes at 2 and 4 threads;
//! * **E11** (lock-service churn): sessions attached/detached through the
//!   session plane at a ≥ 64× client-to-slot ratio, flat vs tree vs the
//!   adaptive lock (whose flat→tree migration fires mid-run);
//! * **E13** (async echo service): 10⁵ async clients multiplexed as futures
//!   over a ≤ 64-slot plane, swept across the wait strategies
//!   (spin / yield / park), reporting sessions/sec and attach-latency
//!   percentiles;
//! * **E2** (parallel-explorer scaling): the exhaustive tree close-out at
//!   1 / 2 / 4 worker threads (quick: the 2-process placement), reporting
//!   states/sec, states/sec/core (work efficiency) and the memory ceiling —
//!   and asserting the counts and digest are thread-count invariant.
//!
//! ```text
//! bench-json [--quick] [--out-dir DIR]
//! ```
//!
//! Output files: `BENCH_e2.json`, `BENCH_e6.json`, `BENCH_e7.json`,
//! `BENCH_e11.json`, `BENCH_e12.json` and `BENCH_e13.json` in `--out-dir`
//! (default: the current directory).  The summary — including the
//! packed-vs-padded improvement percentages — is also printed as
//! Markdown-ish text.

#![forbid(unsafe_code)]

use std::process::ExitCode;
use std::sync::Arc;

use bakery_core::registers::OverflowPolicy;
use bakery_core::{
    BakeryLock, BakeryPlusPlusLock, RawMutexAlgorithm, ScanMode, TreeBakery, DEFAULT_PP_BOUND,
};
use bakery_harness::experiments::e10_tree_scale::{flat_scan_words, ARITY as TREE_ARITY};
use bakery_harness::experiments::e11_lock_service::{run_service, service_locks, ServiceConfig};
use bakery_harness::workload::{measure_uncontended, run_workload, Workload};

/// Capacities the large-N tree sections sweep (the E10 sweep, kept in the
/// harness so the two reports can never drift apart).
const TREE_SIZES: [usize; 3] = bakery_harness::experiments::e10_tree_scale::SIZES;

/// One uncontended-latency measurement.
#[derive(Debug, Clone)]
struct E6Entry {
    algorithm: String,
    mode: String,
    processes: usize,
    bound: u64,
    ns_per_acquire: f64,
    fast_path_hits: u64,
    overflow_attempts: u64,
}
bakery_json::json_object!(E6Entry {
    algorithm,
    mode,
    processes,
    bound,
    ns_per_acquire,
    fast_path_hits,
    overflow_attempts,
});

/// One contended-throughput measurement.
#[derive(Debug, Clone)]
struct E7Entry {
    algorithm: String,
    mode: String,
    threads: usize,
    bound: u64,
    acquisitions_per_sec: f64,
    p99_latency_ns: u64,
    fairness_ratio: f64,
    fast_path_hits: u64,
    overflow_attempts: u64,
}
bakery_json::json_object!(E7Entry {
    algorithm,
    mode,
    threads,
    bound,
    acquisitions_per_sec,
    p99_latency_ns,
    fairness_ratio,
    fast_path_hits,
    overflow_attempts,
});

/// Packed-vs-padded comparison for one configuration.
#[derive(Debug, Clone)]
struct Comparison {
    algorithm: String,
    processes: usize,
    padded: f64,
    packed: f64,
    /// Positive = packed is better.  For E6 this is latency reduction, for
    /// E7 throughput gain, both in percent.
    improvement_pct: f64,
}
bakery_json::json_object!(Comparison {
    algorithm,
    processes,
    padded,
    packed,
    improvement_pct,
});

/// Aggregated statistics of one tree level after a measurement.
#[derive(Debug, Clone)]
struct TreeLevelStats {
    level: usize,
    nodes: usize,
    fast_path_hits: u64,
    doorway_waits: u64,
    l1_waits: u64,
    resets: u64,
    max_ticket: u64,
}
bakery_json::json_object!(TreeLevelStats {
    level,
    nodes,
    fast_path_hits,
    doorway_waits,
    l1_waits,
    resets,
    max_ticket,
});

/// One large-N uncontended measurement (flat packed Bakery++ or the tree).
#[derive(Debug, Clone)]
struct TreeE6Entry {
    algorithm: String,
    processes: usize,
    /// Tree arity K (0 for the flat baseline).
    arity: usize,
    /// Node levels on the acquisition path (1 for the flat baseline).
    levels: usize,
    ns_per_acquire: f64,
    /// Words one uncontended doorway pass scans — the sub-linearity metric.
    doorway_scan_words: usize,
    per_level: Vec<TreeLevelStats>,
    overflow_attempts: u64,
}
bakery_json::json_object!(TreeE6Entry {
    algorithm,
    processes,
    arity,
    levels,
    ns_per_acquire,
    doorway_scan_words,
    per_level,
    overflow_attempts,
});

/// Flat-vs-tree comparison at one capacity.
#[derive(Debug, Clone)]
struct TreeComparison {
    processes: usize,
    flat_ns: f64,
    tree_ns: f64,
    /// Positive = the tree is faster (latency reduction in percent).
    speedup_pct: f64,
    flat_scan_words: usize,
    tree_scan_words: usize,
}
bakery_json::json_object!(TreeComparison {
    processes,
    flat_ns,
    tree_ns,
    speedup_pct,
    flat_scan_words,
    tree_scan_words,
});

#[derive(Debug, Clone)]
struct E6Report {
    schema: String,
    experiment: String,
    quick: bool,
    entries: Vec<E6Entry>,
    /// Latency reduction of packed vs padded per (algorithm, processes).
    comparisons: Vec<Comparison>,
    /// Large-N section: flat packed Bakery++ vs the tree composite.
    tree_entries: Vec<TreeE6Entry>,
    tree_comparisons: Vec<TreeComparison>,
}
bakery_json::json_object!(E6Report {
    schema,
    experiment,
    quick,
    entries,
    comparisons,
    tree_entries,
    tree_comparisons,
});

/// One large-N contended measurement: a few live threads on a
/// large-capacity lock.
#[derive(Debug, Clone)]
struct TreeE7Entry {
    algorithm: String,
    capacity: usize,
    threads: usize,
    acquisitions_per_sec: f64,
    p99_latency_ns: u64,
    fast_path_hits: u64,
    resets: u64,
    /// Summed across *all* repetitions of this configuration (the other
    /// fields describe the best repetition), so the overflow gate in `main`
    /// sees every repetition, not just the retained one.
    overflow_attempts: u64,
    per_level: Vec<TreeLevelStats>,
}
bakery_json::json_object!(TreeE7Entry {
    algorithm,
    capacity,
    threads,
    acquisitions_per_sec,
    p99_latency_ns,
    fast_path_hits,
    resets,
    overflow_attempts,
    per_level,
});

/// Flat-vs-tree contended comparison at one capacity (median of paired
/// per-repetition throughput ratios, as in the E7 main section).
#[derive(Debug, Clone)]
struct TreeThroughputComparison {
    capacity: usize,
    threads: usize,
    flat_acq_per_sec: f64,
    tree_acq_per_sec: f64,
    /// Positive = the tree is faster (throughput gain in percent).
    gain_pct: f64,
}
bakery_json::json_object!(TreeThroughputComparison {
    capacity,
    threads,
    flat_acq_per_sec,
    tree_acq_per_sec,
    gain_pct,
});

#[derive(Debug, Clone)]
struct E7Report {
    schema: String,
    experiment: String,
    quick: bool,
    /// Logical CPUs available during the run.  With fewer CPUs than worker
    /// threads the numbers measure scheduling as much as the lock, so
    /// cross-machine comparisons should check this field first.
    cpus: usize,
    /// Repetitions per configuration; each entry is the best of these.
    repetitions: usize,
    entries: Vec<E7Entry>,
    /// Throughput gain of packed vs padded per (algorithm, threads).
    comparisons: Vec<Comparison>,
    /// Large-N section: 4 live threads on 256/512/1024-capacity locks.
    tree_entries: Vec<TreeE7Entry>,
    tree_comparisons: Vec<TreeThroughputComparison>,
}
bakery_json::json_object!(E7Report {
    schema,
    experiment,
    quick,
    cpus,
    repetitions,
    entries,
    comparisons,
    tree_entries,
    tree_comparisons,
});

/// One E2 scaling measurement: the exhaustive scaling configuration at one
/// worker-thread count.
#[derive(Debug, Clone)]
struct E2Entry {
    configuration: String,
    threads: usize,
    wall_s: f64,
    states: usize,
    canonical_states: usize,
    transitions: usize,
    max_depth: usize,
    frontier_digest: u64,
    states_per_sec: f64,
    states_per_sec_per_core: f64,
    store_bytes: usize,
    peak_rss_bytes: usize,
}
bakery_json::json_object!(E2Entry {
    configuration,
    threads,
    wall_s,
    states,
    canonical_states,
    transitions,
    max_depth,
    frontier_digest,
    states_per_sec,
    states_per_sec_per_core,
    store_bytes,
    peak_rss_bytes,
});

/// One atomic-vs-safe register-semantics comparison row: the same
/// configuration explored exhaustively under both register models.
#[derive(Debug, Clone)]
struct E2SemanticsEntry {
    algorithm: String,
    n: usize,
    bound: u64,
    atomic_states: usize,
    safe_states: usize,
    blowup: f64,
    complete: bool,
}
bakery_json::json_object!(E2SemanticsEntry {
    algorithm,
    n,
    bound,
    atomic_states,
    safe_states,
    blowup,
    complete,
});

#[derive(Debug, Clone)]
struct E2Report {
    schema: String,
    experiment: String,
    quick: bool,
    /// Logical CPUs available during the run: with fewer CPUs than worker
    /// threads the multi-thread rows measure scheduling, not scaling, and
    /// only the work-efficiency (states/sec/core at 1 thread vs the
    /// sequential trajectory) is meaningful.
    cpus: usize,
    entries: Vec<E2Entry>,
    /// Atomic vs safe (flickering) register state-space sizes for the
    /// n = 2 / n = 3 close-outs (the weak-register plane's E2 column).
    semantics: Vec<E2SemanticsEntry>,
}
bakery_json::json_object!(E2Report {
    schema,
    experiment,
    quick,
    cpus,
    entries,
    semantics,
});

fn run_e2(quick: bool) -> E2Report {
    use bakery_harness::experiments::e2_model_check::{scaling_row, semantics_rows};
    let mut entries = Vec::new();
    for threads in [1usize, 2, 4] {
        eprintln!("bench-json: E2 scaling run at {threads} thread(s)...");
        let row = scaling_row(quick, threads);
        entries.push(E2Entry {
            configuration: row.configuration,
            threads: row.threads,
            wall_s: row.wall_s,
            states: row.states,
            canonical_states: row.canonical_states,
            transitions: row.transitions,
            max_depth: row.max_depth,
            frontier_digest: row.frontier_digest,
            states_per_sec: row.states_per_sec,
            states_per_sec_per_core: row.states_per_sec_per_core,
            store_bytes: row.store_bytes,
            peak_rss_bytes: row.peak_rss_bytes,
        });
    }
    // The determinism gate: every row explored the same space and must have
    // found bit-identical counts and digest.
    let first = &entries[0];
    for row in &entries[1..] {
        assert_eq!(
            (row.states, row.canonical_states, row.transitions, row.max_depth, row.frontier_digest),
            (
                first.states,
                first.canonical_states,
                first.transitions,
                first.max_depth,
                first.frontier_digest
            ),
            "E2: exploration results must be thread-count invariant"
        );
    }
    eprintln!("bench-json: E2 atomic-vs-safe register semantics rows...");
    let semantics = semantics_rows(quick)
        .into_iter()
        .map(|row| E2SemanticsEntry {
            algorithm: row.algorithm,
            n: row.n,
            bound: row.bound,
            atomic_states: row.atomic_states,
            safe_states: row.safe_states,
            blowup: row.blowup,
            complete: row.complete,
        })
        .collect();
    E2Report {
        schema: "bakery-bench/e2/v2".to_string(),
        experiment: "E2 parallel-explorer scaling: exhaustive BFS states/sec by thread count"
            .to_string(),
        quick,
        cpus: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        entries,
        semantics,
    }
}

fn bakery_pair(n: usize, bound: u64, mode: ScanMode) -> Vec<(String, Arc<dyn RawMutexAlgorithm>)> {
    vec![
        (
            "bakery".to_string(),
            Arc::new(BakeryLock::with_config(
                n,
                bakery_core::DEFAULT_BOUND,
                OverflowPolicy::Wrap,
                mode,
            )),
        ),
        (
            "bakery++".to_string(),
            Arc::new(BakeryPlusPlusLock::with_bound_and_mode(n, bound, mode)),
        ),
    ]
}

fn run_e6(quick: bool) -> E6Report {
    let (iterations, samples) = if quick { (20_000, 5) } else { (100_000, 9) };
    let bound = DEFAULT_PP_BOUND;
    let mut entries = Vec::new();
    for &n in &[4usize, 32, 128] {
        for mode in [ScanMode::Padded, ScanMode::Packed] {
            for (name, lock) in bakery_pair(n, bound, mode) {
                let ns = measure_uncontended(lock.as_ref(), iterations, samples);
                let stats = lock.stats().snapshot();
                entries.push(E6Entry {
                    algorithm: name,
                    mode: mode.name().to_string(),
                    processes: n,
                    // Per-lock: classic bakery runs effectively unbounded.
                    bound: lock.register_bound().unwrap_or(u64::MAX),
                    ns_per_acquire: ns,
                    fast_path_hits: stats.fast_path_hits,
                    overflow_attempts: stats.overflow_attempts,
                });
            }
        }
    }
    let comparisons = comparisons_of(
        &entries,
        |e| (e.algorithm.clone(), e.processes, e.mode.clone(), e.ns_per_acquire),
        // Latency: improvement = reduction.
        |padded, packed| (padded - packed) / padded * 100.0,
    );
    let (tree_entries, tree_comparisons) = run_e6_tree(quick);
    E6Report {
        schema: "bakery-bench/e6/v2".to_string(),
        experiment: "E6 uncontended acquire/release latency".to_string(),
        quick,
        entries,
        comparisons,
        tree_entries,
        tree_comparisons,
    }
}

/// Aggregates one tree's per-level statistics.
fn tree_level_stats(tree: &TreeBakery) -> Vec<TreeLevelStats> {
    (0..tree.depth())
        .map(|level| {
            let s = tree.level_snapshot(level);
            TreeLevelStats {
                level,
                nodes: tree.nodes_at(level),
                fast_path_hits: s.fast_path_hits,
                doorway_waits: s.doorway_waits,
                l1_waits: s.l1_waits,
                resets: s.resets,
                max_ticket: s.max_ticket,
            }
        })
        .collect()
}

/// The large-N uncontended section: flat packed Bakery++ vs the 8-ary tree
/// at N = 256 / 512 / 1024.  The acceptance metric is `doorway_scan_words`:
/// the flat figure is linear in N, the tree's grows with `K·log_K N`.
fn run_e6_tree(quick: bool) -> (Vec<TreeE6Entry>, Vec<TreeComparison>) {
    let (iterations, samples) = if quick { (5_000, 3) } else { (50_000, 7) };
    let mut entries = Vec::new();
    let mut comparisons = Vec::new();
    for &n in &TREE_SIZES {
        let flat = BakeryPlusPlusLock::with_bound(n, DEFAULT_PP_BOUND);
        let flat_ns = measure_uncontended(&flat, iterations, samples);
        let flat_words = flat_scan_words(n);
        entries.push(TreeE6Entry {
            algorithm: "bakery++-flat".to_string(),
            processes: n,
            arity: 0,
            levels: 1,
            ns_per_acquire: flat_ns,
            doorway_scan_words: flat_words,
            per_level: Vec::new(),
            overflow_attempts: flat.stats().overflow_attempts(),
        });

        let tree = TreeBakery::with_arity(n, TREE_ARITY);
        let tree_ns = measure_uncontended(&tree, iterations, samples);
        let tree_words = tree.doorway_scan_words();
        entries.push(TreeE6Entry {
            algorithm: "tree-bakery".to_string(),
            processes: n,
            arity: TREE_ARITY,
            levels: tree.depth(),
            ns_per_acquire: tree_ns,
            doorway_scan_words: tree_words,
            per_level: tree_level_stats(&tree),
            overflow_attempts: tree.aggregate_snapshot().overflow_attempts,
        });

        comparisons.push(TreeComparison {
            processes: n,
            flat_ns,
            tree_ns,
            speedup_pct: (flat_ns - tree_ns) / flat_ns * 100.0,
            flat_scan_words: flat_words,
            tree_scan_words: tree_words,
        });
    }
    (entries, comparisons)
}

fn median(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.total_cmp(b));
    values[values.len() / 2]
}

fn run_e7(quick: bool) -> E7Report {
    let bound = DEFAULT_PP_BOUND;
    let repetitions = if quick { 7 } else { 21 };
    let mut entries = Vec::new();
    let mut comparisons = Vec::new();
    for &threads in &[2usize, 4] {
        for lock_index in 0..2 {
            // Paired A/B design: each repetition runs the padded and the
            // packed lock back to back on fresh locks, and the improvement is
            // the median of the per-repetition ratios.  On a machine with
            // fewer CPUs than workers (often a single shared CPU here) whole
            // runs drift between a fast serial-burst regime and a slow
            // context-switch-bound regime; pairing cancels that drift where
            // an unpaired best-of-k cannot.
            let mut ratios: Vec<f64> = Vec::with_capacity(repetitions);
            let mut padded_thr: Vec<f64> = Vec::with_capacity(repetitions);
            let mut packed_thr: Vec<f64> = Vec::with_capacity(repetitions);
            let mut sample: Vec<Option<E7Entry>> = vec![None, None];
            for _ in 0..repetitions {
                let mut pair_thr = [0.0f64; 2];
                for (slot, mode) in [ScanMode::Padded, ScanMode::Packed].into_iter().enumerate()
                {
                    let (name, lock) = bakery_pair(threads, bound, mode).swap_remove(lock_index);
                    let workload = Workload {
                        threads,
                        iterations_per_thread: if quick { 1_000 } else { 4_000 },
                        critical_section_work: 16,
                        think_work: 16,
                    };
                    let result = run_workload(Arc::clone(&lock), &workload);
                    pair_thr[slot] = result.throughput();
                    let entry = E7Entry {
                        algorithm: name,
                        mode: mode.name().to_string(),
                        threads,
                        bound: lock.register_bound().unwrap_or(u64::MAX),
                        acquisitions_per_sec: result.throughput(),
                        p99_latency_ns: result.latency.quantile_ns(0.99),
                        fairness_ratio: result.fairness_ratio(),
                        fast_path_hits: result.fast_path_hits,
                        overflow_attempts: result.overflow_attempts,
                    };
                    let better = sample[slot]
                        .as_ref()
                        .is_none_or(|b| entry.acquisitions_per_sec > b.acquisitions_per_sec);
                    if better {
                        sample[slot] = Some(entry);
                    }
                }
                padded_thr.push(pair_thr[0]);
                packed_thr.push(pair_thr[1]);
                ratios.push(pair_thr[1] / pair_thr[0]);
            }
            let median_ratio = median(&mut ratios);
            let (algorithm, processes) = {
                let best = sample[0].as_ref().expect("at least one repetition");
                (best.algorithm.clone(), best.threads)
            };
            comparisons.push(Comparison {
                algorithm,
                processes,
                padded: median(&mut padded_thr),
                packed: median(&mut packed_thr),
                improvement_pct: (median_ratio - 1.0) * 100.0,
            });
            entries.extend(sample.into_iter().flatten());
        }
    }
    let (tree_entries, tree_comparisons) = run_e7_tree(quick);
    E7Report {
        schema: "bakery-bench/e7/v2".to_string(),
        experiment: "E7 contended throughput".to_string(),
        quick,
        cpus: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        repetitions,
        entries,
        comparisons,
        tree_entries,
        tree_comparisons,
    }
}

/// The large-N contended section: 4 live threads on 256/512/1024-capacity
/// locks, flat packed Bakery++ vs the 8-ary tree.  Paired A/B repetitions
/// with a median-of-ratios gain, as in the main E7 section.
fn run_e7_tree(quick: bool) -> (Vec<TreeE7Entry>, Vec<TreeThroughputComparison>) {
    let threads = 4;
    let repetitions = if quick { 3 } else { 7 };
    let mut entries = Vec::new();
    let mut comparisons = Vec::new();
    for &n in &TREE_SIZES {
        let workload = Workload {
            threads,
            iterations_per_thread: if quick { 500 } else { 2_000 },
            critical_section_work: 16,
            think_work: 16,
        };
        let mut ratios: Vec<f64> = Vec::with_capacity(repetitions);
        let mut flat_thr: Vec<f64> = Vec::with_capacity(repetitions);
        let mut tree_thr: Vec<f64> = Vec::with_capacity(repetitions);
        let mut best: [Option<TreeE7Entry>; 2] = [None, None];
        let mut overflow_sums = [0u64; 2];
        for _ in 0..repetitions {
            let flat: Arc<dyn RawMutexAlgorithm> =
                Arc::new(BakeryPlusPlusLock::with_bound(n, DEFAULT_PP_BOUND));
            let flat_result = run_workload(Arc::clone(&flat), &workload);
            let flat_entry = TreeE7Entry {
                algorithm: "bakery++-flat".to_string(),
                capacity: n,
                threads,
                acquisitions_per_sec: flat_result.throughput(),
                p99_latency_ns: flat_result.latency.quantile_ns(0.99),
                fast_path_hits: flat_result.fast_path_hits,
                resets: flat_result.resets,
                overflow_attempts: flat_result.overflow_attempts,
                per_level: Vec::new(),
            };

            let tree = Arc::new(TreeBakery::with_arity(n, TREE_ARITY));
            let tree_result = run_workload(
                Arc::clone(&tree) as Arc<dyn RawMutexAlgorithm>,
                &workload,
            );
            let aggregate = tree.aggregate_snapshot();
            let tree_entry = TreeE7Entry {
                algorithm: "tree-bakery".to_string(),
                capacity: n,
                threads,
                acquisitions_per_sec: tree_result.throughput(),
                p99_latency_ns: tree_result.latency.quantile_ns(0.99),
                fast_path_hits: aggregate.fast_path_hits,
                resets: aggregate.resets,
                overflow_attempts: aggregate.overflow_attempts,
                per_level: tree_level_stats(&tree),
            };

            ratios.push(tree_entry.acquisitions_per_sec / flat_entry.acquisitions_per_sec);
            flat_thr.push(flat_entry.acquisitions_per_sec);
            tree_thr.push(tree_entry.acquisitions_per_sec);
            for (slot, entry) in [flat_entry, tree_entry].into_iter().enumerate() {
                overflow_sums[slot] += entry.overflow_attempts;
                let better = best[slot]
                    .as_ref()
                    .is_none_or(|b| entry.acquisitions_per_sec > b.acquisitions_per_sec);
                if better {
                    best[slot] = Some(entry);
                }
            }
        }
        // The retained entry carries the overflow total of every repetition,
        // so discarding a slow-but-overflowing repetition cannot hide it.
        for (slot, entry) in best.iter_mut().enumerate() {
            if let Some(entry) = entry {
                entry.overflow_attempts = overflow_sums[slot];
            }
        }
        let median_ratio = median(&mut ratios);
        comparisons.push(TreeThroughputComparison {
            capacity: n,
            threads,
            flat_acq_per_sec: median(&mut flat_thr),
            tree_acq_per_sec: median(&mut tree_thr),
            gain_pct: (median_ratio - 1.0) * 100.0,
        });
        entries.extend(best.into_iter().flatten());
    }
    (entries, comparisons)
}

/// Pairs padded/packed measurements sharing (algorithm, size) and computes
/// the improvement percentage.
fn comparisons_of<E>(
    entries: &[E],
    key: impl Fn(&E) -> (String, usize, String, f64),
    improvement: impl Fn(f64, f64) -> f64,
) -> Vec<Comparison> {
    let keyed: Vec<(String, usize, String, f64)> = entries.iter().map(key).collect();
    let mut comparisons = Vec::new();
    for (algorithm, size, mode, padded_value) in &keyed {
        if mode != "padded" {
            continue;
        }
        let packed_value = keyed
            .iter()
            .find(|(a, s, m, _)| a == algorithm && s == size && m == "packed")
            .map(|(_, _, _, v)| *v);
        if let Some(packed_value) = packed_value {
            comparisons.push(Comparison {
                algorithm: algorithm.clone(),
                processes: *size,
                padded: *padded_value,
                packed: packed_value,
                improvement_pct: improvement(*padded_value, packed_value),
            });
        }
    }
    comparisons
}

fn print_comparisons(title: &str, unit: &str, comparisons: &[Comparison]) {
    println!("\n## {title}");
    println!("| algorithm | size | padded {unit} | packed {unit} | improvement |");
    println!("|---|---|---|---|---|");
    for c in comparisons {
        println!(
            "| {} | {} | {:.1} | {:.1} | {:+.1}% |",
            c.algorithm, c.processes, c.padded, c.packed, c.improvement_pct
        );
    }
}

/// One lock-service churn measurement (experiment E11, round-trip schedule:
/// rush → churn → subside).
#[derive(Debug, Clone)]
struct E11Entry {
    algorithm: String,
    slots: usize,
    clients: usize,
    subside_clients: usize,
    cs_per_session: u64,
    sessions_per_sec: f64,
    cs_per_sec: f64,
    attaches: u64,
    detaches: u64,
    aliasing_violations: u64,
    fast_path_hits: u64,
    migrations_forward: u64,
    migrations_reverse: u64,
    crash_aborts: u64,
    seat_recoveries: u64,
    round_trip: bool,
}
bakery_json::json_object!(E11Entry {
    algorithm,
    slots,
    clients,
    subside_clients,
    cs_per_session,
    sessions_per_sec,
    cs_per_sec,
    attaches,
    detaches,
    aliasing_violations,
    fast_path_hits,
    migrations_forward,
    migrations_reverse,
    crash_aborts,
    seat_recoveries,
    round_trip,
});

#[derive(Debug, Clone)]
struct E11Report {
    schema: String,
    experiment: String,
    quick: bool,
    oversubscription: usize,
    entries: Vec<E11Entry>,
}
bakery_json::json_object!(E11Report {
    schema,
    experiment,
    quick,
    oversubscription,
    entries,
});

fn run_e11(quick: bool) -> E11Report {
    let config = ServiceConfig::standard(quick);
    let mut entries = Vec::new();
    for (lock, adaptive) in service_locks(&config) {
        let algorithm = lock.algorithm_name().to_string();
        let result = run_service(lock, &config, adaptive.as_ref());
        assert_eq!(
            result.aliasing_violations, 0,
            "{algorithm}: the session plane must never alias a slot"
        );
        if result.final_phase.is_some() {
            assert_eq!(
                (result.migrations_forward, result.migrations_reverse),
                (1, 1),
                "{algorithm}: the churn-then-subside schedule must round-trip exactly once"
            );
        }
        entries.push(E11Entry {
            algorithm,
            slots: config.slots,
            clients: config.clients,
            subside_clients: config.subside_clients,
            cs_per_session: config.cs_per_session,
            sessions_per_sec: result.sessions_per_sec(),
            cs_per_sec: result.cs_per_sec(),
            attaches: result.attaches,
            detaches: result.detaches,
            aliasing_violations: result.aliasing_violations,
            fast_path_hits: result.fast_path_hits,
            migrations_forward: result.migrations_forward,
            migrations_reverse: result.migrations_reverse,
            crash_aborts: result.crash_aborts,
            seat_recoveries: result.seat_recoveries,
            round_trip: result.final_phase == Some(bakery_core::adaptive::EPOCH_FLAT)
                && result.migrations_forward == 1
                && result.migrations_reverse == 1,
        });
    }
    E11Report {
        // v3: carries the crash-recovery counters (crash_aborts /
        // seat_recoveries) introduced with the E12 kill-and-recover plane.
        schema: "bakery-bench/e11/v3".to_string(),
        experiment: "E11 lock-service session churn with round-trip subside".to_string(),
        quick,
        oversubscription: config.oversubscription(),
        entries,
    }
}

/// One kill-and-recover measurement (experiment E12): E11's churn with
/// crashes injected on a fixed schedule at one swept rate.
#[derive(Debug, Clone)]
struct E12Entry {
    algorithm: String,
    /// `0` = the crash-free baseline, otherwise every `crash_period`-th
    /// client of a round is killed.
    crash_period: u64,
    completed_sessions: u64,
    injected_crashes: u64,
    cs_crashes: u64,
    cs_per_sec: f64,
    /// Throughput delta vs the same lock's crash-free baseline, percent
    /// (0 for the baseline row itself).
    vs_crash_free_pct: f64,
    recycled_idle: u64,
    quarantined: u64,
    refused: u64,
    crash_aborts: u64,
    seat_recoveries: u64,
    aliasing_violations: u64,
    recovery_ns_mean: f64,
    recovery_ns_max: u64,
    waiter_blocked_ns_mean: f64,
    waiter_blocked_ns_max: u64,
}
bakery_json::json_object!(E12Entry {
    algorithm,
    crash_period,
    completed_sessions,
    injected_crashes,
    cs_crashes,
    cs_per_sec,
    vs_crash_free_pct,
    recycled_idle,
    quarantined,
    refused,
    crash_aborts,
    seat_recoveries,
    aliasing_violations,
    recovery_ns_mean,
    recovery_ns_max,
    waiter_blocked_ns_mean,
    waiter_blocked_ns_max,
});

/// One raw ticket-holder probe measurement (E12's `l2`/`l3` crash sites).
#[derive(Debug, Clone)]
struct E12ProbeEntry {
    site: String,
    mode: String,
    samples: u64,
    recovery_ns_mean: f64,
    recovery_ns_max: u64,
}
bakery_json::json_object!(E12ProbeEntry {
    site,
    mode,
    samples,
    recovery_ns_mean,
    recovery_ns_max,
});

#[derive(Debug, Clone)]
struct E12Report {
    schema: String,
    experiment: String,
    quick: bool,
    entries: Vec<E12Entry>,
    probe: Vec<E12ProbeEntry>,
}
bakery_json::json_object!(E12Report {
    schema,
    experiment,
    quick,
    entries,
    probe,
});

fn run_e12(quick: bool) -> E12Report {
    use bakery_harness::experiments::e12_kill_recover::{
        kill_locks, run_kill, run_probe, CrashSite, KillConfig,
    };
    let slots = KillConfig::standard(quick, None).slots;
    let mut entries = Vec::new();
    for which in 0..kill_locks(slots).len() {
        let mut baseline = 0.0_f64;
        for period in KillConfig::swept_periods() {
            // Killed clients leak their plane by design, so every run gets
            // a fresh lock (see `kill_locks`).
            let lock = kill_locks(slots).swap_remove(which);
            let config = KillConfig::standard(quick, period);
            let result = run_kill(lock, &config);
            assert_eq!(
                result.aliasing_violations, 0,
                "{}: crash recovery must never alias a seat",
                result.algorithm
            );
            assert_eq!(
                result.seat_recoveries,
                result.injected_crashes + result.cs_crashes,
                "{}: every injected crash must be recovered",
                result.algorithm
            );
            let cs_per_sec = result.cs_per_sec();
            let vs_crash_free_pct = if period.is_none() {
                baseline = cs_per_sec;
                0.0
            } else if baseline > 0.0 {
                (cs_per_sec - baseline) / baseline * 100.0
            } else {
                0.0
            };
            entries.push(E12Entry {
                algorithm: result.algorithm.clone(),
                crash_period: period.unwrap_or(0) as u64,
                completed_sessions: result.completed_sessions,
                injected_crashes: result.injected_crashes,
                cs_crashes: result.cs_crashes,
                cs_per_sec,
                vs_crash_free_pct,
                recycled_idle: result.recycled_idle,
                quarantined: result.quarantined,
                refused: result.refused,
                crash_aborts: result.crash_aborts,
                seat_recoveries: result.seat_recoveries,
                aliasing_violations: result.aliasing_violations,
                recovery_ns_mean: result.recovery.mean_ns(),
                recovery_ns_max: result.recovery.max_ns(),
                waiter_blocked_ns_mean: result.waiter_blocked.mean_ns(),
                waiter_blocked_ns_max: result.waiter_blocked.max_ns(),
            });
        }
    }
    let samples = if quick { 8 } else { 32 };
    let mut probe = Vec::new();
    for mode in [bakery_core::ScanMode::Packed, bakery_core::ScanMode::Padded] {
        for site in [CrashSite::L2, CrashSite::L3] {
            let result = run_probe(site, mode, samples);
            probe.push(E12ProbeEntry {
                site: result.site.name().to_string(),
                mode: format!("{mode:?}").to_lowercase(),
                samples: result.recovery.len() as u64,
                recovery_ns_mean: result.recovery.mean_ns(),
                recovery_ns_max: result.recovery.max_ns(),
            });
        }
    }
    E12Report {
        schema: "bakery-bench/e12/v1".to_string(),
        experiment: "E12 kill-and-recover: crash injection over the live lock stack".to_string(),
        quick,
        entries,
        probe,
    }
}

/// One async-echo measurement (experiment E13): the churn under one wait
/// strategy.
#[derive(Debug, Clone)]
struct E13Entry {
    strategy: String,
    slots: usize,
    clients: usize,
    connections: usize,
    echoes_per_client: u64,
    executor_workers: usize,
    sessions_per_sec: f64,
    echoes_per_sec: f64,
    attach_p50_ns: u64,
    attach_p99_ns: u64,
    attach_max_ns: u64,
    attach_mean_ns: f64,
    parks: u64,
    notifies: u64,
    park_timeouts: u64,
    aliasing_violations: u64,
}
bakery_json::json_object!(E13Entry {
    strategy,
    slots,
    clients,
    connections,
    echoes_per_client,
    executor_workers,
    sessions_per_sec,
    echoes_per_sec,
    attach_p50_ns,
    attach_p99_ns,
    attach_max_ns,
    attach_mean_ns,
    parks,
    notifies,
    park_timeouts,
    aliasing_violations,
});

#[derive(Debug, Clone)]
struct E13Report {
    schema: String,
    experiment: String,
    quick: bool,
    cpus: usize,
    /// Concurrent connection futures per plane slot.
    oversubscription: usize,
    entries: Vec<E13Entry>,
}
bakery_json::json_object!(E13Report {
    schema,
    experiment,
    quick,
    cpus,
    oversubscription,
    entries,
});

fn run_e13(quick: bool) -> E13Report {
    use bakery_harness::experiments::e13_async_echo::{run_echo, EchoConfig, STRATEGIES};
    let config = EchoConfig::standard(quick);
    let mut entries = Vec::new();
    for strategy in STRATEGIES {
        let result = run_echo(strategy, &config);
        assert_eq!(
            result.aliasing_violations, 0,
            "{strategy}: the async session plane must never alias a seat"
        );
        assert_eq!(
            result.completed_sessions, config.clients as u64,
            "{strategy}: every async client must complete"
        );
        entries.push(E13Entry {
            strategy: result.strategy.clone(),
            slots: config.slots,
            clients: config.clients,
            connections: config.connections,
            echoes_per_client: config.echoes_per_client,
            executor_workers: config.workers,
            sessions_per_sec: result.sessions_per_sec(),
            echoes_per_sec: result.echoes_per_sec(),
            attach_p50_ns: result.attach_latency.quantile_ns(0.5),
            attach_p99_ns: result.attach_latency.quantile_ns(0.99),
            attach_max_ns: result.attach_latency.max_ns(),
            attach_mean_ns: result.attach_latency.mean_ns() as f64,
            parks: result.parks,
            notifies: result.notifies,
            park_timeouts: result.park_timeouts,
            aliasing_violations: result.aliasing_violations,
        });
    }
    E13Report {
        schema: "bakery-bench/e13/v1".to_string(),
        experiment: "E13 async echo service: wait-strategy sweep over the session plane"
            .to_string(),
        quick,
        cpus: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        oversubscription: config.oversubscription(),
        entries,
    }
}

/// The experiment keys `--only` accepts, in run order.
const SECTIONS: [&str; 6] = ["e2", "e6", "e7", "e11", "e12", "e13"];

fn main() -> ExitCode {
    let mut quick = false;
    let mut out_dir = ".".to_string();
    let mut only: Option<Vec<String>> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" | "-q" => quick = true,
            "--out-dir" => match args.next() {
                Some(dir) => out_dir = dir,
                None => {
                    eprintln!("--out-dir requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--only" => match args.next() {
                Some(list) => {
                    let keys: Vec<String> = list
                        .split(',')
                        .map(|k| k.trim().to_ascii_lowercase())
                        .filter(|k| !k.is_empty())
                        .collect();
                    if let Some(bad) = keys.iter().find(|k| !SECTIONS.contains(&k.as_str())) {
                        eprintln!("--only: unknown experiment {bad:?} (expected one of {SECTIONS:?})");
                        return ExitCode::FAILURE;
                    }
                    only = Some(keys);
                }
                None => {
                    eprintln!("--only requires a comma-separated experiment list, e.g. e6,e13");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("usage: bench-json [--quick] [--out-dir DIR] [--only e2,e6,e7,e11,e12,e13]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    let want = |key: &str| only.as_ref().is_none_or(|keys| keys.iter().any(|k| k == key));

    let e2 = want("e2").then(|| {
        eprintln!("bench-json: measuring E2 (parallel-explorer scaling)...");
        run_e2(quick)
    });
    let e6 = want("e6").then(|| {
        eprintln!("bench-json: measuring E6 (uncontended latency)...");
        run_e6(quick)
    });
    let e7 = want("e7").then(|| {
        eprintln!("bench-json: measuring E7 (contended throughput)...");
        run_e7(quick)
    });
    let e11 = want("e11").then(|| {
        eprintln!("bench-json: measuring E11 (lock-service churn)...");
        run_e11(quick)
    });
    let e12 = want("e12").then(|| {
        eprintln!("bench-json: measuring E12 (kill-and-recover)...");
        run_e12(quick)
    });
    let e13 = want("e13").then(|| {
        eprintln!("bench-json: measuring E13 (async echo service)...");
        run_e13(quick)
    });

    if let Some(e2) = &e2 {
        println!("\n## E2 parallel-explorer scaling ({} CPUs)", e2.cpus);
        println!("| configuration | threads | wall s | states/s | states/s/core | store MB | peak RSS MB |");
        println!("|---|---|---|---|---|---|---|");
        for entry in &e2.entries {
            println!(
                "| {} | {} | {:.1} | {:.0} | {:.0} | {:.0} | {:.0} |",
                entry.configuration,
                entry.threads,
                entry.wall_s,
                entry.states_per_sec,
                entry.states_per_sec_per_core,
                entry.store_bytes as f64 / 1e6,
                entry.peak_rss_bytes as f64 / 1e6,
            );
        }
        println!("\n## E2b atomic vs safe (flickering) registers");
        println!("| algorithm | N | M | atomic states | safe states | blowup | complete |");
        println!("|---|---|---|---|---|---|---|");
        for row in &e2.semantics {
            println!(
                "| {} | {} | {} | {} | {} | {:.2}x | {} |",
                row.algorithm,
                row.n,
                row.bound,
                row.atomic_states,
                row.safe_states,
                row.blowup,
                if row.complete { "yes" } else { "no" },
            );
        }
    }
    if let Some(e6) = &e6 {
        print_comparisons("E6 uncontended acquire latency (ns)", "ns", &e6.comparisons);
    }
    if let Some(e7) = &e7 {
        print_comparisons("E7 contended throughput (acq/s)", "acq/s", &e7.comparisons);
    }

    if let Some(e6) = &e6 {
        println!("\n## E6 large-N: flat bakery++ vs tree-bakery (K={TREE_ARITY})");
        println!("| N | flat ns | tree ns | speedup | flat scan words | tree scan words |");
        println!("|---|---|---|---|---|---|");
        for c in &e6.tree_comparisons {
            println!(
                "| {} | {:.0} | {:.0} | {:+.1}% | {} | {} |",
                c.processes, c.flat_ns, c.tree_ns, c.speedup_pct, c.flat_scan_words, c.tree_scan_words
            );
        }
    }
    if let Some(e7) = &e7 {
        println!("\n## E7 large-N: 4 live threads, flat vs tree (acq/s)");
        println!("| N | flat acq/s | tree acq/s | gain |");
        println!("|---|---|---|---|");
        for c in &e7.tree_comparisons {
            println!(
                "| {} | {:.0} | {:.0} | {:+.1}% |",
                c.capacity, c.flat_acq_per_sec, c.tree_acq_per_sec, c.gain_pct
            );
        }
    }

    if let Err(err) = std::fs::create_dir_all(&out_dir) {
        eprintln!("failed to create {out_dir}: {err}");
        return ExitCode::FAILURE;
    }
    if let Some(e11) = &e11 {
        println!("\n## E11 lock-service churn ({}x oversubscribed)", e11.oversubscription);
        println!("| algorithm | sessions/s | cs/s | aliasing | migrations (fwd/rev) | round trip |");
        println!("|---|---|---|---|---|---|");
        for entry in &e11.entries {
            println!(
                "| {} | {:.0} | {:.0} | {} | {}/{} | {} |",
                entry.algorithm,
                entry.sessions_per_sec,
                entry.cs_per_sec,
                entry.aliasing_violations,
                entry.migrations_forward,
                entry.migrations_reverse,
                entry.round_trip
            );
        }
    }

    if let Some(e12) = &e12 {
        println!("\n## E12 kill-and-recover (crash injection over the session plane)");
        println!("| algorithm | period | crashes | cs/s | vs crash-free | recovered | aliasing | recovery µs mean/max |");
        println!("|---|---|---|---|---|---|---|---|");
        for entry in &e12.entries {
            println!(
                "| {} | {} | {}+{} | {:.0} | {:+.1}% | {}/{} | {} | {:.1}/{:.1} |",
                entry.algorithm,
                if entry.crash_period == 0 {
                    "-".to_string()
                } else {
                    format!("1/{}", entry.crash_period)
                },
                entry.injected_crashes,
                entry.cs_crashes,
                entry.cs_per_sec,
                entry.vs_crash_free_pct,
                entry.recycled_idle,
                entry.quarantined,
                entry.aliasing_violations,
                entry.recovery_ns_mean / 1_000.0,
                entry.recovery_ns_max as f64 / 1_000.0,
            );
        }
        println!("\n## E12 probe — dead ticket holders (raw bakery++)");
        println!("| site | mode | samples | recovery µs mean/max |");
        println!("|---|---|---|---|");
        for entry in &e12.probe {
            println!(
                "| {} | {} | {} | {:.1}/{:.1} |",
                entry.site,
                entry.mode,
                entry.samples,
                entry.recovery_ns_mean / 1_000.0,
                entry.recovery_ns_max as f64 / 1_000.0,
            );
        }
    }

    if let Some(e13) = &e13 {
        println!(
            "\n## E13 async echo service ({} clients / {} slots, {}x oversubscribed futures)",
            e13.entries.first().map_or(0, |e| e.clients),
            e13.entries.first().map_or(0, |e| e.slots),
            e13.oversubscription
        );
        println!("| strategy | sessions/s | echoes/s | attach p50 µs | attach p99 µs | notifies | aliasing |");
        println!("|---|---|---|---|---|---|---|");
        for entry in &e13.entries {
            println!(
                "| {} | {:.0} | {:.0} | {:.1} | {:.1} | {} | {} |",
                entry.strategy,
                entry.sessions_per_sec,
                entry.echoes_per_sec,
                entry.attach_p50_ns as f64 / 1_000.0,
                entry.attach_p99_ns as f64 / 1_000.0,
                entry.notifies,
                entry.aliasing_violations,
            );
        }
    }

    let mut outputs: Vec<(&str, Result<String, bakery_json::Error>)> = Vec::new();
    if let Some(e2) = &e2 {
        outputs.push(("BENCH_e2.json", bakery_json::to_string_pretty(e2)));
    }
    if let Some(e6) = &e6 {
        outputs.push(("BENCH_e6.json", bakery_json::to_string_pretty(e6)));
    }
    if let Some(e7) = &e7 {
        outputs.push(("BENCH_e7.json", bakery_json::to_string_pretty(e7)));
    }
    if let Some(e11) = &e11 {
        outputs.push(("BENCH_e11.json", bakery_json::to_string_pretty(e11)));
    }
    if let Some(e12) = &e12 {
        outputs.push(("BENCH_e12.json", bakery_json::to_string_pretty(e12)));
    }
    if let Some(e13) = &e13 {
        outputs.push(("BENCH_e13.json", bakery_json::to_string_pretty(e13)));
    }
    for (name, json) in outputs {
        let path = format!("{out_dir}/{name}");
        let text = match json {
            Ok(text) => text,
            Err(err) => {
                eprintln!("failed to serialise {name}: {err}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(err) = std::fs::write(&path, text + "\n") {
            eprintln!("failed to write {path}: {err}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }

    // Sanity guards so CI catches a perf or correctness regression loudly:
    // Bakery++ must never overflow, and the packed mode must not be slower
    // uncontended at any measured size.
    let pp_overflows: u64 = e6
        .iter()
        .flat_map(|e6| {
            e6.entries
                .iter()
                .filter(|e| e.algorithm == "bakery++")
                .map(|e| e.overflow_attempts)
                .chain(e6.tree_entries.iter().map(|e| e.overflow_attempts))
        })
        .chain(e7.iter().flat_map(|e7| {
            e7.entries
                .iter()
                .filter(|e| e.algorithm == "bakery++")
                .map(|e| e.overflow_attempts)
                .chain(e7.tree_entries.iter().map(|e| e.overflow_attempts))
        }))
        .sum();
    if pp_overflows > 0 {
        eprintln!("bakery++ reported {pp_overflows} overflow attempts");
        return ExitCode::FAILURE;
    }
    // The tree acceptance gate: quadrupling N (smallest to largest swept
    // size) must not double the tree's doorway footprint.  The exact layout
    // arithmetic (flat linearity included) is unit-tested in
    // e10_tree_scale::tests; this gate only guards the headline inequality.
    let words_of = |n: usize| {
        e6.as_ref().and_then(|e6| {
            e6.tree_comparisons
                .iter()
                .find(|c| c.processes == n)
                .map(|c| c.tree_scan_words)
        })
    };
    if let (Some(tree_small), Some(tree_large)) = (
        words_of(*TREE_SIZES.first().unwrap_or(&0)),
        words_of(*TREE_SIZES.last().unwrap_or(&0)),
    ) {
        if tree_large >= 2 * tree_small {
            eprintln!("tree doorway growth regressed: {tree_small} -> {tree_large} words");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
