//! `bench-json` — the suite's machine-readable perf baseline.
//!
//! Runs the two timing experiments that gate the packed-snapshot work and
//! writes their results as JSON, establishing the first point of the perf
//! trajectory that later PRs extend:
//!
//! * **E6** (uncontended acquire/release latency): every Bakery-family lock
//!   in both scan modes across a range of process counts;
//! * **E7** (contended throughput): Bakery++ and classic Bakery in both scan
//!   modes at 2 and 4 threads.
//!
//! ```text
//! bench-json [--quick] [--out-dir DIR]
//! ```
//!
//! Output files: `BENCH_e6.json` and `BENCH_e7.json` in `--out-dir`
//! (default: the current directory).  The summary — including the packed-vs-
//! padded improvement percentages — is also printed as Markdown-ish text.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use bakery_core::registers::OverflowPolicy;
use bakery_core::{BakeryLock, BakeryPlusPlusLock, NProcessMutex, ScanMode, DEFAULT_PP_BOUND};
use bakery_harness::workload::{run_workload, Workload};

/// One uncontended-latency measurement.
#[derive(Debug, Clone)]
struct E6Entry {
    algorithm: String,
    mode: String,
    processes: usize,
    bound: u64,
    ns_per_acquire: f64,
    fast_path_hits: u64,
    overflow_attempts: u64,
}
bakery_json::json_object!(E6Entry {
    algorithm,
    mode,
    processes,
    bound,
    ns_per_acquire,
    fast_path_hits,
    overflow_attempts,
});

/// One contended-throughput measurement.
#[derive(Debug, Clone)]
struct E7Entry {
    algorithm: String,
    mode: String,
    threads: usize,
    bound: u64,
    acquisitions_per_sec: f64,
    p99_latency_ns: u64,
    fairness_ratio: f64,
    fast_path_hits: u64,
    overflow_attempts: u64,
}
bakery_json::json_object!(E7Entry {
    algorithm,
    mode,
    threads,
    bound,
    acquisitions_per_sec,
    p99_latency_ns,
    fairness_ratio,
    fast_path_hits,
    overflow_attempts,
});

/// Packed-vs-padded comparison for one configuration.
#[derive(Debug, Clone)]
struct Comparison {
    algorithm: String,
    processes: usize,
    padded: f64,
    packed: f64,
    /// Positive = packed is better.  For E6 this is latency reduction, for
    /// E7 throughput gain, both in percent.
    improvement_pct: f64,
}
bakery_json::json_object!(Comparison {
    algorithm,
    processes,
    padded,
    packed,
    improvement_pct,
});

#[derive(Debug, Clone)]
struct E6Report {
    schema: String,
    experiment: String,
    quick: bool,
    entries: Vec<E6Entry>,
    /// Latency reduction of packed vs padded per (algorithm, processes).
    comparisons: Vec<Comparison>,
}
bakery_json::json_object!(E6Report {
    schema,
    experiment,
    quick,
    entries,
    comparisons,
});

#[derive(Debug, Clone)]
struct E7Report {
    schema: String,
    experiment: String,
    quick: bool,
    /// Logical CPUs available during the run.  With fewer CPUs than worker
    /// threads the numbers measure scheduling as much as the lock, so
    /// cross-machine comparisons should check this field first.
    cpus: usize,
    /// Repetitions per configuration; each entry is the best of these.
    repetitions: usize,
    entries: Vec<E7Entry>,
    /// Throughput gain of packed vs padded per (algorithm, threads).
    comparisons: Vec<Comparison>,
}
bakery_json::json_object!(E7Report {
    schema,
    experiment,
    quick,
    cpus,
    repetitions,
    entries,
    comparisons,
});

/// Median ns per uncontended acquire/release of `lock`, slot 0.
fn measure_uncontended(lock: &dyn NProcessMutex, iterations: u64, samples: usize) -> f64 {
    let slot = lock.register().expect("slot 0 free");
    // Warm-up pass.
    for _ in 0..iterations / 4 {
        drop(lock.lock(&slot));
    }
    let mut results: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iterations {
            let guard = lock.lock(&slot);
            std::hint::black_box(&guard);
            drop(guard);
        }
        results.push(start.elapsed().as_nanos() as f64 / iterations as f64);
    }
    results.sort_by(|a, b| a.total_cmp(b));
    results[results.len() / 2]
}

fn bakery_pair(n: usize, bound: u64, mode: ScanMode) -> Vec<(String, Arc<dyn NProcessMutex + Send + Sync>)> {
    vec![
        (
            "bakery".to_string(),
            Arc::new(BakeryLock::with_config(
                n,
                bakery_core::DEFAULT_BOUND,
                OverflowPolicy::Wrap,
                mode,
            )),
        ),
        (
            "bakery++".to_string(),
            Arc::new(BakeryPlusPlusLock::with_bound_and_mode(n, bound, mode)),
        ),
    ]
}

fn run_e6(quick: bool) -> E6Report {
    let (iterations, samples) = if quick { (20_000, 5) } else { (100_000, 9) };
    let bound = DEFAULT_PP_BOUND;
    let mut entries = Vec::new();
    for &n in &[4usize, 32, 128] {
        for mode in [ScanMode::Padded, ScanMode::Packed] {
            for (name, lock) in bakery_pair(n, bound, mode) {
                let ns = measure_uncontended(lock.as_ref(), iterations, samples);
                let stats = lock.stats().snapshot();
                entries.push(E6Entry {
                    algorithm: name,
                    mode: mode.name().to_string(),
                    processes: n,
                    // Per-lock: classic bakery runs effectively unbounded.
                    bound: lock.register_bound().unwrap_or(u64::MAX),
                    ns_per_acquire: ns,
                    fast_path_hits: stats.fast_path_hits,
                    overflow_attempts: stats.overflow_attempts,
                });
            }
        }
    }
    let comparisons = comparisons_of(
        &entries,
        |e| (e.algorithm.clone(), e.processes, e.mode.clone(), e.ns_per_acquire),
        // Latency: improvement = reduction.
        |padded, packed| (padded - packed) / padded * 100.0,
    );
    E6Report {
        schema: "bakery-bench/e6/v1".to_string(),
        experiment: "E6 uncontended acquire/release latency".to_string(),
        quick,
        entries,
        comparisons,
    }
}

fn median(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.total_cmp(b));
    values[values.len() / 2]
}

fn run_e7(quick: bool) -> E7Report {
    let bound = DEFAULT_PP_BOUND;
    let repetitions = if quick { 7 } else { 21 };
    let mut entries = Vec::new();
    let mut comparisons = Vec::new();
    for &threads in &[2usize, 4] {
        for lock_index in 0..2 {
            // Paired A/B design: each repetition runs the padded and the
            // packed lock back to back on fresh locks, and the improvement is
            // the median of the per-repetition ratios.  On a machine with
            // fewer CPUs than workers (often a single shared CPU here) whole
            // runs drift between a fast serial-burst regime and a slow
            // context-switch-bound regime; pairing cancels that drift where
            // an unpaired best-of-k cannot.
            let mut ratios: Vec<f64> = Vec::with_capacity(repetitions);
            let mut padded_thr: Vec<f64> = Vec::with_capacity(repetitions);
            let mut packed_thr: Vec<f64> = Vec::with_capacity(repetitions);
            let mut sample: Vec<Option<E7Entry>> = vec![None, None];
            for _ in 0..repetitions {
                let mut pair_thr = [0.0f64; 2];
                for (slot, mode) in [ScanMode::Padded, ScanMode::Packed].into_iter().enumerate()
                {
                    let (name, lock) = bakery_pair(threads, bound, mode).swap_remove(lock_index);
                    let workload = Workload {
                        threads,
                        iterations_per_thread: if quick { 1_000 } else { 4_000 },
                        critical_section_work: 16,
                        think_work: 16,
                    };
                    let result = run_workload(Arc::clone(&lock), &workload);
                    pair_thr[slot] = result.throughput();
                    let entry = E7Entry {
                        algorithm: name,
                        mode: mode.name().to_string(),
                        threads,
                        bound: lock.register_bound().unwrap_or(u64::MAX),
                        acquisitions_per_sec: result.throughput(),
                        p99_latency_ns: result.latency.quantile_ns(0.99),
                        fairness_ratio: result.fairness_ratio(),
                        fast_path_hits: result.fast_path_hits,
                        overflow_attempts: result.overflow_attempts,
                    };
                    let better = sample[slot]
                        .as_ref()
                        .is_none_or(|b| entry.acquisitions_per_sec > b.acquisitions_per_sec);
                    if better {
                        sample[slot] = Some(entry);
                    }
                }
                padded_thr.push(pair_thr[0]);
                packed_thr.push(pair_thr[1]);
                ratios.push(pair_thr[1] / pair_thr[0]);
            }
            let median_ratio = median(&mut ratios);
            let (algorithm, processes) = {
                let best = sample[0].as_ref().expect("at least one repetition");
                (best.algorithm.clone(), best.threads)
            };
            comparisons.push(Comparison {
                algorithm,
                processes,
                padded: median(&mut padded_thr),
                packed: median(&mut packed_thr),
                improvement_pct: (median_ratio - 1.0) * 100.0,
            });
            entries.extend(sample.into_iter().flatten());
        }
    }
    E7Report {
        schema: "bakery-bench/e7/v1".to_string(),
        experiment: "E7 contended throughput".to_string(),
        quick,
        cpus: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        repetitions,
        entries,
        comparisons,
    }
}

/// Pairs padded/packed measurements sharing (algorithm, size) and computes
/// the improvement percentage.
fn comparisons_of<E>(
    entries: &[E],
    key: impl Fn(&E) -> (String, usize, String, f64),
    improvement: impl Fn(f64, f64) -> f64,
) -> Vec<Comparison> {
    let keyed: Vec<(String, usize, String, f64)> = entries.iter().map(key).collect();
    let mut comparisons = Vec::new();
    for (algorithm, size, mode, padded_value) in &keyed {
        if mode != "padded" {
            continue;
        }
        let packed_value = keyed
            .iter()
            .find(|(a, s, m, _)| a == algorithm && s == size && m == "packed")
            .map(|(_, _, _, v)| *v);
        if let Some(packed_value) = packed_value {
            comparisons.push(Comparison {
                algorithm: algorithm.clone(),
                processes: *size,
                padded: *padded_value,
                packed: packed_value,
                improvement_pct: improvement(*padded_value, packed_value),
            });
        }
    }
    comparisons
}

fn print_comparisons(title: &str, unit: &str, comparisons: &[Comparison]) {
    println!("\n## {title}");
    println!("| algorithm | size | padded {unit} | packed {unit} | improvement |");
    println!("|---|---|---|---|---|");
    for c in comparisons {
        println!(
            "| {} | {} | {:.1} | {:.1} | {:+.1}% |",
            c.algorithm, c.processes, c.padded, c.packed, c.improvement_pct
        );
    }
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut out_dir = ".".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" | "-q" => quick = true,
            "--out-dir" => match args.next() {
                Some(dir) => out_dir = dir,
                None => {
                    eprintln!("--out-dir requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("usage: bench-json [--quick] [--out-dir DIR]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    eprintln!("bench-json: measuring E6 (uncontended latency)...");
    let e6 = run_e6(quick);
    eprintln!("bench-json: measuring E7 (contended throughput)...");
    let e7 = run_e7(quick);

    print_comparisons("E6 uncontended acquire latency (ns)", "ns", &e6.comparisons);
    print_comparisons("E7 contended throughput (acq/s)", "acq/s", &e7.comparisons);

    for (name, json) in [
        ("BENCH_e6.json", bakery_json::to_string_pretty(&e6)),
        ("BENCH_e7.json", bakery_json::to_string_pretty(&e7)),
    ] {
        let path = format!("{out_dir}/{name}");
        let text = match json {
            Ok(text) => text,
            Err(err) => {
                eprintln!("failed to serialise {name}: {err}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(err) = std::fs::write(&path, text + "\n") {
            eprintln!("failed to write {path}: {err}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }

    // Sanity guards so CI catches a perf or correctness regression loudly:
    // Bakery++ must never overflow, and the packed mode must not be slower
    // uncontended at any measured size.
    let pp_overflows: u64 = e6
        .entries
        .iter()
        .filter(|e| e.algorithm == "bakery++")
        .map(|e| e.overflow_attempts)
        .chain(
            e7.entries
                .iter()
                .filter(|e| e.algorithm == "bakery++")
                .map(|e| e.overflow_attempts),
        )
        .sum();
    if pp_overflows > 0 {
        eprintln!("bakery++ reported {pp_overflows} overflow attempts");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
