//! Plain-text / Markdown tables and JSON export for experiment results.

use std::fmt;

/// One result table: a title, a header row and data rows.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (e.g. "E1 — ticket growth and overflow").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted as strings).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes displayed under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|h| (*h).to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    /// Panics if the row length does not match the header length.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(row);
    }

    /// Appends a note rendered under the table.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as GitHub-flavoured Markdown.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = format!("### {}\n\n", self.title);
        let render_row = |cells: &[String]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:<width$}", width = widths[i]))
                .collect();
            format!("| {} |\n", padded.join(" | "))
        };
        out.push_str(&render_row(&self.headers));
        let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("| {} |\n", dashes.join(" | ")));
        for row in &self.rows {
            out.push_str(&render_row(row));
        }
        for note in &self.notes {
            out.push_str(&format!("\n> {note}\n"));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_markdown())
    }
}

/// A collection of tables produced by one experiment run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Tables in presentation order.
    pub tables: Vec<Table>,
}

bakery_json::json_object!(Table { title, headers, rows, notes });
bakery_json::json_object!(Report { tables });

impl Report {
    /// Creates an empty report.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a table.
    pub fn push(&mut self, table: Table) {
        self.tables.push(table);
    }

    /// Renders every table as Markdown separated by blank lines.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        self.tables
            .iter()
            .map(Table::to_markdown)
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Serialises the report as pretty-printed JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        bakery_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_markdown())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown_with_alignment() {
        let mut t = Table::new("Demo", &["algorithm", "value"]);
        t.push_row(vec!["bakery".into(), "1".into()]);
        t.push_row(vec!["bakery++".into(), "22".into()]);
        t.push_note("a note");
        let md = t.to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| algorithm | value |"));
        assert!(md.contains("| bakery++  | 22    |"));
        assert!(md.contains("> a note"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_is_rejected() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn report_combines_tables_and_exports_json() {
        let mut report = Report::new();
        let mut t = Table::new("T1", &["x"]);
        t.push_row(vec!["1".into()]);
        report.push(t);
        report.push(Table::new("T2", &["y"]));
        let md = report.to_markdown();
        assert!(md.contains("### T1"));
        assert!(md.contains("### T2"));
        let json = report.to_json();
        assert!(json.contains("\"title\": \"T1\""));
    }
}
