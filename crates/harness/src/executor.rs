//! A minimal multi-threaded futures executor over plain `std::task`.
//!
//! Experiment **E13** drives 10⁵ async clients through the session plane;
//! that needs something to poll their futures, and the suite deliberately
//! carries no async runtime dependency.  This module is the smallest
//! executor that does the job honestly:
//!
//! * a fixed pool of worker threads popping tasks from one shared ready
//!   queue (condvar-parked when it is empty — the executor itself must not
//!   busy-wait, that is the whole point of the Park strategy it exists to
//!   measure);
//! * each spawned future becomes an [`Arc`]'d task whose [`Wake`] impl
//!   re-enqueues it, with a `queued` flag coalescing redundant wakes;
//! * a poll holds the task's future mutex for its whole duration, so a wake
//!   that lands *mid-poll* re-enqueues the task and the next worker simply
//!   polls it again — a spurious poll, never a lost wake.
//!
//! The executor is join-oriented rather than detach-oriented:
//! [`Executor::run_until_idle`] blocks until every spawned task has
//! completed, which is exactly the shape of a bounded churn experiment.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use bakery_core::sync::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

/// Shared executor core: the ready queue plus the live-task accounting the
/// joiner blocks on.
#[derive(Debug)]
struct Core {
    /// Tasks ready to be polled.  A task appears here at most once (the
    /// `queued` flag), so the queue length is bounded by the task count.
    ready: Mutex<VecDeque<Arc<Task>>>,
    /// Signalled when `ready` gains an entry or the pool shuts down.
    work_cv: Condvar,
    /// Spawned-but-not-completed task count, guarded for the joiner.
    live: Mutex<usize>,
    /// Signalled when `live` reaches zero.
    idle_cv: Condvar,
    /// Set once, on drop: workers drain out.
    shutdown: AtomicBool,
}

/// One spawned future plus its scheduling state.
struct Task {
    /// `Some` while the future is live; a completed task keeps its slot as
    /// `None` so late wakes find nothing to poll.
    future: Mutex<Option<BoxFuture>>,
    core: Arc<Core>,
    /// True while the task sits in the ready queue — wake coalescing.
    queued: AtomicBool,
}

impl std::fmt::Debug for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Task")
            .field("queued", &self.queued.load(Ordering::Relaxed)) // mem: stats-relaxed
            .finish_non_exhaustive()
    }
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        // First wake wins; the flag is cleared by the worker just before it
        // polls, so a wake landing mid-poll re-enqueues for one more poll.
        if !self.queued.swap(true, Ordering::SeqCst) { // mem: harness-probe
            let core = Arc::clone(&self.core);
            core.ready.lock().unwrap().push_back(self);
            core.work_cv.notify_one();
        }
    }
}

/// A fixed-size thread-pool executor for `'static` futures.
///
/// ```
/// use bakery_harness::executor::Executor;
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// let pool = Executor::new(2);
/// let hits = Arc::new(AtomicUsize::new(0));
/// for _ in 0..10 {
///     let hits = Arc::clone(&hits);
///     pool.spawn(async move {
///         hits.fetch_add(1, Ordering::SeqCst);
///     });
/// }
/// pool.run_until_idle();
/// assert_eq!(hits.load(Ordering::SeqCst), 10);
/// ```
#[derive(Debug)]
pub struct Executor {
    core: Arc<Core>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Executor {
    /// Spawns a pool of `workers` polling threads (at least one).
    #[must_use]
    pub fn new(workers: usize) -> Self {
        let core = Arc::new(Core {
            ready: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            live: Mutex::new(0),
            idle_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let core = Arc::clone(&core);
                std::thread::Builder::new()
                    .name(format!("bakery-exec-{i}"))
                    .spawn(move || worker_loop(&core))
                    .expect("spawning an executor worker")
            })
            .collect();
        Self { core, workers }
    }

    /// Number of worker threads in the pool.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Submits a future to the pool.  It starts running immediately on any
    /// free worker; completion is observed via [`Executor::run_until_idle`].
    pub fn spawn<F>(&self, future: F)
    where
        F: Future<Output = ()> + Send + 'static,
    {
        *self.core.live.lock().unwrap() += 1;
        let task = Arc::new(Task {
            future: Mutex::new(Some(Box::pin(future))),
            core: Arc::clone(&self.core),
            queued: AtomicBool::new(false),
        });
        task.wake();
    }

    /// Blocks until every task spawned so far has completed.  More tasks may
    /// be spawned afterwards; the pool stays up until the executor is
    /// dropped.
    pub fn run_until_idle(&self) {
        let mut live = self.core.live.lock().unwrap();
        while *live > 0 {
            live = self.core.idle_cv.wait(live).unwrap();
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.core.shutdown.store(true, Ordering::SeqCst); // mem: harness-probe
        self.core.work_cv.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(core: &Arc<Core>) {
    loop {
        let task = {
            let mut ready = core.ready.lock().unwrap();
            loop {
                if let Some(task) = ready.pop_front() {
                    break task;
                }
                if core.shutdown.load(Ordering::SeqCst) { // mem: harness-probe
                    return;
                }
                ready = core.work_cv.wait(ready).unwrap();
            }
        };
        poll_task(core, &task);
    }
}

/// Polls one dequeued task.  Holding the future mutex across the poll means
/// a concurrent worker that dequeues the same task (re-woken mid-poll)
/// blocks here and then re-polls — the wake is never dropped.
fn poll_task(core: &Arc<Core>, task: &Arc<Task>) {
    let mut slot = task.future.lock().unwrap();
    // Clear *after* taking the lock and *before* polling: any wake from the
    // poll itself (or from another thread during it) re-enqueues.
    task.queued.store(false, Ordering::SeqCst); // mem: harness-probe
    let Some(future) = slot.as_mut() else {
        return; // completed by an earlier poll; this was a late wake
    };
    let waker = Waker::from(Arc::clone(task));
    let mut cx = Context::from_waker(&waker);
    if let Poll::Ready(()) = future.as_mut().poll(&mut cx) {
        *slot = None;
        let mut live = core.live.lock().unwrap();
        *live -= 1;
        if *live == 0 {
            core.idle_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// A future that goes pending `remaining` times, waking itself from a
    /// helper thread each time — exercises cross-thread wakes.
    struct Bouncer {
        remaining: usize,
        polls: Arc<AtomicUsize>,
    }

    impl Future for Bouncer {
        type Output = ();
        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            self.polls.fetch_add(1, Ordering::SeqCst);
            if self.remaining == 0 {
                return Poll::Ready(());
            }
            self.remaining -= 1;
            let waker = cx.waker().clone();
            std::thread::spawn(move || waker.wake());
            Poll::Pending
        }
    }

    #[test]
    fn runs_many_tasks_to_completion() {
        let pool = Executor::new(4);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..500 {
            let done = Arc::clone(&done);
            pool.spawn(async move {
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.run_until_idle();
        assert_eq!(done.load(Ordering::SeqCst), 500);
    }

    #[test]
    fn cross_thread_wakes_reach_pending_tasks() {
        let pool = Executor::new(2);
        let polls = Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            pool.spawn(Bouncer {
                remaining: 5,
                polls: Arc::clone(&polls),
            });
        }
        pool.run_until_idle();
        // Each task: 5 pending polls + the final ready one.
        assert_eq!(polls.load(Ordering::SeqCst), 16 * 6);
    }

    #[test]
    fn idle_join_then_more_work() {
        let pool = Executor::new(1);
        let hits = Arc::new(AtomicUsize::new(0));
        pool.run_until_idle(); // vacuously idle
        let h = Arc::clone(&hits);
        pool.spawn(async move {
            h.fetch_add(1, Ordering::SeqCst);
        });
        pool.run_until_idle();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn redundant_wakes_coalesce() {
        // A task that is woken many times while queued must still complete
        // exactly once (and the queue must not balloon).
        let pool = Executor::new(1);
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        pool.spawn(async move {
            d.fetch_add(1, Ordering::SeqCst);
        });
        pool.run_until_idle();
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }
}
