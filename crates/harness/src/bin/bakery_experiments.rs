//! `bakery-experiments` — command-line experiment runner.
//!
//! Regenerates the paper's claims as Markdown tables (and optionally JSON):
//!
//! ```text
//! bakery-experiments                # run every experiment (full size)
//! bakery-experiments --quick        # CI-sized runs
//! bakery-experiments --quick e1 e2  # run a subset
//! bakery-experiments --json out.json
//! bakery-experiments --list
//! ```

#![forbid(unsafe_code)]

use std::process::ExitCode;

use bakery_harness::experiments::{run_experiments, ExperimentId};

fn print_usage() {
    println!(
        "usage: bakery-experiments [--quick] [--json FILE] [--list] [E1 E2 ...]\n\n\
         Runs the Bakery++ reproduction experiments and prints Markdown tables.\n\
         With no experiment arguments, all of E1..E9 are run."
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut json_path: Option<String> = None;
    let mut selected: Vec<ExperimentId> = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" | "-q" => quick = true,
            "--json" => match iter.next() {
                Some(path) => json_path = Some(path.clone()),
                None => {
                    eprintln!("--json requires a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--list" => {
                for id in ExperimentId::all() {
                    println!("{}  {}", id, id.description());
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            other => match ExperimentId::parse(other) {
                Some(id) => selected.push(id),
                None => {
                    eprintln!("unknown argument: {other}");
                    print_usage();
                    return ExitCode::FAILURE;
                }
            },
        }
    }

    let ids: Vec<ExperimentId> = if selected.is_empty() {
        ExperimentId::all().to_vec()
    } else {
        selected
    };

    eprintln!(
        "running {} experiment(s){}...",
        ids.len(),
        if quick { " (quick mode)" } else { "" }
    );
    for id in &ids {
        eprintln!("  {}", id.description());
    }

    let report = run_experiments(&ids, quick);
    println!("{}", report.to_markdown());

    if let Some(path) = json_path {
        if let Err(err) = std::fs::write(&path, report.to_json()) {
            eprintln!("failed to write {path}: {err}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote JSON report to {path}");
    }
    ExitCode::SUCCESS
}
