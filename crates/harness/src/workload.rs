//! Real-thread lock workloads.
//!
//! A [`Workload`] describes a closed-loop benchmark: every thread repeatedly
//! acquires the lock, holds it for a configurable amount of work, releases it
//! and "thinks" for another configurable amount of work.  The result records
//! throughput, acquisition-latency distribution and per-thread service counts
//! (the fairness signal used by experiment **E8**).

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use bakery_core::RawMutexAlgorithm;

use crate::histogram::LatencyHistogram;

/// Spin for roughly `units` of busy work (used for critical-section length
/// and think time without involving the OS timer).
#[inline]
pub fn busy_work(units: u64) {
    let mut acc = 0u64;
    for i in 0..units {
        acc = acc.wrapping_add(i).rotate_left(7);
        std::hint::black_box(acc);
    }
}

/// A closed-loop lock benchmark description.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Number of worker threads (each claims one process slot).
    pub threads: usize,
    /// Lock acquisitions per thread.
    pub iterations_per_thread: u64,
    /// Busy-work units executed while holding the lock.
    pub critical_section_work: u64,
    /// Busy-work units executed between acquisitions.
    pub think_work: u64,
}

impl Workload {
    /// A small smoke-test workload.
    #[must_use]
    pub fn quick(threads: usize) -> Self {
        Self {
            threads,
            iterations_per_thread: 500,
            critical_section_work: 16,
            think_work: 16,
        }
    }

    /// A heavier workload for real measurements.
    #[must_use]
    pub fn standard(threads: usize) -> Self {
        Self {
            threads,
            iterations_per_thread: 20_000,
            critical_section_work: 32,
            think_work: 64,
        }
    }

    /// Total acquisitions across all threads.
    #[must_use]
    pub fn total_iterations(&self) -> u64 {
        self.iterations_per_thread * self.threads as u64
    }
}

/// The outcome of running a [`Workload`] against one lock.
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    /// Name of the algorithm that was measured.
    pub algorithm: String,
    /// Number of worker threads.
    pub threads: usize,
    /// Total completed critical sections.
    pub total_acquisitions: u64,
    /// Wall-clock duration of the measurement.
    pub elapsed: Duration,
    /// Acquisition-latency histogram (time from requesting to holding).
    pub latency: LatencyHistogram,
    /// Critical-section entries per thread (fairness signal).
    pub per_thread: Vec<u64>,
    /// Ticket overflow attempts recorded by the lock.
    pub overflow_attempts: u64,
    /// Bakery++ reset branches recorded by the lock.
    pub resets: u64,
    /// Largest ticket value the lock ever stored.
    pub max_ticket: u64,
    /// Packed-snapshot fast-path acquisitions (zero for locks without one).
    pub fast_path_hits: u64,
}

impl WorkloadResult {
    /// Acquisitions per second.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.total_acquisitions as f64 / secs
        }
    }

    /// Ratio between the most- and least-served thread (1.0 = perfectly fair).
    #[must_use]
    pub fn fairness_ratio(&self) -> f64 {
        let min = self.per_thread.iter().copied().min().unwrap_or(0);
        let max = self.per_thread.iter().copied().max().unwrap_or(0);
        if min == 0 {
            f64::INFINITY
        } else {
            max as f64 / min as f64
        }
    }
}

/// Median nanoseconds per uncontended acquire/release on slot 0, after a
/// warm-up quarter.  Shared by the `bench-json` perf baseline and experiment
/// **E10** so the two sweeps can never drift apart.
///
/// # Panics
/// Panics if slot 0 of `lock` is already claimed.
#[must_use]
pub fn measure_uncontended(lock: &dyn RawMutexAlgorithm, iterations: u64, samples: usize) -> f64 {
    let slot = lock.register().expect("slot 0 free");
    for _ in 0..iterations / 4 {
        drop(lock.lock(&slot));
    }
    let mut results: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iterations {
            let guard = lock.lock(&slot);
            std::hint::black_box(&guard);
            drop(guard);
        }
        results.push(start.elapsed().as_nanos() as f64 / iterations as f64);
    }
    results.sort_by(f64::total_cmp);
    results[results.len() / 2]
}

/// Runs `workload` against `lock` with real threads, each claiming the
/// lowest free slot (threads land on pids `0..threads`, which for a tree
/// lock means they share leaf subtrees).
///
/// # Panics
/// Panics if the lock has fewer slots than the workload has threads.
#[must_use]
pub fn run_workload(
    lock: Arc<dyn RawMutexAlgorithm>,
    workload: &Workload,
) -> WorkloadResult {
    run_workload_placed(lock, workload, None)
}

/// Evenly spread pids for `threads` live threads over a lock of `capacity`
/// slots: thread `i` plays pid `i * (capacity / threads)`.
///
/// For a K-ary tree lock of depth `d` this lands the threads in distinct
/// top-level subtrees whenever `threads <= K`, so all contention meets at
/// the **root** node — the opposite regime of the lowest-slot default, where
/// the same threads share one leaf.
#[must_use]
pub fn spread_placement(capacity: usize, threads: usize) -> Vec<usize> {
    let stride = (capacity / threads.max(1)).max(1);
    (0..threads).map(|i| i * stride).collect()
}

/// Runs `workload` against `lock` with an explicit slot placement: thread
/// `i` claims pid `placement[i]` (pass `None` for the lowest-free-slot
/// default).  The placement is how E7/E10 select the shared-leaf vs
/// distinct-subtree contention regimes of the tree locks.
///
/// # Panics
/// Panics if the lock has fewer slots than the workload has threads, if the
/// placement length does not match the thread count, or if a placement pid
/// is already claimed.
#[must_use]
pub fn run_workload_placed(
    lock: Arc<dyn RawMutexAlgorithm>,
    workload: &Workload,
    placement: Option<&[usize]>,
) -> WorkloadResult {
    assert!(
        lock.capacity() >= workload.threads,
        "lock capacity {} is smaller than thread count {}",
        lock.capacity(),
        workload.threads
    );
    if let Some(pids) = placement {
        assert_eq!(
            pids.len(),
            workload.threads,
            "placement must name one pid per thread"
        );
    }
    let mut histograms: Vec<LatencyHistogram> = Vec::with_capacity(workload.threads);
    let mut per_thread: Vec<u64> = vec![0; workload.threads];
    // All workers wait at the barrier so the measurement window actually
    // overlaps the threads.  Without it, on a machine with fewer CPUs than
    // workers the OS often runs each thread's whole loop back to back and a
    // "contended" benchmark silently measures uncontended acquires.
    let start_line = Arc::new(Barrier::new(workload.threads + 1));

    let elapsed = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workload.threads);
        for thread in 0..workload.threads {
            let lock = Arc::clone(&lock);
            let workload = workload.clone();
            let start_line = Arc::clone(&start_line);
            let placed = placement.map(|pids| pids[thread]);
            handles.push(scope.spawn(move || {
                let slot = match placed {
                    Some(pid) => lock
                        .register_exact(pid)
                        .expect("placement pids must be free"),
                    None => lock.register().expect("enough slots for every thread"),
                };
                let mut histogram = LatencyHistogram::new();
                let mut completed = 0u64;
                start_line.wait();
                for _ in 0..workload.iterations_per_thread {
                    let requested = Instant::now();
                    let guard = lock.lock(&slot);
                    histogram.record(requested.elapsed().as_nanos() as u64);
                    busy_work(workload.critical_section_work);
                    drop(guard);
                    completed += 1;
                    busy_work(workload.think_work);
                }
                (histogram, completed)
            }));
        }
        // Record the start *before* joining the barrier: workers cannot pass
        // the barrier until this thread arrives, so this never undercounts —
        // whereas taking the timestamp after `wait()` returns undercounts
        // badly when the OS runs the released workers before the main thread
        // (guaranteed on a single-CPU machine).
        let begun = Instant::now();
        start_line.wait();
        for (i, handle) in handles.into_iter().enumerate() {
            let (histogram, completed) = handle.join().expect("worker thread panicked");
            histograms.push(histogram);
            per_thread[i] = completed;
        }
        begun.elapsed()
    });
    let mut latency = LatencyHistogram::new();
    for h in &histograms {
        latency.merge(h);
    }
    let stats = lock.stats().snapshot();
    WorkloadResult {
        algorithm: lock.algorithm_name().to_string(),
        threads: workload.threads,
        total_acquisitions: per_thread.iter().sum(),
        elapsed,
        latency,
        per_thread,
        overflow_attempts: stats.overflow_attempts,
        resets: stats.resets,
        max_ticket: stats.max_ticket,
        fast_path_hits: stats.fast_path_hits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bakery_baselines::TicketLock;
    use bakery_core::BakeryPlusPlusLock;

    #[test]
    fn workload_totals() {
        let w = Workload::quick(3);
        assert_eq!(w.total_iterations(), 1500);
        let s = Workload::standard(2);
        assert!(s.iterations_per_thread > w.iterations_per_thread);
    }

    #[test]
    fn busy_work_is_callable_with_zero() {
        busy_work(0);
        busy_work(10);
    }

    #[test]
    fn run_workload_against_bakery_pp() {
        let lock = Arc::new(BakeryPlusPlusLock::with_bound(4, 10_000));
        let workload = Workload {
            threads: 4,
            iterations_per_thread: 200,
            critical_section_work: 4,
            think_work: 4,
        };
        let result = run_workload(lock, &workload);
        assert_eq!(result.algorithm, "bakery++");
        assert_eq!(result.total_acquisitions, 800);
        assert_eq!(result.per_thread.len(), 4);
        assert_eq!(result.latency.count(), 800);
        assert_eq!(result.overflow_attempts, 0);
        assert!(result.throughput() > 0.0);
        assert!(result.fairness_ratio() >= 1.0);
    }

    #[test]
    fn run_workload_against_ticket_lock() {
        let lock = Arc::new(TicketLock::new(2));
        let result = run_workload(lock, &Workload::quick(2));
        assert_eq!(result.total_acquisitions, 1000);
        assert!(result.max_ticket >= 999);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn too_many_threads_is_rejected() {
        let lock = Arc::new(BakeryPlusPlusLock::with_bound(2, 100));
        let _ = run_workload(lock, &Workload::quick(3));
    }
}
