//! # bakery-harness
//!
//! Workload generation, metrics and the experiment runner that regenerates
//! every quantitative claim of *"Avoiding Register Overflow in the Bakery
//! Algorithm"*.  The paper contains no numbered tables or figures; instead,
//! each of its verifiable claims is mapped to an experiment **E1–E9** (see
//! `EXPERIMENTS.md` at the repository root).  Each experiment module produces
//! one or more [`report::Table`]s that can be printed as Markdown or exported
//! as JSON by the `bakery-experiments` binary:
//!
//! ```text
//! cargo run --release -p bakery-harness --bin bakery-experiments -- --quick
//! ```
//!
//! | experiment | paper claim |
//! |---|---|
//! | [`experiments::e1_overflow`] | §3 — alternating processes grow tickets without bound; bounded registers overflow; Bakery++ caps at `M` |
//! | [`experiments::e2_model_check`] | §6.1 + TLC — exhaustive NoOverflow / MutualExclusion checking |
//! | [`experiments::e3_safety`] | §6.2 — safety under crashes and safe-register reads |
//! | [`experiments::e4_refinement`] | §6.2 — Bakery++ traces are observably valid Bakery executions |
//! | [`experiments::e5_liveness`] | §6.3 — the slow-process L1 starvation scenario |
//! | [`experiments::e6_complexity`] | §7 — O(N) space, steps per acquisition, reset overhead |
//! | [`experiments::e7_throughput`] | §7 — practicality: real-thread throughput/latency |
//! | [`experiments::e8_fairness`] | §1.2/§8.2 — first-come-first-served service |
//! | [`experiments::e9_overflow_time`] | §4 — measured time-to-overflow per register width |

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod executor;
pub mod experiments;
pub mod histogram;
pub mod report;
pub mod workload;

pub use histogram::LatencyHistogram;
pub use report::{Report, Table};
pub use workload::{Workload, WorkloadResult};
