//! **E9 — §4: time to overflow per register width.**
//!
//! The paper cites Aravind's observation that Bakery "may malfunction due to
//! integer overflow in a 32-bit processor in less than a minute".  The ticket
//! value only grows while the bakery is never empty, and it grows by at most
//! one per critical-section entry, so the overflow horizon is
//! `2^width / (entries per second)`.  This experiment measures the actual
//! entry rate of the real Bakery lock on this machine under sustained
//! two-thread contention and extrapolates the time to overflow for 8-, 16-,
//! 32- and 64-bit ticket registers — the shape that motivates Bakery++.

use std::sync::Arc;
use std::time::Duration;

use bakery_core::{BakeryLock, RawMutexAlgorithm};

use crate::report::Table;
use crate::workload::{run_workload, Workload};

/// Measured ticket growth rate of the classic Bakery under contention.
#[derive(Debug, Clone, Copy)]
pub struct GrowthRate {
    /// Critical-section entries per second (upper bound on ticket growth).
    pub entries_per_second: f64,
    /// Largest ticket actually observed during the measurement.
    pub max_ticket: u64,
    /// Wall-clock measurement duration.
    pub elapsed: Duration,
}

/// Measures the sustained critical-section entry rate of the classic Bakery
/// lock with `threads` contending threads.
#[must_use]
pub fn measure_growth_rate(threads: usize, iterations_per_thread: u64) -> GrowthRate {
    let lock = Arc::new(BakeryLock::new(threads));
    let workload = Workload {
        threads,
        iterations_per_thread,
        critical_section_work: 0,
        think_work: 0,
    };
    let result = run_workload(
        Arc::clone(&lock) as Arc<dyn RawMutexAlgorithm>,
        &workload,
    );
    GrowthRate {
        entries_per_second: result.throughput(),
        max_ticket: lock.stats().max_ticket(),
        elapsed: result.elapsed,
    }
}

/// Seconds until a register of `bits` bits overflows at `rate` tickets/second.
#[must_use]
pub fn seconds_to_overflow(bits: u32, rate: f64) -> f64 {
    if rate <= 0.0 {
        return f64::INFINITY;
    }
    let capacity = 2f64.powi(bits as i32);
    capacity / rate
}

fn human_duration(seconds: f64) -> String {
    if seconds.is_infinite() {
        return "never".into();
    }
    if seconds < 1.0 {
        format!("{:.0} ms", seconds * 1e3)
    } else if seconds < 120.0 {
        format!("{seconds:.1} s")
    } else if seconds < 7_200.0 {
        format!("{:.1} min", seconds / 60.0)
    } else if seconds < 48.0 * 3_600.0 {
        format!("{:.1} h", seconds / 3_600.0)
    } else if seconds < 2.0 * 365.25 * 86_400.0 {
        format!("{:.1} days", seconds / 86_400.0)
    } else {
        format!("{:.1} years", seconds / (365.25 * 86_400.0))
    }
}

/// Runs E9 and renders its tables.
#[must_use]
pub fn run(quick: bool) -> Vec<Table> {
    let iterations = if quick { 20_000 } else { 400_000 };
    let rate = measure_growth_rate(2, iterations);

    let mut measurement = Table::new(
        "E9a — measured Bakery ticket growth rate (2 threads, empty critical section)",
        &["metric", "value"],
    );
    measurement.push_row(vec![
        "critical-section entries / second".into(),
        format!("{:.0}", rate.entries_per_second),
    ]);
    measurement.push_row(vec![
        "measurement duration".into(),
        format!("{:.2} s", rate.elapsed.as_secs_f64()),
    ]);
    measurement.push_row(vec!["max ticket observed".into(), rate.max_ticket.to_string()]);

    let mut horizon = Table::new(
        "E9b — extrapolated worst-case time to overflow per register width",
        &["register width", "capacity", "time to overflow at measured rate"],
    );
    for bits in [8u32, 16, 32, 64] {
        horizon.push_row(vec![
            format!("{bits}-bit"),
            format!("2^{bits}"),
            human_duration(seconds_to_overflow(bits, rate.entries_per_second)),
        ]);
    }
    horizon.push_note(
        "The ticket grows by at most one per critical-section entry, and only while the bakery \
         never empties, so these are worst-case horizons.  The shape matches the paper's §4 \
         claim: 8/16-bit registers overflow in well under a minute, 32-bit registers within \
         minutes to hours on commodity hardware, and 64-bit registers effectively never — which \
         is why embedded (8/16/32-bit) deployments need Bakery++.",
    );

    vec![measurement, horizon]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_rate_is_positive() {
        let rate = measure_growth_rate(2, 5_000);
        assert!(rate.entries_per_second > 0.0);
        assert!(rate.elapsed > Duration::ZERO);
    }

    #[test]
    fn overflow_horizon_scales_with_width() {
        let rate = 1_000_000.0;
        let t8 = seconds_to_overflow(8, rate);
        let t16 = seconds_to_overflow(16, rate);
        let t32 = seconds_to_overflow(32, rate);
        let t64 = seconds_to_overflow(64, rate);
        assert!(t8 < t16 && t16 < t32 && t32 < t64);
        assert!(t8 < 0.01, "an 8-bit register dies instantly");
        assert!(t32 > 60.0, "2^32 at 1M/s is over an hour");
        assert_eq!(seconds_to_overflow(32, 0.0), f64::INFINITY);
    }

    #[test]
    fn humanised_durations() {
        assert_eq!(human_duration(f64::INFINITY), "never");
        assert!(human_duration(0.5).contains("ms"));
        assert!(human_duration(30.0).contains(" s"));
        assert!(human_duration(600.0).contains("min"));
        assert!(human_duration(10_000.0).contains(" h"));
        assert!(human_duration(200_000.0).contains("days"));
        assert!(human_duration(1e9).contains("years"));
    }

    #[test]
    fn tables_have_expected_rows() {
        let tables = run(true);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), 3);
        assert_eq!(tables[1].len(), 4);
    }
}
