//! One module per experiment.  Each exposes a `run(quick: bool)`
//! function returning the [`crate::report::Table`]s that regenerate the
//! corresponding claim of the paper; `quick` shrinks iteration counts so the
//! full suite stays CI-friendly.

pub mod e10_tree_scale;
pub mod e11_lock_service;
pub mod e12_kill_recover;
pub mod e13_async_echo;
pub mod e1_overflow;
pub mod e2_model_check;
pub mod e3_safety;
pub mod e4_refinement;
pub mod e5_liveness;
pub mod e6_complexity;
pub mod e7_throughput;
pub mod e8_fairness;
pub mod e9_overflow_time;

use crate::report::Report;

/// Identifier of one experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum ExperimentId {
    E1,
    E2,
    E3,
    E4,
    E5,
    E6,
    E7,
    E8,
    E9,
    E10,
    E11,
    E12,
    E13,
}

impl ExperimentId {
    /// All experiments in order.
    #[must_use]
    pub fn all() -> &'static [ExperimentId] {
        use ExperimentId::*;
        &[E1, E2, E3, E4, E5, E6, E7, E8, E9, E10, E11, E12, E13]
    }

    /// Parses an experiment id such as `"e4"` / `"E4"` / `"4"`.
    #[must_use]
    pub fn parse(text: &str) -> Option<ExperimentId> {
        use ExperimentId::*;
        match text.trim().to_ascii_lowercase().trim_start_matches('e') {
            "1" => Some(E1),
            "2" => Some(E2),
            "3" => Some(E3),
            "4" => Some(E4),
            "5" => Some(E5),
            "6" => Some(E6),
            "7" => Some(E7),
            "8" => Some(E8),
            "9" => Some(E9),
            "10" => Some(E10),
            "11" => Some(E11),
            "12" => Some(E12),
            "13" => Some(E13),
            _ => None,
        }
    }

    /// One-line description shown by the runner.
    #[must_use]
    pub fn description(&self) -> &'static str {
        match self {
            ExperimentId::E1 => "E1 §3: ticket growth and register overflow under alternation",
            ExperimentId::E2 => "E2 §6.1: exhaustive model checking of NoOverflow / MutualExclusion",
            ExperimentId::E3 => "E3 §6.2: safety under crash faults and safe-register reads",
            ExperimentId::E4 => "E4 §6.2: Bakery++ traces are observably valid Bakery executions",
            ExperimentId::E5 => "E5 §6.3: L1 starvation scenario (liveness)",
            ExperimentId::E6 => "E6 §7: spatial and temporal complexity",
            ExperimentId::E7 => "E7 §7: real-thread throughput and latency",
            ExperimentId::E8 => "E8 §1.2/§8.2: first-come-first-served fairness",
            ExperimentId::E9 => "E9 §4: time to overflow per register width",
            ExperimentId::E10 => "E10 beyond the paper: flat Bakery++ vs the tree composite at large N",
            ExperimentId::E11 => "E11 beyond the paper: session churn through the lock service plane",
            ExperimentId::E12 => "E12 beyond the paper: kill-and-recover — crash injection over the live lock stack",
            ExperimentId::E13 => "E13 beyond the paper: async echo service — wait-strategy sweep over the session plane",
        }
    }

    /// Runs the experiment and returns its tables.
    #[must_use]
    pub fn run(&self, quick: bool) -> Vec<crate::report::Table> {
        match self {
            ExperimentId::E1 => e1_overflow::run(quick),
            ExperimentId::E2 => e2_model_check::run(quick),
            ExperimentId::E3 => e3_safety::run(quick),
            ExperimentId::E4 => e4_refinement::run(quick),
            ExperimentId::E5 => e5_liveness::run(quick),
            ExperimentId::E6 => e6_complexity::run(quick),
            ExperimentId::E7 => e7_throughput::run(quick),
            ExperimentId::E8 => e8_fairness::run(quick),
            ExperimentId::E9 => e9_overflow_time::run(quick),
            ExperimentId::E10 => e10_tree_scale::run(quick),
            ExperimentId::E11 => e11_lock_service::run(quick),
            ExperimentId::E12 => e12_kill_recover::run(quick),
            ExperimentId::E13 => e13_async_echo::run(quick),
        }
    }
}

impl std::fmt::Display for ExperimentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "E{}", *self as u8 + 1)
    }
}

/// Runs the selected experiments (or all of them) and collects one report.
#[must_use]
pub fn run_experiments(ids: &[ExperimentId], quick: bool) -> Report {
    let mut report = Report::new();
    for id in ids {
        for table in id.run(quick) {
            report.push(table);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_common_spellings() {
        assert_eq!(ExperimentId::parse("e4"), Some(ExperimentId::E4));
        assert_eq!(ExperimentId::parse("E9"), Some(ExperimentId::E9));
        assert_eq!(ExperimentId::parse("2"), Some(ExperimentId::E2));
        assert_eq!(ExperimentId::parse("e42"), None);
        assert_eq!(ExperimentId::parse("bogus"), None);
    }

    #[test]
    fn all_experiments_have_descriptions_and_display() {
        for (i, id) in ExperimentId::all().iter().enumerate() {
            assert!(id.description().starts_with(&format!("E{}", i + 1)));
            assert_eq!(id.to_string(), format!("E{}", i + 1));
        }
    }
}
