//! **E6 — §7: spatial and temporal complexity.**
//!
//! The paper claims Bakery++ has the same O(N) spatial complexity as Bakery
//! (two arrays of size N, no new shared variables) and the same temporal
//! complexity whenever the overflow machinery does not fire, with extra cost
//! only when resets happen.  Three tables:
//!
//! * **E6a** — shared memory words per algorithm as N grows (the O(N) claim,
//!   with Bakery and Bakery++ identical and the related algorithms shown for
//!   context);
//! * **E6b** — simulator steps per critical-section entry for Bakery vs
//!   Bakery++ with a large bound (no resets) and a tiny bound (constant
//!   resets): the price of the guarantee;
//! * **E6c** — per-acquisition protocol steps of the real locks measured via
//!   the doorway/scan counters.

use std::sync::Arc;

use bakery_baselines::{all_algorithms, LockFactory};
use bakery_core::RawMutexAlgorithm;
use bakery_sim::{RandomScheduler, RunConfig, Simulator};
use bakery_spec::{BakeryPlusPlusSpec, BakerySpec};

use crate::report::Table;
use crate::workload::{run_workload, Workload};

/// Shared-word counts per algorithm for a given process count.
#[must_use]
pub fn spatial_table(process_counts: &[usize]) -> Table {
    let mut headers: Vec<String> = vec!["algorithm".into()];
    headers.extend(process_counts.iter().map(|n| format!("N={n}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new("E6a — shared memory words vs process count (O(N) claim)", &header_refs);

    let factory = LockFactory::new();
    let max_n = *process_counts.iter().max().unwrap_or(&2);
    for (id, _) in all_algorithms(max_n, &factory) {
        let mut row = vec![id.name().to_string()];
        for &n in process_counts {
            if id.supports(n) {
                let lock = factory.build(id, n);
                row.push(lock.shared_word_count().to_string());
            } else {
                row.push("-".into());
            }
        }
        table.push_row(row);
    }
    table.push_note(
        "Bakery and Bakery++ report identical footprints (2N words): the bound M is a constant, \
         not a shared variable.  The Black-White Bakery pays one extra shared word (the colour \
         bit) plus a colour per process; Peterson-style locks use multi-writer words.",
    );
    table
}

/// Steps per CS entry of the specifications (simulator-level temporal cost).
#[must_use]
pub fn temporal_spec_table(quick: bool) -> Table {
    let steps = if quick { 40_000 } else { 400_000 };
    let mut table = Table::new(
        "E6b — specification steps per critical-section entry (N=2, random schedule)",
        &["algorithm", "M", "steps", "CS entries", "steps / entry", "resets"],
    );
    let sim = Simulator::new();

    let classic = BakerySpec::new(2, u64::from(u32::MAX));
    let run = sim.run(
        &classic,
        &mut RandomScheduler::new(1),
        &RunConfig::<BakerySpec>::checked(steps),
    );
    let entries = run.report.total_cs_entries().max(1);
    table.push_row(vec![
        "bakery".into(),
        "unbounded".into(),
        run.report.steps.to_string(),
        entries.to_string(),
        format!("{:.1}", run.report.steps as f64 / entries as f64),
        "-".into(),
    ]);

    for &bound in &[u64::from(u32::MAX), 8, 2] {
        let pp = BakeryPlusPlusSpec::new(2, bound);
        let run = sim.run(
            &pp,
            &mut RandomScheduler::new(1),
            &RunConfig::<BakeryPlusPlusSpec>::checked(steps),
        );
        let entries = run.report.total_cs_entries().max(1);
        table.push_row(vec![
            "bakery++".into(),
            if bound == u64::from(u32::MAX) {
                "unbounded".into()
            } else {
                bound.to_string()
            },
            run.report.steps.to_string(),
            entries.to_string(),
            format!("{:.1}", run.report.steps as f64 / entries as f64),
            run.report.overflow_avoidance_resets.to_string(),
        ]);
    }
    table.push_note(
        "With a large M, Bakery++ costs the same order of steps per entry as Bakery (the L1 \
         scan adds a few local reads).  Only a pathologically small M makes the reset path \
         visible — the paper's \"price of guaranteeing that no overflows ever occur\".",
    );
    table
}

/// Doorway/scan wait counters of the real locks under a small workload.
#[must_use]
pub fn temporal_lock_table(quick: bool) -> Table {
    let iterations = if quick { 2_000 } else { 20_000 };
    let threads = 4;
    let mut table = Table::new(
        "E6c — real-lock protocol effort per acquisition (4 threads)",
        &[
            "algorithm",
            "acquisitions",
            "doorway/scan wait rounds per acquisition",
            "L1 waits per acquisition",
            "resets per acquisition",
            "fast-path hit rate",
        ],
    );
    for (name, lock) in [
        (
            "bakery",
            Arc::new(bakery_core::BakeryLock::new(threads)) as Arc<dyn RawMutexAlgorithm>,
        ),
        (
            "bakery++ (M=65535)",
            Arc::new(bakery_core::BakeryPlusPlusLock::with_bound(threads, 65_535)),
        ),
        (
            "bakery++ (M=7)",
            Arc::new(bakery_core::BakeryPlusPlusLock::with_bound(threads, 7)),
        ),
    ] {
        let workload = Workload {
            threads,
            iterations_per_thread: iterations,
            critical_section_work: 8,
            think_work: 8,
        };
        let result = run_workload(Arc::clone(&lock), &workload);
        let stats = lock.stats().snapshot();
        let acqs = result.total_acquisitions.max(1);
        table.push_row(vec![
            name.to_string(),
            result.total_acquisitions.to_string(),
            format!("{:.2}", stats.doorway_waits as f64 / acqs as f64),
            format!("{:.2}", stats.l1_waits as f64 / acqs as f64),
            format!("{:.3}", stats.resets as f64 / acqs as f64),
            format!("{:.3}", stats.fast_path_hits as f64 / acqs as f64),
        ]);
    }
    table.push_note(
        "The fast-path column counts acquisitions where the packed-snapshot emptiness check \
         let the lock skip the L2/L3 wait loops entirely; under full contention it naturally \
         tends towards zero.",
    );
    table
}

/// Runs E6 and renders its tables.
#[must_use]
pub fn run(quick: bool) -> Vec<Table> {
    vec![
        spatial_table(&[2, 4, 8, 16, 32]),
        temporal_spec_table(quick),
        temporal_lock_table(quick),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spatial_table_shows_equal_footprint_for_bakery_and_pp() {
        let table = spatial_table(&[2, 8]);
        let bakery: Vec<&Vec<String>> = table.rows.iter().filter(|r| r[0] == "bakery").collect();
        let pp: Vec<&Vec<String>> = table.rows.iter().filter(|r| r[0] == "bakery++").collect();
        assert_eq!(bakery.len(), 1);
        assert_eq!(pp.len(), 1);
        assert_eq!(bakery[0][1..], pp[0][1..], "identical shared footprint");
        assert_eq!(bakery[0][1], "4");
        assert_eq!(bakery[0][2], "16");
    }

    #[test]
    fn spatial_footprint_scales_linearly() {
        let table = spatial_table(&[2, 4, 8]);
        let row = table.rows.iter().find(|r| r[0] == "bakery++").unwrap();
        let values: Vec<u64> = row[1..].iter().map(|c| c.parse().unwrap()).collect();
        assert_eq!(values, vec![4, 8, 16]);
    }

    #[test]
    fn temporal_spec_table_reports_comparable_costs() {
        let table = temporal_spec_table(true);
        assert_eq!(table.len(), 4);
        let classic: f64 = table.rows[0][4].parse().unwrap();
        let pp_large: f64 = table.rows[1][4].parse().unwrap();
        assert!(classic > 0.0 && pp_large > 0.0);
        assert!(
            pp_large / classic < 3.0,
            "with a large bound Bakery++ must stay within a small constant factor \
             (classic {classic}, pp {pp_large})"
        );
    }

    #[test]
    fn temporal_lock_table_shape() {
        let table = temporal_lock_table(true);
        assert_eq!(table.len(), 3);
    }
}
