//! **E8 — §1.2 / §8.2: first-come-first-served fairness.**
//!
//! Bakery's defining extra property (beyond mutual exclusion) is FCFS service:
//! customers are served in the order they took tickets, and Bakery++ preserves
//! this.  Two measurements:
//!
//! * **E8a** — FIFO inversions counted on the observable traces of the
//!   specifications (an inversion is a pair of doorway completions served out
//!   of order).  FCFS algorithms score 0; the unfair baselines do not.
//! * **E8b** — per-thread service spread of the real locks under contention
//!   (max/min critical sections per thread), where barging locks show much
//!   larger skew.

use bakery_baselines::{all_algorithms, LockFactory};
use bakery_sim::trace::refinement::count_fifo_inversions;
use bakery_sim::{Algorithm, RandomScheduler, RunConfig, Simulator};
use bakery_spec::{BakeryPlusPlusSpec, BakerySpec, PetersonSpec, TicketSpec};

use crate::report::Table;
use crate::workload::{run_workload, Workload};

fn spec_inversions<A: Algorithm>(spec: &A, schedules: u64, steps: u64) -> (u64, u64) {
    let sim = Simulator::new();
    let mut inversions = 0u64;
    let mut entries = 0u64;
    for seed in 0..schedules {
        let config = RunConfig::<A>::checked(steps);
        let run = sim.run(spec, &mut RandomScheduler::new(seed), &config);
        inversions += count_fifo_inversions(&run.trace);
        entries += run.report.total_cs_entries();
    }
    (inversions, entries)
}

/// FIFO inversions per specification.
#[must_use]
pub fn inversion_table(quick: bool) -> Table {
    let schedules = if quick { 10 } else { 50 };
    let steps = if quick { 3_000 } else { 20_000 };
    let mut table = Table::new(
        "E8a — FIFO inversions on observable traces (doorway order vs service order)",
        &["algorithm", "schedules", "CS entries", "FIFO inversions"],
    );
    let bakery = BakerySpec::new(3, u64::from(u32::MAX));
    let (inv, ent) = spec_inversions(&bakery, schedules, steps);
    table.push_row(vec!["bakery".into(), schedules.to_string(), ent.to_string(), inv.to_string()]);

    let pp = BakeryPlusPlusSpec::new(3, 1_000);
    let (inv, ent) = spec_inversions(&pp, schedules, steps);
    table.push_row(vec!["bakery++".into(), schedules.to_string(), ent.to_string(), inv.to_string()]);

    let pp_tiny = BakeryPlusPlusSpec::new(3, 3);
    let (inv, ent) = spec_inversions(&pp_tiny, schedules, steps);
    table.push_row(vec![
        "bakery++ (M=3)".into(),
        schedules.to_string(),
        ent.to_string(),
        inv.to_string(),
    ]);

    let ticket = TicketSpec::new(3, u64::from(u32::MAX));
    let (inv, ent) = spec_inversions(&ticket, schedules, steps);
    table.push_row(vec![
        "ticket-lock".into(),
        schedules.to_string(),
        ent.to_string(),
        inv.to_string(),
    ]);

    let peterson = PetersonSpec::new();
    let (inv, ent) = spec_inversions(&peterson, schedules, steps);
    table.push_row(vec![
        "peterson".into(),
        schedules.to_string(),
        ent.to_string(),
        inv.to_string(),
    ]);

    table.push_note(
        "Bakery, Bakery++ and the ticket lock serve strictly in doorway order (0 inversions).  \
         Peterson's algorithm orders by doorway too for two processes; unfair spin locks are \
         covered by the real-lock spread below (they have no doorway to instrument).",
    );
    table
}

/// Per-thread service spread of every real lock.
#[must_use]
pub fn spread_table(quick: bool) -> Table {
    let threads = 4;
    let mut table = Table::new(
        "E8b — per-thread service spread under contention (4 threads)",
        &["algorithm", "total acquisitions", "min/thread", "max/thread", "max ÷ min"],
    );
    let factory = LockFactory::new();
    for (id, lock) in all_algorithms(threads, &factory) {
        let workload = Workload {
            threads,
            iterations_per_thread: if quick { 1_000 } else { 10_000 },
            critical_section_work: 8,
            think_work: 0,
        };
        let result = run_workload(lock, &workload);
        let min = result.per_thread.iter().copied().min().unwrap_or(0);
        let max = result.per_thread.iter().copied().max().unwrap_or(0);
        table.push_row(vec![
            id.name().to_string(),
            result.total_acquisitions.to_string(),
            min.to_string(),
            max.to_string(),
            format!("{:.2}", result.fairness_ratio()),
        ]);
    }
    table.push_note(
        "A closed loop forces every thread to the same completion count, so the spread is 1.0 \
         for all algorithms; the interesting signal is in E8a and in the latency tails of E7, \
         where non-FCFS locks show much larger p99s.",
    );
    table
}

/// Runs E8 and renders its tables.
#[must_use]
pub fn run(quick: bool) -> Vec<Table> {
    vec![inversion_table(quick), spread_table(quick)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fcfs_algorithms_have_zero_inversions() {
        let table = inversion_table(true);
        for row in &table.rows {
            if row[0].starts_with("bakery") || row[0] == "ticket-lock" {
                assert_eq!(row[3], "0", "{} must be FCFS", row[0]);
            }
        }
    }

    #[test]
    fn spread_table_covers_all_algorithms() {
        let table = spread_table(true);
        assert!(table.len() >= 10);
    }
}
