//! **E3 — §6.2: safety under crash faults and safe-register reads.**
//!
//! The paper's safety argument leans on two model assumptions beyond plain
//! interleaving: processes may crash and restart with zeroed registers
//! (assumptions 1.5–1.7), and a read that overlaps a write may return an
//! arbitrary value.  This experiment re-runs the exhaustive check of E2 with
//! those behaviours switched on: crash transitions explored from every state,
//! and [`RegisterSemantics::Safe`] registers, under which every write is a
//! begin/commit step pair and a read overlapping an in-progress write may
//! return any value in `[0, bound]`.

use bakery_mc::ModelChecker;
use bakery_spec::{BakeryPlusPlusSpec, BakerySpec, RegisterSemantics};

use crate::report::Table;

/// Outcome of one safety configuration.
#[derive(Debug, Clone)]
pub struct SafetyOutcome {
    /// Algorithm name.
    pub algorithm: String,
    /// Model variant description.
    pub variant: String,
    /// Distinct states explored.
    pub states: usize,
    /// Whether the exploration was exhaustive.
    pub complete: bool,
    /// Violated invariants (empty = all hold).
    pub violated: Vec<String>,
}

/// Checks Bakery++ under the given model extensions.
#[must_use]
pub fn check_pp_variant(
    n: usize,
    bound: u64,
    crashes: bool,
    flicker: bool,
    max_states: usize,
) -> SafetyOutcome {
    let semantics = if flicker {
        RegisterSemantics::Safe
    } else {
        RegisterSemantics::Atomic
    };
    let spec = BakeryPlusPlusSpec::new(n, bound).with_semantics(semantics);
    let report = ModelChecker::new(&spec)
        .with_paper_invariants()
        .with_crashes(crashes)
        .with_max_states(max_states)
        .run();
    SafetyOutcome {
        algorithm: "bakery++".into(),
        variant: variant_name(crashes, flicker),
        states: report.states,
        complete: !report.truncated,
        violated: report.violated_invariants(),
    }
}

/// Checks the classic (large-bound) Bakery under the same extensions, for the
/// paper's "if Bakery satisfies a property P, then Bakery++ satisfies it too"
/// comparison — mutual exclusion is checked, overflow is out of scope here.
#[must_use]
pub fn check_classic_variant(
    n: usize,
    bound: u64,
    crashes: bool,
    flicker: bool,
    max_states: usize,
) -> SafetyOutcome {
    let semantics = if flicker {
        RegisterSemantics::Safe
    } else {
        RegisterSemantics::Atomic
    };
    let spec = BakerySpec::new(n, bound).with_semantics(semantics);
    let report = ModelChecker::new(&spec)
        .with_invariant(bakery_sim::Invariant::mutual_exclusion())
        .with_crashes(crashes)
        .with_max_states(max_states)
        .run();
    SafetyOutcome {
        algorithm: "bakery".into(),
        variant: variant_name(crashes, flicker),
        states: report.states,
        complete: !report.truncated,
        violated: report.violated_invariants(),
    }
}

fn variant_name(crashes: bool, flicker: bool) -> String {
    match (crashes, flicker) {
        (false, false) => "atomic reads, no faults".into(),
        (true, false) => "atomic reads + crash/restart".into(),
        (false, true) => "safe-register flicker reads".into(),
        (true, true) => "flicker reads + crash/restart".into(),
    }
}

/// Runs E3 and renders its table.
#[must_use]
pub fn run(quick: bool) -> Vec<Table> {
    let max_states = if quick { 200_000 } else { 2_000_000 };
    let (n, bound) = (2, 2);
    let mut table = Table::new(
        "E3 — safety under the paper's failure and register model (N=2, M=2)",
        &["algorithm", "model variant", "states", "complete", "verdict"],
    );
    for &(crashes, flicker) in &[(false, false), (true, false), (false, true), (true, true)] {
        // Safe-register reads branch over the whole `[0, bound]` domain, so
        // the flicker rows for the classic Bakery must use a small bound —
        // which also lets the exploration actually reach the overflow
        // sentinel the note below discusses.
        let classic_bound = if flicker { 4 } else { 1_000_000 };
        for outcome in [
            check_pp_variant(n, bound, crashes, flicker, max_states),
            check_classic_variant(
                n,
                classic_bound,
                crashes,
                flicker,
                if quick { 60_000 } else { 200_000 },
            ),
        ] {
            table.push_row(vec![
                outcome.algorithm.clone(),
                outcome.variant.clone(),
                outcome.states.to_string(),
                if outcome.complete { "yes" } else { "no (bounded)" }.to_string(),
                if outcome.violated.is_empty() {
                    "holds".to_string()
                } else {
                    format!("VIOLATED: {}", outcome.violated.join(", "))
                },
            ]);
        }
    }
    table.push_note(
        "Bakery++ keeps both invariants under crash/restart faults and under safe \
         (flickering) registers — its registers are genuinely bounded by M, so even a read \
         that returns the largest possible value stays within the algorithm's ticket domain.  \
         The classic Bakery keeps mutual exclusion under crash faults; its safe-register rows \
         necessarily run with a small ticket bound (flickering reads branch over the whole \
         register domain), and any reported violation there sits downstream of the finite \
         M+1 overflow sentinel that approximates its *unbounded* ticket domain — which is \
         itself an illustration of the paper's point that finite registers change the game.  \
         The `weak_registers` exhaustive suite in `bakery-mc` is the definitive close-out of \
         both algorithms under safe semantics.",
    );
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pp_is_safe_under_crashes_and_flicker() {
        let outcome = check_pp_variant(2, 2, true, true, 1_500_000);
        assert!(outcome.violated.is_empty(), "{:?}", outcome.violated);
    }

    #[test]
    fn classic_keeps_mutual_exclusion_with_crashes() {
        let outcome = check_classic_variant(2, 1_000_000, true, false, 60_000);
        assert!(outcome.violated.is_empty(), "{:?}", outcome.violated);
    }

    #[test]
    fn variant_names_are_distinct() {
        let names: std::collections::HashSet<String> = [
            variant_name(false, false),
            variant_name(true, false),
            variant_name(false, true),
            variant_name(true, true),
        ]
        .into_iter()
        .collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn quick_table_shape() {
        let tables = run(true);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 8);
    }
}
