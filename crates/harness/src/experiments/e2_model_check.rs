//! **E2 — §6.1 + TLC result: exhaustive model checking.**
//!
//! Reproduces the paper's verification: for small instances (N processes,
//! register bound M) the entire state space is explored and the two invariants
//! *NoOverflow* and *MutualExclusion* are checked on every reachable state.
//! Bakery++ satisfies both; the classic Bakery on the same bounded registers
//! reaches an overflow state.

use bakery_mc::ModelChecker;
use bakery_spec::{BakeryPlusPlusSpec, BakerySpec, RegisterSemantics, TreeBakerySpec};

use crate::report::Table;

/// One model-checking configuration and its outcome.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// Algorithm name.
    pub algorithm: String,
    /// Number of processes.
    pub n: usize,
    /// Register bound M.
    pub bound: u64,
    /// Distinct states explored.
    pub states: usize,
    /// Distinct symmetry orbits (canonical states); equals `states` when the
    /// run used no symmetry compression.
    pub canonical_states: usize,
    /// Order of the symmetry group (1 = none).
    pub symmetry_order: usize,
    /// Transitions examined.
    pub transitions: usize,
    /// Whether exploration covered the full state space.
    pub complete: bool,
    /// Violated invariants (empty = all hold).
    pub violated: Vec<String>,
    /// Depth of the first violation, if any.
    pub violation_depth: Option<usize>,
}

fn outcome_from_report(
    algorithm: String,
    n: usize,
    bound: u64,
    report: &bakery_mc::ExplorationReport,
) -> CheckOutcome {
    CheckOutcome {
        algorithm,
        n,
        bound,
        states: report.states,
        canonical_states: report.canonical_states,
        symmetry_order: report.symmetry_order,
        transitions: report.transitions,
        complete: !report.truncated,
        violation_depth: report.violations.first().map(|v| v.depth),
        violated: report.violated_invariants(),
    }
}

/// Model checks one Bakery-family configuration.
#[must_use]
pub fn check_bakery_pp(n: usize, bound: u64, max_states: usize) -> CheckOutcome {
    let spec = BakeryPlusPlusSpec::new(n, bound);
    let report = ModelChecker::new(&spec)
        .with_paper_invariants()
        .with_max_states(max_states)
        .run();
    outcome_from_report("bakery++".into(), n, bound, &report)
}

/// Model checks the tree-composite lock's two-level binary specification
/// with the given active process subset (`None` = all four leaves live).
///
/// Tree rows run with the orbit-wise symmetry compression: the visited set
/// stores one canonical representative per leaf-placement orbit, which is
/// what lets the full four-process row close out (see the `mc-exhaustive`
/// CI job), and the canonical column reports the orbit count.
#[must_use]
pub fn check_tree(active: Option<&[usize]>, max_states: usize) -> CheckOutcome {
    let spec = match active {
        Some(pids) => TreeBakerySpec::new(2, 2).with_active_processes(pids),
        None => TreeBakerySpec::new(2, 2),
    };
    let report = ModelChecker::new(&spec)
        .with_paper_invariants()
        .with_symmetry_reduction(true)
        .with_max_states(max_states)
        .run();
    let algorithm = match active {
        Some(pids) => format!("tree-bakery (2-level, active {pids:?})"),
        None => "tree-bakery (2-level, all 4)".into(),
    };
    outcome_from_report(
        algorithm,
        active.map_or(4, <[usize]>::len),
        spec.bound(),
        &report,
    )
}

/// Model checks the bounded classic Bakery.
#[must_use]
pub fn check_classic_bakery(n: usize, bound: u64, max_states: usize) -> CheckOutcome {
    let spec = BakerySpec::new(n, bound);
    let report = ModelChecker::new(&spec)
        .with_paper_invariants()
        .with_max_states(max_states)
        .run();
    outcome_from_report("bakery".into(), n, bound, &report)
}

fn push_outcome(table: &mut Table, outcome: &CheckOutcome) {
    table.push_row(vec![
        outcome.algorithm.clone(),
        outcome.n.to_string(),
        outcome.bound.to_string(),
        outcome.states.to_string(),
        if outcome.symmetry_order > 1 {
            format!(
                "{} (/{})",
                outcome.canonical_states, outcome.symmetry_order
            )
        } else {
            "-".to_string()
        },
        outcome.transitions.to_string(),
        if outcome.complete { "yes" } else { "no (bounded)" }.to_string(),
        if outcome.violated.is_empty() {
            "holds".to_string()
        } else {
            format!(
                "VIOLATED: {} (depth {})",
                outcome.violated.join(", "),
                outcome.violation_depth.unwrap_or(0)
            )
        },
    ]);
}

/// Runs E2 and renders its table.
#[must_use]
pub fn run(quick: bool) -> Vec<Table> {
    let max_states = if quick { 300_000 } else { 3_000_000 };
    let mut table = Table::new(
        "E2 — exhaustive model checking (NoOverflow ∧ MutualExclusion)",
        &[
            "algorithm",
            "N",
            "M",
            "states",
            "canonical (sym)",
            "transitions",
            "complete",
            "verdict",
        ],
    );

    let mut configs: Vec<(usize, u64)> = vec![(2, 2), (2, 3), (2, 4)];
    if !quick {
        configs.push((3, 2));
        configs.push((3, 3));
    }
    for &(n, bound) in &configs {
        push_outcome(&mut table, &check_bakery_pp(n, bound, max_states));
        push_outcome(&mut table, &check_classic_bakery(n, bound, max_states));
    }
    // Tree composition: both two-process placements close out exhaustively;
    // the full four-process tree closes out too, but only with the full-run
    // state budget (quick mode stays bounded).
    push_outcome(&mut table, &check_tree(Some(&[0, 1]), max_states));
    push_outcome(&mut table, &check_tree(Some(&[0, 2]), max_states));
    if !quick {
        push_outcome(&mut table, &check_tree(None, TREE_CLOSEOUT_BUDGET));
    }
    table.push_note(
        "Bakery++ satisfies both invariants on every reachable state (the paper's Theorem, §6.1); \
         the classic Bakery on the same bounded registers reaches an overflow state.  The \
         tree-bakery rows check the tournament composition of Bakery++ nodes (per-node M = K+1) \
         with the orbit-compressed visited set (leaf-placement symmetry, canonical column = \
         orbit count): two-process placements verify exhaustively in any mode, and the full \
         four-process tree **closes out exhaustively** in full mode and in the mc-exhaustive CI \
         job — 39,624,406 states, 8,052,063 canonical orbits (/8), zero violations.",
    );

    let mut semantics_table = Table::new(
        "E2b — state-space size: atomic vs safe (flickering) registers",
        &["algorithm", "N", "M", "atomic states", "safe states", "blowup", "complete"],
    );
    for row in semantics_rows(quick) {
        semantics_table.push_row(vec![
            row.algorithm.clone(),
            row.n.to_string(),
            row.bound.to_string(),
            row.atomic_states.to_string(),
            row.safe_states.to_string(),
            format!("{:.2}x", row.blowup),
            if row.complete { "yes" } else { "no (bounded)" }.to_string(),
        ]);
    }
    semantics_table.push_note(
        "The same configurations explored under both register models (pure reachability).  \
         Safe semantics splits every shared-register write into a begin and a commit step and \
         branches every overlapping read over the whole register domain, so the state space \
         grows by the listed factor — and the weak-register close-outs in `bakery-mc` \
         (`tests/weak_registers.rs`) verify the paper invariants over exactly these enlarged \
         spaces.",
    );
    vec![table, semantics_table]
}

/// State budget of the full four-process close-out row (full mode only):
/// comfortably above the 39.6 M reachable states.
pub const TREE_CLOSEOUT_BUDGET: usize = 60_000_000;

/// One atomic-vs-safe register-semantics comparison: the same configuration
/// explored exhaustively under both register models (pure reachability, no
/// invariants, so a violation cannot cut the exploration short and the two
/// state counts compare like for like).
#[derive(Debug, Clone)]
pub struct SemanticsRow {
    /// Algorithm name.
    pub algorithm: String,
    /// Number of processes.
    pub n: usize,
    /// Register bound M.
    pub bound: u64,
    /// Reachable states under [`RegisterSemantics::Atomic`].
    pub atomic_states: usize,
    /// Reachable states under [`RegisterSemantics::Safe`] (writes split into
    /// begin/commit, overlapping reads branch over the register domain).
    pub safe_states: usize,
    /// `safe_states / atomic_states` — the cost of the weaker register model.
    pub blowup: f64,
    /// Both explorations closed out (`truncated == false` twice).
    pub complete: bool,
}

/// Explores one Bakery-family configuration under both register semantics
/// and reports the state-space sizes side by side.
#[must_use]
pub fn semantics_row(classic: bool, n: usize, bound: u64, max_states: usize) -> SemanticsRow {
    let explore = |semantics: RegisterSemantics| {
        if classic {
            let spec = BakerySpec::new(n, bound).with_semantics(semantics);
            ModelChecker::new(&spec).with_max_states(max_states).run()
        } else {
            let spec = BakeryPlusPlusSpec::new(n, bound).with_semantics(semantics);
            ModelChecker::new(&spec).with_max_states(max_states).run()
        }
    };
    let atomic = explore(RegisterSemantics::Atomic);
    let safe = explore(RegisterSemantics::Safe);
    #[allow(clippy::cast_precision_loss)]
    let blowup = safe.states as f64 / atomic.states.max(1) as f64;
    SemanticsRow {
        algorithm: if classic { "bakery" } else { "bakery++" }.to_string(),
        n,
        bound,
        atomic_states: atomic.states,
        safe_states: safe.states,
        blowup,
        complete: !atomic.truncated && !safe.truncated,
    }
}

/// The atomic-vs-safe comparison rows for the n = 2 / n = 3 close-outs
/// (quick mode keeps only the two-process rows).
#[must_use]
pub fn semantics_rows(quick: bool) -> Vec<SemanticsRow> {
    let max_states = 3_000_000;
    let mut rows = vec![
        semantics_row(false, 2, 3, max_states),
        semantics_row(true, 2, 3, max_states),
    ];
    if !quick {
        rows.push(semantics_row(false, 3, 3, max_states));
        rows.push(semantics_row(true, 3, 2, max_states));
    }
    rows
}

/// One row of the E2 scaling table (`bench-json --only e2`): one exhaustive
/// exploration of the scaling configuration at one worker-thread count.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Which configuration the row explored.
    pub configuration: String,
    /// Worker threads of the run.
    pub threads: usize,
    /// Wall-clock seconds of the exploration (excluding spec construction).
    pub wall_s: f64,
    /// Distinct concrete states visited.
    pub states: usize,
    /// Symmetry orbits (canonical states).
    pub canonical_states: usize,
    /// Transitions examined.
    pub transitions: usize,
    /// Deepest expanded BFS level.
    pub max_depth: usize,
    /// Replay-determinism digest — must be identical across the rows of one
    /// configuration, whatever the thread count.
    pub frontier_digest: u64,
    /// Concrete states per wall-clock second.
    pub states_per_sec: f64,
    /// `states_per_sec / threads` — the work-efficiency figure: flat across
    /// thread counts means the parallel engine adds no per-state overhead.
    pub states_per_sec_per_core: f64,
    /// Analytic resident footprint of the sharded visited set (arena words +
    /// variant masks + concrete log/parent metadata + index estimate).
    pub store_bytes: usize,
    /// Peak resident set of the *process* (`VmHWM`) after the run, in bytes;
    /// 0 where `/proc` is unavailable.  The kernel high-water mark is
    /// monotone, so within one bench invocation later rows inherit the
    /// ceiling of earlier ones — it bounds, not measures, each row.
    pub peak_rss_bytes: usize,
}

/// Reads the process's peak resident set (`VmHWM`) in bytes (0 when
/// `/proc/self/status` is unavailable, e.g. off Linux).
#[must_use]
pub fn peak_rss_bytes() -> usize {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().strip_suffix("kB"))
        .and_then(|kb| kb.trim().parse::<usize>().ok())
        .map_or(0, |kb| kb * 1024)
}

/// Analytic size of the sharded visited set: canonical codes in the arenas,
/// one variant mask per orbit, one log + parent word per concrete state, and
/// ~16 bytes per orbit for the fingerprint index (hash-map entry plus load
/// factor).  An estimate — it deliberately ignores allocator slack.
fn store_bytes_estimate(stride: usize, states: usize, canonical: usize) -> usize {
    canonical * (stride * 8 + 8 + 16) + states * 16
}

/// Runs the E2 scaling configuration once at `threads` workers.
///
/// Full mode explores the close-out configuration of the `mc-exhaustive` CI
/// job — the complete 4-process tree with the paper invariants, the tree
/// path invariant and orbit compression (~39.6 M states); quick mode runs
/// the 2-process leaf placement of the same spec, which closes out in
/// seconds.  The row's counts and digest must be identical across thread
/// counts — `bench-json` asserts it.
#[must_use]
pub fn scaling_row(quick: bool, threads: usize) -> ScalingRow {
    let (spec, configuration, budget) = if quick {
        (
            TreeBakerySpec::new(2, 2).with_active_processes(&[0, 1]),
            "tree 2-level, active [0, 1]".to_string(),
            3_000_000,
        )
    } else {
        (
            TreeBakerySpec::new(2, 2),
            "tree 2-level, all 4 (close-out)".to_string(),
            TREE_CLOSEOUT_BUDGET,
        )
    };
    let stride = bakery_mc::StateCodec::new(&spec).words_per_state();
    let start = std::time::Instant::now();
    let report = ModelChecker::new(&spec)
        .with_paper_invariants()
        .with_invariant(TreeBakerySpec::cs_holder_owns_path())
        .with_symmetry_reduction(true)
        .with_max_states(budget)
        .with_threads(threads)
        .run();
    let wall_s = start.elapsed().as_secs_f64();
    assert!(report.holds(), "the scaling configuration must verify: {report}");
    assert!(!report.truncated, "the scaling configuration must close out");
    #[allow(clippy::cast_precision_loss)]
    let states_per_sec = report.states as f64 / wall_s.max(1e-9);
    #[allow(clippy::cast_precision_loss)]
    let per_core = states_per_sec / threads as f64;
    ScalingRow {
        configuration,
        threads,
        wall_s,
        states: report.states,
        canonical_states: report.canonical_states,
        transitions: report.transitions,
        max_depth: report.max_depth,
        frontier_digest: report.frontier_digest,
        states_per_sec,
        states_per_sec_per_core: per_core,
        store_bytes: store_bytes_estimate(stride, report.states, report.canonical_states),
        peak_rss_bytes: peak_rss_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pp_holds_exhaustively_for_two_processes() {
        let outcome = check_bakery_pp(2, 3, 1_000_000);
        assert!(outcome.violated.is_empty());
        assert!(outcome.complete);
        assert!(outcome.states > 100);
    }

    #[test]
    fn classic_violates_no_overflow() {
        let outcome = check_classic_bakery(2, 3, 1_000_000);
        assert_eq!(outcome.violated, vec!["NoOverflow".to_string()]);
        assert!(outcome.violation_depth.unwrap() > 0);
    }

    #[test]
    fn quick_table_has_all_algorithms() {
        let tables = run(true);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), 8, "3 bounded configs x 2 + 2 tree rows");
        let md = tables[0].to_markdown();
        assert!(md.contains("bakery++"));
        assert!(md.contains("tree-bakery"));
        assert!(md.contains("VIOLATED: NoOverflow"));
        assert_eq!(tables[1].len(), 2, "quick mode: the two n=2 semantics rows");
        assert!(tables[1].to_markdown().contains("atomic states"));
    }

    #[test]
    fn semantics_rows_show_the_safe_register_blowup() {
        let row = semantics_row(false, 2, 3, 1_000_000);
        assert_eq!(row.atomic_states, 1570);
        assert_eq!(row.safe_states, 3667);
        assert!(row.complete);
        assert!(row.blowup > 2.0);
    }

    #[test]
    fn tree_two_process_placements_hold_exhaustively() {
        for active in [[0usize, 1], [0, 2]] {
            let outcome = check_tree(Some(&active), 2_000_000);
            assert!(outcome.violated.is_empty(), "active {active:?}");
            assert!(outcome.complete, "active {active:?} must close out");
            assert_eq!(outcome.bound, 3);
            assert_eq!(outcome.n, 2);
            // The orbit-wise store is active and actually compresses.
            assert!(outcome.symmetry_order > 1, "active {active:?}");
            assert!(
                outcome.canonical_states < outcome.states,
                "active {active:?}: {} orbits vs {} states",
                outcome.canonical_states,
                outcome.states
            );
        }
    }
}
