//! **E1 — §3: ticket growth and register overflow under alternation.**
//!
//! Replays the paper's Section 3 scenario deterministically: two processes
//! keep entering their critical sections "exactly one after the other", so
//! the bakery never empties and the classic algorithm's ticket grows without
//! bound.  For each register bound `M` the table reports when the classic
//! Bakery first overflows and what Bakery++ does instead (caps the ticket,
//! takes resets, never overflows).

use bakery_core::{BakeryLock, BakeryPlusPlusLock, DoorwayOutcome, RawMutexAlgorithm};

use crate::report::Table;

/// Result of replaying the alternation scenario against one lock.
#[derive(Debug, Clone, Copy)]
pub struct AlternationOutcome {
    /// Rounds executed.
    pub rounds: u64,
    /// Round at which the first overflow attempt happened (classic only).
    pub first_overflow_round: Option<u64>,
    /// Total overflow attempts.
    pub overflow_attempts: u64,
    /// Largest ticket value stored in a register.
    pub max_ticket: u64,
    /// Bakery++ reset branches taken.
    pub resets: u64,
    /// Rounds on which the entering process was refused at `L1`.
    pub l1_blocked_rounds: u64,
    /// Completed critical sections.
    pub completed: u64,
}

/// Replays `rounds` of the §3 alternation against a classic Bakery lock with
/// the given register bound.
#[must_use]
pub fn run_classic_alternation(bound: u64, rounds: u64) -> AlternationOutcome {
    let lock = BakeryLock::with_bound(2, bound);
    let mut outcome = AlternationOutcome {
        rounds,
        first_overflow_round: None,
        overflow_attempts: 0,
        max_ticket: 0,
        resets: 0,
        l1_blocked_rounds: 0,
        completed: 0,
    };
    // Process 0 opens the bakery.
    let _ = lock.try_doorway(0);
    let mut pending = 0usize;
    for round in 0..rounds {
        let entering = 1 - pending;
        match lock.try_doorway(entering) {
            DoorwayOutcome::Overflowed { .. } => {
                outcome
                    .first_overflow_round
                    .get_or_insert(round);
            }
            DoorwayOutcome::Ticket(_) => {}
            DoorwayOutcome::Blocked | DoorwayOutcome::Reset => unreachable!("classic Bakery has no guard"),
        }
        // Serve the process that was already waiting.
        lock.await_turn(pending);
        lock.release(pending);
        outcome.completed += 1;
        pending = entering;
    }
    let stats = lock.stats().snapshot();
    outcome.overflow_attempts = stats.overflow_attempts;
    outcome.max_ticket = stats.max_ticket;
    outcome
}

/// Replays `rounds` of the §3 alternation against Bakery++ with bound `M`.
#[must_use]
pub fn run_pp_alternation(bound: u64, rounds: u64) -> AlternationOutcome {
    let lock = BakeryPlusPlusLock::with_bound(2, bound);
    let mut outcome = AlternationOutcome {
        rounds,
        first_overflow_round: None,
        overflow_attempts: 0,
        max_ticket: 0,
        resets: 0,
        l1_blocked_rounds: 0,
        completed: 0,
    };
    assert!(lock.try_doorway(0).took_ticket());
    let mut pending = 0usize;
    for _round in 0..rounds {
        let entering = 1 - pending;
        match lock.try_doorway(entering) {
            DoorwayOutcome::Ticket(_) => {
                lock.await_turn(pending);
                lock.release(pending);
                outcome.completed += 1;
                pending = entering;
            }
            DoorwayOutcome::Blocked | DoorwayOutcome::Reset => {
                outcome.l1_blocked_rounds += 1;
                // Serve the pending process; the bakery drains and the blocked
                // process retries successfully on an empty bakery.
                lock.await_turn(pending);
                lock.release(pending);
                outcome.completed += 1;
                let retry = lock.try_doorway(entering);
                assert!(retry.took_ticket(), "empty bakery must admit");
                pending = entering;
            }
            DoorwayOutcome::Overflowed { .. } => unreachable!("Bakery++ never overflows"),
        }
    }
    let stats = lock.stats().snapshot();
    outcome.overflow_attempts = stats.overflow_attempts;
    outcome.max_ticket = stats.max_ticket;
    outcome.resets = stats.resets;
    outcome
}

/// Runs E1 and renders its tables.
#[must_use]
pub fn run(quick: bool) -> Vec<Table> {
    let rounds: u64 = if quick { 2_000 } else { 100_000 };
    let bounds: &[u64] = &[7, 15, 255, 65_535];

    let mut table = Table::new(
        "E1 — §3 alternation: classic Bakery vs Bakery++ per register bound M",
        &[
            "M",
            "rounds",
            "bakery first overflow (round)",
            "bakery overflow attempts",
            "bakery max ticket",
            "bakery++ max ticket",
            "bakery++ resets",
            "bakery++ L1 refusals",
            "bakery++ overflow attempts",
        ],
    );
    for &bound in bounds {
        let classic = run_classic_alternation(bound, rounds);
        let pp = run_pp_alternation(bound, rounds);
        table.push_row(vec![
            bound.to_string(),
            rounds.to_string(),
            classic
                .first_overflow_round
                .map_or_else(|| "never".to_string(), |r| r.to_string()),
            classic.overflow_attempts.to_string(),
            classic.max_ticket.to_string(),
            pp.max_ticket.to_string(),
            pp.resets.to_string(),
            pp.l1_blocked_rounds.to_string(),
            pp.overflow_attempts.to_string(),
        ]);
    }
    table.push_note(
        "Classic Bakery overflows roughly at round M - 1 and keeps overflowing; \
         Bakery++ caps every ticket at M and never attempts an out-of-range store.",
    );

    // Unbounded growth side table: the §3 statement that tickets grow without
    // limit while the bakery never empties.
    let mut growth = Table::new(
        "E1b — ticket value after k alternation rounds (unbounded registers)",
        &["rounds", "bakery max ticket", "bakery++ (M=65535) max ticket"],
    );
    for &k in &[10u64, 100, 1_000, rounds.min(10_000)] {
        let classic = run_classic_alternation(u64::MAX, k);
        let pp = run_pp_alternation(65_535, k);
        growth.push_row(vec![
            k.to_string(),
            classic.max_ticket.to_string(),
            pp.max_ticket.to_string(),
        ]);
    }
    growth.push_note("The classic ticket grows linearly with the number of rounds; Bakery++ is capped by M.");

    vec![table, growth]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_overflows_close_to_the_bound() {
        let outcome = run_classic_alternation(7, 100);
        assert!(outcome.overflow_attempts > 0);
        let first = outcome.first_overflow_round.unwrap();
        assert!(first <= 8, "first overflow at round {first}");
        assert_eq!(outcome.completed, 100);
    }

    #[test]
    fn classic_with_unbounded_registers_never_overflows() {
        let outcome = run_classic_alternation(u64::MAX, 500);
        assert!(outcome.first_overflow_round.is_none());
        assert!(outcome.max_ticket >= 500);
    }

    #[test]
    fn pp_never_overflows_and_respects_the_bound() {
        for bound in [3u64, 7, 255] {
            let outcome = run_pp_alternation(bound, 500);
            assert_eq!(outcome.overflow_attempts, 0, "M={bound}");
            assert!(outcome.max_ticket <= bound, "M={bound}");
            assert!(outcome.completed >= 500);
            assert!(outcome.l1_blocked_rounds > 0, "the cap must be hit for M={bound}");
        }
    }

    #[test]
    fn table_has_one_row_per_bound() {
        let tables = run(true);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), 4);
        assert!(tables[0].to_markdown().contains("bakery++ resets"));
        assert_eq!(tables[1].len(), 4);
    }
}
