//! **E10 — beyond the paper: flat Bakery++ vs the tree composite at N ≫ 128.**
//!
//! The paper's algorithms pay an O(N) doorway scan, which is why the flat
//! locks stop scaling once `N` reaches the hundreds even with the packed
//! snapshot plane.  This experiment quantifies what the
//! tournament-of-bounded-bakeries (`bakery-core::tree`) buys at large `N`:
//!
//! * **E10a** — analytic doorway footprint: words one uncontended acquisition
//!   scans, flat vs tree, as `N` grows (the sub-linearity headline);
//! * **E10b** — measured uncontended acquire/release latency of the real
//!   locks at large `N`;
//! * **E10c** — contended throughput with a handful of live threads on
//!   large-capacity locks, with the tree's per-level statistics.

use std::sync::Arc;

use bakery_core::{BakeryPlusPlusLock, RawMutexAlgorithm, TreeBakery, DEFAULT_PP_BOUND};

use crate::report::Table;
use crate::workload::{
    measure_uncontended, run_workload, run_workload_placed, spread_placement, Workload,
};

/// The `N` values the experiment sweeps.
pub const SIZES: [usize; 3] = [256, 512, 1024];

/// The arity values of the E10d sweep.
pub const ARITIES: [usize; 3] = [4, 8, 16];

/// Tree arity used throughout (8-ary keeps each node's packed ticket array
/// within one cache line).
pub const ARITY: usize = 8;

/// Doorway scan words of the flat packed Bakery++ at `n`.
#[must_use]
pub fn flat_scan_words(n: usize) -> usize {
    BakeryPlusPlusLock::with_bound(n, DEFAULT_PP_BOUND)
        .registers()
        .packed()
        .map_or(2 * n, bakery_core::PackedSnapshot::word_count)
}

/// E10a: analytic doorway footprint, flat vs tree.
#[must_use]
pub fn footprint_table() -> Table {
    let mut table = Table::new(
        "E10a — doorway scan words per uncontended acquisition (flat vs tree)",
        &["N", "flat bakery++ (packed)", "tree (K=8) words", "tree depth", "flat ÷ tree"],
    );
    for &n in &SIZES {
        let flat = flat_scan_words(n);
        let tree = TreeBakery::with_arity(n, ARITY);
        table.push_row(vec![
            n.to_string(),
            flat.to_string(),
            tree.doorway_scan_words().to_string(),
            tree.depth().to_string(),
            format!("{:.1}x", flat as f64 / tree.doorway_scan_words() as f64),
        ]);
    }
    table.push_note(
        "Quadrupling N quadruples the flat scan but adds only one level (a constant number of \
         words) to the tree's leaf-to-root path: O(N/8) vs O(K·log_K N).",
    );
    table
}

/// E10b: measured uncontended latency at large N.
#[must_use]
pub fn latency_table(quick: bool) -> Table {
    let (iterations, samples) = if quick { (5_000, 3) } else { (50_000, 7) };
    let mut table = Table::new(
        "E10b — uncontended acquire/release latency at large N (ns, median)",
        &["N", "flat bakery++ (packed)", "tree-bakery (K=8)", "speedup"],
    );
    for &n in &SIZES {
        let flat = BakeryPlusPlusLock::with_bound(n, DEFAULT_PP_BOUND);
        let tree = TreeBakery::with_arity(n, ARITY);
        let flat_ns = measure_uncontended(&flat, iterations, samples);
        let tree_ns = measure_uncontended(&tree, iterations, samples);
        table.push_row(vec![
            n.to_string(),
            format!("{flat_ns:.0}"),
            format!("{tree_ns:.0}"),
            format!("{:.2}x", flat_ns / tree_ns),
        ]);
    }
    table.push_note(
        "Uncontended, the flat lock's fast path still scans its whole packed plane twice \
         (emptiness check + maximum), so its latency grows with N; the tree walks a fixed-depth \
         path of tiny nodes.",
    );
    table
}

/// E10c: contended throughput with few live threads on large-capacity locks,
/// in both placement regimes — threads packed into one **shared leaf**
/// (lowest slots, contention resolved inside a single node) and **spread**
/// across distinct top-level subtrees (contention meets only at the root).
#[must_use]
pub fn contended_table(quick: bool) -> Table {
    let threads = 4;
    let mut table = Table::new(
        "E10c — contended throughput, 4 live threads on large-capacity locks",
        &[
            "N",
            "algorithm / placement",
            "acq/s",
            "resets",
            "fast-path hits",
            "per-level doorway waits (leaf..root)",
        ],
    );
    for &n in &SIZES {
        let workload = Workload {
            threads,
            iterations_per_thread: if quick { 500 } else { 3_000 },
            critical_section_work: 16,
            think_work: 16,
        };

        let flat: Arc<dyn RawMutexAlgorithm> =
            Arc::new(BakeryPlusPlusLock::with_bound(n, DEFAULT_PP_BOUND));
        let result = run_workload(Arc::clone(&flat), &workload);
        table.push_row(vec![
            n.to_string(),
            "bakery++ (flat)".into(),
            format!("{:.0}", result.throughput()),
            result.resets.to_string(),
            result.fast_path_hits.to_string(),
            "-".into(),
        ]);

        for (regime, placement) in [
            ("shared leaf", None),
            ("spread subtrees", Some(spread_placement(n, threads))),
        ] {
            let tree = Arc::new(TreeBakery::with_arity(n, ARITY));
            let result = run_workload_placed(
                Arc::clone(&tree) as Arc<dyn RawMutexAlgorithm>,
                &workload,
                placement.as_deref(),
            );
            let per_level: Vec<String> = (0..tree.depth())
                .map(|level| tree.level_snapshot(level).doorway_waits.to_string())
                .collect();
            let aggregate = tree.aggregate_snapshot();
            table.push_row(vec![
                n.to_string(),
                format!("tree-bakery (K=8, {regime})"),
                format!("{:.0}", result.throughput()),
                aggregate.resets.to_string(),
                aggregate.fast_path_hits.to_string(),
                per_level.join(" / "),
            ]);
            assert_eq!(aggregate.overflow_attempts, 0, "the tree must never overflow");
        }
    }
    table.push_note(
        "Shared leaf (lowest slots): the tree resolves all contention inside one leaf node and \
         climbs an uncontended path.  Spread subtrees (slots strided across top-level subtrees): \
         every thread climbs a private path and the conflict moves to the root node — the \
         root-contention regime, visible as the doorway waits shifting from the leaf level to \
         the root level.  The flat lock's wait loops scan all N registers either way.  Tree \
         fast-path hits count per node (up to depth per acquisition).",
    );
    table
}

/// E10d: the K = 4/8/16 arity sweep at one large N, in both placement
/// regimes — arity trades per-node scan width against tree depth, and the
/// placement decides which levels actually see contention.
#[must_use]
pub fn arity_table(quick: bool) -> Table {
    let n = 512;
    let threads = 4;
    let (iterations, samples) = if quick { (5_000, 3) } else { (30_000, 5) };
    let mut table = Table::new(
        format!("E10d — arity sweep at N = {n}, {threads} live threads"),
        &[
            "K",
            "depth",
            "scan words",
            "uncontended ns",
            "acq/s shared leaf",
            "acq/s spread",
        ],
    );
    for &arity in &ARITIES {
        let tree = TreeBakery::with_arity(n, arity);
        let depth = tree.depth();
        let words = tree.doorway_scan_words();
        let uncontended_ns = measure_uncontended(&tree, iterations, samples);
        drop(tree);

        let workload = Workload {
            threads,
            iterations_per_thread: if quick { 500 } else { 3_000 },
            critical_section_work: 16,
            think_work: 16,
        };
        let mut regimes = Vec::new();
        for placement in [None, Some(spread_placement(n, threads))] {
            let tree = Arc::new(TreeBakery::with_arity(n, arity));
            let result = run_workload_placed(
                Arc::clone(&tree) as Arc<dyn RawMutexAlgorithm>,
                &workload,
                placement.as_deref(),
            );
            assert_eq!(tree.aggregate_snapshot().overflow_attempts, 0);
            regimes.push(format!("{:.0}", result.throughput()));
        }
        table.push_row(vec![
            arity.to_string(),
            depth.to_string(),
            words.to_string(),
            format!("{uncontended_ns:.0}"),
            regimes[0].clone(),
            regimes[1].clone(),
        ]);
    }
    table.push_note(
        "Small K: deeper trees, more node acquisitions per entry but narrower scans. Large K: \
         shallow trees whose nodes approach the flat lock's scan cost.  K = 8 keeps a node's \
         packed ticket array within one cache line, which is why it is the default.  Re-measure \
         on a multi-core runner for the contended columns (1-CPU medians compress the spread).",
    );
    table
}

/// Runs E10 and renders its tables.
#[must_use]
pub fn run(quick: bool) -> Vec<Table> {
    vec![
        footprint_table(),
        latency_table(quick),
        contended_table(quick),
        arity_table(quick),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_is_sublinear() {
        let table = footprint_table();
        assert_eq!(table.len(), SIZES.len());
        let flat: Vec<usize> = table.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        let tree: Vec<usize> = table.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        assert_eq!(flat[2], 4 * flat[0], "flat scan words are linear in N");
        assert!(
            tree[2] < tree[0] * 2,
            "quadrupling N must not double the tree's path: {tree:?}"
        );
        assert!(flat[2] / tree[2] >= 4, "at N=1024 the tree is >= 4x denser");
    }

    #[test]
    fn contended_table_reports_both_placement_regimes() {
        let table = contended_table(true);
        assert_eq!(table.len(), 3 * SIZES.len());
        let tree_rows: Vec<_> = table
            .rows
            .iter()
            .filter(|r| r[1].starts_with("tree"))
            .collect();
        assert_eq!(tree_rows.len(), 2 * SIZES.len());
        for row in &tree_rows {
            assert!(row[5].contains('/'), "per-level stats rendered: {row:?}");
        }
        assert!(tree_rows.iter().any(|r| r[1].contains("shared leaf")));
        assert!(tree_rows.iter().any(|r| r[1].contains("spread subtrees")));
    }

    #[test]
    fn spread_placement_lands_in_distinct_top_subtrees() {
        for &n in &SIZES {
            let tree = TreeBakery::with_arity(n, ARITY);
            let pids = spread_placement(n, 4);
            let top = tree.depth() - 1;
            // The spread regime maximises root-slot distinctness: the 4
            // threads cover as many occupied root children as exist (at
            // N = 1024 the 8-ary tree only populates 2 of them).
            let occupied_root_children = n.div_ceil(ARITY.pow(top as u32)).min(ARITY);
            let slots: std::collections::HashSet<_> =
                pids.iter().map(|&pid| tree.position(pid, top)).collect();
            assert_eq!(
                slots.len(),
                4.min(occupied_root_children),
                "N = {n}: root slots must spread across all occupied children"
            );
            // And at the leaf level they share nothing at any size.
            let leaves: std::collections::HashSet<_> =
                pids.iter().map(|&pid| tree.position(pid, 0).0).collect();
            assert_eq!(leaves.len(), 4, "N = {n}: leaf nodes must be distinct");
        }
    }

    #[test]
    fn arity_sweep_covers_all_arities() {
        let table = arity_table(true);
        assert_eq!(table.len(), ARITIES.len());
        for (row, &arity) in table.rows.iter().zip(&ARITIES) {
            assert_eq!(row[0], arity.to_string());
            let depth: usize = row[1].parse().unwrap();
            assert!(depth >= 2, "512 processes need at least two levels");
        }
        // Scan words are not monotone in K: depth falls as width grows.
        let words: Vec<usize> = table.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        assert!(words.iter().all(|&w| w > 0));
    }
}
