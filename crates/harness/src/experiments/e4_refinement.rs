//! **E4 — §6.2: Bakery++ executions are observably valid Bakery executions.**
//!
//! The paper argues that Bakery++ is a refinement of Bakery: it does not
//! change the execution flow, so every Bakery++ execution is a valid Bakery
//! execution.  We check the observable content of that claim on sampled
//! schedules: the sequence of doorway completions, critical-section entries
//! and exits produced by Bakery++ must satisfy the **Bakery service
//! discipline** — mutual exclusion at the observable level plus
//! first-come-first-served by `(number, pid)` — which is exactly the
//! observable behaviour the original Bakery guarantees.  The classic Bakery
//! itself is run through the same checker as a control.

use bakery_sim::trace::refinement::check_fcfs_by_ticket;
use bakery_sim::{Algorithm, RandomScheduler, RunConfig, Simulator};
use bakery_spec::{BakeryPlusPlusSpec, BakerySpec};

use crate::report::Table;

/// Result of the service-discipline check over a batch of sampled schedules.
#[derive(Debug, Clone, Default)]
pub struct DisciplineOutcome {
    /// Schedules sampled.
    pub schedules: u64,
    /// Total critical-section entries across all schedules.
    pub cs_entries: u64,
    /// Schedules on which the Bakery service discipline was violated.
    pub discipline_violations: u64,
    /// Schedules on which the overflow-avoidance machinery fired at least once.
    pub schedules_with_resets: u64,
    /// Schedules on which a register-overflow attempt was observed.
    pub schedules_with_overflows: u64,
}

fn check_discipline<A: Algorithm>(
    spec: &A,
    schedules: u64,
    steps: u64,
) -> DisciplineOutcome {
    let sim = Simulator::new();
    let mut outcome = DisciplineOutcome {
        schedules,
        ..DisciplineOutcome::default()
    };
    for seed in 0..schedules {
        let config = RunConfig::<A>::checked(steps);
        let run = sim.run(spec, &mut RandomScheduler::new(seed), &config);
        outcome.cs_entries += run.report.total_cs_entries();
        if !check_fcfs_by_ticket(&run.trace).holds() {
            outcome.discipline_violations += 1;
        }
        if run.report.overflow_avoidance_resets > 0 {
            outcome.schedules_with_resets += 1;
        }
        if run.report.overflow_attempts > 0 {
            outcome.schedules_with_overflows += 1;
        }
    }
    outcome
}

/// Checks Bakery++ for `n` processes with bound `m`.
#[must_use]
pub fn check_pp(n: usize, m: u64, schedules: u64, steps: u64) -> DisciplineOutcome {
    check_discipline(&BakeryPlusPlusSpec::new(n, m), schedules, steps)
}

/// Checks the classic Bakery (effectively unbounded registers) as a control.
#[must_use]
pub fn check_classic(n: usize, schedules: u64, steps: u64) -> DisciplineOutcome {
    check_discipline(&BakerySpec::new(n, u64::from(u32::MAX)), schedules, steps)
}

/// Runs E4 and renders its table.
#[must_use]
pub fn run(quick: bool) -> Vec<Table> {
    let schedules = if quick { 20 } else { 200 };
    let steps = if quick { 2_000 } else { 10_000 };
    let mut table = Table::new(
        "E4 — refinement: observable Bakery service discipline (FCFS by ticket + mutual exclusion)",
        &[
            "algorithm",
            "N",
            "M",
            "schedules",
            "CS entries",
            "discipline violations",
            "schedules with resets",
        ],
    );
    for &(n, m) in &[(2usize, 1_000u64), (2, 4), (3, 3)] {
        let pp = check_pp(n, m, schedules, steps);
        table.push_row(vec![
            "bakery++".into(),
            n.to_string(),
            m.to_string(),
            pp.schedules.to_string(),
            pp.cs_entries.to_string(),
            pp.discipline_violations.to_string(),
            pp.schedules_with_resets.to_string(),
        ]);
    }
    for &n in &[2usize, 3] {
        let classic = check_classic(n, schedules, steps);
        table.push_row(vec![
            "bakery (control)".into(),
            n.to_string(),
            "unbounded".into(),
            classic.schedules.to_string(),
            classic.cs_entries.to_string(),
            classic.discipline_violations.to_string(),
            "-".into(),
        ]);
    }
    table.push_note(
        "Zero discipline violations for Bakery++ on every sampled schedule — including those \
         where the reset path fires — means every observed Bakery++ execution is a valid Bakery \
         execution at the observable level, which is the paper's refinement claim.",
    );
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refinement_holds_for_large_bound() {
        let outcome = check_pp(2, 1_000, 10, 2_000);
        assert_eq!(outcome.discipline_violations, 0);
        assert_eq!(outcome.schedules_with_overflows, 0);
        assert!(outcome.cs_entries > 0);
    }

    #[test]
    fn refinement_holds_even_when_resets_fire() {
        let outcome = check_pp(3, 2, 10, 3_000);
        assert_eq!(outcome.discipline_violations, 0);
        assert!(
            outcome.schedules_with_resets > 0,
            "a tiny bound should exercise the reset path"
        );
    }

    #[test]
    fn classic_control_also_satisfies_its_own_discipline() {
        let outcome = check_classic(2, 10, 2_000);
        assert_eq!(outcome.discipline_violations, 0);
    }

    #[test]
    fn table_shape() {
        let tables = run(true);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 5);
    }
}
