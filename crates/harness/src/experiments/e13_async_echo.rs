//! **E13 — beyond the paper: an async echo service over the session plane.**
//!
//! E11 churns sessions with one *thread* per in-flight client; this
//! experiment drives the regime the async session clients
//! (`bakery-core::asession`) and the pluggable wait plane
//! (`bakery-core::wait`) exist for: a client population far beyond any sane
//! thread count, multiplexed as **futures** over a small executor pool
//! ([`crate::executor::Executor`]).
//!
//! The workload models an echo server.  `connections` long-lived async
//! tasks each serve a stream of clients; one client is
//!
//! 1. `attach_async().await` — lease a pid from an 8–64-slot plane (the
//!    measured latency: request-to-seat),
//! 2. `lock_async().await` × `echoes_per_client` — echo a payload under the
//!    lock (the critical section),
//! 3. drop the session — recycle the seat for the next client.
//!
//! The full run serves **10⁵ clients over ≤ 64 slots** (quick: 10⁴), once
//! per wait strategy — `spin` (pending futures self-wake and re-poll: the
//! executor queue *is* the spin loop), `yield` (same async path, thread
//! waits yield), and `park` (pending futures cost one registered [`Waker`];
//! seats wake them in `ATTACH_WAKE_BATCH`ed pulses).  Reported per
//! strategy: sessions/sec, echoes/sec and the attach-latency distribution
//! (p50/p99/max).
//!
//! Two invariants are asserted **in-run**, mirroring E11:
//!
//! * a leased pid is never aliased — per-pid lease markers catch two live
//!   sessions on one seat the instant the second attach resolves;
//! * no two critical sections overlap anywhere (the locks' mutual
//!   exclusion, observed through a global in-CS counter).

use bakery_core::sync::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bakery_core::wait::{strategy_by_name, Park, WaitStrategy};
use bakery_core::{
    BakeryPlusPlusLock, RawMutexAlgorithm, ScanMode, SessionPlane, DEFAULT_PP_BOUND,
};

use crate::executor::Executor;
use crate::histogram::LatencyHistogram;
use crate::report::Table;
use crate::workload::busy_work;

/// The wait strategies E13 sweeps, in report order.
pub const STRATEGIES: [&str; 3] = ["spin", "yield", "park"];

/// One async-churn configuration: `clients` sessions served as futures
/// through `slots` pids by `workers` executor threads.
#[derive(Debug, Clone, Copy)]
pub struct EchoConfig {
    /// Slot capacity of the lock (maximum concurrently attached clients).
    pub slots: usize,
    /// Total client sessions to serve.
    pub clients: usize,
    /// Concurrent connection tasks (in-flight futures); each serves
    /// `clients / connections` clients back to back.
    pub connections: usize,
    /// Echo round-trips (critical sections) per client session.
    pub echoes_per_client: u64,
    /// Executor worker threads polling the connection tasks.
    pub workers: usize,
    /// Busy-work units per echo (the payload copy).
    pub payload_work: u64,
}

impl EchoConfig {
    /// The E13 configuration: 10⁵ clients over a 64-slot plane (full) or
    /// 10⁴ over 16 slots (quick), both ≥ 16× oversubscribed in futures.
    #[must_use]
    pub fn standard(quick: bool) -> Self {
        let workers = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
        if quick {
            Self {
                slots: 16,
                clients: 10_000,
                connections: 256,
                echoes_per_client: 2,
                workers: workers.clamp(2, 8),
                payload_work: 4,
            }
        } else {
            Self {
                slots: 64,
                clients: 100_000,
                connections: 1_024,
                echoes_per_client: 4,
                workers: workers.clamp(4, 16),
                payload_work: 8,
            }
        }
    }

    /// Future-to-slot ratio (how oversubscribed the plane is at any instant).
    #[must_use]
    pub fn oversubscription(&self) -> usize {
        self.connections / self.slots
    }
}

/// Outcome of one strategy's churn.
#[derive(Debug)]
pub struct EchoResult {
    /// The wait strategy name ("spin" / "yield" / "park").
    pub strategy: String,
    /// Client sessions completed (must equal the configured total).
    pub completed_sessions: u64,
    /// Echo round-trips (critical sections) served.
    pub echoes: u64,
    /// Wall-clock duration of the churn.
    pub elapsed: Duration,
    /// Attach latency (request to leased seat), one sample per client.
    pub attach_latency: LatencyHistogram,
    /// Lease-marker and CS-overlap violations observed in-run (must be 0).
    pub aliasing_violations: u64,
    /// Threads parked (park strategy only; the async path registers wakers
    /// instead, so this counts the executor's own sync waits — usually 0).
    pub parks: u64,
    /// Waiters woken by a notify — parked threads plus registered wakers
    /// (park strategy only).
    pub notifies: u64,
    /// Parks that ended by the timeout safety net (park strategy only).
    pub park_timeouts: u64,
}

impl EchoResult {
    /// Completed client sessions per second.
    #[must_use]
    pub fn sessions_per_sec(&self) -> f64 {
        self.completed_sessions as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Echo round-trips per second.
    #[must_use]
    pub fn echoes_per_sec(&self) -> f64 {
        self.echoes as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Shared in-run accounting: the invariant markers and the result counters.
#[derive(Debug)]
struct EchoState {
    /// Clients not yet claimed by a connection task.
    remaining: AtomicU64,
    /// Per-pid lease markers: a second live session on a seat is aliasing.
    leased: Box<[AtomicU64]>,
    /// Global critical-section occupancy: must never exceed 1.
    in_cs: AtomicU64,
    aliasing: AtomicU64,
    sessions: AtomicU64,
    echoes: AtomicU64,
    attach: Mutex<LatencyHistogram>,
}

/// Runs the churn once under the named wait strategy.
///
/// # Panics
/// Panics on an unknown strategy name.
#[must_use]
pub fn run_echo(strategy: &str, config: &EchoConfig) -> EchoResult {
    // The park strategy is built directly (not via `strategy_by_name`) so a
    // typed handle survives for the stats columns.
    let (strategy_obj, park): (Arc<dyn WaitStrategy>, Option<Arc<Park>>) = if strategy == "park" {
        let park = Arc::new(Park::new());
        (Arc::clone(&park) as Arc<dyn WaitStrategy>, Some(park))
    } else {
        (
            strategy_by_name(strategy)
                .unwrap_or_else(|| panic!("unknown wait strategy {strategy:?}")),
            None,
        )
    };
    let lock = BakeryPlusPlusLock::with_bound_mode_and_strategy(
        config.slots,
        DEFAULT_PP_BOUND,
        ScanMode::Packed,
        strategy_obj,
    );
    let plane = SessionPlane::new(Arc::new(lock) as Arc<dyn RawMutexAlgorithm>);
    let state = Arc::new(EchoState {
        remaining: AtomicU64::new(config.clients as u64),
        leased: (0..config.slots).map(|_| AtomicU64::new(0)).collect(),
        in_cs: AtomicU64::new(0),
        aliasing: AtomicU64::new(0),
        sessions: AtomicU64::new(0),
        echoes: AtomicU64::new(0),
        attach: Mutex::new(LatencyHistogram::new()),
    });

    let pool = Executor::new(config.workers);
    let started = Instant::now();
    for _ in 0..config.connections {
        let plane = Arc::clone(&plane);
        let state = Arc::clone(&state);
        let echoes = config.echoes_per_client;
        let payload = config.payload_work;
        pool.spawn(async move {
            // One connection serves clients until the population is drained.
            while state
                .remaining
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1)) // mem: harness-probe
                .is_ok()
            {
                let requested = Instant::now();
                let session = plane.attach_async().await;
                let attach_ns = u64::try_from(requested.elapsed().as_nanos()).unwrap_or(u64::MAX);
                state
                    .attach
                    .lock()
                    .expect("attach histogram poisoned")
                    .record(attach_ns);
                let pid = session.pid();
                if state.leased[pid].fetch_add(1, Ordering::SeqCst) != 0 { // mem: harness-probe
                    state.aliasing.fetch_add(1, Ordering::SeqCst); // mem: harness-probe
                }
                for _ in 0..echoes {
                    let guard = session.lock_async().await;
                    if state.in_cs.fetch_add(1, Ordering::SeqCst) != 0 { // mem: harness-probe
                        state.aliasing.fetch_add(1, Ordering::SeqCst); // mem: harness-probe
                    }
                    busy_work(payload);
                    state.echoes.fetch_add(1, Ordering::SeqCst); // mem: harness-probe
                    state.in_cs.fetch_sub(1, Ordering::SeqCst); // mem: harness-probe
                    drop(guard);
                }
                // Clear the marker strictly before the seat can be re-leased
                // (the session drop below is what frees it).
                state.leased[pid].fetch_sub(1, Ordering::SeqCst); // mem: harness-probe
                drop(session);
                state.sessions.fetch_add(1, Ordering::SeqCst); // mem: harness-probe
            }
        });
    }
    pool.run_until_idle();
    let elapsed = started.elapsed();
    drop(pool);

    let attach_latency =
        std::mem::take(&mut *state.attach.lock().expect("attach histogram poisoned"));
    EchoResult {
        strategy: strategy.to_string(),
        completed_sessions: state.sessions.load(Ordering::SeqCst), // mem: harness-probe
        echoes: state.echoes.load(Ordering::SeqCst), // mem: harness-probe
        elapsed,
        attach_latency,
        aliasing_violations: state.aliasing.load(Ordering::SeqCst), // mem: harness-probe
        parks: park.as_ref().map_or(0, |p| p.parks()),
        notifies: park.as_ref().map_or(0, |p| p.notifies()),
        park_timeouts: park.as_ref().map_or(0, |p| p.timeouts()),
    }
}

/// Runs E13 and renders the strategy-sweep table.
///
/// # Panics
/// Panics if any strategy drops a client, aliases a seat, or overlaps two
/// critical sections — the acceptance gates, asserted here so every path
/// that runs the experiment (runner, bench, tests) enforces them.
#[must_use]
pub fn run(quick: bool) -> Vec<Table> {
    let config = EchoConfig::standard(quick);
    let mut table = Table::new(
        "E13: async echo service — wait-strategy sweep",
        &[
            "strategy",
            "sessions",
            "sessions/s",
            "echoes/s",
            "attach p50 µs",
            "attach p99 µs",
            "attach max µs",
            "parks",
            "notifies",
            "park timeouts",
            "aliasing",
        ],
    );
    for strategy in STRATEGIES {
        let result = run_echo(strategy, &config);
        assert_eq!(
            result.aliasing_violations, 0,
            "{strategy}: the async session plane must never alias a seat or overlap two CS"
        );
        assert_eq!(
            result.completed_sessions, config.clients as u64,
            "{strategy}: every client session must complete"
        );
        assert_eq!(
            result.attach_latency.count(),
            config.clients as u64,
            "{strategy}: every client must contribute one attach-latency sample"
        );
        table.push_row(vec![
            result.strategy.clone(),
            result.completed_sessions.to_string(),
            format!("{:.0}", result.sessions_per_sec()),
            format!("{:.0}", result.echoes_per_sec()),
            format!("{:.1}", result.attach_latency.quantile_ns(0.5) as f64 / 1_000.0),
            format!("{:.1}", result.attach_latency.quantile_ns(0.99) as f64 / 1_000.0),
            format!("{:.1}", result.attach_latency.max_ns() as f64 / 1_000.0),
            result.parks.to_string(),
            result.notifies.to_string(),
            result.park_timeouts.to_string(),
            result.aliasing_violations.to_string(),
        ]);
    }
    table.push_note(format!(
        "{} clients as {} connection futures over {} slots ({}x oversubscribed), \
         {} echoes/client, {} executor workers; attach latency = request to leased seat.",
        config.clients,
        config.connections,
        config.slots,
        config.oversubscription(),
        config.echoes_per_client,
        config.workers,
    ));
    table.push_note(
        "spin/yield pending futures re-poll through the executor queue; park pending \
         futures cost one registered waker until a seat's wake pulse (notifies column)."
            .to_string(),
    );
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> EchoConfig {
        // More executor workers than seats: attach futures are forced to go
        // pending (a worker pool no larger than the plane never fills it,
        // because a connection frees its seat within the same poll unless a
        // lock future pends).
        EchoConfig {
            slots: 2,
            clients: 300,
            connections: 24,
            echoes_per_client: 2,
            workers: 4,
            payload_work: 2,
        }
    }

    #[test]
    fn every_strategy_completes_the_churn_without_aliasing() {
        for strategy in STRATEGIES {
            let result = run_echo(strategy, &tiny());
            assert_eq!(result.completed_sessions, 300, "{strategy}");
            assert_eq!(result.echoes, 600, "{strategy}");
            assert_eq!(result.aliasing_violations, 0, "{strategy}");
            assert_eq!(result.attach_latency.count(), 300, "{strategy}");
        }
    }

    #[test]
    fn park_strategy_wakes_pending_attaches() {
        // Deterministic wake check: hold every seat so an async attach must
        // go pending with a registered waker, then free the seats — the only
        // thing that resolves the pending future under park is the
        // detach-side wake pulse, which the notify counter records.
        let park = Arc::new(Park::new());
        let lock = BakeryPlusPlusLock::with_bound_mode_and_strategy(
            2,
            DEFAULT_PP_BOUND,
            ScanMode::Packed,
            Arc::clone(&park) as Arc<dyn WaitStrategy>,
        );
        let plane = SessionPlane::new(Arc::new(lock) as Arc<dyn RawMutexAlgorithm>);
        let holders = plane.try_attach_batch(2);
        assert_eq!(holders.len(), 2);

        let pool = Executor::new(1);
        let resolved = Arc::new(AtomicU64::new(0));
        {
            let plane = Arc::clone(&plane);
            let resolved = Arc::clone(&resolved);
            pool.spawn(async move {
                let session = plane.attach_async().await;
                resolved.fetch_add(1, Ordering::SeqCst);
                drop(session);
            });
        }
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(resolved.load(Ordering::SeqCst), 0, "attach resolved on a full plane");
        drop(holders);
        pool.run_until_idle();
        assert_eq!(resolved.load(Ordering::SeqCst), 1);
        assert!(
            park.notifies() > 0,
            "freeing a seat must wake the registered attach waiter"
        );
    }

    #[test]
    fn standard_configs_stay_in_the_issue_envelope() {
        let quick = EchoConfig::standard(true);
        let full = EchoConfig::standard(false);
        assert!(quick.slots <= 64 && full.slots <= 64);
        assert_eq!(full.clients, 100_000);
        assert!(quick.oversubscription() >= 16);
        assert!(full.oversubscription() >= 16);
    }
}
