//! **E7 — §7: practicality — real-thread throughput and latency.**
//!
//! The paper's practicality argument is qualitative ("a multi-core modern
//! laptop may implement it to guarantee that only a single thread … can access
//! a shared resource").  This experiment quantifies it: every algorithm in the
//! suite is run as a real lock on real threads across a range of thread
//! counts, reporting throughput, tail latency and the overflow counters that
//! distinguish Bakery from Bakery++.

use std::sync::Arc;

use bakery_baselines::{all_algorithms, AlgorithmId, LockFactory};
use bakery_core::{RawMutexAlgorithm, TreeBakery};

use crate::report::Table;
use crate::workload::{
    run_workload, run_workload_placed, spread_placement, Workload, WorkloadResult,
};

/// Runs the standard closed-loop workload for one algorithm at one thread
/// count.
#[must_use]
pub fn measure(id: AlgorithmId, threads: usize, quick: bool) -> Option<WorkloadResult> {
    if !id.supports(threads) {
        return None;
    }
    let factory = LockFactory::new().with_bound(65_535);
    let lock = factory.build(id, threads);
    let workload = if quick {
        Workload::quick(threads)
    } else {
        Workload::standard(threads)
    };
    Some(run_workload(lock, &workload))
}

/// E7b: tree placement regimes at large capacity — the same live threads
/// packed into one shared leaf vs spread across distinct subtrees, so the
/// throughput table captures the root-contention regime and not only the
/// shared-leaf one.
#[must_use]
pub fn placement_table(quick: bool) -> Table {
    let n = 512;
    let threads = 4;
    let workload = if quick {
        Workload::quick(threads)
    } else {
        Workload::standard(threads)
    };
    let mut table = Table::new(
        format!("E7b — tree placement regimes, {threads} live threads on N = {n} slots"),
        &[
            "placement",
            "acquisitions/s",
            "p99 latency (ns)",
            "leaf doorway waits",
            "root doorway waits",
        ],
    );
    for (regime, placement) in [
        ("shared leaf (lowest slots)", None),
        ("spread subtrees (strided slots)", Some(spread_placement(n, threads))),
    ] {
        let tree = Arc::new(TreeBakery::new(n));
        let result = run_workload_placed(
            Arc::clone(&tree) as Arc<dyn RawMutexAlgorithm>,
            &workload,
            placement.as_deref(),
        );
        let leaf_waits = tree.level_snapshot(0).doorway_waits;
        let root_waits = tree.level_snapshot(tree.depth() - 1).doorway_waits;
        table.push_row(vec![
            regime.to_string(),
            format!("{:.0}", result.throughput()),
            result.latency.quantile_ns(0.99).to_string(),
            leaf_waits.to_string(),
            root_waits.to_string(),
        ]);
        assert_eq!(tree.aggregate_snapshot().overflow_attempts, 0);
    }
    table.push_note(
        "Spreading the live threads across distinct top-level subtrees moves the conflict from \
         one leaf node to the root — each thread climbs a private path and the tournament is \
         decided last, which is the regime a session plane with scattered pid leases produces.",
    );
    table
}

/// Runs E7 and renders its tables.
#[must_use]
pub fn run(quick: bool) -> Vec<Table> {
    let available = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
    let mut thread_counts: Vec<usize> = vec![1, 2, 4];
    if !quick && available >= 8 {
        thread_counts.push(8);
    }

    let mut tables = Vec::new();
    for &threads in &thread_counts {
        let mut table = Table::new(
            format!("E7 — throughput and latency, {threads} thread(s)"),
            &[
                "algorithm",
                "acquisitions/s",
                "p50 latency (ns)",
                "p99 latency (ns)",
                "fairness ratio",
                "max ticket",
                "overflow attempts",
                "fast-path hits",
            ],
        );
        let factory = LockFactory::new();
        for (id, _) in all_algorithms(threads.max(2), &factory) {
            let Some(result) = measure(id, threads, quick) else {
                continue;
            };
            table.push_row(vec![
                id.name().to_string(),
                format!("{:.0}", result.throughput()),
                result.latency.quantile_ns(0.5).to_string(),
                result.latency.quantile_ns(0.99).to_string(),
                format!("{:.2}", result.fairness_ratio()),
                result.max_ticket.to_string(),
                result.overflow_attempts.to_string(),
                result.fast_path_hits.to_string(),
            ]);
        }
        table.push_note(
            "Bakery and Bakery++ sit in the same performance band (the O(N) scan dominates); \
             the RMW-based locks are faster but are not 'true' mutual exclusion in the paper's \
             sense.  Bakery++ reports zero overflow attempts by construction.",
        );
        tables.push(table);
    }
    tables.push(placement_table(quick));
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_respects_capacity_limits() {
        assert!(measure(AlgorithmId::Peterson, 3, true).is_none());
        let result = measure(AlgorithmId::BakeryPlusPlus, 2, true).unwrap();
        assert_eq!(result.total_acquisitions, 1_000);
        assert_eq!(result.overflow_attempts, 0);
    }

    #[test]
    fn quick_run_produces_one_table_per_thread_count_plus_placement() {
        let tables = run(true);
        assert_eq!(tables.len(), 4, "three thread counts + the placement table");
        for table in &tables[..3] {
            assert!(table.len() >= 10, "every supported algorithm appears");
        }
        assert_eq!(tables[3].len(), 2, "both placement regimes");
    }

    #[test]
    fn placement_regimes_shift_contention_toward_the_root() {
        let table = placement_table(true);
        let shared_leaf_waits: u64 = table.rows[0][3].parse().unwrap();
        let spread_leaf_waits: u64 = table.rows[1][3].parse().unwrap();
        // In the spread regime no two threads share a leaf, so leaf-level
        // waiting must not exceed the shared-leaf regime's (root waits move
        // the other way, but on a 1-CPU runner they can both be near zero,
        // so only the leaf side is asserted).
        assert!(
            spread_leaf_waits <= shared_leaf_waits || shared_leaf_waits == 0,
            "spread {spread_leaf_waits} vs shared {shared_leaf_waits}"
        );
    }
}
