//! **E7 — §7: practicality — real-thread throughput and latency.**
//!
//! The paper's practicality argument is qualitative ("a multi-core modern
//! laptop may implement it to guarantee that only a single thread … can access
//! a shared resource").  This experiment quantifies it: every algorithm in the
//! suite is run as a real lock on real threads across a range of thread
//! counts, reporting throughput, tail latency and the overflow counters that
//! distinguish Bakery from Bakery++.

use bakery_baselines::{all_algorithms, AlgorithmId, LockFactory};

use crate::report::Table;
use crate::workload::{run_workload, Workload, WorkloadResult};

/// Runs the standard closed-loop workload for one algorithm at one thread
/// count.
#[must_use]
pub fn measure(id: AlgorithmId, threads: usize, quick: bool) -> Option<WorkloadResult> {
    if !id.supports(threads) {
        return None;
    }
    let factory = LockFactory::new().with_bound(65_535);
    let lock = factory.build(id, threads);
    let workload = if quick {
        Workload::quick(threads)
    } else {
        Workload::standard(threads)
    };
    Some(run_workload(lock, &workload))
}

/// Runs E7 and renders its tables.
#[must_use]
pub fn run(quick: bool) -> Vec<Table> {
    let available = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
    let mut thread_counts: Vec<usize> = vec![1, 2, 4];
    if !quick && available >= 8 {
        thread_counts.push(8);
    }

    let mut tables = Vec::new();
    for &threads in &thread_counts {
        let mut table = Table::new(
            format!("E7 — throughput and latency, {threads} thread(s)"),
            &[
                "algorithm",
                "acquisitions/s",
                "p50 latency (ns)",
                "p99 latency (ns)",
                "fairness ratio",
                "max ticket",
                "overflow attempts",
                "fast-path hits",
            ],
        );
        let factory = LockFactory::new();
        for (id, _) in all_algorithms(threads.max(2), &factory) {
            let Some(result) = measure(id, threads, quick) else {
                continue;
            };
            table.push_row(vec![
                id.name().to_string(),
                format!("{:.0}", result.throughput()),
                result.latency.quantile_ns(0.5).to_string(),
                result.latency.quantile_ns(0.99).to_string(),
                format!("{:.2}", result.fairness_ratio()),
                result.max_ticket.to_string(),
                result.overflow_attempts.to_string(),
                result.fast_path_hits.to_string(),
            ]);
        }
        table.push_note(
            "Bakery and Bakery++ sit in the same performance band (the O(N) scan dominates); \
             the RMW-based locks are faster but are not 'true' mutual exclusion in the paper's \
             sense.  Bakery++ reports zero overflow attempts by construction.",
        );
        tables.push(table);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_respects_capacity_limits() {
        assert!(measure(AlgorithmId::Peterson, 3, true).is_none());
        let result = measure(AlgorithmId::BakeryPlusPlus, 2, true).unwrap();
        assert_eq!(result.total_acquisitions, 1_000);
        assert_eq!(result.overflow_attempts, 0);
    }

    #[test]
    fn quick_run_produces_one_table_per_thread_count() {
        let tables = run(true);
        assert_eq!(tables.len(), 3);
        for table in &tables {
            assert!(table.len() >= 10, "every supported algorithm appears");
        }
    }
}
