//! **E12 — beyond the paper: kill-and-recover under the live lock stack.**
//!
//! E11 measures the session plane under churn; E12 measures it under churn
//! **plus crashes** — the regime of the paper's correctness conditions 3/4
//! and proof assumptions 1.5–1.7, where a process may fail at any instant
//! and later restarts in its noncritical section with its registers reading
//! zero.  The model checker closes the crash rule out exhaustively
//! (`bakery-mc::crash_recovery`); E12 is the *measurement* half: the same
//! rule applied by the [`SessionPlane`] reaper to real threads, at a swept
//! crash rate, with the recovery latency on the wall clock.
//!
//! ## The crash-point injector
//!
//! Crashes are injected at **named sites** with a **fixed schedule** — no
//! RNG anywhere (the schedule is a [`FaultPlan::at_steps`] plan keyed by
//! client index, the sim crate's deterministic constructor), so a run
//! replays bit for bit.  A "crash" is a client thread abandoning its seat
//! without detaching (`mem::forget` of the session — and, for the in-CS
//! site, of the guard), which is exactly what a killed process looks like
//! to the plane: a leased seat whose holder stops heartbeating.  The sites,
//! named after the protocol point the victim dies at:
//!
//! | site | dead state left behind | recovery path |
//! |---|---|---|
//! | `doorway`  | leased seat, registers zero (died before its first doorway write) | lease expires → reaped, recycled idle |
//! | `l2`       | a completed doorway's ticket with the CS **free** (died in its L2 scan) | [`RawMutexAlgorithm::crash_abort`] zeroes the ticket |
//! | `l3`       | a completed doorway's ticket **behind a live CS holder** (died at L3) | [`RawMutexAlgorithm::crash_abort`] zeroes the ticket |
//! | `cs`       | seat `IN_CS`, lock genuinely held by the dead pid | reap → `QUARANTINED` → [`SessionPlane::recover_quarantined`] |
//! | `release`  | leased seat, registers zero (died after its last release, before detach) | lease expires → reaped, recycled idle |
//!
//! (`l2` and `l3` leave the *same* own-register state — after the doorway a
//! waiter's `choosing` is back to zero whichever wait loop it occupies — but
//! different surrounding configurations, so they wedge a surviving waiter
//! through different paths.  They are driven as a raw-lock probe on both
//! scan modes; the session-level sites ride the churn.)
//!
//! ## Scheduling discipline (why this is deterministic *and* safe)
//!
//! The plane's failure detector is a caller-driven logical clock, and its
//! documented lease contract is that `lease_ticks` must exceed a live
//! client's longest renewal gap.  E12 honours the contract *by
//! construction*: the run proceeds in rounds, and the clock only advances
//! at round barriers, when every surviving client has detached — so a live
//! seat can never expire, and every reap sweep recovers exactly the
//! scheduled victims.  Within a round the parallel churn only takes
//! `doorway`/`release` victims (which die without holding the lock); the
//! in-CS kill runs in the round's sequenced recovery cycle, where a live
//! waiter is deliberately wedged behind the dead holder and the
//! detector-to-reacquire latency is measured.
//!
//! ## What the experiment asserts
//!
//! * every run **completes** — no deadlock at any swept crash rate: every
//!   abandoned seat is recovered and re-leased, every wedged waiter
//!   eventually acquires;
//! * **zero aliasing** — the same two in-test counters as E11 (no two live
//!   sessions on one pid, no two concurrent critical sections), now across
//!   crash recovery and seat recycling;
//! * the books balance: recoveries equal injected crashes, quarantines
//!   equal in-CS kills, and nothing stays leased or quarantined at the end;
//! * in the probe, FCFS **under** the crash rule: a waiter ordered behind a
//!   dead ticket never enters the CS before `crash_abort` clears it (the
//!   protocol guarantees it, the probe asserts it on real threads).

use std::mem;
use bakery_core::sync::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bakery_core::{
    AdaptiveBakery, BakeryPlusPlusLock, RawMutexAlgorithm, ScanMode, SessionPlane, TreeBakery,
    DEFAULT_PP_BOUND,
};
use bakery_sim::FaultPlan;

use crate::report::Table;
use crate::workload::busy_work;

/// The named protocol points a victim can be killed at (see the module
/// docs for the dead state each leaves behind and its recovery path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashSite {
    /// Died right after attaching, before its first doorway write.
    Doorway,
    /// Died holding a completed doorway's ticket while the CS is free.
    L2,
    /// Died holding a ticket ordered behind a live CS holder.
    L3,
    /// Died inside the critical section.
    Cs,
    /// Died after its last release, before detaching.
    Release,
}

impl CrashSite {
    /// The site's name as it appears in tables and JSON.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            CrashSite::Doorway => "doorway",
            CrashSite::L2 => "l2",
            CrashSite::L3 => "l3",
            CrashSite::Cs => "cs",
            CrashSite::Release => "release",
        }
    }
}

/// The sites the parallel churn injects (victims that die *without* holding
/// the lock, so they never block a same-round survivor).  The in-CS site is
/// sequenced in the recovery cycle; `l2`/`l3` are the raw probe's.
const CHURN_SITES: [CrashSite; 2] = [CrashSite::Doorway, CrashSite::Release];

/// One kill-and-recover configuration.
#[derive(Debug, Clone, Copy)]
pub struct KillConfig {
    /// Slot capacity of the lock.
    pub slots: usize,
    /// Rounds of churn-then-reap (each round ends with one in-CS kill and
    /// its measured recovery, unless the run is crash-free).
    pub rounds: usize,
    /// Clients served per round.
    pub clients_per_round: usize,
    /// Critical sections per surviving session.
    pub cs_per_session: u64,
    /// Worker threads driving each round's churn.
    pub workers: usize,
    /// Busy-work units inside each critical section.
    pub cs_work: u64,
    /// `Some(p)`: every `p`-th client of a round is a victim (site cycling
    /// through [`CHURN_SITES`] on the fixed schedule).  `None`: the
    /// crash-free baseline.
    pub crash_period: Option<usize>,
}

impl KillConfig {
    /// The E12 configuration at `crash_period`.
    #[must_use]
    pub fn standard(quick: bool, crash_period: Option<usize>) -> Self {
        let config = if quick {
            Self {
                slots: 8,
                rounds: 2,
                clients_per_round: 24,
                cs_per_session: 2,
                workers: 8,
                cs_work: 2,
                crash_period,
            }
        } else {
            Self {
                slots: 8,
                rounds: 4,
                clients_per_round: 24,
                cs_per_session: 4,
                workers: 8,
                cs_work: 8,
                crash_period,
            }
        };
        if let Some(period) = crash_period {
            // Dead seats are only reclaimed at the round barrier, so a
            // round must never kill its whole seat pool.
            assert!(
                config.clients_per_round / period < config.slots,
                "a round's victims must leave at least one live seat"
            );
        }
        config
    }

    /// The crash rates the report sweeps (victims per client, as periods).
    #[must_use]
    pub fn swept_periods() -> [Option<usize>; 4] {
        [None, Some(12), Some(6), Some(4)]
    }

    /// Total clients across all rounds.
    #[must_use]
    pub fn clients(&self) -> usize {
        self.rounds * self.clients_per_round
    }

    /// The fixed, RNG-free kill schedule for one round: a
    /// [`FaultPlan::at_steps`] plan keyed by the round-local client index,
    /// whose "victim" field selects the [`CHURN_SITES`] entry.
    #[must_use]
    pub fn round_schedule(&self) -> FaultPlan {
        match self.crash_period {
            None => FaultPlan::none(),
            Some(period) => FaultPlan::at_steps(
                (0..self.clients_per_round)
                    .step_by(period)
                    .enumerate()
                    .map(|(i, client)| (client as u64, i % CHURN_SITES.len())),
            ),
        }
    }
}

/// Expands the round schedule into a per-client site lookup by replaying
/// the deterministic injector once, step for step.
fn expand_schedule(config: &KillConfig) -> Vec<Option<CrashSite>> {
    let plan = config.round_schedule();
    let mut injector = plan.injector(CHURN_SITES.len());
    (0..config.clients_per_round)
        .map(|_| injector.maybe_crash().map(|site| CHURN_SITES[site]))
        .collect()
}

/// Latency samples in nanoseconds, reported as mean/max.
#[derive(Debug, Clone, Default)]
pub struct LatencySamples {
    samples: Vec<u64>,
}

impl LatencySamples {
    fn push(&mut self, latency: Duration) {
        self.samples.push(latency.as_nanos() as u64);
    }

    /// Number of samples collected.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples were collected.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean in nanoseconds (0 when empty).
    #[must_use]
    pub fn mean_ns(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64
    }

    /// Maximum in nanoseconds (0 when empty).
    #[must_use]
    pub fn max_ns(&self) -> u64 {
        self.samples.iter().copied().max().unwrap_or(0)
    }
}

/// Outcome of one kill-and-recover run.
#[derive(Debug, Clone)]
pub struct KillResult {
    /// Name of the algorithm under test.
    pub algorithm: String,
    /// The run's crash period (`None` = crash-free baseline).
    pub crash_period: Option<usize>,
    /// Sessions that ran to completion (attach → k CS → detach).
    pub completed_sessions: u64,
    /// Churn victims injected (doorway + release sites).
    pub injected_crashes: u64,
    /// In-CS kills injected (one per round on crashed runs).
    pub cs_crashes: u64,
    /// Critical sections completed by surviving sessions during the churn.
    pub total_cs: u64,
    /// Wall-clock time spent in the parallel churn phases only (the
    /// baseline-comparable figure; recovery cycles are timed separately).
    pub churn_elapsed: Duration,
    /// Seats recovered as recycled-idle by the reaper.
    pub recycled_idle: u64,
    /// Seats quarantined by the reaper (in-CS victims).
    pub quarantined: u64,
    /// Reap attempts the lock refused (must be zero on the shipped stack).
    pub refused: u64,
    /// `LockStats::seat_recoveries` after the run.
    pub seat_recoveries: u64,
    /// `LockStats::crash_aborts` after the run.
    pub crash_aborts: u64,
    /// Slot-aliasing violations observed in-test.  **Must be zero.**
    pub aliasing_violations: u64,
    /// Detector-to-lock-free latency: from the reaper firing (clock
    /// advance) to the dead holder's CS handed back, per in-CS kill.
    pub recovery: LatencySamples,
    /// The wedged waiter's view: from its `lock()` call (behind the dead
    /// holder) to its acquisition, per in-CS kill.
    pub waiter_blocked: LatencySamples,
}

impl KillResult {
    /// Churn throughput in critical sections per second.
    #[must_use]
    pub fn cs_per_sec(&self) -> f64 {
        let secs = self.churn_elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.total_cs as f64 / secs
        }
    }
}

/// The three service locks at E12's scale (the E11 trio, default adaptive
/// thresholds — E12 does not pin the migration schedule, it only requires
/// crash recovery to hold through whatever migrations fire).
///
/// Every [`run_kill`] needs a **fresh** lock: a killed client's leaked
/// session keeps its plane (and with it the lock's slots) alive for the
/// process lifetime, exactly as a real dead process would, so a lock that
/// has hosted one kill run can never host another plane.
#[must_use]
pub fn kill_locks(slots: usize) -> Vec<Arc<dyn RawMutexAlgorithm>> {
    vec![
        Arc::new(BakeryPlusPlusLock::with_bound(slots, DEFAULT_PP_BOUND)),
        Arc::new(TreeBakery::new(slots)),
        Arc::new(AdaptiveBakery::new(slots)),
    ]
}

/// How long the recovery cycle lets its waiter wedge behind the dead CS
/// holder before firing the detector — long enough that the waiter is
/// (with overwhelming likelihood) parked in its wait loop, short enough
/// not to dominate the run.  Correctness never depends on it: the waiter
/// *cannot* pass the dead ticket until recovery, whenever it arrives.
const WEDGE_WINDOW: Duration = Duration::from_micros(300);

/// Runs one kill-and-recover configuration against `lock`.
///
/// # Panics
/// Panics when recovery accounting does not balance — a missing recovery
/// would otherwise surface as a hang, and a spurious one as aliasing.
#[must_use]
pub fn run_kill(lock: Arc<dyn RawMutexAlgorithm>, config: &KillConfig) -> KillResult {
    let algorithm = lock.algorithm_name().to_string();
    // Finite lease: one tick.  The clock only moves at round barriers, so a
    // live seat (deadline = clock + 1 > clock) can never expire mid-churn.
    let plane = SessionPlane::with_lease(Arc::clone(&lock), 1);
    let site_of = expand_schedule(config);

    let completed = AtomicU64::new(0);
    let total_cs = AtomicU64::new(0);
    let violations = AtomicU64::new(0);
    let leased: Vec<AtomicU64> = (0..config.slots).map(|_| AtomicU64::new(0)).collect();
    let in_cs = AtomicU64::new(0);

    let serve_cs = |session: &bakery_core::Session| {
        for _ in 0..config.cs_per_session {
            let guard = session.lock();
            if in_cs.fetch_add(1, Ordering::SeqCst) != 0 { // mem: harness-probe
                violations.fetch_add(1, Ordering::SeqCst); // mem: harness-probe
            }
            busy_work(config.cs_work);
            in_cs.fetch_sub(1, Ordering::SeqCst); // mem: harness-probe
            drop(guard);
        }
        total_cs.fetch_add(config.cs_per_session, Ordering::SeqCst); // mem: harness-probe
    };

    let mut injected_crashes = 0u64;
    let mut cs_crashes = 0u64;
    let mut recycled_idle = 0u64;
    let mut quarantined = 0u64;
    let mut refused = 0u64;
    let mut churn_elapsed = Duration::ZERO;
    let mut recovery = LatencySamples::default();
    let mut waiter_blocked = LatencySamples::default();

    for _round in 0..config.rounds {
        // Phase A — parallel churn with scheduled doorway/release kills.
        // The clock is frozen, so the reaper contract holds trivially.
        let next_client = AtomicUsize::new(0);
        let begun = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..config.workers {
                scope.spawn(|| loop {
                    let client = next_client.fetch_add(1, Ordering::SeqCst); // mem: harness-probe
                    if client >= config.clients_per_round {
                        return;
                    }
                    let session = plane.attach();
                    if leased[session.pid()].fetch_add(1, Ordering::SeqCst) != 0 { // mem: harness-probe
                        violations.fetch_add(1, Ordering::SeqCst); // mem: harness-probe
                    }
                    let crash = site_of[client];
                    if crash != Some(CrashSite::Doorway) {
                        serve_cs(&session);
                    }
                    leased[session.pid()].fetch_sub(1, Ordering::SeqCst); // mem: harness-probe
                    match crash {
                        // The kill: the seat stays leased, nobody heartbeats
                        // it again.  (The leaked session is the point — a
                        // dead process never runs its destructor.)
                        Some(_) => mem::forget(session),
                        None => {
                            drop(session);
                            completed.fetch_add(1, Ordering::SeqCst); // mem: harness-probe
                        }
                    }
                });
            }
        });
        churn_elapsed += begun.elapsed();
        injected_crashes += site_of.iter().flatten().count() as u64;

        // Round barrier: every survivor has detached; only victims' seats
        // are still leased.  Fire the detector and sweep them.
        plane.advance_clock(plane.clock() + plane.lease_ticks());
        let report = plane.reap();
        recycled_idle += report.recycled_idle as u64;
        quarantined += report.quarantined as u64;
        refused += report.refused as u64;
        assert_eq!(
            report.quarantined, 0,
            "{algorithm}: churn victims never die holding the CS"
        );

        // Phase B — the sequenced in-CS kill and its measured recovery.
        if config.crash_period.is_some() {
            let victim = plane.attach();
            let victim_pid = victim.pid();
            let guard = victim.lock();
            // Kill the holder mid-CS: seat IN_CS, lock genuinely held.
            mem::forget(guard);
            mem::forget(victim);
            // Expire the victim *before* the waiter attaches, so the
            // waiter's own fresh lease can never be swept with it.
            plane.advance_clock(plane.clock() + plane.lease_ticks());
            let blocked = std::thread::scope(|scope| {
                let waiter = scope.spawn(|| {
                    let session = plane.attach();
                    let wedged = Instant::now();
                    let guard = session.lock(); // behind the dead holder
                    let blocked = wedged.elapsed();
                    busy_work(config.cs_work);
                    drop(guard);
                    drop(session);
                    blocked
                });
                std::thread::sleep(WEDGE_WINDOW);
                let fired = Instant::now();
                let report = plane.reap();
                assert_eq!(
                    report.quarantined, 1,
                    "{algorithm}: the dead CS holder must be quarantined"
                );
                let seat = plane
                    .recover_quarantined(victim_pid)
                    .expect("the quarantined seat is recoverable");
                drop(seat); // the one release, on the dead pid's behalf
                recovery.push(fired.elapsed());
                waiter.join().expect("waiter thread")
            });
            waiter_blocked.push(blocked);
            completed.fetch_add(1, Ordering::SeqCst); // the waiter's session // mem: harness-probe
            quarantined += 1;
            cs_crashes += 1;
        }
    }

    assert_eq!(plane.live_sessions(), 0, "{algorithm}: leaked lease");
    assert!(
        plane.quarantined_seats().is_empty(),
        "{algorithm}: unrecovered quarantine"
    );
    let stats = plane.stats().snapshot();
    KillResult {
        algorithm,
        crash_period: config.crash_period,
        completed_sessions: completed.load(Ordering::SeqCst), // mem: harness-probe
        injected_crashes,
        cs_crashes,
        total_cs: total_cs.load(Ordering::SeqCst), // mem: harness-probe
        churn_elapsed,
        recycled_idle,
        quarantined,
        refused,
        seat_recoveries: stats.seat_recoveries,
        crash_aborts: stats.crash_aborts,
        aliasing_violations: violations.load(Ordering::SeqCst), // mem: harness-probe
        recovery,
        waiter_blocked,
    }
}

/// Outcome of the raw ticket-holder probe at one site/mode.
#[derive(Debug, Clone)]
pub struct ProbeResult {
    /// `l2` or `l3`.
    pub site: CrashSite,
    /// Scan mode of the probed Bakery++ lock.
    pub mode: ScanMode,
    /// `crash_abort`-to-reacquire latency per sample.
    pub recovery: LatencySamples,
}

/// The `l2`/`l3` recovery-latency probe on a raw two-process Bakery++.
///
/// A victim completes its doorway and dies holding the ticket — with the CS
/// free (`l2`) or behind a live holder (`l3`).  A surviving waiter then
/// takes a later ticket and, by FCFS, **cannot** enter the CS until the
/// reaper's [`RawMutexAlgorithm::crash_abort`] zeroes the dead ticket; the
/// probe measures that unblock latency and asserts the FCFS ordering held
/// (the waiter's acquisition strictly follows the abort).
///
/// # Panics
/// Panics if the waiter enters the CS before the abort (an FCFS-under-crash
/// violation) or the dead registers survive it.
#[must_use]
pub fn run_probe(site: CrashSite, mode: ScanMode, samples: usize) -> ProbeResult {
    assert!(matches!(site, CrashSite::L2 | CrashSite::L3));
    let lock = Arc::new(BakeryPlusPlusLock::with_bound_and_mode(
        2,
        DEFAULT_PP_BOUND,
        mode,
    ));
    let mut recovery = LatencySamples::default();
    for _ in 0..samples {
        match site {
            CrashSite::L2 => {
                // Empty bakery: the victim doorways alone and dies scanning.
                assert!(lock.try_doorway(1).took_ticket());
            }
            CrashSite::L3 => {
                // The victim doorways behind a live CS holder and dies
                // ordered at L3; the holder then leaves normally.
                lock.acquire(0);
                assert!(lock.try_doorway(1).took_ticket());
                lock.release(0);
            }
            _ => unreachable!(),
        }
        // A survivor arrives: FCFS orders it behind the dead ticket.
        let aborted = Arc::new(AtomicU64::new(0));
        let begun = Instant::now();
        let waiter = std::thread::spawn({
            let lock = Arc::clone(&lock);
            let aborted = Arc::clone(&aborted);
            move || {
                lock.acquire(0);
                let entered = begun.elapsed();
                let abort_ns = aborted.load(Ordering::SeqCst); // mem: harness-probe
                lock.release(0);
                (entered, abort_ns)
            }
        });
        std::thread::sleep(WEDGE_WINDOW);
        // Stamp the abort time, then apply the crash rule.  The waiter can
        // only see number[1] == 0 after this store (same-thread program
        // order, SeqCst throughout), so a zero stamp at its CS entry would
        // be a genuine FCFS-under-crash violation.
        aborted.store(begun.elapsed().as_nanos() as u64, Ordering::SeqCst); // mem: harness-probe
        assert!(lock.crash_abort(1), "bakery++ supports the crash rule");
        let (entered, abort_ns) = waiter.join().expect("waiter thread");
        assert_eq!(lock.registers().read_number(1), 0, "dead ticket cleared");
        assert!(
            abort_ns > 0 && entered.as_nanos() as u64 >= abort_ns,
            "FCFS under crash: the waiter must not pass the dead ticket \
             before crash_abort ({entered:?} vs {abort_ns} ns)"
        );
        recovery.push(Duration::from_nanos(entered.as_nanos() as u64 - abort_ns));
    }
    ProbeResult {
        site,
        mode,
        recovery,
    }
}

/// Runs E12 and renders its tables.
///
/// # Panics
/// Panics if any run deadlocks (it would hang, not return), aliases a slot,
/// refuses a recovery, or fails the recovery bookkeeping.
#[must_use]
pub fn run(quick: bool) -> Vec<Table> {
    let mut churn = Table::new(
        "E12 — kill-and-recover: session churn with crashes injected at a swept rate",
        &[
            "algorithm",
            "crash period",
            "crashes (churn+cs)",
            "sessions",
            "cs/s",
            "vs crash-free",
            "recovered (idle/quar)",
            "aliasing",
            "recovery µs (mean/max)",
            "waiter blocked µs (mean/max)",
        ],
    );
    let slots = KillConfig::standard(quick, None).slots;
    for which in 0..kill_locks(slots).len() {
        let mut baseline_cs_per_sec = 0.0;
        for period in KillConfig::swept_periods() {
            // A fresh lock per run: leaked (killed) sessions pin the
            // previous plane, so planes and locks are never reused.
            let lock = kill_locks(slots).swap_remove(which);
            let config = KillConfig::standard(quick, period);
            let result = run_kill(lock, &config);
            assert_eq!(result.aliasing_violations, 0, "{}: aliasing", result.algorithm);
            assert_eq!(result.refused, 0, "{}: refused recovery", result.algorithm);
            assert_eq!(
                result.recycled_idle, result.injected_crashes,
                "{}: every churn victim recovered",
                result.algorithm
            );
            assert_eq!(
                result.seat_recoveries,
                result.injected_crashes + result.cs_crashes,
                "{}: recovery books balance",
                result.algorithm
            );
            let degradation = if period.is_none() {
                baseline_cs_per_sec = result.cs_per_sec();
                "baseline".to_string()
            } else if baseline_cs_per_sec > 0.0 {
                format!(
                    "{:+.1}%",
                    (result.cs_per_sec() - baseline_cs_per_sec) / baseline_cs_per_sec * 100.0
                )
            } else {
                "-".to_string()
            };
            churn.push_row(vec![
                result.algorithm.clone(),
                period.map_or("-".to_string(), |p| format!("1/{p}")),
                format!("{}+{}", result.injected_crashes, result.cs_crashes),
                result.completed_sessions.to_string(),
                format!("{:.0}", result.cs_per_sec()),
                degradation,
                format!("{}/{}", result.recycled_idle, result.quarantined),
                result.aliasing_violations.to_string(),
                format!(
                    "{:.1}/{:.1}",
                    result.recovery.mean_ns() / 1_000.0,
                    result.recovery.max_ns() as f64 / 1_000.0
                ),
                format!(
                    "{:.1}/{:.1}",
                    result.waiter_blocked.mean_ns() / 1_000.0,
                    result.waiter_blocked.max_ns() as f64 / 1_000.0
                ),
            ]);
        }
    }
    churn.push_note(
        "Victims are real threads abandoning their seats on a fixed FaultPlan::at_steps \
         schedule (doorway/release sites in the parallel churn, an in-CS kill per round). \
         The reaper recovers every dead seat — idle recycles for clean deaths, quarantine \
         + explicit hand-back for dead CS holders — and the wedged waiter's unblock time \
         is the measured recovery latency.  Zero aliasing and balanced recovery books are \
         asserted in-test; a deadlock would hang the run.",
    );

    let samples = if quick { 8 } else { 32 };
    let mut probe = Table::new(
        "E12 probe — dead ticket holders (l2/l3 sites) on raw Bakery++, both scan modes",
        &["site", "scan mode", "samples", "recovery µs (mean/max)"],
    );
    for mode in [ScanMode::Packed, ScanMode::Padded] {
        for site in [CrashSite::L2, CrashSite::L3] {
            let result = run_probe(site, mode, samples);
            probe.push_row(vec![
                result.site.name().to_string(),
                format!("{mode:?}").to_lowercase(),
                result.recovery.len().to_string(),
                format!(
                    "{:.1}/{:.1}",
                    result.recovery.mean_ns() / 1_000.0,
                    result.recovery.max_ns() as f64 / 1_000.0
                ),
            ]);
        }
    }
    probe.push_note(
        "The victim dies holding a completed doorway's ticket; FCFS wedges the next \
         waiter behind it until crash_abort applies the paper's crash rule (registers \
         read zero).  The probe asserts the waiter never jumps the dead ticket and \
         measures abort-to-acquire latency.",
    );
    vec![churn, probe]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_respects_the_period() {
        let config = KillConfig::standard(false, Some(4));
        let sites = expand_schedule(&config);
        assert_eq!(sites, expand_schedule(&config), "bit-for-bit replay");
        let victims: Vec<usize> = sites
            .iter()
            .enumerate()
            .filter_map(|(c, site)| site.map(|_| c))
            .collect();
        assert_eq!(victims, vec![0, 4, 8, 12, 16, 20]);
        // Sites cycle doorway, release, doorway, ...
        assert_eq!(sites[0], Some(CrashSite::Doorway));
        assert_eq!(sites[4], Some(CrashSite::Release));
        assert!(victims.len() < config.slots, "a live seat always remains");
    }

    #[test]
    fn baseline_schedule_is_empty() {
        let config = KillConfig::standard(true, None);
        assert!(expand_schedule(&config).iter().all(Option::is_none));
        assert!(config.round_schedule().is_disabled());
    }

    #[test]
    fn kill_and_recover_balances_the_books_on_every_service_lock() {
        let config = KillConfig::standard(true, Some(6));
        for lock in kill_locks(config.slots) {
            let result = run_kill(Arc::clone(&lock), &config);
            assert_eq!(result.aliasing_violations, 0, "{}", result.algorithm);
            assert_eq!(result.refused, 0, "{}", result.algorithm);
            let victims_per_round = (config.clients_per_round as u64).div_ceil(6);
            assert_eq!(
                result.injected_crashes,
                victims_per_round * config.rounds as u64,
                "{}",
                result.algorithm
            );
            assert_eq!(result.cs_crashes, config.rounds as u64);
            assert_eq!(result.recycled_idle, result.injected_crashes);
            assert_eq!(result.quarantined, result.cs_crashes);
            assert_eq!(
                result.seat_recoveries,
                result.injected_crashes + result.cs_crashes
            );
            assert_eq!(
                result.completed_sessions,
                (config.clients() as u64 - result.injected_crashes)
                    + result.cs_crashes, // each recovery cycle's waiter
            );
            assert_eq!(result.recovery.len(), config.rounds);
            assert_eq!(result.waiter_blocked.len(), config.rounds);
            assert!(result.recovery.max_ns() > 0);
        }
    }

    #[test]
    fn crash_free_baseline_still_balances() {
        let config = KillConfig::standard(true, None);
        let lock = kill_locks(config.slots).remove(0);
        let result = run_kill(lock, &config);
        assert_eq!(result.injected_crashes, 0);
        assert_eq!(result.cs_crashes, 0);
        assert_eq!(result.seat_recoveries, 0);
        assert_eq!(result.completed_sessions, config.clients() as u64);
        assert_eq!(
            result.total_cs,
            config.clients() as u64 * config.cs_per_session
        );
        assert!(result.recovery.is_empty());
    }

    #[test]
    fn probe_recovers_both_sites_in_both_modes() {
        for mode in [ScanMode::Packed, ScanMode::Padded] {
            for site in [CrashSite::L2, CrashSite::L3] {
                let result = run_probe(site, mode, 2);
                assert_eq!(result.recovery.len(), 2);
                assert!(result.recovery.max_ns() > 0);
            }
        }
    }

    #[test]
    fn quick_tables_render_the_sweep_and_the_probe() {
        let tables = run(true);
        assert_eq!(tables.len(), 2);
        // 3 locks x 4 swept periods.
        assert_eq!(tables[0].len(), 12);
        // 2 sites x 2 scan modes.
        assert_eq!(tables[1].len(), 4);
    }
}
