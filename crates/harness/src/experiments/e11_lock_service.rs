//! **E11 — beyond the paper: the lock as a service under session churn.**
//!
//! Every prior experiment drives a fixed set of threads, one pid each, for
//! the whole run — the paper's world.  E11 measures the **service** regime
//! the session plane (`bakery-core::session`) exists for: a client
//! population far larger than the lock's slot count (≥ 64×), where every
//! client *attaches* (leases a pid), performs a handful of critical
//! sections, and *detaches* (recycling the pid for the next client).
//!
//! Three locks run the identical churn through [`bakery_core::SessionPlane`]:
//!
//! * the flat packed Bakery++ (FCFS, O(N) doorway),
//! * the tree composite (sub-linear doorway, per-node FCFS),
//! * the [`AdaptiveBakery`] — which *migrates flat→tree mid-run* once its
//!   leased-capacity threshold fires, so the handoff is exercised under real
//!   churn, not just in the model checker.
//!
//! After the churn the run enters a **subside phase**: the client population
//! collapses to one at a time, below the adaptive lock's hysteresis low
//! watermark, until its quiet period elapses and the *reverse* (tree→flat)
//! handoff fires — so E11 now measures the full round trip.  The adaptive
//! lock's quiet period is sized to exceed the churn phase's total release
//! count, which makes the schedule deterministic on any core count: the
//! reverse cannot complete before the subside phase, and the subside phase
//! (live = 1, far below the capacity threshold) can never re-trigger the
//! forward leg — exactly one migration in each direction
//! ([`ServiceResult::migrations_forward`] / [`ServiceResult::migrations_reverse`]),
//! asserted in-test by [`run`].
//!
//! The runner asserts the session plane's core guarantee **in-test**: a
//! leased pid is never aliased — no two live sessions on one pid (across
//! forward *and* reverse migrations), and never two concurrent critical
//! sections anywhere ([`ServiceResult::aliasing_violations`] must be zero,
//! which [`run`] and the conformance suite both check).

use bakery_core::sync::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use bakery_core::{
    AdaptiveBakery, BakeryPlusPlusLock, RawMutexAlgorithm, ScanMode, SessionPlane, TreeBakery,
    DEFAULT_PP_BOUND,
};

use crate::report::Table;
use crate::workload::busy_work;

/// A service lock plus, for the adaptive entry, a typed handle for probing
/// the migration epoch after the run.
pub type ServiceLock = (Arc<dyn RawMutexAlgorithm>, Option<Arc<AdaptiveBakery>>);

/// One churn configuration: `clients` sessions served through `slots` pids.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Slot capacity of the lock (maximum concurrently attached clients).
    pub slots: usize,
    /// Total client sessions to serve (the `>= 64 x slots` regime).
    pub clients: usize,
    /// Critical sections per session (the `k` of attach → k CS → detach).
    pub cs_per_session: u64,
    /// Worker threads driving the churn (each worker runs many clients
    /// back-to-back; more workers than slots keeps the attach queue full).
    pub workers: usize,
    /// Busy-work units inside each critical section.
    pub cs_work: u64,
    /// Clients of the subside phase, served strictly one at a time after the
    /// churn — enough of them to exhaust the adaptive lock's quiet period
    /// (see [`ServiceConfig::quiet_period`]) with margin to complete the
    /// reverse drain.
    pub subside_clients: usize,
}

impl ServiceConfig {
    /// The E11 configuration: `64 x slots` clients.
    #[must_use]
    pub fn standard(quick: bool) -> Self {
        let mut config = if quick {
            Self {
                slots: 4,
                clients: 256,
                cs_per_session: 4,
                workers: 8,
                cs_work: 8,
                subside_clients: 0,
            }
        } else {
            Self {
                slots: 8,
                clients: 512,
                cs_per_session: 8,
                workers: 16,
                cs_work: 16,
                subside_clients: 0,
            }
        };
        // Enough one-at-a-time releases to exhaust the quiet period even if
        // the churn never contributed a single quiet observation, plus two
        // whole sessions of margin for the trigger and the drain flip.
        config.subside_clients =
            (config.quiet_period().div_ceil(config.cs_per_session) as usize) + 2;
        config
    }

    /// Client-to-slot ratio (the headline "how oversubscribed" figure).
    #[must_use]
    pub fn oversubscription(&self) -> usize {
        self.clients / self.slots
    }

    /// The adaptive lock's leased-capacity (forward) threshold for this
    /// configuration: the rush phase leases every seat, so any value up to
    /// `slots` fires deterministically; it must also leave room for a low
    /// watermark of [`Self::low_watermark`] strictly beneath it.
    #[must_use]
    pub fn capacity_threshold(&self) -> usize {
        AdaptiveBakery::default_capacity_threshold(self.slots).max(self.low_watermark() + 1)
    }

    /// The hysteresis low watermark: the subside phase runs one live session
    /// at a time, so 2 makes every subside release quiet while any two
    /// concurrent clients keep the tree resident.
    #[must_use]
    pub fn low_watermark(&self) -> usize {
        2
    }

    /// The adaptive lock's quiet period, sized past the churn phase's total
    /// release count so the reverse migration is pinned to the subside phase
    /// on any scheduler (1-CPU runners serialise the churn into quiet-looking
    /// solo releases; the oversized period makes that harmless).
    #[must_use]
    pub fn quiet_period(&self) -> u64 {
        self.clients as u64 * self.cs_per_session + 1
    }
}

/// Outcome of one churn run.
#[derive(Debug, Clone)]
pub struct ServiceResult {
    /// Name of the algorithm serving the sessions.
    pub algorithm: String,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Sessions served (attach…detach lifecycles completed).
    pub sessions: u64,
    /// Critical sections completed across all sessions.
    pub total_cs: u64,
    /// Attaches recorded by the lock's stats (must equal `sessions`).
    pub attaches: u64,
    /// Detaches recorded by the lock's stats (must equal `sessions`).
    pub detaches: u64,
    /// Slot-aliasing violations observed in-test (two live sessions on one
    /// pid, or two concurrent critical sections).  **Must be zero.**
    pub aliasing_violations: u64,
    /// Packed-snapshot fast-path hits across all planes.
    pub fast_path_hits: u64,
    /// Completed flat→tree handoffs (non-zero only for the adaptive lock).
    pub migrations_forward: u64,
    /// Completed tree→flat handoffs (non-zero only for the adaptive lock).
    pub migrations_reverse: u64,
    /// Crash aborts recorded by the lock (zero in E11's crash-free churn;
    /// E12 is the experiment that injects them).
    pub crash_aborts: u64,
    /// Seat recoveries performed by the reaper (zero in E11's crash-free
    /// churn).
    pub seat_recoveries: u64,
    /// `Some(phase)` for the adaptive lock: its epoch phase after the run
    /// (0 = flat again after the round trip, 2 = still on the tree).
    pub final_phase: Option<u64>,
}

impl ServiceResult {
    /// Sessions served per second.
    #[must_use]
    pub fn sessions_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.sessions as f64 / secs
        }
    }

    /// Critical sections per second.
    #[must_use]
    pub fn cs_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.total_cs as f64 / secs
        }
    }
}

/// Runs the churn against `lock`, reporting aliasing violations instead of
/// panicking so the caller can assert and render them.
///
/// The run opens with a **rush phase**: the first `slots` clients attach
/// concurrently behind a barrier, so the leased capacity demonstrably
/// reaches the full slot count before the steady churn begins.  (On a
/// single-CPU runner the steady churn alone can serialise into one live
/// session at a time, which would leave a capacity-triggered migration
/// schedule-dependent; the rush makes it deterministic.)  The remaining
/// clients then churn freely across `workers` threads, and the run closes
/// with the **subside phase**: `subside_clients` served strictly one at a
/// time, which takes the adaptive lock below its low watermark for long
/// enough that the reverse migration provably completes in-run.
#[must_use]
pub fn run_service(
    lock: Arc<dyn RawMutexAlgorithm>,
    config: &ServiceConfig,
    adaptive: Option<&Arc<AdaptiveBakery>>,
) -> ServiceResult {
    let algorithm = lock.algorithm_name().to_string();
    let plane = SessionPlane::new(lock);
    let rush_clients = config.slots.min(config.clients);
    let next_client = AtomicUsize::new(rush_clients);
    let sessions = AtomicU64::new(0);
    let total_cs = AtomicU64::new(0);
    let violations = AtomicU64::new(0);
    // One lease marker per pid plus a global CS counter: the in-test
    // aliasing assertion the acceptance criteria call for.
    let leased: Vec<AtomicU64> = (0..config.slots).map(|_| AtomicU64::new(0)).collect();
    let in_cs = AtomicU64::new(0);

    let serve_one = |session: &bakery_core::Session| {
        if leased[session.pid()].fetch_add(1, Ordering::SeqCst) != 0 { // mem: harness-probe
            violations.fetch_add(1, Ordering::SeqCst); // mem: harness-probe
        }
        for _ in 0..config.cs_per_session {
            let guard = session.lock();
            if in_cs.fetch_add(1, Ordering::SeqCst) != 0 { // mem: harness-probe
                violations.fetch_add(1, Ordering::SeqCst); // mem: harness-probe
            }
            busy_work(config.cs_work);
            in_cs.fetch_sub(1, Ordering::SeqCst); // mem: harness-probe
            drop(guard);
        }
        total_cs.fetch_add(config.cs_per_session, Ordering::SeqCst); // mem: harness-probe
        leased[session.pid()].fetch_sub(1, Ordering::SeqCst); // mem: harness-probe
        sessions.fetch_add(1, Ordering::SeqCst); // mem: harness-probe
    };

    let begun = Instant::now();
    // Phase 1 — the rush: every seat leased at once.
    let all_attached = Barrier::new(rush_clients);
    std::thread::scope(|scope| {
        for _ in 0..rush_clients {
            scope.spawn(|| {
                let session = plane.attach();
                all_attached.wait();
                serve_one(&session);
                drop(session);
            });
        }
    });
    // Phase 2 — steady churn over the remaining clients.
    std::thread::scope(|scope| {
        for _ in 0..config.workers {
            scope.spawn(|| loop {
                if next_client.fetch_add(1, Ordering::SeqCst) >= config.clients { // mem: harness-probe
                    return;
                }
                let session = plane.attach();
                serve_one(&session);
                drop(session);
            });
        }
    });
    // Phase 3 — the subside: the rush is long over, clients now trickle in
    // one at a time (live sessions = 1, below the adaptive low watermark of
    // 2), until the quiet period elapses and the tree drains back to flat.
    for _ in 0..config.subside_clients {
        let session = plane.attach();
        serve_one(&session);
        drop(session);
    }
    let elapsed = begun.elapsed();

    let stats = plane.stats().snapshot();
    ServiceResult {
        algorithm,
        elapsed,
        sessions: sessions.load(Ordering::SeqCst), // mem: harness-probe
        total_cs: total_cs.load(Ordering::SeqCst), // mem: harness-probe
        attaches: stats.attaches,
        detaches: stats.detaches,
        aliasing_violations: violations.load(Ordering::SeqCst), // mem: harness-probe
        fast_path_hits: stats.fast_path_hits,
        migrations_forward: stats.migrations_forward,
        migrations_reverse: stats.migrations_reverse,
        crash_aborts: stats.crash_aborts,
        seat_recoveries: stats.seat_recoveries,
        final_phase: adaptive.map(|a| a.epoch_phase()),
    }
}

/// Builds the three service locks for `config`.  The adaptive lock's
/// capacity threshold sits within the slot count, so the churn (whose rush
/// phase leases every seat at once) is guaranteed to cross it mid-run; its
/// quiet period is sized past the churn's release count so the reverse
/// migration lands deterministically in the subside phase.  The contention
/// trigger is disabled: E11 measures the leased-capacity round trip.
/// Public so the `bench-json` baseline runs the identical lock set.
#[must_use]
pub fn service_locks(config: &ServiceConfig) -> Vec<ServiceLock> {
    let slots = config.slots;
    let adaptive = Arc::new(AdaptiveBakery::with_hysteresis(
        slots,
        ScanMode::Packed,
        config.capacity_threshold(),
        u64::MAX,
        config.low_watermark(),
        config.quiet_period(),
    ));
    vec![
        (
            Arc::new(BakeryPlusPlusLock::with_bound(slots, DEFAULT_PP_BOUND)),
            None,
        ),
        (Arc::new(TreeBakery::new(slots)), None),
        (
            Arc::clone(&adaptive) as Arc<dyn RawMutexAlgorithm>,
            Some(adaptive),
        ),
    ]
}

/// Runs E11 and renders its table.
///
/// # Panics
/// Panics if any run observes a slot-aliasing violation, loses a session, or
/// (for the adaptive lock) fails to complete exactly one migration in each
/// direction across the churn-then-subside schedule — these are the
/// experiment's acceptance assertions, not just table rows.
#[must_use]
pub fn run(quick: bool) -> Vec<Table> {
    let config = ServiceConfig::standard(quick);
    assert!(
        config.oversubscription() >= 64,
        "E11 must run the >= 64x oversubscribed service regime"
    );
    let expected_sessions = (config.clients + config.subside_clients) as u64;
    let mut table = Table::new(
        format!(
            "E11 — lock service: {} clients over {} slots ({}x oversubscribed), {} CS each, \
             then a {}-client subside",
            config.clients,
            config.slots,
            config.oversubscription(),
            config.cs_per_session,
            config.subside_clients,
        ),
        &[
            "algorithm",
            "sessions/s",
            "cs/s",
            "attaches",
            "detaches",
            "aliasing",
            "fast-path hits",
            "migrations",
        ],
    );
    for (lock, adaptive) in service_locks(&config) {
        let result = run_service(lock, &config, adaptive.as_ref());
        assert_eq!(result.aliasing_violations, 0, "{}: slot aliasing", result.algorithm);
        assert_eq!(result.sessions, expected_sessions, "{}", result.algorithm);
        assert_eq!(result.attaches, expected_sessions, "{}", result.algorithm);
        assert_eq!(result.detaches, expected_sessions, "{}", result.algorithm);
        let migrations = match result.final_phase {
            Some(phase) => {
                // The subside scenario's headline assertion: exactly one
                // migration in each direction, ending flat-resident.
                assert_eq!(
                    (result.migrations_forward, result.migrations_reverse),
                    (1, 1),
                    "the churn must migrate forward once and the subside back once"
                );
                assert_eq!(
                    phase,
                    bakery_core::adaptive::EPOCH_FLAT,
                    "the round trip must end on the flat plane"
                );
                "flat->tree->flat".to_string()
            }
            None => {
                assert_eq!(result.migrations_forward, 0, "{}", result.algorithm);
                assert_eq!(result.migrations_reverse, 0, "{}", result.algorithm);
                "-".to_string()
            }
        };
        table.push_row(vec![
            result.algorithm.clone(),
            format!("{:.0}", result.sessions_per_sec()),
            format!("{:.0}", result.cs_per_sec()),
            result.attaches.to_string(),
            result.detaches.to_string(),
            result.aliasing_violations.to_string(),
            result.fast_path_hits.to_string(),
            migrations,
        ]);
    }
    table.push_note(
        "Each client attaches (leases a pid through the session plane), runs its critical \
         sections and detaches; generation-tagged seats recycle pids with zero aliasing \
         (asserted in-test).  The adaptive lock crosses its leased-capacity threshold \
         mid-churn, hands off flat->tree without dropping a session, and once the subside \
         phase stays below its low watermark for a full quiet period it drains the tree \
         and hands back tree->flat — exactly one migration each way, ending flat.",
    );
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_config_is_64x_oversubscribed() {
        let config = ServiceConfig::standard(true);
        assert!(config.oversubscription() >= 64);
        let full = ServiceConfig::standard(false);
        assert!(full.oversubscription() >= 64);
    }

    #[test]
    fn thresholds_leave_a_hysteresis_band_in_both_configs() {
        for quick in [true, false] {
            let config = ServiceConfig::standard(quick);
            assert!(config.low_watermark() < config.capacity_threshold());
            assert!(config.capacity_threshold() <= config.slots, "the rush must fire it");
            assert!(
                config.quiet_period() > config.clients as u64 * config.cs_per_session,
                "the reverse must be impossible before the subside phase"
            );
            assert!(
                config.subside_clients as u64 * config.cs_per_session
                    > config.quiet_period(),
                "the subside phase must be able to exhaust the quiet period"
            );
        }
    }

    #[test]
    fn churn_over_the_adaptive_lock_migrates_without_aliasing() {
        // Forward-only adaptive lock (reverse leg disabled): pins the PR 4
        // one-way behaviour of the same churn, subside included.
        let config = ServiceConfig {
            slots: 4,
            clients: 256,
            cs_per_session: 2,
            workers: 8,
            cs_work: 2,
            subside_clients: 8,
        };
        let adaptive = Arc::new(AdaptiveBakery::with_config(
            config.slots,
            ScanMode::Packed,
            2,
            u64::MAX,
        ));
        let result = run_service(
            Arc::clone(&adaptive) as Arc<dyn RawMutexAlgorithm>,
            &config,
            Some(&adaptive),
        );
        assert_eq!(result.aliasing_violations, 0);
        assert_eq!(result.sessions, 264);
        assert_eq!(result.total_cs, 528);
        assert_eq!(result.attaches, 264);
        assert_eq!(result.detaches, 264);
        assert_eq!(result.final_phase, Some(bakery_core::adaptive::EPOCH_TREE));
        assert_eq!(result.migrations_forward, 1);
        assert_eq!(result.migrations_reverse, 0, "reverse leg disabled");
        // Facade-only cs_entries across the in-churn migration (the PR 3
        // rule must hold through the handoff).
        assert_eq!(adaptive.stats().cs_entries(), 528);
        assert_eq!(adaptive.aggregate_snapshot().cs_entries, 528);
    }

    #[test]
    fn subside_completes_the_round_trip_exactly_once_each_way() {
        // The full E11 schedule at quick scale over the real service lock
        // set: rush fires the forward leg, the subside fires the reverse,
        // and nothing flaps in between.
        let config = ServiceConfig::standard(true);
        let (lock, adaptive) = service_locks(&config).pop().unwrap();
        let adaptive = adaptive.expect("the last service lock is the adaptive one");
        let result = run_service(lock, &config, Some(&adaptive));
        assert_eq!(result.aliasing_violations, 0);
        assert_eq!(result.migrations_forward, 1, "exactly one forward");
        assert_eq!(result.migrations_reverse, 1, "exactly one reverse");
        assert_eq!(result.final_phase, Some(bakery_core::adaptive::EPOCH_FLAT));
        assert!(!adaptive.has_migrated(), "flat-resident after the subside");
        assert_eq!(adaptive.cycle(), 1);
        let expected = (config.clients + config.subside_clients) as u64;
        assert_eq!(result.sessions, expected);
        assert_eq!(result.attaches, expected);
        assert_eq!(result.detaches, expected);
        // Facade-only cs_entries across BOTH handoffs.
        assert_eq!(result.total_cs, expected * config.cs_per_session);
        assert_eq!(adaptive.stats().cs_entries(), result.total_cs);
        assert_eq!(adaptive.aggregate_snapshot().cs_entries, result.total_cs);
    }

    #[test]
    fn quick_table_renders_all_three_locks() {
        let tables = run(true);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 3);
        let names: Vec<_> = tables[0].rows.iter().map(|r| r[0].clone()).collect();
        assert!(names.contains(&"bakery++".to_string()));
        assert!(names.contains(&"tree-bakery".to_string()));
        assert!(names.contains(&"adaptive-bakery".to_string()));
        let adaptive_row = tables[0]
            .rows
            .iter()
            .find(|r| r[0] == "adaptive-bakery")
            .unwrap();
        assert_eq!(adaptive_row[5], "0", "aliasing column");
        assert_eq!(adaptive_row[7], "flat->tree->flat");
    }
}
