//! **E11 — beyond the paper: the lock as a service under session churn.**
//!
//! Every prior experiment drives a fixed set of threads, one pid each, for
//! the whole run — the paper's world.  E11 measures the **service** regime
//! the session plane (`bakery-core::session`) exists for: a client
//! population far larger than the lock's slot count (≥ 64×), where every
//! client *attaches* (leases a pid), performs a handful of critical
//! sections, and *detaches* (recycling the pid for the next client).
//!
//! Three locks run the identical churn through [`bakery_core::SessionPlane`]:
//!
//! * the flat packed Bakery++ (FCFS, O(N) doorway),
//! * the tree composite (sub-linear doorway, per-node FCFS),
//! * the [`AdaptiveBakery`] — which *migrates flat→tree mid-run* once its
//!   leased-capacity threshold fires, so the handoff is exercised under real
//!   churn, not just in the model checker.
//!
//! The runner asserts the session plane's core guarantee **in-test**: a
//! leased pid is never aliased — no two live sessions on one pid, and never
//! two concurrent critical sections anywhere ([`ServiceResult::aliasing_violations`]
//! must be zero, which [`run`] and the conformance suite both check).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use bakery_core::{
    AdaptiveBakery, BakeryPlusPlusLock, RawMutexAlgorithm, ScanMode, SessionPlane, TreeBakery,
    DEFAULT_PP_BOUND,
};

use crate::report::Table;
use crate::workload::busy_work;

/// A service lock plus, for the adaptive entry, a typed handle for probing
/// the migration epoch after the run.
pub type ServiceLock = (Arc<dyn RawMutexAlgorithm>, Option<Arc<AdaptiveBakery>>);

/// One churn configuration: `clients` sessions served through `slots` pids.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Slot capacity of the lock (maximum concurrently attached clients).
    pub slots: usize,
    /// Total client sessions to serve (the `>= 64 x slots` regime).
    pub clients: usize,
    /// Critical sections per session (the `k` of attach → k CS → detach).
    pub cs_per_session: u64,
    /// Worker threads driving the churn (each worker runs many clients
    /// back-to-back; more workers than slots keeps the attach queue full).
    pub workers: usize,
    /// Busy-work units inside each critical section.
    pub cs_work: u64,
}

impl ServiceConfig {
    /// The E11 configuration: `64 x slots` clients.
    #[must_use]
    pub fn standard(quick: bool) -> Self {
        if quick {
            Self {
                slots: 4,
                clients: 256,
                cs_per_session: 4,
                workers: 8,
                cs_work: 8,
            }
        } else {
            Self {
                slots: 8,
                clients: 512,
                cs_per_session: 8,
                workers: 16,
                cs_work: 16,
            }
        }
    }

    /// Client-to-slot ratio (the headline "how oversubscribed" figure).
    #[must_use]
    pub fn oversubscription(&self) -> usize {
        self.clients / self.slots
    }
}

/// Outcome of one churn run.
#[derive(Debug, Clone)]
pub struct ServiceResult {
    /// Name of the algorithm serving the sessions.
    pub algorithm: String,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Sessions served (attach…detach lifecycles completed).
    pub sessions: u64,
    /// Critical sections completed across all sessions.
    pub total_cs: u64,
    /// Attaches recorded by the lock's stats (must equal `sessions`).
    pub attaches: u64,
    /// Detaches recorded by the lock's stats (must equal `sessions`).
    pub detaches: u64,
    /// Slot-aliasing violations observed in-test (two live sessions on one
    /// pid, or two concurrent critical sections).  **Must be zero.**
    pub aliasing_violations: u64,
    /// Packed-snapshot fast-path hits across all planes.
    pub fast_path_hits: u64,
    /// `Some(epoch)` for the adaptive lock (2 = migrated to the tree).
    pub final_epoch: Option<u64>,
}

impl ServiceResult {
    /// Sessions served per second.
    #[must_use]
    pub fn sessions_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.sessions as f64 / secs
        }
    }

    /// Critical sections per second.
    #[must_use]
    pub fn cs_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.total_cs as f64 / secs
        }
    }
}

/// Runs the churn against `lock`, reporting aliasing violations instead of
/// panicking so the caller can assert and render them.
///
/// The run opens with a **rush phase**: the first `slots` clients attach
/// concurrently behind a barrier, so the leased capacity demonstrably
/// reaches the full slot count before the steady churn begins.  (On a
/// single-CPU runner the steady churn alone can serialise into one live
/// session at a time, which would leave a capacity-triggered migration
/// schedule-dependent; the rush makes it deterministic.)  The remaining
/// clients then churn freely across `workers` threads.
#[must_use]
pub fn run_service(
    lock: Arc<dyn RawMutexAlgorithm>,
    config: &ServiceConfig,
    adaptive: Option<&Arc<AdaptiveBakery>>,
) -> ServiceResult {
    let algorithm = lock.algorithm_name().to_string();
    let plane = SessionPlane::new(lock);
    let rush_clients = config.slots.min(config.clients);
    let next_client = AtomicUsize::new(rush_clients);
    let sessions = AtomicU64::new(0);
    let total_cs = AtomicU64::new(0);
    let violations = AtomicU64::new(0);
    // One lease marker per pid plus a global CS counter: the in-test
    // aliasing assertion the acceptance criteria call for.
    let leased: Vec<AtomicU64> = (0..config.slots).map(|_| AtomicU64::new(0)).collect();
    let in_cs = AtomicU64::new(0);

    let serve_one = |session: &bakery_core::Session| {
        if leased[session.pid()].fetch_add(1, Ordering::SeqCst) != 0 {
            violations.fetch_add(1, Ordering::SeqCst);
        }
        for _ in 0..config.cs_per_session {
            let guard = session.lock();
            if in_cs.fetch_add(1, Ordering::SeqCst) != 0 {
                violations.fetch_add(1, Ordering::SeqCst);
            }
            busy_work(config.cs_work);
            in_cs.fetch_sub(1, Ordering::SeqCst);
            drop(guard);
        }
        total_cs.fetch_add(config.cs_per_session, Ordering::SeqCst);
        leased[session.pid()].fetch_sub(1, Ordering::SeqCst);
        sessions.fetch_add(1, Ordering::SeqCst);
    };

    let begun = Instant::now();
    // Phase 1 — the rush: every seat leased at once.
    let all_attached = Barrier::new(rush_clients);
    std::thread::scope(|scope| {
        for _ in 0..rush_clients {
            scope.spawn(|| {
                let session = plane.attach();
                all_attached.wait();
                serve_one(&session);
                drop(session);
            });
        }
    });
    // Phase 2 — steady churn over the remaining clients.
    std::thread::scope(|scope| {
        for _ in 0..config.workers {
            scope.spawn(|| loop {
                if next_client.fetch_add(1, Ordering::SeqCst) >= config.clients {
                    return;
                }
                let session = plane.attach();
                serve_one(&session);
                drop(session);
            });
        }
    });
    let elapsed = begun.elapsed();

    let stats = plane.stats().snapshot();
    ServiceResult {
        algorithm,
        elapsed,
        sessions: sessions.load(Ordering::SeqCst),
        total_cs: total_cs.load(Ordering::SeqCst),
        attaches: stats.attaches,
        detaches: stats.detaches,
        aliasing_violations: violations.load(Ordering::SeqCst),
        fast_path_hits: stats.fast_path_hits,
        final_epoch: adaptive.map(|a| a.epoch()),
    }
}

/// Builds the three service locks for `slots` pids.  The adaptive lock's
/// capacity threshold sits at half the slot count, so the churn (whose rush
/// phase leases every seat at once) is guaranteed to cross it mid-run.
/// Public so the `bench-json` baseline runs the identical lock set.
#[must_use]
pub fn service_locks(slots: usize) -> Vec<ServiceLock> {
    // Default capacity threshold, contention trigger disabled: E11 measures
    // the leased-capacity migration, and the rush phase satisfies the
    // default threshold deterministically.
    let adaptive = Arc::new(AdaptiveBakery::with_config(
        slots,
        ScanMode::Packed,
        AdaptiveBakery::default_capacity_threshold(slots),
        u64::MAX,
    ));
    vec![
        (
            Arc::new(BakeryPlusPlusLock::with_bound(slots, DEFAULT_PP_BOUND)),
            None,
        ),
        (Arc::new(TreeBakery::new(slots)), None),
        (
            Arc::clone(&adaptive) as Arc<dyn RawMutexAlgorithm>,
            Some(adaptive),
        ),
    ]
}

/// Runs E11 and renders its table.
///
/// # Panics
/// Panics if any run observes a slot-aliasing violation, loses a session, or
/// (for the adaptive lock) fails to migrate — these are the experiment's
/// acceptance assertions, not just table rows.
#[must_use]
pub fn run(quick: bool) -> Vec<Table> {
    let config = ServiceConfig::standard(quick);
    assert!(
        config.oversubscription() >= 64,
        "E11 must run the >= 64x oversubscribed service regime"
    );
    let mut table = Table::new(
        format!(
            "E11 — lock service: {} clients over {} slots ({}x oversubscribed), {} CS each",
            config.clients,
            config.slots,
            config.oversubscription(),
            config.cs_per_session
        ),
        &[
            "algorithm",
            "sessions/s",
            "cs/s",
            "attaches",
            "detaches",
            "aliasing",
            "fast-path hits",
            "migrated",
        ],
    );
    for (lock, adaptive) in service_locks(config.slots) {
        let result = run_service(lock, &config, adaptive.as_ref());
        assert_eq!(result.aliasing_violations, 0, "{}: slot aliasing", result.algorithm);
        assert_eq!(result.sessions, config.clients as u64, "{}", result.algorithm);
        assert_eq!(result.attaches, config.clients as u64, "{}", result.algorithm);
        assert_eq!(result.detaches, config.clients as u64, "{}", result.algorithm);
        let migrated = match result.final_epoch {
            Some(epoch) => {
                assert_eq!(
                    epoch,
                    bakery_core::adaptive::EPOCH_TREE,
                    "the churn must push the adaptive lock over its threshold"
                );
                "flat->tree".to_string()
            }
            None => "-".to_string(),
        };
        table.push_row(vec![
            result.algorithm.clone(),
            format!("{:.0}", result.sessions_per_sec()),
            format!("{:.0}", result.cs_per_sec()),
            result.attaches.to_string(),
            result.detaches.to_string(),
            result.aliasing_violations.to_string(),
            result.fast_path_hits.to_string(),
            migrated,
        ]);
    }
    table.push_note(
        "Each client attaches (leases a pid through the session plane), runs its critical \
         sections and detaches; generation-tagged seats recycle pids with zero aliasing \
         (asserted in-test).  The adaptive lock crosses its leased-capacity threshold \
         mid-churn and hands off flat->tree without dropping a session.",
    );
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_config_is_64x_oversubscribed() {
        let config = ServiceConfig::standard(true);
        assert!(config.oversubscription() >= 64);
        let full = ServiceConfig::standard(false);
        assert!(full.oversubscription() >= 64);
    }

    #[test]
    fn churn_over_the_adaptive_lock_migrates_without_aliasing() {
        let config = ServiceConfig {
            slots: 4,
            clients: 256,
            cs_per_session: 2,
            workers: 8,
            cs_work: 2,
        };
        let adaptive = Arc::new(AdaptiveBakery::with_config(
            config.slots,
            ScanMode::Packed,
            2,
            u64::MAX,
        ));
        let result = run_service(
            Arc::clone(&adaptive) as Arc<dyn RawMutexAlgorithm>,
            &config,
            Some(&adaptive),
        );
        assert_eq!(result.aliasing_violations, 0);
        assert_eq!(result.sessions, 256);
        assert_eq!(result.total_cs, 512);
        assert_eq!(result.attaches, 256);
        assert_eq!(result.detaches, 256);
        assert_eq!(result.final_epoch, Some(bakery_core::adaptive::EPOCH_TREE));
        // Facade-only cs_entries across the in-churn migration (the PR 3
        // rule must hold through the handoff).
        assert_eq!(adaptive.stats().cs_entries(), 512);
        assert_eq!(adaptive.aggregate_snapshot().cs_entries, 512);
    }

    #[test]
    fn quick_table_renders_all_three_locks() {
        let tables = run(true);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 3);
        let names: Vec<_> = tables[0].rows.iter().map(|r| r[0].clone()).collect();
        assert!(names.contains(&"bakery++".to_string()));
        assert!(names.contains(&"tree-bakery".to_string()));
        assert!(names.contains(&"adaptive-bakery".to_string()));
        let adaptive_row = tables[0]
            .rows
            .iter()
            .find(|r| r[0] == "adaptive-bakery")
            .unwrap();
        assert_eq!(adaptive_row[5], "0", "aliasing column");
        assert_eq!(adaptive_row[7], "flat->tree");
    }
}
