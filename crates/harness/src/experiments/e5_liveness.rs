//! **E5 — §6.3: the slow-process starvation scenario at `L1`.**
//!
//! The paper admits that a sufficiently slow process could in theory be parked
//! at `L1` forever by two fast processes that keep saturating and resetting
//! the ticket range, and argues this is no worse than the original Bakery
//! (which already lacks a liveness guarantee).  The experiment makes both
//! halves concrete:
//!
//! * the model checker finds a reachable **starvation cycle** in which the
//!   victim stays at `L1` while the fast processes move (the paper's scenario
//!   exists), and shows the matching protection result — a process that has
//!   *completed its doorway* (holds a ticket below `M`) can never be starved;
//! * the simulator quantifies the effect: under an adversarial scheduler the
//!   slow process's share of critical sections collapses, but it recovers as
//!   soon as the scheduler gives it cycles (the "perhaps having such an
//!   incredibly slow process is equivalent to not having it" remark).

use bakery_mc::liveness::starvation_report_where;
use bakery_sim::{AdversarialScheduler, Algorithm, RunConfig, Simulator};
use bakery_spec::{pc, BakeryPlusPlusSpec, BakerySpec};

use crate::report::Table;

/// Model-checking half: starvation-cycle existence per waiting position.
///
/// Every row prints the [`bakery_mc::LivenessReport`] verdict, which
/// distinguishes an exhaustive "no cycle" **proof** from a budget-bounded
/// "no cycle found" — a truncated graph must never be reported as one.
#[must_use]
pub fn starvation_cycle_table(quick: bool) -> Table {
    let max_states = if quick { 120_000 } else { 400_000 };
    let mut table = Table::new(
        "E5a — starvation cycles in the reachable state graph (unfair scheduler)",
        &[
            "algorithm",
            "victim position",
            "witness cycle found",
            "cycle length",
            "verdict",
        ],
    );

    // Bakery++ slow process parked at L1 (the paper's scenario).
    let pp = BakeryPlusPlusSpec::new(3, 2);
    let at_l1 = starvation_report_where(&pp, 2, max_states, |_, state| {
        state.pc(2) == pc::L1_SCAN
    });
    table.push_row(vec![
        "bakery++ (N=3, M=2)".into(),
        "parked at L1 (before doorway)".into(),
        at_l1.witness.is_some().to_string(),
        at_l1
            .witness
            .as_ref()
            .map_or_else(|| "-".into(), |w| w.cycle_length().to_string()),
        at_l1.verdict().into(),
    ]);

    // Bakery++ ticket holder below M: protected by FCFS.
    let pp2 = BakeryPlusPlusSpec::new(2, 4);
    let holder = starvation_report_where(&pp2, 1, max_states, |alg, state| {
        let ticket = state.read(2 + 1);
        alg.is_trying(state, 1)
            && ticket != 0
            && ticket < 4
            && state.pc(1) != pc::RESET_NUMBER
            && state.pc(1) != pc::WRITE_MAX
            && state.pc(1) != pc::CHECK_BOUND
    });
    table.push_row(vec![
        "bakery++ (N=2, M=4)".into(),
        "holding a ticket < M".into(),
        holder.witness.is_some().to_string(),
        holder
            .witness
            .as_ref()
            .map_or_else(|| "-".into(), |w| w.cycle_length().to_string()),
        holder.verdict().into(),
    ]);

    // Classic Bakery ticket holder: also protected (FCFS), for comparison.
    // Its unbounded ticket space is infinite, so this row is always a
    // bounded verdict: evidence, not a proof.
    let classic = BakerySpec::new(2, 1_000_000);
    let classic_holder = starvation_report_where(&classic, 1, max_states, |alg, state| {
        alg.is_trying(state, 1) && state.read(2 + 1) != 0
    });
    table.push_row(vec![
        "bakery (N=2)".into(),
        "holding a ticket".into(),
        classic_holder.witness.is_some().to_string(),
        classic_holder
            .witness
            .as_ref()
            .map_or_else(|| "-".into(), |w| w.cycle_length().to_string()),
        classic_holder.verdict().into(),
    ]);

    table.push_note(
        "A cycle exists exactly where the paper predicts: a process that has not yet taken a \
         ticket can be refused at L1 forever by an unfair scheduler.  Once the doorway is \
         complete, FCFS protects the process in both algorithms — proved exhaustively for \
         Bakery++ (finite bounded-register space), and as a bounded 'no cycle found within \
         budget' claim for the classic Bakery, whose unbounded ticket space cannot close out.",
    );
    table
}

/// Simulation half: service share of a slow process under an adversarial
/// scheduler, per slowdown factor.
#[must_use]
pub fn slow_process_share_table(quick: bool) -> Table {
    let steps = if quick { 30_000 } else { 300_000 };
    let mut table = Table::new(
        "E5b — critical-section share of the slow process (adversarial scheduler, N=3, M=4)",
        &[
            "slowdown factor",
            "slow-process CS entries",
            "fast-process CS entries (total)",
            "slow share (%)",
        ],
    );
    for &slowdown in &[1u32, 10, 100, 1000] {
        let spec = BakeryPlusPlusSpec::new(3, 4);
        let config = RunConfig::<BakeryPlusPlusSpec>::checked(steps);
        let mut scheduler = AdversarialScheduler::new(vec![0, 1], slowdown, 42);
        let outcome = Simulator::new().run(&spec, &mut scheduler, &config);
        let slow = outcome.report.cs_entries[2];
        let fast: u64 = outcome.report.cs_entries[0] + outcome.report.cs_entries[1];
        let share = if slow + fast == 0 {
            0.0
        } else {
            100.0 * slow as f64 / (slow + fast) as f64
        };
        table.push_row(vec![
            slowdown.to_string(),
            slow.to_string(),
            fast.to_string(),
            format!("{share:.2}"),
        ]);
    }
    table.push_note(
        "The slower the victim is scheduled, the smaller its share — but it keeps making \
         progress whenever it runs, matching the paper's assessment that the pathological \
         case requires a process that effectively never runs.",
    );
    table
}

/// Runs E5 and renders its tables.
#[must_use]
pub fn run(quick: bool) -> Vec<Table> {
    vec![starvation_cycle_table(quick), slow_process_share_table(quick)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starvation_table_reports_the_l1_cycle() {
        let table = starvation_cycle_table(true);
        assert_eq!(table.len(), 3);
        let md = table.to_markdown();
        assert!(md.contains("parked at L1"));
        // The first row (L1) must say true, the holder rows false.
        assert_eq!(table.rows[0][2], "true");
        assert_eq!(table.rows[1][2], "false");
        assert_eq!(table.rows[2][2], "false");
        // Verdicts: the finite Bakery++ space closes out (a proof), the
        // unbounded classic Bakery row is bounded evidence only.
        assert_eq!(table.rows[0][4], "cycle found");
        assert_eq!(table.rows[1][4], "no cycle (exhaustive)");
        assert_eq!(table.rows[2][4], "no cycle (bounded)");
    }

    #[test]
    fn slow_process_share_decreases_with_slowdown() {
        let table = slow_process_share_table(true);
        assert_eq!(table.len(), 4);
        let first: f64 = table.rows[0][3].parse().unwrap();
        let last: f64 = table.rows[3][3].parse().unwrap();
        assert!(first > last, "share must shrink as the scheduler gets more unfair ({first} vs {last})");
    }
}
