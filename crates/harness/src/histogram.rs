//! A fixed-bucket logarithmic latency histogram.
//!
//! Latency samples (nanoseconds) are binned into power-of-two buckets so the
//! histogram has a constant memory footprint and can be merged across threads
//! without allocation.  Percentile queries return the upper bound of the
//! bucket containing the requested rank, which is accurate enough for the
//! order-of-magnitude comparisons experiment **E7** reports.

/// Number of power-of-two buckets (covers 1 ns … ~2^63 ns).
const BUCKETS: usize = 64;

/// A log₂-bucketed histogram of nanosecond latencies.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    total: u64,
    sum_ns: u128,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: [0; BUCKETS],
            total: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }

    fn bucket(ns: u64) -> usize {
        (64 - ns.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1)
    }

    /// Records one latency sample.
    pub fn record(&mut self, ns: u64) {
        self.counts[Self::bucket(ns)] += 1;
        self.total += 1;
        self.sum_ns += u128::from(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Arithmetic mean of the samples (0 when empty).
    #[must_use]
    pub fn mean_ns(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            (self.sum_ns / u128::from(self.total)) as u64
        }
    }

    /// Largest recorded sample.
    #[must_use]
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Upper bound of the bucket containing the `q`-quantile (`0.0..=1.0`).
    #[must_use]
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((self.total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (bucket, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= target {
                return 1u64
                    .checked_shl(bucket as u32 + 1)
                    .map_or(u64::MAX, |v| v - 1);
            }
        }
        self.max_ns
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0);
        assert_eq!(h.quantile_ns(0.5), 0);
        assert_eq!(h.max_ns(), 0);
    }

    #[test]
    fn mean_and_max_track_samples() {
        let mut h = LatencyHistogram::new();
        h.record(100);
        h.record(300);
        assert_eq!(h.count(), 2);
        assert_eq!(h.mean_ns(), 200);
        assert_eq!(h.max_ns(), 300);
    }

    #[test]
    fn quantile_is_an_upper_bound_of_the_bucket() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(100);
        }
        h.record(1_000_000);
        // p50 falls in the bucket of 100 (64..127).
        assert!(h.quantile_ns(0.5) >= 100);
        assert!(h.quantile_ns(0.5) < 256);
        // p100 falls in the bucket of 1e6.
        assert!(h.quantile_ns(1.0) >= 1_000_000);
    }

    #[test]
    fn merge_accumulates_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(10);
        b.record(1000);
        b.record(2000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max_ns(), 2000);
    }

    #[test]
    fn zero_sample_goes_to_first_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert!(h.quantile_ns(1.0) >= 1);
    }

    proptest! {
        /// Merging is equivalent to recording everything into one histogram.
        #[test]
        fn merge_matches_single_histogram(
            xs in proptest::collection::vec(1u64..1_000_000, 0..64),
            ys in proptest::collection::vec(1u64..1_000_000, 0..64),
        ) {
            let mut merged = LatencyHistogram::new();
            let mut left = LatencyHistogram::new();
            let mut right = LatencyHistogram::new();
            for &x in &xs { left.record(x); merged.record(x); }
            for &y in &ys { right.record(y); merged.record(y); }
            left.merge(&right);
            prop_assert_eq!(left.count(), merged.count());
            prop_assert_eq!(left.mean_ns(), merged.mean_ns());
            prop_assert_eq!(left.max_ns(), merged.max_ns());
            prop_assert_eq!(left.quantile_ns(0.9), merged.quantile_ns(0.9));
        }

        /// Quantiles never exceed the bucket bound above the true maximum and
        /// are monotone in q.
        #[test]
        fn quantiles_are_monotone(xs in proptest::collection::vec(1u64..10_000_000, 1..128)) {
            let mut h = LatencyHistogram::new();
            for &x in &xs { h.record(x); }
            let q50 = h.quantile_ns(0.5);
            let q90 = h.quantile_ns(0.9);
            let q100 = h.quantile_ns(1.0);
            prop_assert!(q50 <= q90);
            prop_assert!(q90 <= q100);
            let max = *xs.iter().max().unwrap();
            prop_assert!(q100 >= max, "upper bound must cover the max");
            prop_assert!(q100 <= max.next_power_of_two().max(2) * 2);
        }
    }
}
