//! Differential tests for the parallel explorer: a parallel run must be a
//! *refinement-free* drop-in for the sequential one — same states, same
//! canonical orbits, same transitions, same max depth, same
//! `frontier_digest` — for every thread count.
//!
//! These are the determinism pins the ISSUE 9 tentpole demands: fixed-seed
//! differentials over the shipped specifications (Bakery++ n = 3, the
//! 2-process tree placements), a budget-overshoot regression for exact
//! truncation accounting, and a property-based sweep over small random
//! specification parameters.

use bakery_mc::{ExplorationReport, ModelChecker};
use bakery_spec::{BakeryPlusPlusSpec, RegisterSemantics, TreeBakerySpec};
use proptest::prelude::*;

/// Field-by-field equality of the exploration outcomes we guarantee to be
/// thread-count invariant.
fn assert_reports_agree(seq: &ExplorationReport, par: &ExplorationReport, what: &str) {
    assert_eq!(par.states, seq.states, "{what}: states");
    assert_eq!(
        par.canonical_states, seq.canonical_states,
        "{what}: canonical orbits"
    );
    assert_eq!(par.transitions, seq.transitions, "{what}: transitions");
    assert_eq!(par.max_depth, seq.max_depth, "{what}: max depth");
    assert_eq!(
        par.frontier_digest, seq.frontier_digest,
        "{what}: frontier digest"
    );
    assert_eq!(par.truncated, seq.truncated, "{what}: truncation verdict");
    assert_eq!(
        par.violations.len(),
        seq.violations.len(),
        "{what}: violation count"
    );
    assert_eq!(par.deadlocks, seq.deadlocks, "{what}: deadlocks");
}

#[test]
fn bakery_pp_three_process_parallel_matches_sequential() {
    let spec = BakeryPlusPlusSpec::new(3, 3);
    let run = |threads: usize| {
        ModelChecker::new(&spec)
            .with_paper_invariants()
            .with_symmetry_reduction(true)
            .with_threads(threads)
            .run()
    };
    let seq = run(1);
    assert!(seq.holds(), "{seq}");
    assert!(!seq.truncated);
    assert!(seq.canonical_states < seq.states, "symmetry must compress");
    for threads in [2, 4] {
        let par = run(threads);
        assert_eq!(par.threads, threads);
        assert_reports_agree(&seq, &par, &format!("Bakery++(3,3) x{threads}"));
        assert!(par.holds(), "{par}");
    }
}

#[test]
fn tree_two_process_placements_parallel_match_sequential() {
    // Both 2-process placements of the 4-process tree: sharing a leaf node
    // (0,1) and meeting only at the root (0,2).
    for active in [[0usize, 1], [0, 2]] {
        let spec = TreeBakerySpec::new(2, 2).with_active_processes(&active);
        let run = |threads: usize| {
            ModelChecker::new(&spec)
                .with_invariant(TreeBakerySpec::cs_holder_owns_path())
                .with_symmetry_reduction(true)
                .with_threads(threads)
                .run()
        };
        let seq = run(1);
        assert!(seq.holds(), "{seq}");
        assert!(!seq.truncated);
        for threads in [2, 4] {
            let par = run(threads);
            assert_reports_agree(
                &seq,
                &par,
                &format!("tree placement {active:?} x{threads}"),
            );
        }
    }
}

#[test]
fn budget_limited_parallel_run_reports_exact_truncation() {
    // The satellite regression: the shared atomic budget makes `truncated`
    // reliable under parallelism, and the overshoot is bounded by one
    // frontier state's successors per worker — far below one chunk (1024).
    const BUDGET: usize = 50_000;
    const CHUNK: usize = 1024;
    for threads in [1, 4] {
        let spec = BakeryPlusPlusSpec::new(3, 3);
        let report = ModelChecker::new(&spec)
            .with_paper_invariants()
            .with_max_states(BUDGET)
            .with_threads(threads)
            .run();
        assert!(report.truncated, "threads {threads}: must report truncation");
        assert!(
            report.states >= BUDGET,
            "threads {threads}: stopped before the budget ({})",
            report.states
        );
        assert!(
            report.states < BUDGET + CHUNK,
            "threads {threads}: overshot the budget by a whole chunk ({})",
            report.states
        );
        if threads == 1 {
            // Sequential stops at exactly the budget, like the pre-parallel
            // explorer did (pinned independently by the conformance suite).
            assert_eq!(report.states, BUDGET);
        }
    }
}

#[test]
fn crash_exploration_is_thread_count_invariant() {
    let spec = BakeryPlusPlusSpec::new(2, 3);
    let run = |threads: usize| {
        ModelChecker::new(&spec)
            .with_paper_invariants()
            .with_crashes(true)
            .with_symmetry_reduction(true)
            .with_threads(threads)
            .run()
    };
    let seq = run(1);
    assert!(seq.holds(), "{seq}");
    for threads in [2, 4] {
        assert_reports_agree(&seq, &run(threads), &format!("crashes x{threads}"));
    }
}

#[cfg(feature = "spill")]
#[test]
fn spilled_parallel_exploration_matches_in_memory_sequential() {
    let spec = BakeryPlusPlusSpec::new(3, 3);
    let seq = ModelChecker::new(&spec)
        .with_paper_invariants()
        .with_symmetry_reduction(true)
        .run();
    let par = ModelChecker::new(&spec)
        .with_paper_invariants()
        .with_symmetry_reduction(true)
        .with_spill_dir(std::env::temp_dir())
        .with_threads(4)
        .run();
    assert_reports_agree(&seq, &par, "spill x4");
}

proptest! {
    // Random small specification parameters; each case closes out a full
    // state space three ways and demands bit-identical reports.  The spec
    // stays at n = 2 so one case is cheap enough for the default case count
    // (the fixed-seed differentials above cover n = 3 and the tree).
    #[test]
    fn random_small_specs_explore_identically_at_any_thread_count(
        bound in 2u64..4,
        flicker in 0u8..2,
        symmetry in 0u8..2,
        crashes in 0u8..2,
    ) {
        let mut spec = BakeryPlusPlusSpec::new(2, bound);
        if flicker == 1 {
            spec = spec.with_semantics(RegisterSemantics::Safe);
        }
        let run = |threads: usize| {
            ModelChecker::new(&spec)
                .with_paper_invariants()
                .with_symmetry_reduction(symmetry == 1)
                .with_crashes(crashes == 1)
                .with_threads(threads)
                .run()
        };
        let seq = run(1);
        prop_assert!(!seq.truncated);
        for threads in [2, 4] {
            let par = run(threads);
            prop_assert_eq!(par.states, seq.states);
            prop_assert_eq!(par.canonical_states, seq.canonical_states);
            prop_assert_eq!(par.transitions, seq.transitions);
            prop_assert_eq!(par.max_depth, seq.max_depth);
            prop_assert_eq!(par.frontier_digest, seq.frontier_digest);
        }
    }
}
