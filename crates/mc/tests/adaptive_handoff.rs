//! Exhaustive close-out of the adaptive flat⇄tree handoff **cycle**.
//!
//! The `AdaptiveBakery` migration rests on one Dekker-style handshake per
//! direction (announce-then-recheck vs. drain-then-read, see
//! `bakery-core::adaptive`), stitched into a generation-tagged epoch cycle
//! `FLAT → DRAIN_FLAT → TREE → DRAIN_TREE → FLAT`.  Its spec
//! (`bakery-spec::adaptive`) abstracts the two verified inner locks to
//! single holder registers, so the state space stays small enough for the
//! PR 3 compact-state store to close out **exhaustively** — every reachable
//! interleaving of the handshakes, with both migration triggers available at
//! every point, across a full round trip *plus* a second forward leg — for
//! 2, 3 and 4 processes.
//!
//! Checked on every reachable state:
//! * `MutualExclusion` — at most one process in *either* critical section
//!   (this is the cross-plane property in both directions: a flat CS
//!   overlapping a tree CS violates the same invariant no matter which
//!   migration produced it);
//! * `NoOverflow` (register bounds) — the epoch word, both announce
//!   counters and both holder registers stay within their declared ranges
//!   (the epoch bound doubles as the proof that migrations stay inside the
//!   modelled trigger budget);
//! * `FlatDrainedBeforeTree` — the flat plane is quiescent throughout the
//!   `TREE` and `DRAIN_TREE` phases;
//! * `TreeDrainedBeforeFlat` — the mirror claim of the reverse leg: the
//!   tree plane is quiescent throughout `FLAT` and `DRAIN_FLAT`, i.e. a
//!   reverse migration fully drains the tree before flat traffic resumes;
//! * `ActiveCountsAnnouncements` — both drain conditions' counters agree
//!   with the sets of announced processes;
//! * `NoFlapStaleArming` — the reverse trigger's arming never leaks out of
//!   the `TREE` phase (the flapping hazard the hysteresis band must kill);
//! * no deadlock anywhere in the space.

use bakery_mc::ModelChecker;
use bakery_spec::adaptive::reg;
use bakery_spec::AdaptiveHandoffSpec;

/// Exhaustively explores the handoff cycle for `n` processes and checks
/// every safety property plus deadlock freedom.
fn close_out(n: usize, expect_states_at_most: usize) {
    let spec = AdaptiveHandoffSpec::new(n);
    let report = ModelChecker::new(&spec)
        .with_paper_invariants()
        .with_invariant(AdaptiveHandoffSpec::drained_invariant())
        .with_invariant(AdaptiveHandoffSpec::tree_drained_invariant())
        .with_invariant(AdaptiveHandoffSpec::active_count_invariant())
        .with_invariant(AdaptiveHandoffSpec::no_flap_invariant())
        .with_max_states(expect_states_at_most)
        .run();
    assert!(
        !report.truncated,
        "n = {n}: the handoff cycle space must close out exhaustively, \
         got {} states",
        report.states
    );
    assert!(
        report.violations.is_empty(),
        "n = {n}: {:?}",
        report.violated_invariants()
    );
    assert!(report.deadlocks.is_empty(), "n = {n}: {:?}", report.deadlocks);
    assert!(report.states > 0);
    println!("adaptive round-trip handoff n={n}: {report}");
}

#[test]
fn two_process_round_trip_closes_out_exhaustively() {
    close_out(2, 100_000); // 1,148 reachable states
}

#[test]
fn three_process_round_trip_closes_out_exhaustively() {
    close_out(3, 1_000_000); // 22,788 reachable states
}

#[test]
fn four_process_round_trip_closes_out_exhaustively() {
    close_out(4, 4_000_000); // 445,512 reachable states
}

#[test]
fn handoff_violation_is_detectable() {
    // Sanity of the harness itself: weaken the drained invariant into one
    // that is genuinely false (claiming the tree holder register never
    // becomes non-zero) and verify the checker finds a shortest
    // counterexample — so a passing close-out above means something.
    use bakery_sim::{Invariant, ProgState};

    let spec = AdaptiveHandoffSpec::new(2);
    let broken = Invariant::<AdaptiveHandoffSpec>::new("TreeNeverUsed", |_, state: &ProgState| {
        state.read(reg::TREE) == 0
    });
    let report = ModelChecker::new(&spec)
        .with_invariant(broken)
        .with_max_states(1_000_000)
        .run();
    assert!(!report.truncated);
    assert_eq!(report.violated_invariants(), vec!["TreeNeverUsed".to_string()]);
    let violation = &report.violations[0];
    assert!(
        violation.depth > 0,
        "counterexample must be a real trace, got depth {}",
        violation.depth
    );
}

#[test]
fn reverse_leg_is_genuinely_explored() {
    // The round-trip claim would be vacuous if the exploration never made it
    // back to a cycle-1 flat entry.  Assert it does, the same way: the false
    // invariant "the flat plane is never re-acquired after a reverse
    // migration" must yield a counterexample whose trace crosses the whole
    // cycle — trigger, forward drain, tree era, reverse trigger, reverse
    // drain, and a fresh flat acquisition.
    use bakery_sim::{Invariant, ProgState};

    let spec = AdaptiveHandoffSpec::new(2);
    let broken =
        Invariant::<AdaptiveHandoffSpec>::new("FlatNeverReused", |_, state: &ProgState| {
            // Epoch word >= 4 is cycle 1; a non-zero flat holder there is
            // exactly a post-round-trip flat critical section.
            state.read(reg::EPOCH) < 4 || state.read(reg::FLAT) == 0
        });
    let report = ModelChecker::new(&spec)
        .with_invariant(broken)
        .with_max_states(1_000_000)
        .run();
    assert!(!report.truncated);
    assert_eq!(
        report.violated_invariants(),
        vec!["FlatNeverReused".to_string()]
    );
    let violation = &report.violations[0];
    // The shortest such trace must at minimum trigger and complete both
    // drains (2 epoch advances each) and run two full acquisitions.
    assert!(
        violation.depth >= 10,
        "a round trip cannot be this short: depth {}",
        violation.depth
    );
}
