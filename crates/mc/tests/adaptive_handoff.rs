//! Exhaustive close-out of the adaptive flat→tree handoff handshake.
//!
//! The `AdaptiveBakery` migration rests on one Dekker-style handshake
//! (announce-then-recheck vs. drain-then-read, see
//! `bakery-core::adaptive`).  Its spec (`bakery-spec::adaptive`) abstracts
//! the two verified inner locks to single holder registers, so the state
//! space is tiny and the exploration completes **exhaustively** — every
//! reachable interleaving of the handshake, with the migration trigger
//! available at every point — for 2, 3 and 4 processes.
//!
//! Checked on every reachable state:
//! * `MutualExclusion` — at most one process in *either* critical section
//!   (this is the cross-plane property: one process in the flat CS and one
//!   in the tree CS is a violation of the same invariant);
//! * `NoOverflow` (register bounds) — the epoch/active/holder registers stay
//!   within their declared ranges;
//! * `FlatDrainedBeforeTree` — once `epoch == TREE`, the flat plane is and
//!   stays quiescent;
//! * `ActiveCountsAnnouncements` — the drain condition's counter agrees with
//!   the set of announced processes;
//! * no deadlock anywhere in the space.

use bakery_mc::ModelChecker;
use bakery_spec::AdaptiveHandoffSpec;

/// Exhaustively explores the handshake for `n` processes and checks every
/// safety property plus deadlock freedom.
fn close_out(n: usize, expect_states_at_most: usize) {
    let spec = AdaptiveHandoffSpec::new(n);
    let report = ModelChecker::new(&spec)
        .with_paper_invariants()
        .with_invariant(AdaptiveHandoffSpec::drained_invariant())
        .with_invariant(AdaptiveHandoffSpec::active_count_invariant())
        .with_max_states(expect_states_at_most)
        .run();
    assert!(
        !report.truncated,
        "n = {n}: the handshake space must close out exhaustively, \
         got {} states",
        report.states
    );
    assert!(
        report.violations.is_empty(),
        "n = {n}: {:?}",
        report.violated_invariants()
    );
    assert!(report.deadlocks.is_empty(), "n = {n}: {:?}", report.deadlocks);
    assert!(report.states > 0);
    println!("adaptive handoff n={n}: {report}");
}

#[test]
fn two_process_handoff_closes_out_exhaustively() {
    close_out(2, 100_000);
}

#[test]
fn three_process_handoff_closes_out_exhaustively() {
    close_out(3, 1_000_000);
}

#[test]
fn four_process_handoff_closes_out_exhaustively() {
    close_out(4, 8_000_000);
}

#[test]
fn handoff_violation_is_detectable() {
    // Sanity of the harness itself: weaken the drained invariant into one
    // that is genuinely false (claiming the tree holder register never
    // becomes non-zero) and verify the checker finds a shortest
    // counterexample — so a passing close-out above means something.
    use bakery_sim::{Invariant, ProgState};

    let spec = AdaptiveHandoffSpec::new(2);
    let broken = Invariant::<AdaptiveHandoffSpec>::new("TreeNeverUsed", |_, state: &ProgState| {
        // Register 3 is the tree holder; it is of course used post-drain.
        state.read(3) == 0
    });
    let report = ModelChecker::new(&spec)
        .with_invariant(broken)
        .with_max_states(100_000)
        .run();
    assert!(!report.truncated);
    assert_eq!(report.violated_invariants(), vec!["TreeNeverUsed".to_string()]);
    let violation = &report.violations[0];
    assert!(
        violation.depth > 0,
        "counterexample must be a real trace, got depth {}",
        violation.depth
    );
}
