//! Exhaustive close-out of the **crash-recovery plane** (paper assumptions
//! 1.5–1.7) over the live lock stack's three verified specifications.
//!
//! PR 6 gives every spec a real `Algorithm::crash` transition — crash and
//! restart collapsed into one atomic step that zeroes the victim's owned
//! registers (for the tree: exactly the slots of the levels it had engaged;
//! for the adaptive handoff: its announce-counter contribution and any plane
//! it held) and returns it to its noncritical section.  These tests explore
//! the crash-*extended* state spaces exhaustively and check, on every
//! reachable state:
//!
//! * **MutualExclusion** and **NoOverflow** — the paper invariants must
//!   survive a crash at *every* protocol point, including mid-doorway and
//!   inside the critical section;
//! * **CrashResetsOwnRegisters** — every available crash transition lands
//!   the victim in its NCS with all the registers it owns reading zero
//!   (assumption 1.7 as a checkable predicate);
//! * **CrashedPidMayReenter** — a freshly crashed process is never wedged:
//!   it has at least one program successor, i.e. it can re-enter its doorway
//!   (assumption 1.5's "restarts in its noncritical section");
//! * spec-specific safety (`cs_holder_owns_path`, the drain/flap invariants
//!   of the handoff cycle) — in particular the tree close-out is the proof
//!   that a crash wipes only the *victim's* engaged slots and never a
//!   sibling's tickets in the shared upper-level slots (the aliasing hazard
//!   the live lock's `engaged[]` mark exists to prevent);
//! * no deadlock anywhere in the extended space — a crash may abandon a
//!   drain or a scan, but someone can always move.
//!
//! As everywhere in this suite, a passing close-out is only meaningful if
//! the harness would catch a lie, so a deliberately-false crash claim is
//! checked to produce a counterexample.

use bakery_mc::ModelChecker;
use bakery_sim::{Algorithm, Invariant, ProgState, RegisterSemantics};
use bakery_spec::{AdaptiveHandoffSpec, BakeryPlusPlusSpec, TreeBakerySpec};

/// *CrashResetsOwnRegisters*: from every reachable state, every crash
/// transition on offer leaves the victim at its NCS (pc 0 across all shipped
/// specs) with each register it owns reading zero — and, under
/// [`RegisterSemantics::Safe`], with no write of the victim's still in
/// flight: a crash mid-write aborts the write, dropping the pending value
/// rather than committing it.
///
/// The owned-register indices are precomputed from `alg` — rebuilding the
/// full `RegisterSpec` list per checked state would dominate a
/// multi-million-state exploration (same reasoning as
/// [`Invariant::register_bounds_for`]).
fn crash_resets_own_registers<A: Algorithm>(alg: &A) -> Invariant<A> {
    let owned: Vec<Vec<usize>> = {
        let specs = alg.registers();
        (0..alg.processes())
            .map(|pid| {
                specs
                    .iter()
                    .enumerate()
                    .filter(|(_, spec)| spec.owner == Some(pid))
                    .map(|(idx, _)| idx)
                    .collect()
            })
            .collect()
    };
    Invariant::new(
        "CrashResetsOwnRegisters",
        move |alg: &A, state: &ProgState| {
            (0..owned.len()).all(|pid| match alg.crash(state, pid) {
                None => true,
                Some(next) => {
                    next.pc(pid) == 0
                        && owned[pid].iter().all(|&idx| next.read(idx) == 0)
                        && next.write_in_progress_by(pid).is_none()
                }
            })
        },
    )
}

/// *CrashedPidMayReenter*: a crash never wedges its victim — from the
/// post-crash state the victim has at least one enabled program step, so it
/// can start a fresh doorway.
fn crashed_pid_may_reenter<A: Algorithm>() -> Invariant<A> {
    Invariant::new("CrashedPidMayReenter", |alg: &A, state: &ProgState| {
        (0..alg.processes()).all(|pid| match alg.crash(state, pid) {
            None => true,
            Some(next) => !alg.successors_vec(&next, pid).is_empty(),
        })
    })
}

/// Asserts a crash-extended exploration closed out clean.
fn assert_clean(report: &bakery_mc::ExplorationReport, what: &str) {
    assert!(
        !report.truncated,
        "{what}: the crash-extended space must close out exhaustively, got {} states",
        report.states
    );
    assert!(
        report.violations.is_empty(),
        "{what}: {:?}",
        report.violated_invariants()
    );
    assert!(report.deadlocks.is_empty(), "{what}: {:?}", report.deadlocks);
    assert!(report.states > 0, "{what}");
}

fn close_out_bakery_pp(n: usize, bound: u64, budget: usize) {
    let spec = BakeryPlusPlusSpec::new(n, bound);
    let report = ModelChecker::new(&spec)
        .with_paper_invariants()
        .with_invariant(crash_resets_own_registers(&spec))
        .with_invariant(crashed_pid_may_reenter())
        .with_crashes(true)
        .with_max_states(budget)
        .run();
    assert_clean(&report, &format!("bakery++ n={n} M={bound} + crashes"));
    println!("bakery++ crash close-out n={n}: {report}");
}

#[test]
fn bakery_pp_two_processes_close_out_with_crashes() {
    close_out_bakery_pp(2, 2, 500_000);
}

#[test]
fn bakery_pp_three_processes_close_out_with_crashes() {
    close_out_bakery_pp(3, 3, 8_000_000);
}

/// **Crash during a write** (the weak-register plane meets the crash
/// plane): under [`RegisterSemantics::Safe`] every write is a begin/commit
/// pair, and a crash may land exactly between them.  The paper's recovery
/// assumption (1.7) then demands the pending value be *dropped*, not
/// committed — the victim restarts with its registers zeroed and no write of
/// its own still in flight.  This row explores the crash-extended safe
/// state space exhaustively with the strengthened
/// `CrashResetsOwnRegisters` (which now also rejects any surviving
/// in-flight write of the victim's) plus the paper invariants.
#[test]
fn bakery_pp_crash_during_write_closes_out_under_safe_registers() {
    let spec = BakeryPlusPlusSpec::new(2, 2).with_semantics(RegisterSemantics::Safe);
    let report = ModelChecker::new(&spec)
        .with_paper_invariants()
        .with_invariant(Invariant::crashed_registers_are_zero())
        .with_invariant(crash_resets_own_registers(&spec))
        .with_invariant(crashed_pid_may_reenter())
        .with_crashes(true)
        .with_max_states(2_000_000)
        .run();
    assert_clean(&report, "bakery++ n=2 M=2 safe + crashes");

    // The row has bite only if crashes are actually offered mid-write:
    // drive the spec into an in-flight ticket write by hand and watch the
    // crash abort it.
    let mut state = spec.initial_state();
    'outer: for _ in 0..64 {
        for next in spec.successors_vec(&state, 0) {
            if next.write_in_progress_by(0).is_some() {
                state = next;
                break 'outer;
            }
        }
        state = spec.successors_vec(&state, 0).remove(0);
    }
    let idx = state
        .write_in_progress_by(0)
        .expect("p0 must reach an in-flight write within 64 solo steps");
    let crashed = spec.crash(&state, 0).expect("crash is offered mid-write");
    assert!(crashed.write_in_progress_by(0).is_none(), "write aborted");
    assert_eq!(crashed.read(idx), 0, "pending value dropped, register zeroed");
}

#[test]
fn crashes_strictly_enlarge_the_explored_behaviour() {
    // The close-outs above would be vacuous if `with_crashes(true)` were a
    // no-op: the crash-extended run must take strictly more transitions
    // (every non-NCS configuration offers a crash) over at least as many
    // states.
    let spec = BakeryPlusPlusSpec::new(2, 2);
    let plain = ModelChecker::new(&spec)
        .with_paper_invariants()
        .with_max_states(500_000)
        .run();
    let crashed = ModelChecker::new(&spec)
        .with_paper_invariants()
        .with_crashes(true)
        .with_max_states(500_000)
        .run();
    assert!(!plain.truncated && !crashed.truncated);
    assert!(
        crashed.transitions > plain.transitions,
        "crash transitions must show up: {} vs {}",
        crashed.transitions,
        plain.transitions
    );
    assert!(crashed.states >= plain.states);
}

/// The two interesting two-process placements of the 2-level binary tree
/// (sharing a leaf vs meeting only at the root), crash-extended.  The root
/// slots are *shared* between sibling pids, so these close-outs are the
/// exhaustive proof that a crash transition zeroes only the victim's engaged
/// prefix and never a ticket the surviving sibling holds in the same slot.
#[test]
fn tree_two_process_placements_close_out_with_crashes() {
    for active in [[0usize, 1], [0, 2]] {
        let spec = TreeBakerySpec::new(2, 2).with_active_processes(&active);
        let report = ModelChecker::new(&spec)
            .with_paper_invariants()
            .with_invariant(TreeBakerySpec::cs_holder_owns_path())
            .with_invariant(crash_resets_own_registers(&spec))
            .with_invariant(crashed_pid_may_reenter())
            .with_crashes(true)
            .with_max_states(4_000_000)
            .run();
        assert_clean(&report, &format!("tree active={active:?} + crashes"));
        println!("tree crash close-out active={active:?}: {report}");
    }
}

#[test]
fn full_four_process_tree_shows_no_crash_violation_within_budget() {
    // Debug-friendly bounded prefix of the full crash-extended tree; the
    // release-only close-out below covers the whole space.
    let spec = TreeBakerySpec::new(2, 2);
    let report = ModelChecker::new(&spec)
        .with_paper_invariants()
        .with_invariant(TreeBakerySpec::cs_holder_owns_path())
        .with_invariant(crash_resets_own_registers(&spec))
        .with_invariant(crashed_pid_may_reenter())
        .with_symmetry_reduction(true)
        .with_crashes(true)
        .with_max_states(120_000)
        .run();
    assert!(report.violations.is_empty(), "{report}");
    assert!(report.deadlocks.is_empty(), "{report}");
}

/// **The crash close-out** (PR 6 tentpole): the full 4-process, 2-level tree
/// with a crash transition available from every non-NCS configuration is
/// explored exhaustively — `truncated == false` — with zero violations of
/// the paper invariants, the path-ownership invariant and both crash
/// invariants, and zero deadlocks.
///
/// The crash-extended space is a superset of the 39.6 M-state crash-free
/// close-out, so this runs in release only (the `crash-matrix` CI job);
/// `cargo test --release -p bakery-mc crash` exercises it locally.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "runs in release only (crash-matrix CI job): larger than the 40 M-state crash-free space"
)]
fn full_four_process_tree_closes_out_with_crashes() {
    // The crash-matrix CI job sets MC_THREADS to the runner's core count;
    // the parallel explorer's reduction is deterministic, so the verdict and
    // counts are identical at any value.
    let threads = std::env::var("MC_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let spec = TreeBakerySpec::new(2, 2);
    let report = ModelChecker::new(&spec)
        .with_paper_invariants()
        .with_invariant(TreeBakerySpec::cs_holder_owns_path())
        .with_invariant(crash_resets_own_registers(&spec))
        .with_invariant(crashed_pid_may_reenter())
        .with_symmetry_reduction(true)
        .with_crashes(true)
        .with_max_states(150_000_000)
        .with_threads(threads)
        .run();
    assert_clean(&report, "full 4-process tree + crashes");
    assert_eq!(report.symmetry_order, 8, "full wreath group S2 wr S2");
    println!("tree crash close-out n=4: {report}");
    if let Ok(path) = std::env::var("MC_CRASH_SUMMARY_OUT") {
        let json = bakery_json::to_string_pretty(&report).expect("report serialises");
        std::fs::write(&path, json).expect("failed to write the crash close-out summary");
    }
}

fn close_out_adaptive(n: usize, budget: usize) {
    let spec = AdaptiveHandoffSpec::new(n);
    let report = ModelChecker::new(&spec)
        .with_paper_invariants()
        .with_invariant(AdaptiveHandoffSpec::drained_invariant())
        .with_invariant(AdaptiveHandoffSpec::tree_drained_invariant())
        .with_invariant(AdaptiveHandoffSpec::active_count_invariant())
        .with_invariant(AdaptiveHandoffSpec::no_flap_invariant())
        .with_invariant(crash_resets_own_registers(&spec))
        .with_invariant(crashed_pid_may_reenter())
        .with_crashes(true)
        .with_max_states(budget)
        .run();
    assert_clean(&report, &format!("adaptive handoff n={n} + crashes"));
    println!("adaptive crash close-out n={n}: {report}");
}

/// The adaptive handoff cycle with crashes: a victim may die announced (its
/// counter contribution is rolled back — `ActiveCountsAnnouncements` must
/// keep holding), holding a plane (the plane is freed), or mid-help — and
/// the epoch machine must neither deadlock (a crashed drainer cannot wedge a
/// drain: the rollback is what completes it) nor flap.
#[test]
fn adaptive_two_process_cycle_closes_out_with_crashes() {
    close_out_adaptive(2, 500_000);
}

#[test]
fn adaptive_three_process_cycle_closes_out_with_crashes() {
    close_out_adaptive(3, 4_000_000);
}

#[test]
fn a_false_crash_claim_is_detectable() {
    // Harness sanity: the crash invariants above call `Algorithm::crash`
    // inside their predicates, so a checker bug that never evaluated them on
    // the crash-extended space would green-light anything.  Tighten
    // CrashResetsOwnRegisters into a claim that is genuinely false — "a
    // crash zeroes *every* shared register" — and demand a counterexample
    // (any state where the survivor holds a ticket refutes it).
    let spec = BakeryPlusPlusSpec::new(2, 2);
    let broken = Invariant::<BakeryPlusPlusSpec>::new(
        "CrashZeroesTheWholeFile",
        |alg: &BakeryPlusPlusSpec, state: &ProgState| {
            (0..alg.processes()).all(|pid| match alg.crash(state, pid) {
                None => true,
                Some(next) => (0..next.shared.len()).all(|idx| next.read(idx) == 0),
            })
        },
    );
    let report = ModelChecker::new(&spec)
        .with_invariant(broken)
        .with_crashes(true)
        .with_max_states(500_000)
        .run();
    assert!(!report.truncated);
    assert_eq!(
        report.violated_invariants(),
        vec!["CrashZeroesTheWholeFile".to_string()]
    );
    assert!(
        report.violations[0].depth > 0,
        "counterexample must be a real trace"
    );
}
