//! Exhaustive verification of the tree-composite lock's specification.
//!
//! The tentpole claim of the tree plane — composing bounded-bakery nodes
//! into a tournament preserves mutual exclusion and overflow freedom — is
//! exactly the kind of statement "Just Verification of Mutual Exclusion
//! Algorithms" settles by model checking rather than by inspection.  These
//! tests explore the two-level binary tree spec:
//!
//! * **exhaustively** for two active processes, in both interesting
//!   placements (sharing a leaf node vs meeting only at the root), and
//! * **boundedly** for the full four-process tree, which is too large to
//!   close out in CI but must show no violation within the budget.

use bakery_mc::ModelChecker;
use bakery_sim::{Algorithm, Invariant};
use bakery_spec::TreeBakerySpec;

/// The tree-specific safety invariant: a process inside the critical section
/// holds a non-zero ticket on every node of its leaf-to-root path.
fn cs_holder_owns_path() -> Invariant<TreeBakerySpec> {
    Invariant::new("CsHolderOwnsPath", |alg: &TreeBakerySpec, state| {
        (0..alg.processes()).all(|pid| {
            if !alg.in_critical_section(state, pid) {
                return true;
            }
            (0..alg.levels()).all(|level| {
                let (node, slot) = alg.position(pid, level);
                state.read(alg.number_idx(level, node, slot)) != 0
            })
        })
    })
}

#[test]
fn two_processes_sharing_a_leaf_verify_exhaustively() {
    // pids 0 and 1 compete at leaf node L0N0 first, then walk the root alone.
    let spec = TreeBakerySpec::new(2, 2).with_active_processes(&[0, 1]);
    let report = ModelChecker::new(&spec)
        .with_paper_invariants()
        .with_invariant(cs_holder_owns_path())
        .with_max_states(2_000_000)
        .run();
    assert!(report.holds(), "{report}");
    assert!(!report.truncated, "exploration must close out: {report}");
    assert!(report.states > 1_000, "suspiciously small state space");
}

#[test]
fn two_processes_meeting_only_at_the_root_verify_exhaustively() {
    // pids 0 and 2 sit under different leaf nodes; the only shared node is
    // the root, where they arrive on different child slots.
    let spec = TreeBakerySpec::new(2, 2).with_active_processes(&[0, 2]);
    let report = ModelChecker::new(&spec)
        .with_paper_invariants()
        .with_invariant(cs_holder_owns_path())
        .with_max_states(2_000_000)
        .run();
    assert!(report.holds(), "{report}");
    assert!(!report.truncated, "exploration must close out: {report}");
}

#[test]
fn full_four_process_tree_shows_no_violation_within_budget() {
    let spec = TreeBakerySpec::new(2, 2);
    let report = ModelChecker::new(&spec)
        .with_paper_invariants()
        .with_invariant(cs_holder_owns_path())
        .with_max_states(120_000)
        .run();
    // The full tree's state space exceeds any CI budget; the guarantee this
    // test pins down is "no violation and no deadlock reachable within the
    // explored prefix" (BFS ⇒ everything within some radius of the initial
    // state is covered).
    assert!(report.violations.is_empty(), "{report}");
    assert!(report.deadlocks.is_empty(), "{report}");
    assert!(report.states >= 120_000 || !report.truncated);
}

#[test]
fn one_level_tree_spec_matches_flat_bakery_pp_exhaustively() {
    // Degenerate tree (one level) — the composition collapses to a single
    // Bakery++ node, so its exhaustive verdict must match the flat spec's.
    use bakery_spec::BakeryPlusPlusSpec;
    let tree = TreeBakerySpec::new(2, 1);
    let tree_report = ModelChecker::new(&tree)
        .with_paper_invariants()
        .with_max_states(2_000_000)
        .run();
    assert!(tree_report.holds(), "{tree_report}");
    assert!(!tree_report.truncated);

    let flat = BakeryPlusPlusSpec::new(2, 3);
    let flat_report = ModelChecker::new(&flat)
        .with_paper_invariants()
        .with_max_states(2_000_000)
        .run();
    assert!(flat_report.holds(), "{flat_report}");
    // Same verdict; the state counts differ slightly because the tree spec
    // spends extra pcs on the (trivial) release ladder.
    assert!(!flat_report.truncated);
}
