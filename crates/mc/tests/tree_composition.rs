//! Exhaustive verification of the tree-composite lock's specification.
//!
//! The tentpole claim of the tree plane — composing bounded-bakery nodes
//! into a tournament preserves mutual exclusion and overflow freedom — is
//! exactly the kind of statement "Just Verification of Mutual Exclusion
//! Algorithms" settles by model checking rather than by inspection.  These
//! tests explore the two-level binary tree spec:
//!
//! * **exhaustively** for two active processes, in both interesting
//!   placements (sharing a leaf node vs meeting only at the root), and
//! * **exhaustively** for the full four-process tree — the close-out the
//!   compact-state + symmetry-compressed explorer exists for.  The full
//!   close-out visits ~40 M states, so it is compiled out of debug test
//!   runs (`cargo test` tier-1 stays fast) and exercised by release test
//!   runs: locally via `cargo test --release -p bakery-mc`, and in CI by
//!   the `mc-exhaustive` job, which also uploads the state-count summary.
//!
//! The expected counts below are exact: BFS over a deterministic transition
//! relation visits a fixed set of states, and the run must reproduce them
//! state-for-state.

use bakery_mc::ModelChecker;
use bakery_sim::Invariant;
use bakery_spec::TreeBakerySpec;

/// Concrete reachable states of the full 4-process, 2-level binary tree —
/// measured by the close-out run and pinned; a drift means the spec (or the
/// explorer) changed semantics.
const FULL_TREE_STATES: usize = 39_624_406;

/// Leaf-placement symmetry orbits of those states (group order 8) — the
/// canonical state count committed in the E2 table.
const FULL_TREE_CANONICAL_STATES: usize = 8_052_063;

/// Transitions examined by the full close-out, pinned alongside the state
/// count since the parallel explorer must reproduce it at any thread count.
const FULL_TREE_TRANSITIONS: usize = 149_376_721;

/// BFS depth of the full close-out (the deepest expanded level).
const FULL_TREE_MAX_DEPTH: usize = 292;

/// Worker threads for the release close-out: `MC_THREADS` (the mc-exhaustive
/// CI job sets it to the runner's core count), defaulting to 1.
fn closeout_threads() -> usize {
    std::env::var("MC_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// The tree-specific safety invariant, shared with the `tree_closeout`
/// example and the spec's own tests ([`TreeBakerySpec::cs_holder_owns_path`]).
fn cs_holder_owns_path() -> Invariant<TreeBakerySpec> {
    TreeBakerySpec::cs_holder_owns_path()
}

#[test]
fn two_processes_sharing_a_leaf_verify_exhaustively() {
    // pids 0 and 1 compete at leaf node L0N0 first, then walk the root alone.
    let spec = TreeBakerySpec::new(2, 2).with_active_processes(&[0, 1]);
    let report = ModelChecker::new(&spec)
        .with_paper_invariants()
        .with_invariant(cs_holder_owns_path())
        .with_max_states(2_000_000)
        .run();
    assert!(report.holds(), "{report}");
    assert!(!report.truncated, "exploration must close out: {report}");
    assert!(report.states > 1_000, "suspiciously small state space");
}

#[test]
fn two_processes_meeting_only_at_the_root_verify_exhaustively() {
    // pids 0 and 2 sit under different leaf nodes; the only shared node is
    // the root, where they arrive on different child slots.
    let spec = TreeBakerySpec::new(2, 2).with_active_processes(&[0, 2]);
    let report = ModelChecker::new(&spec)
        .with_paper_invariants()
        .with_invariant(cs_holder_owns_path())
        .with_max_states(2_000_000)
        .run();
    assert!(report.holds(), "{report}");
    assert!(!report.truncated, "exploration must close out: {report}");
}

#[test]
fn two_process_placements_close_out_identically_under_compression() {
    // The orbit-compressed visited set must be invisible to the search:
    // same states, transitions, depth and verdict, with the orbit count
    // strictly below the state count.  The placement stabilizer has order 4
    // for a shared leaf ({0,1}: both inner swaps) and order 2 for the split
    // placement ({0,2}: only the whole-subtree swap survives).
    for (active, order) in [([0usize, 1], 4), ([0, 2], 2)] {
        let spec = TreeBakerySpec::new(2, 2).with_active_processes(&active);
        let plain = ModelChecker::new(&spec)
            .with_paper_invariants()
            .with_invariant(cs_holder_owns_path())
            .with_max_states(2_000_000)
            .run();
        let compressed = ModelChecker::new(&spec)
            .with_paper_invariants()
            .with_invariant(cs_holder_owns_path())
            .with_symmetry_reduction(true)
            .with_max_states(2_000_000)
            .run();
        assert!(compressed.holds(), "active {active:?}: {compressed}");
        assert!(!compressed.truncated, "active {active:?}");
        assert_eq!(compressed.symmetry_order, order, "active {active:?}");
        assert_eq!(compressed.states, plain.states, "active {active:?}");
        assert_eq!(compressed.transitions, plain.transitions, "active {active:?}");
        assert_eq!(compressed.max_depth, plain.max_depth, "active {active:?}");
        assert!(
            compressed.canonical_states < compressed.states,
            "active {active:?}: {} orbits vs {} states",
            compressed.canonical_states,
            compressed.states
        );
    }
}

#[test]
fn full_four_process_tree_shows_no_violation_within_budget() {
    // The fast (debug-friendly) version of the close-out: a bounded prefix
    // of the full tree must stay violation- and deadlock-free.  The
    // release-only test below replaces the budget with the whole space.
    let spec = TreeBakerySpec::new(2, 2);
    let report = ModelChecker::new(&spec)
        .with_paper_invariants()
        .with_invariant(cs_holder_owns_path())
        .with_symmetry_reduction(true)
        .with_max_states(120_000)
        .run();
    assert!(report.violations.is_empty(), "{report}");
    assert!(report.deadlocks.is_empty(), "{report}");
    assert_eq!(report.symmetry_order, 8, "full wreath group S2 wr S2");
    assert!(report.states >= 120_000 || !report.truncated);
}

/// **The close-out** (ISSUE 3 tentpole): the full 4-process, 2-level tree is
/// explored exhaustively — `truncated == false` — with zero invariant
/// violations and zero deadlocks, and the canonical state count is pinned.
///
/// ~40 M states take a few minutes in release and far too long in debug, so
/// the test compiles to `#[ignore]` under `debug_assertions`; `cargo test
/// --release -p bakery-mc` and the `mc-exhaustive` CI job run it for real.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "runs in release only (mc-exhaustive CI job): ~40 M states"
)]
fn full_four_process_tree_closes_out_exhaustively() {
    let spec = TreeBakerySpec::new(2, 2);
    let report = ModelChecker::new(&spec)
        .with_paper_invariants()
        .with_invariant(cs_holder_owns_path())
        .with_symmetry_reduction(true)
        .with_max_states(60_000_000)
        .with_threads(closeout_threads())
        .run();
    assert!(!report.truncated, "the close-out must cover the whole space");
    assert!(report.holds(), "{report}");
    assert_eq!(report.symmetry_order, 8);
    assert_eq!(
        report.states, FULL_TREE_STATES,
        "reachable state count drifted"
    );
    assert_eq!(
        report.canonical_states, FULL_TREE_CANONICAL_STATES,
        "canonical (orbit) count drifted"
    );
    assert_eq!(
        report.transitions, FULL_TREE_TRANSITIONS,
        "transition count drifted"
    );
    assert_eq!(report.max_depth, FULL_TREE_MAX_DEPTH, "BFS depth drifted");
    // The mc-exhaustive CI job sets MC_SUMMARY_OUT so this single
    // exploration also produces the uploaded state-count artifact (the
    // tree_closeout example runs the same configuration for ad-hoc use).
    if let Ok(path) = std::env::var("MC_SUMMARY_OUT") {
        let json = bakery_json::to_string_pretty(&report).expect("report serialises");
        std::fs::write(&path, json).expect("failed to write the close-out summary");
    }
}

#[test]
fn one_level_tree_spec_matches_flat_bakery_pp_exhaustively() {
    // Degenerate tree (one level) — the composition collapses to a single
    // Bakery++ node, so its exhaustive verdict must match the flat spec's.
    use bakery_spec::BakeryPlusPlusSpec;
    let tree = TreeBakerySpec::new(2, 1);
    let tree_report = ModelChecker::new(&tree)
        .with_paper_invariants()
        .with_max_states(2_000_000)
        .run();
    assert!(tree_report.holds(), "{tree_report}");
    assert!(!tree_report.truncated);

    let flat = BakeryPlusPlusSpec::new(2, 3);
    let flat_report = ModelChecker::new(&flat)
        .with_paper_invariants()
        .with_max_states(2_000_000)
        .run();
    assert!(flat_report.holds(), "{flat_report}");
    // Same verdict; the state counts differ slightly because the tree spec
    // spends extra pcs on the (trivial) release ladder.
    assert!(!flat_report.truncated);
}
