//! Exhaustive close-out of the **weak-register semantics plane**: the bakery
//! verified under Lamport's *safe* (non-atomic, "flickering") registers.
//!
//! The headline claim of Lamport's original paper — and the assumption the
//! source paper's Bakery++ inherits — is that the bakery needs **no atomic
//! registers at all**: a read that overlaps a write may return any value in
//! the register's domain and the algorithm stays correct.  PR 10 turns that
//! assumption into a checkable model ([`RegisterSemantics::Safe`]: every
//! write splits into a begin and a commit step, overlapping reads branch
//! over `[0, bound]`, overlapping multi-writer writes clash) and this suite
//! is the close-out:
//!
//! * **Atomic differential pins** — with the knob off, every shipped
//!   specification explores a state space that is state-count-, transition-,
//!   depth- and digest-identical at 1 and 4 threads, pinned against the
//!   measured constants.  Atomic-mode states carry no pending-write cells at
//!   all, and the packed codec appends its weak lanes *after* the atomic
//!   layout, so the knob is zero-cost off by construction — these pins make
//!   that checkable.
//! * **Bakery++ close-outs** — n = 2 and n = 3 exhaustively under safe
//!   registers (debug, every PR), n = 4 with symmetry reduction in release
//!   (the CI `weak-registers` leg): `truncated == false`, zero violations of
//!   the paper invariants, zero deadlocks.
//! * **Classic Bakery close-outs** — mutual exclusion holds under safe
//!   registers *as long as the ticket domain has not overflowed*.  The spec
//!   approximates the unbounded ticket domain with the `M + 1` saturation
//!   sentinel, and once two tickets collide at the cap the pid tie-break can
//!   invert the true ticket order — so the honest checkable invariant is
//!   `MutualExclusionWithinBound`: mutex, *or* a saturated register is
//!   visible in the state.  A companion test pins the artifact itself: the
//!   only mutex counterexamples run through the sentinel.
//! * **The Peterson negative control** — Peterson *requires* atomic
//!   registers.  Under safe semantics the overlapping writes to its
//!   multi-writer `turn` register clash and mutual exclusion fails; the
//!   shortest counterexample is pinned (depth 12), replayed step by step
//!   through the specification's own `successors`, and demanded identical at
//!   every thread count.  A semantics knob that never changed any verdict
//!   would be vacuous.
//! * **The safe-register read contract** — property-based random walks check
//!   that reads overlapping an in-progress write flicker over exactly the
//!   declared domain (never the overflow sentinel) and that non-overlapping
//!   reads return exactly the last committed value.

use bakery_mc::{ExplorationReport, ModelChecker, Violation};
use bakery_sim::{Algorithm, Invariant, ProgState, RegisterSemantics};
use bakery_spec::{
    AdaptiveHandoffSpec, BakeryPlusPlusSpec, BakerySpec, PetersonSpec, TicketSpec, TreeBakerySpec,
};
use proptest::prelude::*;

/// Worker threads for the release close-out: `MC_THREADS` (the CI
/// `weak-registers` leg sets it to the runner's core count), default 1.
fn mc_threads() -> usize {
    std::env::var("MC_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// Asserts an exploration closed out clean: exhaustive, no violations, no
/// deadlocks.
fn assert_clean(report: &ExplorationReport, what: &str) {
    assert!(
        !report.truncated,
        "{what}: must close out exhaustively, got {} states",
        report.states
    );
    assert!(
        report.violations.is_empty(),
        "{what}: {:?}",
        report.violated_invariants()
    );
    assert!(report.deadlocks.is_empty(), "{what}: {:?}", report.deadlocks);
    assert!(report.states > 0, "{what}");
}

// ---------------------------------------------------------------------------
// Atomic differential pins: the knob is zero-cost off.
// ---------------------------------------------------------------------------

/// One differential pin: `(states, canonical_states, transitions, max_depth,
/// frontier_digest)` of the default (atomic, no-invariant) exploration.
type Pin = (usize, usize, usize, usize, u64);

fn assert_pinned(report: &ExplorationReport, pin: Pin, what: &str) {
    assert_eq!(report.states, pin.0, "{what}: states");
    assert_eq!(report.canonical_states, pin.1, "{what}: canonical states");
    assert_eq!(report.transitions, pin.2, "{what}: transitions");
    assert_eq!(report.max_depth, pin.3, "{what}: max depth");
    assert_eq!(
        report.frontier_digest, pin.4,
        "{what}: frontier digest (state *contents* changed, not just counts)"
    );
    assert!(!report.truncated, "{what}");
}

/// With `RegisterSemantics::Atomic` (the default), every shipped spec must
/// explore exactly the state space it always did — pinned constants, at one
/// worker and at four.  Atomic states carry an empty pending-write vector and
/// the codec's weak lanes are only allocated under `Safe`, so a drift in any
/// of these numbers means the knob leaked into the atomic model.
#[test]
fn atomic_mode_is_pinned_and_thread_count_invariant() {
    fn check<A: Algorithm>(spec: &A, pin: Pin, what: &str) {
        assert_eq!(spec.register_semantics(), RegisterSemantics::Atomic, "{what}");
        assert!(
            spec.initial_state().writes.is_empty(),
            "{what}: atomic states must not carry pending-write cells"
        );
        for threads in [1, 4] {
            let report = ModelChecker::new(spec).with_threads(threads).run();
            assert_pinned(&report, pin, &format!("{what} x{threads}"));
        }
    }
    check(
        &BakerySpec::new(2, 3),
        (1018, 1018, 1842, 66, 0xdf5d_3995_03a9_6ff4),
        "bakery(2,3)",
    );
    check(
        &BakeryPlusPlusSpec::new(2, 3),
        (1570, 1570, 2968, 83, 0xedc8_2213_77d0_e149),
        "bakery++(2,3)",
    );
    check(
        &BakeryPlusPlusSpec::new(3, 2),
        (75_102, 75_102, 214_086, 145, 0x3eae_d946_6df9_41bb),
        "bakery++(3,2)",
    );
    check(
        &PetersonSpec::new(),
        (34, 34, 62, 9, 0xb013_b0cc_edf2_561a),
        "peterson",
    );
    check(
        &TicketSpec::new(2, 3),
        (208, 208, 400, 26, 0xf7dc_4b25_7571_3b64),
        "ticket(2,3)",
    );
    check(
        &TreeBakerySpec::new(2, 2).with_active_processes(&[0, 1]),
        (3166, 3166, 6016, 146, 0x5eb8_9d02_7571_ab50),
        "tree(2,2) active=[0,1]",
    );
    check(
        &AdaptiveHandoffSpec::new(2),
        (1148, 1148, 2322, 40, 0xcce6_fb22_9a74_9a4a),
        "adaptive(2)",
    );
}

// ---------------------------------------------------------------------------
// Bakery++ under safe registers: the paper invariants close out.
// ---------------------------------------------------------------------------

fn close_out_pp_safe(n: usize, bound: u64, budget: usize) -> ExplorationReport {
    let spec = BakeryPlusPlusSpec::new(n, bound).with_semantics(RegisterSemantics::Safe);
    let report = ModelChecker::new(&spec)
        .with_paper_invariants()
        .with_max_states(budget)
        .run();
    assert_clean(&report, &format!("bakery++ n={n} M={bound} safe"));
    report
}

#[test]
fn bakery_pp_two_processes_close_out_under_safe_registers() {
    let report = close_out_pp_safe(2, 3, 100_000);
    assert_eq!(report.states, 3667, "the safe close-out size is pinned");
    // The knob has bite: splitting every write and branching every
    // overlapping read strictly enlarges the atomic space (1570 states).
    assert!(report.states > 2 * 1570);
}

#[test]
fn bakery_pp_three_processes_close_out_under_safe_registers() {
    let report = close_out_pp_safe(3, 3, 2_000_000);
    assert_eq!(report.states, 353_145, "the safe close-out size is pinned");
}

/// **The release close-out** (the CI `weak-registers` leg): four processes
/// under safe registers, the full 14.27 M-state space compressed to 933 771
/// S4 orbits, explored exhaustively with zero violations and zero deadlocks.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "runs in release only (weak-registers CI leg): 14 M-state space"
)]
fn bakery_pp_four_processes_close_out_under_safe_registers() {
    let spec = BakeryPlusPlusSpec::new(4, 2).with_semantics(RegisterSemantics::Safe);
    let report = ModelChecker::new(&spec)
        .with_paper_invariants()
        .with_symmetry_reduction(true)
        .with_max_states(60_000_000)
        .with_threads(mc_threads())
        .run();
    assert_clean(&report, "bakery++ n=4 M=2 safe");
    assert_eq!(report.symmetry_order, 24, "full S4");
    assert_eq!(report.states, 14_265_474);
    assert_eq!(report.canonical_states, 933_771);
    println!("bakery++ weak-register close-out n=4: {report}");
    if let Ok(path) = std::env::var("MC_WEAK_SUMMARY_OUT") {
        let json = bakery_json::to_string_pretty(&report).expect("report serialises");
        std::fs::write(&path, json).expect("failed to write the weak-register close-out summary");
    }
}

// ---------------------------------------------------------------------------
// Classic Bakery under safe registers: mutex within the ticket bound.
// ---------------------------------------------------------------------------

/// *MutualExclusionWithinBound*: mutual exclusion holds in every state where
/// the ticket domain has not saturated — no register (committed *or* still
/// in flight) holds a value above its declared bound.
///
/// The classic spec models Lamport's unbounded tickets with an `M + 1`
/// saturation sentinel so the state space stays finite.  Once two tickets
/// collide at the cap the pid tie-break can invert the true ticket order and
/// mutex genuinely fails *in the bounded model* — the violation the paper's
/// overflow discussion is about, not a weakness of the bakery under safe
/// registers.  This invariant is the honest claim the bounded model can
/// check: every mutex failure runs through a saturated register.
fn mutual_exclusion_within_bound<A: Algorithm>(alg: &A) -> Invariant<A> {
    let bounds: Vec<u64> = alg.registers().iter().map(|spec| spec.bound).collect();
    Invariant::new(
        "MutualExclusionWithinBound",
        move |alg: &A, state: &ProgState| {
            let saturated = state
                .shared
                .iter()
                .zip(bounds.iter())
                .any(|(value, bound)| value > bound)
                || state
                    .writes
                    .iter()
                    .zip(bounds.iter())
                    .any(|(cell, bound)| cell.writers != 0 && cell.value > *bound);
            saturated || alg.processes_in_cs(state) <= 1
        },
    )
}

fn close_out_classic_safe(n: usize, bound: u64, budget: usize) -> ExplorationReport {
    let spec = BakerySpec::new(n, bound).with_semantics(RegisterSemantics::Safe);
    let report = ModelChecker::new(&spec)
        .with_invariant(mutual_exclusion_within_bound(&spec))
        .with_max_states(budget)
        .run();
    assert_clean(&report, &format!("bakery n={n} M={bound} safe"));
    report
}

#[test]
fn classic_bakery_two_processes_keep_mutex_within_bound_under_safe_registers() {
    let report = close_out_classic_safe(2, 3, 100_000);
    assert_eq!(report.states, 3065, "the safe close-out size is pinned");
}

#[test]
fn classic_bakery_three_processes_keep_mutex_within_bound_under_safe_registers() {
    let report = close_out_classic_safe(3, 2, 1_000_000);
    assert_eq!(report.states, 152_089, "the safe close-out size is pinned");
}

/// The conditional invariant above would be vacuous if plain mutex never
/// failed; pin the saturation artifact it excuses.  The shortest plain-mutex
/// counterexample must actually run through the overflow sentinel (`M + 1 =
/// 4`): without the cap, the second doorway would have computed ticket 5 and
/// Lamport's ordering argument would hold — under safe registers included.
#[test]
fn classic_bakery_mutex_failure_is_the_saturation_artifact() {
    let spec = BakerySpec::new(2, 3).with_semantics(RegisterSemantics::Safe);
    let report = ModelChecker::new(&spec)
        .with_invariant(Invariant::mutual_exclusion())
        .with_max_states(100_000)
        .run();
    assert!(!report.truncated);
    assert_eq!(report.violated_invariants(), vec!["MutualExclusion".to_string()]);
    let violation = &report.violations[0];
    assert_eq!(violation.depth, 41, "shortest counterexample is pinned");
    let final_state = &violation.trace.last().expect("non-empty trace").state;
    assert!(
        final_state.contains("number[0]=4") && final_state.contains("number[1]=4"),
        "the violating state must show both tickets saturated at M+1: {final_state}"
    );
}

// ---------------------------------------------------------------------------
// The Peterson negative control.
// ---------------------------------------------------------------------------

/// Replays a counterexample trace step by step through the specification's
/// own `successors`/`crash` transitions, proving the trace is a real
/// behaviour of the model and returning the final concrete state.
fn replay<A: Algorithm>(spec: &A, violation: &Violation) -> ProgState {
    let registers = spec.registers();
    let mut state = spec.initial_state();
    assert_eq!(
        violation.trace[0].state,
        state.render(&registers),
        "trace must start at the initial state"
    );
    for (i, step) in violation.trace.iter().enumerate().skip(1) {
        let pid = step.pid.unwrap_or_else(|| panic!("step {i} has no pid"));
        let candidates = if step.crash {
            spec.crash(&state, pid).into_iter().collect::<Vec<_>>()
        } else {
            spec.successors_vec(&state, pid)
        };
        state = candidates
            .into_iter()
            .find(|s| s.render(&registers) == step.state)
            .unwrap_or_else(|| panic!("step {i} of the trace is not a successor: {}", step.state));
    }
    state
}

/// Peterson **requires** atomic registers: under safe semantics its
/// multi-writer `turn` register clashes and mutual exclusion fails.  The
/// violation is pinned (depth 12 through the write clash), replayable
/// through the spec's own transition function, and — like every verdict of
/// the deterministic parallel explorer — identical at every thread count.
#[test]
fn peterson_mutex_violation_is_pinned_replayable_and_thread_count_invariant() {
    let spec = PetersonSpec::new().with_semantics(RegisterSemantics::Safe);
    let run = |threads: usize| {
        ModelChecker::new(&spec)
            .with_paper_invariants()
            .with_threads(threads)
            .run()
    };
    let seq = run(1);
    assert!(!seq.truncated);
    assert_eq!(seq.states, 98);
    assert_eq!(seq.transitions, 174);
    assert_eq!(seq.violated_invariants(), vec!["MutualExclusion".to_string()]);

    let violation = &seq.violations[0];
    assert_eq!(violation.depth, 12, "shortest violation is pinned");
    assert!(
        violation.trace.iter().any(|s| s.state.contains("*clash")),
        "the counterexample must run through the multi-writer write clash"
    );

    // Replayable: the trace is a genuine behaviour of the specification, and
    // it really ends with both processes inside the critical section.
    let final_state = replay(&spec, violation);
    assert_eq!(spec.processes_in_cs(&final_state), 2, "both in the CS");

    // Thread-count invariant: verdict, counts, digest and the full rendered
    // counterexample are identical however many workers explore.
    let render = |v: &Violation| v.trace.iter().map(|s| s.state.clone()).collect::<Vec<_>>();
    for threads in [2, 3] {
        let par = run(threads);
        assert_eq!(par.states, seq.states, "threads {threads}");
        assert_eq!(par.transitions, seq.transitions, "threads {threads}");
        assert_eq!(par.frontier_digest, seq.frontier_digest, "threads {threads}");
        assert_eq!(par.violated_invariants(), seq.violated_invariants());
        assert_eq!(par.violations[0].depth, violation.depth);
        assert_eq!(
            render(&par.violations[0]),
            render(violation),
            "threads {threads}: the counterexample must be schedule-independent"
        );
    }

    // And the control's control: with atomic registers Peterson is correct.
    let atomic = ModelChecker::new(&PetersonSpec::new())
        .with_paper_invariants()
        .run();
    assert!(atomic.holds(), "{atomic}");
}

// ---------------------------------------------------------------------------
// The safe-register read contract, property-based.
// ---------------------------------------------------------------------------

proptest! {
    /// Random walks through the safe-register Bakery++ model check the read
    /// contract on every state they visit: a register with no write in
    /// flight reads as exactly its last committed value, and a register with
    /// an overlapping write flickers over exactly `[0, bound]` — every value
    /// of the declared domain, never the overflow sentinel, never a value
    /// from outside it.
    #[test]
    fn safe_reads_flicker_within_bound_and_settle_to_committed(
        seed in 0u64..256,
        walk in 8usize..80,
    ) {
        let spec = BakeryPlusPlusSpec::new(2, 2).with_semantics(RegisterSemantics::Safe);
        let bounds: Vec<u64> = spec.registers().iter().map(|r| r.bound).collect();
        let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next_rand = move |modulus: usize| {
            // SplitMix64 — keeps the walk deterministic per seed without
            // pulling a full RNG into the test.
            rng ^= rng >> 30;
            rng = rng.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            rng ^= rng >> 27;
            rng = rng.wrapping_mul(0x94D0_49BB_1331_11EB);
            rng ^= rng >> 31;
            (rng % modulus as u64) as usize
        };
        let mut state = spec.initial_state();
        for _ in 0..walk {
            for (idx, &bound) in bounds.iter().enumerate() {
                let reads = state.read_values(idx, bound);
                let in_flight = state.writes.get(idx).is_some_and(|cell| !cell.is_idle());
                match in_flight {
                    false => prop_assert_eq!(
                        reads,
                        vec![state.shared[idx]],
                        "non-overlapping read must return the committed value"
                    ),
                    true => prop_assert_eq!(
                        reads,
                        (0..=bound).collect::<Vec<u64>>(),
                        "overlapping read must flicker over the declared domain"
                    ),
                }
            }
            // Take a random enabled step (there is always one: the checker
            // proves this space deadlock-free).
            let moves: Vec<ProgState> = (0..spec.processes())
                .flat_map(|pid| spec.successors_vec(&state, pid))
                .collect();
            prop_assert!(!moves.is_empty());
            state = moves[next_rand(moves.len())].clone();
        }
    }
}
