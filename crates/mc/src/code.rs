//! Compact, invertible state encoding for the explorer's visited set.
//!
//! The explorer used to deduplicate full [`ProgState`] structs — several heap
//! allocations and a few hundred bytes per state once the tree specification
//! is involved.  [`StateCodec`] instead bit-packs every field into a handful
//! of 64-bit words, reusing the lane-sizing idea of `bakery-core`'s
//! `snapshot::LaneWidth`: each field gets the narrowest lane that holds every
//! value it can take, with widths derived from [`Algorithm::registers`] (plus
//! one value of sentinel headroom, since the classic Bakery specification
//! physically stores `M + 1` to mark an overflow) and
//! [`Algorithm::state_bounds`].
//!
//! The 2-level binary tree specification packs into **two words** (16 bytes):
//! 12 registers × ≤3 bits + 4 processes × (6-bit pc + 2 locals + crash bit).
//! That is what lets the visited set hold tens of millions of states in
//! memory and close out the full 4-process tree exhaustively.
//!
//! The encoding is exact and invertible ([`StateCodec::decode`] is a strict
//! inverse of [`StateCodec::encode`]), so the explorer never stores decoded
//! states at all — BFS expansion decodes on demand.

use std::fmt;
use std::hash::{Hash, Hasher};

use bakery_sim::{Algorithm, PendingWrite, ProcState, ProgState, RegisterSemantics, StatePermutation};

/// Number of words a [`StateCode`] stores inline before spilling to a heap
/// allocation.  Three words cover every specification in the suite at its
/// model-checked sizes.
const INLINE_WORDS: usize = 3;

/// A packed state: the unit the visited set stores, hashes and compares.
#[derive(Debug, Clone)]
pub enum StateCode {
    /// At most [`INLINE_WORDS`] words, stored without heap allocation.
    Inline {
        /// Number of words in use.
        len: u8,
        /// The packed words (`words[len..]` is zero).
        words: [u64; INLINE_WORDS],
    },
    /// Wider states (conservative field bounds, large specs).
    Heap(Box<[u64]>),
}

impl StateCode {
    /// Wraps a packed word vector, choosing inline storage when it fits.
    #[must_use]
    pub fn from_words(words: &[u64]) -> Self {
        if words.len() <= INLINE_WORDS {
            let mut inline = [0u64; INLINE_WORDS];
            inline[..words.len()].copy_from_slice(words);
            StateCode::Inline {
                len: words.len() as u8,
                words: inline,
            }
        } else {
            StateCode::Heap(words.to_vec().into_boxed_slice())
        }
    }

    /// The packed words.
    #[must_use]
    pub fn as_slice(&self) -> &[u64] {
        match self {
            StateCode::Inline { len, words } => &words[..*len as usize],
            StateCode::Heap(words) => words,
        }
    }

    /// A deterministic 64-bit digest of the code (FNV-1a over the words);
    /// used both as the visited-set hash key and for the replay-determinism
    /// digest of a whole exploration.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        fnv1a(FNV_OFFSET_BASIS, self.as_slice())
    }
}

/// The FNV-1a offset basis: seed of every fingerprint and exploration
/// digest in this crate.
pub const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds `words` into an FNV-1a accumulator starting from `seed`.
#[must_use]
pub fn fnv1a(seed: u64, words: &[u64]) -> u64 {
    let mut hash = seed;
    for &word in words {
        for shift in [0u32, 16, 32, 48] {
            hash ^= (word >> shift) & 0xFFFF;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    hash
}

impl PartialEq for StateCode {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for StateCode {}

impl Hash for StateCode {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Display for StateCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x")?;
        for word in self.as_slice().iter().rev() {
            write!(f, "{word:016x}")?;
        }
        Ok(())
    }
}

/// Bit-lane layout of one algorithm's states.
#[derive(Debug, Clone)]
pub struct StateCodec {
    /// Bits of each shared register, in register order.
    shared_bits: Vec<u32>,
    /// The inclusive maximum each shared lane may hold (bound + sentinel).
    shared_maxes: Vec<u64>,
    /// Bits of the program counter lane.
    pc_bits: u32,
    /// Bits of each local slot (uniform across processes).
    local_bits: Vec<u32>,
    /// Inclusive maxima for the local lanes.
    local_maxes: Vec<u64>,
    /// Number of processes.
    procs: usize,
    /// Total words per code.
    words: usize,
    /// True when the algorithm runs under [`RegisterSemantics::Safe`]: the
    /// code grows pending-write lanes appended *after* the atomic layout, so
    /// atomic-mode codes stay bit-identical to the pre-knob plane.
    weak: bool,
    /// Register owners (single-writer registers), used to reconstruct owned
    /// writer masks on decode and to validate permutations under `weak`.
    owners: Vec<Option<usize>>,
}

/// Narrowest lane holding every value in `0..=max` (at least one bit).
fn bits_for(max: u64) -> u32 {
    (64 - max.leading_zeros()).max(1)
}

impl StateCodec {
    /// Builds the codec for `algorithm`, deriving register lanes from its
    /// register bounds (plus one sentinel value of headroom) and pc/local
    /// lanes from [`Algorithm::state_bounds`].
    ///
    /// # Panics
    /// Panics if the processes declare differing local-variable counts (the
    /// codec assumes a uniform per-process layout, which every specification
    /// in the suite satisfies).
    #[must_use]
    pub fn new<A: Algorithm + ?Sized>(algorithm: &A) -> Self {
        let initial = algorithm.initial_state();
        let bounds = algorithm.state_bounds();
        let local_count = initial.procs.first().map_or(0, |p| p.locals.len());
        for (pid, proc_state) in initial.procs.iter().enumerate() {
            assert_eq!(
                proc_state.locals.len(),
                local_count,
                "process {pid} has a different local count"
            );
        }
        let registers = algorithm.registers();
        let shared_maxes: Vec<u64> = registers
            .iter()
            .map(|reg| reg.bound.saturating_add(1))
            .collect();
        let shared_bits: Vec<u32> = shared_maxes.iter().map(|&m| bits_for(m)).collect();
        let owners: Vec<Option<usize>> = registers.iter().map(|reg| reg.owner).collect();
        let local_maxes: Vec<u64> = (0..local_count)
            .map(|slot| bounds.local_bound(slot))
            .collect();
        let local_bits: Vec<u32> = local_maxes.iter().map(|&m| bits_for(m)).collect();
        let pc_bits = bits_for(u64::from(bounds.max_pc));
        let per_proc: u32 = pc_bits + 1 + local_bits.iter().sum::<u32>();
        let weak = algorithm.register_semantics() == RegisterSemantics::Safe;
        let mut total_bits =
            shared_bits.iter().sum::<u32>() as usize + per_proc as usize * initial.procs.len();
        if weak {
            // Pending-write lanes, appended after the atomic layout: owned
            // registers need an active bit + a pending-value lane (the mask
            // is implied by the owner); multi-writer registers need a full
            // writer mask + a clash bit + the pending-value lane.
            let procs = initial.procs.len() as u32;
            for (idx, bits) in shared_bits.iter().enumerate() {
                total_bits += match owners[idx] {
                    Some(_) => 1 + *bits as usize,
                    None => procs as usize + 1 + *bits as usize,
                };
            }
        }
        Self {
            shared_bits,
            shared_maxes,
            pc_bits,
            local_bits,
            local_maxes,
            procs: initial.procs.len(),
            words: total_bits.div_ceil(64).max(1),
            weak,
            owners,
        }
    }

    /// Words per packed state.
    #[must_use]
    pub fn words_per_state(&self) -> usize {
        self.words
    }

    /// Number of processes the codec packs.
    #[must_use]
    pub fn processes(&self) -> usize {
        self.procs
    }

    /// Approximate bytes one stored state costs in the visited set (packed
    /// words only, excluding index overhead) — the memory-math figure the
    /// architecture notes quote.
    #[must_use]
    pub fn bytes_per_state(&self) -> usize {
        self.words * 8
    }

    /// Encodes `state`, asserting every field fits its lane.
    ///
    /// # Panics
    /// Panics when a field exceeds its declared bound — that means an
    /// [`Algorithm::state_bounds`] override is wrong, and a loud failure here
    /// is what keeps the compact store sound.
    #[must_use]
    pub fn encode(&self, state: &ProgState) -> StateCode {
        self.encode_permuted(state, None)
    }

    /// Encodes the image of `state` under the permutation whose **inverse**
    /// is `preimage`, without materialising the permuted state: the
    /// canonicalizer calls this once per group element per successor, so both
    /// the intermediate `ProgState` clone and any O(registers) inverse
    /// lookups must be avoided — callers precompute the inverse once per
    /// group element ([`StatePermutation::inverse`]).
    #[must_use]
    pub fn encode_permuted(
        &self,
        state: &ProgState,
        preimage: Option<&StatePermutation>,
    ) -> StateCode {
        assert_eq!(state.shared.len(), self.shared_bits.len(), "register count");
        assert_eq!(state.procs.len(), self.procs, "process count");
        let mut writer = BitWriter::new(self.words);
        for new_index in 0..state.shared.len() {
            // The value landing in cell `new_index` comes from the register
            // the inverse maps it to (identity when no permutation).
            let old_index = preimage.map_or(new_index, |p| p.map_register(new_index));
            let value = state.shared[old_index];
            assert!(
                value <= self.shared_maxes[new_index],
                "register {old_index} holds {value}, above its encoding bound {}",
                self.shared_maxes[new_index]
            );
            writer.push(value, self.shared_bits[new_index]);
        }
        for new_pid in 0..self.procs {
            let old_pid = preimage.map_or(new_pid, |p| p.map_process(new_pid));
            let proc_state = &state.procs[old_pid];
            assert!(
                u64::from(proc_state.pc) < (1u64 << self.pc_bits).max(1),
                "pc {} of process {old_pid} exceeds the encoding's max_pc lane",
                proc_state.pc
            );
            writer.push(u64::from(proc_state.pc), self.pc_bits);
            writer.push(u64::from(proc_state.crashed), 1);
            for (slot, &value) in proc_state.locals.iter().enumerate() {
                assert!(
                    value <= self.local_maxes[slot],
                    "local {slot} of process {old_pid} holds {value}, above its bound {}",
                    self.local_maxes[slot]
                );
                writer.push(value, self.local_bits[slot]);
            }
        }
        if self.weak {
            assert_eq!(
                state.writes.len(),
                self.shared_bits.len(),
                "safe-semantics state is missing its pending-write cells"
            );
            for new_index in 0..state.writes.len() {
                let old_index = preimage.map_or(new_index, |p| p.map_register(new_index));
                let cell = &state.writes[old_index];
                debug_assert!(
                    (cell.writers != 0 || (cell.value == 0 && !cell.clash))
                        && (!cell.clash || cell.value == 0),
                    "pending-write cell {old_index} violates its normalisation invariant"
                );
                assert!(
                    cell.value <= self.shared_maxes[new_index],
                    "pending value {} on register {old_index} exceeds its lane max {}",
                    cell.value,
                    self.shared_maxes[new_index]
                );
                match self.owners[new_index] {
                    Some(_) => {
                        // Single-writer: the mask is implied by the owner.
                        writer.push(u64::from(cell.writers != 0), 1);
                        writer.push(cell.value, self.shared_bits[new_index]);
                    }
                    None => {
                        // The mask's writer bits follow the process
                        // relabelling: the new mask's bit q is the old
                        // mask's bit for q's preimage process.
                        let mut mask = 0u64;
                        for q in 0..self.procs {
                            let old_pid = preimage.map_or(q, |p| p.map_process(q));
                            if cell.writers & (1 << old_pid) != 0 {
                                mask |= 1 << q;
                            }
                        }
                        writer.push(mask, self.procs as u32);
                        writer.push(u64::from(cell.clash), 1);
                        writer.push(cell.value, self.shared_bits[new_index]);
                    }
                }
            }
        }
        StateCode::from_words(writer.finish())
    }

    /// Asserts that `perm` maps every register onto one with the same lane
    /// width and the same encoding maximum, so permuted encodings never
    /// re-interpret a value in a narrower or wider lane.
    ///
    /// # Panics
    /// Panics when the permutation is incompatible with the lane layout.
    pub fn assert_permutation_compatible(&self, perm: &StatePermutation) {
        assert_eq!(perm.registers(), self.shared_bits.len(), "register count");
        assert_eq!(perm.processes(), self.procs, "process count");
        for old in 0..perm.registers() {
            let new = perm.map_register(old);
            assert_eq!(
                self.shared_maxes[old], self.shared_maxes[new],
                "permutation maps register {old} onto {new}, which has a different bound"
            );
            if self.weak {
                // The owned-register encoding stores only an active bit, so
                // a permutation must map owners consistently with the
                // process relabelling (and never mix owned with multi-writer
                // cells) for permuted codes to stay exact.
                let mapped_owner = self.owners[old].map(|o| perm.map_process(o));
                assert_eq!(
                    mapped_owner, self.owners[new],
                    "permutation maps register {old} onto {new} with inconsistent ownership"
                );
            }
        }
    }

    /// Decodes a code produced by [`StateCodec::encode`] back into the exact
    /// original state.
    #[must_use]
    pub fn decode(&self, code: &StateCode) -> ProgState {
        self.decode_words(code.as_slice())
    }

    /// Decodes from raw packed words (the arena stores codes as bare words).
    #[must_use]
    pub fn decode_words(&self, words: &[u64]) -> ProgState {
        let mut reader = BitReader::new(words);
        let shared: Vec<u64> = self
            .shared_bits
            .iter()
            .map(|&bits| reader.pull(bits))
            .collect();
        let procs: Vec<ProcState> = (0..self.procs)
            .map(|_| {
                let pc = reader.pull(self.pc_bits) as u32;
                let crashed = reader.pull(1) != 0;
                let locals: Vec<u64> =
                    self.local_bits.iter().map(|&bits| reader.pull(bits)).collect();
                let mut proc_state = ProcState::new(pc, locals);
                proc_state.crashed = crashed;
                proc_state
            })
            .collect();
        let writes: Vec<PendingWrite> = if self.weak {
            (0..self.shared_bits.len())
                .map(|idx| match self.owners[idx] {
                    Some(owner) => {
                        let active = reader.pull(1) != 0;
                        let value = reader.pull(self.shared_bits[idx]);
                        PendingWrite {
                            writers: if active { 1 << owner } else { 0 },
                            value,
                            clash: false,
                        }
                    }
                    None => {
                        let writers = reader.pull(self.procs as u32);
                        let clash = reader.pull(1) != 0;
                        let value = reader.pull(self.shared_bits[idx]);
                        PendingWrite {
                            writers,
                            value,
                            clash,
                        }
                    }
                })
                .collect()
        } else {
            Vec::new()
        };
        ProgState {
            shared,
            procs,
            writes,
        }
    }
}

/// Words a [`BitWriter`] can hold without allocating — the encoder runs once
/// per group element per successor, so the common path must be alloc-free.
const WRITER_INLINE: usize = 8;

/// LSB-first bit packer over a fixed number of words.
struct BitWriter {
    inline: [u64; WRITER_INLINE],
    heap: Vec<u64>,
    words: usize,
    bit: usize,
}

impl BitWriter {
    fn new(words: usize) -> Self {
        Self {
            inline: [0; WRITER_INLINE],
            heap: if words > WRITER_INLINE {
                vec![0; words]
            } else {
                Vec::new()
            },
            words,
            bit: 0,
        }
    }

    fn slot(&mut self, word: usize) -> &mut u64 {
        if self.words > WRITER_INLINE {
            &mut self.heap[word]
        } else {
            &mut self.inline[word]
        }
    }

    fn push(&mut self, value: u64, bits: u32) {
        debug_assert!(bits == 64 || value < (1u64 << bits));
        let word = self.bit / 64;
        let offset = (self.bit % 64) as u32;
        *self.slot(word) |= value << offset;
        if offset + bits > 64 {
            *self.slot(word + 1) |= value >> (64 - offset);
        }
        self.bit += bits as usize;
    }

    fn finish(&self) -> &[u64] {
        debug_assert!(self.bit <= self.words * 64);
        if self.words > WRITER_INLINE {
            &self.heap
        } else {
            &self.inline[..self.words]
        }
    }
}

/// LSB-first bit reader, the inverse of [`BitWriter`].
struct BitReader<'a> {
    words: &'a [u64],
    bit: usize,
}

impl<'a> BitReader<'a> {
    fn new(words: &'a [u64]) -> Self {
        Self { words, bit: 0 }
    }

    fn pull(&mut self, bits: u32) -> u64 {
        let word = self.bit / 64;
        let offset = (self.bit % 64) as u32;
        let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
        let mut value = (self.words[word] >> offset) & mask;
        if offset + bits > 64 {
            value |= (self.words[word + 1] << (64 - offset)) & mask;
        }
        self.bit += bits as usize;
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bakery_spec::{BakeryPlusPlusSpec, BakerySpec, PetersonSpec, TreeBakerySpec};

    fn round_trips<A: Algorithm>(alg: &A, steps: usize) {
        let codec = StateCodec::new(alg);
        let mut frontier = vec![alg.initial_state()];
        let mut seen = 0usize;
        while let Some(state) = frontier.pop() {
            let code = codec.encode(&state);
            assert_eq!(codec.decode(&code), state, "{}", alg.name());
            seen += 1;
            if seen >= steps {
                break;
            }
            for pid in 0..alg.processes() {
                frontier.extend(alg.successors_vec(&state, pid));
            }
        }
        assert!(seen >= steps.min(1));
    }

    #[test]
    fn tree_states_pack_into_two_words() {
        let spec = TreeBakerySpec::new(2, 2);
        let codec = StateCodec::new(&spec);
        assert_eq!(codec.words_per_state(), 2, "the close-out memory math");
        assert_eq!(codec.bytes_per_state(), 16);
        round_trips(&spec, 500);
    }

    #[test]
    fn flat_specs_round_trip() {
        round_trips(&BakeryPlusPlusSpec::new(3, 3), 500);
        round_trips(&BakerySpec::new(2, 5), 500);
    }

    #[test]
    fn conservative_bounds_still_round_trip() {
        // Peterson has no state_bounds override: wide lanes, same exactness.
        let spec = PetersonSpec::new();
        let codec = StateCodec::new(&spec);
        assert!(codec.words_per_state() >= 2);
        round_trips(&spec, 200);
    }

    #[test]
    fn crash_flag_is_preserved() {
        let spec = BakeryPlusPlusSpec::new(2, 2);
        let codec = StateCodec::new(&spec);
        let mut state = spec.initial_state();
        state.procs[1].crashed = true;
        state.procs[1].pc = 5;
        let decoded = codec.decode(&codec.encode(&state));
        assert!(decoded.is_crashed(1));
        assert!(!decoded.is_crashed(0));
        assert_eq!(decoded.pc(1), 5);
    }

    #[test]
    fn permuted_encoding_matches_apply_then_encode() {
        let spec = TreeBakerySpec::new(2, 2);
        let codec = StateCodec::new(&spec);
        let group = spec.symmetry().expect("tree symmetry");
        assert_eq!(group.order(), 8, "wreath product S2 wr S2");
        // Walk a few states deep so registers and locals are populated.
        let mut state = spec.initial_state();
        for step in 0..40 {
            let succs = spec.successors_vec(&state, step % 4);
            if let Some(next) = succs.first() {
                state = next.clone();
            }
        }
        for perm in group.elements() {
            let via_apply = codec.encode(&perm.apply(&state));
            let direct = codec.encode_permuted(&state, Some(&perm.inverse()));
            assert_eq!(via_apply, direct);
        }
    }

    #[test]
    fn codes_compare_and_hash_by_content() {
        use std::collections::HashSet;
        let a = StateCode::from_words(&[1, 2]);
        let b = StateCode::from_words(&[1, 2]);
        let c = StateCode::from_words(&[1, 3]);
        let heap = StateCode::from_words(&[1, 2, 3, 4]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(matches!(heap, StateCode::Heap(_)));
        assert!(matches!(a, StateCode::Inline { .. }));
        let set: HashSet<StateCode> = [a, b, c, heap].into_iter().collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn fingerprint_is_deterministic_and_content_sensitive() {
        let a = StateCode::from_words(&[7, 8]);
        assert_eq!(a.fingerprint(), StateCode::from_words(&[7, 8]).fingerprint());
        assert_ne!(a.fingerprint(), StateCode::from_words(&[8, 7]).fingerprint());
    }

    #[test]
    #[should_panic(expected = "above its encoding bound")]
    fn out_of_bound_register_is_rejected() {
        let spec = BakeryPlusPlusSpec::new(2, 2);
        let codec = StateCodec::new(&spec);
        let mut state = spec.initial_state();
        state.set_shared(2, 9); // number[0] lane bound is M + 1 = 3
        let _ = codec.encode(&state);
    }

    #[test]
    fn display_renders_hex() {
        let code = StateCode::from_words(&[0xAB]);
        assert_eq!(code.to_string(), "0x00000000000000ab");
    }
}
