//! Symmetry canonicalization: factor each state into an orbit
//! representative plus a variant id.
//!
//! A [`Canonicalizer`] combines a specification's [`SymmetryGroup`] (e.g. the
//! leaf-placement group of `TreeBakerySpec`: sibling-leaf swaps and
//! same-level subtree permutations) with the [`StateCodec`]: the **canonical
//! representative** of a state is the orbit member with the lexicographically
//! smallest packed code, and the **variant** is the group element that maps
//! the representative back to the state.  `(canonical code, variant)` is a
//! bijective re-coordinatisation of the state — nothing is approximated.
//!
//! ## Why compression, not quotienting
//!
//! The Bakery-family scan loops and `(number, pid)` tie-breaks make process
//! permutations *not* automorphisms of the transition graph: a permuted
//! mid-scan state has loop cursors pointing at the wrong slots, and its
//! behaviour genuinely differs (the classic symmetry quotient would both
//! miss reachable states and report spurious violations — the latter was
//! observed when a quotient prototype of this module was model-checked
//! against the flat Bakery++ spec).  The explorer therefore never merges
//! orbit members: it runs the exact concrete BFS, and uses the
//! canonicalization only to **store** the visited set orbit-wise — one
//! packed representative per orbit plus a ≤64-bit bitmap of visited
//! variants.  Memory shrinks by up to the group order while every verdict,
//! state count and trace stays bit-identical to the unreduced search; the
//! orbit count is reported as the *canonical state count*.

use bakery_sim::{ProgState, StatePermutation, SymmetryGroup};

use crate::code::{StateCode, StateCodec};

/// Largest group order the variant bitmap supports.
pub const MAX_GROUP_ORDER: usize = 64;

/// Canonical-representative computation for one algorithm's states.
#[derive(Debug)]
pub struct Canonicalizer {
    group: SymmetryGroup,
    /// Inverse of each group element, precomputed because
    /// [`StateCodec::encode_permuted`] consumes the new-index → old-index
    /// direction on the hot path (once per group element per successor).
    preimages: Vec<StatePermutation>,
    /// `inverse_index[i]` is the position of `elements[i]`'s inverse.
    inverse_index: Vec<u8>,
}

impl Canonicalizer {
    /// Builds a canonicalizer for `group` against `codec`'s lane layout.
    ///
    /// # Panics
    /// Panics if the group order exceeds [`MAX_GROUP_ORDER`], or if some
    /// group element maps a register onto one with a different lane width —
    /// such a "symmetry" would re-interpret values and silently corrupt
    /// codes, so it is rejected loudly.
    #[must_use]
    pub fn new(codec: &StateCodec, group: SymmetryGroup) -> Self {
        assert!(
            group.order() <= MAX_GROUP_ORDER,
            "variant bitmaps hold at most {MAX_GROUP_ORDER} group elements"
        );
        for perm in group.elements() {
            codec.assert_permutation_compatible(perm);
        }
        let preimages: Vec<StatePermutation> =
            group.elements().iter().map(StatePermutation::inverse).collect();
        let inverse_index: Vec<u8> = group
            .elements()
            .iter()
            .map(|perm| {
                let inverse = perm.inverse();
                group
                    .elements()
                    .iter()
                    .position(|candidate| *candidate == inverse)
                    .expect("a closed group contains every inverse") as u8
            })
            .collect();
        Self {
            group,
            preimages,
            inverse_index,
        }
    }

    /// Number of group elements (1 = no reduction).
    #[must_use]
    pub fn order(&self) -> usize {
        self.group.order()
    }

    /// Factors `state` into `(canonical code, variant)`: the smallest packed
    /// code in its orbit, and the index of the group element that maps the
    /// representative back onto `state` (see [`Canonicalizer::realize`]).
    /// The factorisation is deterministic and injective, which is what makes
    /// the orbit-wise visited set an exact record of the concrete states.
    #[must_use]
    pub fn factor(&self, codec: &StateCodec, state: &ProgState) -> (StateCode, u8) {
        let mut best: Option<(StateCode, usize)> = None;
        for (index, preimage) in self.preimages.iter().enumerate() {
            // `encode_permuted(state, elements[i].inverse())` encodes the
            // image `elements[i](state)`.
            let candidate = if preimage.is_identity() {
                codec.encode(state)
            } else {
                codec.encode_permuted(state, Some(preimage))
            };
            let replace = best
                .as_ref()
                .is_none_or(|(current, _)| candidate.as_slice() < current.as_slice());
            if replace {
                best = Some((candidate, index));
            }
        }
        let (code, minimizer) = best.expect("a group always contains the identity");
        // rep = elements[minimizer](state)  ⇒  state = elements[minimizer]⁻¹(rep).
        (code, self.inverse_index[minimizer])
    }

    /// Reconstructs the concrete state `(rep, variant)` denotes: applies
    /// group element `variant` to the decoded representative.
    #[must_use]
    pub fn realize(&self, representative: &ProgState, variant: u8) -> ProgState {
        let perm = &self.group.elements()[variant as usize];
        if perm.is_identity() {
            representative.clone()
        } else {
            perm.apply(representative)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bakery_sim::Algorithm;
    use bakery_spec::{BakeryPlusPlusSpec, TreeBakerySpec};

    #[test]
    fn factor_realize_round_trips_every_orbit_member() {
        let spec = TreeBakerySpec::new(2, 2);
        let codec = StateCodec::new(&spec);
        let canon = Canonicalizer::new(&codec, spec.symmetry().unwrap());
        assert_eq!(canon.order(), 8);
        // Drive an asymmetric state, then factor every orbit member.
        let mut state = spec.initial_state();
        for _ in 0..25 {
            if let Some(next) = spec.successors_vec(&state, 0).first() {
                state = next.clone();
            }
        }
        let group = spec.symmetry().unwrap();
        let mut seen_variants = std::collections::HashSet::new();
        for member in group.orbit(&state) {
            let (code, variant) = canon.factor(&codec, &member);
            // Same orbit ⇒ same canonical code.
            assert_eq!(code, canon.factor(&codec, &state).0);
            // factor/realize is a bijection: realizing gives the member back.
            let rep = codec.decode(&code);
            assert_eq!(canon.realize(&rep, variant), member);
            seen_variants.insert(variant);
        }
        assert!(
            seen_variants.len() > 1,
            "a driven state should be asymmetric"
        );
    }

    #[test]
    fn initial_state_is_its_own_representative() {
        let spec = BakeryPlusPlusSpec::new(3, 2);
        let codec = StateCodec::new(&spec);
        let canon = Canonicalizer::new(&codec, spec.symmetry().unwrap());
        assert_eq!(canon.order(), 6, "S3");
        let initial = spec.initial_state();
        let (code, variant) = canon.factor(&codec, &initial);
        assert_eq!(code, codec.encode(&initial));
        assert_eq!(canon.realize(&codec.decode(&code), variant), initial);
    }

    #[test]
    fn distinct_states_factor_to_distinct_pairs() {
        let spec = BakeryPlusPlusSpec::new(2, 3);
        let codec = StateCodec::new(&spec);
        let canon = Canonicalizer::new(&codec, spec.symmetry().unwrap());
        // Walk a few hundred distinct states and check the factorisation is
        // injective — the soundness core of the orbit-wise visited set.
        let mut frontier = vec![spec.initial_state()];
        let mut seen_states = std::collections::HashSet::new();
        let mut seen_pairs = std::collections::HashSet::new();
        while let Some(state) = frontier.pop() {
            if seen_states.len() > 400 || !seen_states.insert(codec.encode(&state)) {
                continue;
            }
            let (code, variant) = canon.factor(&codec, &state);
            assert!(
                seen_pairs.insert((code, variant)),
                "two distinct states factored identically"
            );
            for pid in 0..spec.processes() {
                frontier.extend(spec.successors_vec(&state, pid));
            }
        }
        assert!(seen_states.len() > 400);
    }

    #[test]
    fn active_mask_shrinks_the_tree_group() {
        let spec = TreeBakerySpec::new(2, 2).with_active_processes(&[0, 1]);
        let group = spec.symmetry().unwrap();
        // Stabilizer of {0,1}: swap leaves 0/1, swap (inactive) leaves 2/3.
        assert_eq!(group.order(), 4);
    }
}
