//! # bakery-mc
//!
//! An explicit-state model checker for [`bakery_sim::Algorithm`]
//! specifications — the stand-in for the TLC runs the paper reports.
//!
//! The checker performs breadth-first exploration of every interleaving of the
//! specification's atomic steps (optionally including crash/restart faults),
//! evaluating invariants on every reachable state.  Because the search is
//! breadth-first, the counterexample attached to a violation is a *shortest*
//! trace from the initial state.
//!
//! ```
//! use bakery_mc::ModelChecker;
//! use bakery_sim::Invariant;
//! use bakery_spec::BakeryPlusPlusSpec;
//!
//! let spec = BakeryPlusPlusSpec::new(2, 3);
//! let report = ModelChecker::new(&spec)
//!     .with_invariant(Invariant::mutual_exclusion())
//!     .with_invariant(Invariant::register_bounds())
//!     .run();
//! assert!(report.holds(), "{report}");
//! ```
//!
//! The liveness side of the paper's Section 6.3 discussion (a slow process can
//! in principle be parked forever at `L1` by two fast processes) is covered by
//! [`liveness::find_starvation_cycle`], which searches the reachable state
//! graph for a cycle in which a chosen victim stays in its trying region while
//! only the other processes move.  [`liveness::starvation_report`] returns the
//! same search with an explicit `truncated` flag, so a "no cycle" answer from
//! a budget-bounded graph is never mistaken for a proof.
//!
//! ## The compact-state / symmetry plane
//!
//! Three modules turn the explorer from a "hash the structs" checker into one
//! that closes out the 4-process tree composition (~40 M concrete states):
//!
//! * [`code`] — packed, invertible [`code::StateCode`] encodings (16 bytes
//!   per tree state) replacing stored `ProgState`s;
//! * [`canon`] — lossless orbit-wise compression of the visited set under a
//!   specification-declared symmetry group (one canonical representative
//!   per orbit + a visited-variant bitmap), enabled with
//!   [`ModelChecker::with_symmetry_reduction`];
//! * [`store`] — the flat code arena + exact fingerprint index, with an
//!   optional spill-to-disk tier behind the `spill` cargo feature.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod canon;
pub mod code;
pub mod explore;
pub mod liveness;
pub mod store;

pub use canon::Canonicalizer;
pub use code::{StateCode, StateCodec};
pub use explore::{ExplorationReport, ModelChecker, TraceStep, Violation};
pub use liveness::{
    find_starvation_cycle, find_starvation_cycle_where, starvation_report,
    starvation_report_where, starvation_report_where_with_threads,
    starvation_report_with_threads, LivenessReport, StarvationWitness,
};
