//! Visited-set storage for the explorer: a flat code arena plus a
//! fingerprint index, stripeable for parallel insertion, with an optional
//! spill-to-disk tier.
//!
//! * [`CodeArena`] stores every discovered state's packed words
//!   contiguously, `stride` words per state — 16 bytes per state for the
//!   2-level tree specification instead of a heap-allocated `ProgState` per
//!   state.  With the `spill` cargo feature enabled and a spill directory
//!   configured, sealed chunks of the arena move to a temporary file and are
//!   paged back through a tiny LRU cache; BFS reads the arena almost
//!   sequentially, so the cache hit rate is high and resident memory drops to
//!   the index plus a few chunks.  The tier exists for the padded-mode
//!   sweeps, whose state spaces exceed what the default CI runners hold.
//! * [`CodeIndex`] deduplicates by 64-bit FNV fingerprint with the arena as
//!   the source of truth: a fingerprint hit is confirmed against the stored
//!   words, and genuine 64-bit collisions (different codes, same
//!   fingerprint) fall back to an exact side map, so deduplication is always
//!   exact — a collision can never silently merge two distinct states, which
//!   would be unsound for an exhaustiveness claim.
//! * [`Stripe`] bundles one arena + one index into the unit of sharding the
//!   parallel explorer locks independently: the visited set is split into
//!   [`STRIPE_COUNT`] stripes keyed by fingerprint bits ([`stripe_of`]), so
//!   insertions from different worker threads almost never contend.  The
//!   stripe count is a fixed power of two, deliberately independent of the
//!   thread count — the stripe a code lands in (and hence every per-stripe
//!   slot number) is a pure function of the code itself, never of the
//!   schedule.

use std::collections::HashMap;
#[cfg(feature = "spill")]
use std::sync::Mutex;

use crate::code::StateCode;

/// Codes per sealed spill chunk (stride words each).  Small enough that the
/// page cache churn on random probes stays cheap, large enough that
/// sequential BFS reads amortise the I/O.
#[cfg(feature = "spill")]
const SPILL_CHUNK_CODES: usize = 1 << 16;

/// Number of sealed chunks the spill tier keeps resident.
#[cfg(feature = "spill")]
const SPILL_CACHE_CHUNKS: usize = 4;

/// Append-only store of fixed-stride packed states.
#[derive(Debug)]
pub struct CodeArena {
    stride: usize,
    len: usize,
    /// All codes (memory mode) or the unsealed tail (spill mode).
    tail: Vec<u64>,
    #[cfg(feature = "spill")]
    spill: Option<SpillTier>,
}

impl CodeArena {
    /// Creates an in-memory arena for codes of `stride` words.
    #[must_use]
    pub fn new(stride: usize) -> Self {
        Self {
            stride,
            len: 0,
            tail: Vec::new(),
            #[cfg(feature = "spill")]
            spill: None,
        }
    }

    /// Creates an arena that seals full chunks to a temporary file under
    /// `dir` (which must exist and be writable).
    ///
    /// # Errors
    /// Returns the I/O error if the spill file cannot be created.
    #[cfg(feature = "spill")]
    pub fn with_spill_dir(stride: usize, dir: &std::path::Path) -> std::io::Result<Self> {
        Ok(Self {
            stride,
            len: 0,
            tail: Vec::new(),
            spill: Some(SpillTier::create(stride, dir)?),
        })
    }

    /// Number of stored codes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no code has been stored yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Words per code.
    #[must_use]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Appends a code; its index is the previous [`CodeArena::len`].
    ///
    /// # Panics
    /// Panics if the code's width differs from the arena stride.
    pub fn push(&mut self, code: &StateCode) {
        let words = code.as_slice();
        assert_eq!(words.len(), self.stride, "code width must match the arena");
        self.tail.extend_from_slice(words);
        self.len += 1;
        #[cfg(feature = "spill")]
        if let Some(spill) = &mut self.spill {
            spill.maybe_seal(&mut self.tail);
        }
    }

    /// Copies the words of code `index` into `out`.
    pub fn load(&self, index: usize, out: &mut Vec<u64>) {
        out.clear();
        self.with_words(index, |words| out.extend_from_slice(words));
    }

    /// True when code `index` stores exactly `words`.
    #[must_use]
    pub fn matches(&self, index: usize, words: &[u64]) -> bool {
        let mut result = false;
        self.with_words(index, |stored| result = stored == words);
        result
    }

    /// Runs `f` on the words of code `index` (memory slice or paged chunk).
    fn with_words(&self, index: usize, f: impl FnOnce(&[u64])) {
        assert!(index < self.len, "index {index} out of range");
        #[cfg(feature = "spill")]
        if let Some(spill) = &self.spill {
            if index < spill.sealed_codes {
                spill.with_sealed(index, f);
                return;
            }
            let offset = (index - spill.sealed_codes) * self.stride;
            f(&self.tail[offset..offset + self.stride]);
            return;
        }
        let offset = index * self.stride;
        f(&self.tail[offset..offset + self.stride]);
    }
}

/// The sealed-chunk file tier of a [`CodeArena`].
#[cfg(feature = "spill")]
#[derive(Debug)]
struct SpillTier {
    stride: usize,
    /// Codes already written to the file.
    sealed_codes: usize,
    file: std::fs::File,
    /// Tiny LRU of resident sealed chunks: front = most recent.  A `Mutex`
    /// (not a `RefCell`) so a spill-backed arena stays `Sync`: the parallel
    /// explorer shares `&CodeArena` across worker threads for reads, and in
    /// the sharded store every *write* already happens under the stripe
    /// lock, so this inner lock is uncontended in practice.
    cache: Mutex<Vec<(usize, Vec<u64>)>>,
    /// The backing file's path, removed on drop.
    path: std::path::PathBuf,
}

#[cfg(feature = "spill")]
impl SpillTier {
    fn create(stride: usize, dir: &std::path::Path) -> std::io::Result<Self> {
        // Process id alone is not unique: two same-stride arenas in one
        // process (parallel tests, the sharded store's per-stripe spill
        // files) would open the same file and corrupt each other's sealed
        // chunks.
        static ARENA_SEQ: bakery_core::sync::AtomicU64 = bakery_core::sync::AtomicU64::new(0);
        let seq = ARENA_SEQ.fetch_add(1, bakery_core::sync::Ordering::Relaxed); // mem: id-alloc
        let path = dir.join(format!(
            "bakery-mc-arena-{}-{seq}-{stride}w.spill",
            std::process::id()
        ));
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        Ok(Self {
            stride,
            sealed_codes: 0,
            file,
            cache: Mutex::new(Vec::new()),
            path,
        })
    }

    fn chunk_words(&self) -> usize {
        SPILL_CHUNK_CODES * self.stride
    }

    /// Seals full chunks off the front of `tail` into the file.
    fn maybe_seal(&mut self, tail: &mut Vec<u64>) {
        use std::os::unix::fs::FileExt;
        let chunk_words = self.chunk_words();
        while tail.len() >= chunk_words {
            let chunk: Vec<u64> = tail.drain(..chunk_words).collect();
            let bytes: Vec<u8> = chunk.iter().flat_map(|w| w.to_le_bytes()).collect();
            let offset = (self.sealed_codes * self.stride * 8) as u64;
            self.file
                .write_all_at(&bytes, offset)
                .expect("spill write failed");
            self.sealed_codes += SPILL_CHUNK_CODES;
        }
    }

    /// Runs `f` on a sealed code's words, paging its chunk in if needed.
    fn with_sealed(&self, index: usize, f: impl FnOnce(&[u64])) {
        use std::os::unix::fs::FileExt;
        let chunk_index = index / SPILL_CHUNK_CODES;
        let within = (index % SPILL_CHUNK_CODES) * self.stride;
        let mut cache = self.cache.lock().expect("spill cache poisoned");
        if let Some(pos) = cache.iter().position(|(c, _)| *c == chunk_index) {
            let entry = cache.remove(pos);
            cache.insert(0, entry);
        } else {
            let mut bytes = vec![0u8; self.chunk_words() * 8];
            let offset = (chunk_index * self.chunk_words() * 8) as u64;
            self.file
                .read_exact_at(&mut bytes, offset)
                .expect("spill read failed");
            let words: Vec<u64> = bytes
                .chunks_exact(8)
                .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
                .collect();
            cache.insert(0, (chunk_index, words));
            cache.truncate(SPILL_CACHE_CHUNKS);
        }
        f(&cache[0].1[within..within + self.stride]);
    }
}

#[cfg(feature = "spill")]
impl Drop for SpillTier {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Exact deduplication index over a [`CodeArena`].
#[derive(Debug, Default)]
pub struct CodeIndex {
    /// fingerprint → index of the first code with that fingerprint.
    primary: HashMap<u64, u32>,
    /// Exact overflow map for genuine fingerprint collisions (rare).
    collisions: HashMap<StateCode, u32>,
}

impl CodeIndex {
    /// Creates an empty index.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks `code` up; when absent, records it as `next_index` (the caller
    /// then pushes it onto the arena).  Returns `(index, inserted)`.
    pub fn get_or_insert(
        &mut self,
        code: &StateCode,
        next_index: u32,
        arena: &CodeArena,
    ) -> (u32, bool) {
        match self.primary.entry(code.fingerprint()) {
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(next_index);
                (next_index, true)
            }
            std::collections::hash_map::Entry::Occupied(slot) => {
                let candidate = *slot.get();
                if arena.matches(candidate as usize, code.as_slice()) {
                    return (candidate, false);
                }
                // Genuine 64-bit fingerprint collision: exact fallback.
                match self.collisions.entry(code.clone()) {
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        slot.insert(next_index);
                        (next_index, true)
                    }
                    std::collections::hash_map::Entry::Occupied(slot) => (*slot.get(), false),
                }
            }
        }
    }

    /// Number of fingerprint collisions that fell back to the exact map.
    #[must_use]
    pub fn collision_count(&self) -> usize {
        self.collisions.len()
    }
}

/// Number of visited-set stripes the parallel explorer shards over.
///
/// A fixed power of two, independent of the worker thread count: which
/// stripe a code belongs to is a pure function of its fingerprint
/// ([`stripe_of`]), so per-stripe slot numbers — and everything derived from
/// them — cannot depend on the schedule.  64 stripes keep the probability of
/// two of a handful of workers colliding on one stripe lock low while the
/// per-stripe constant overhead stays negligible.
pub const STRIPE_COUNT: usize = 64;

/// Bits of the fingerprint consumed by [`stripe_of`].
pub const STRIPE_BITS: u32 = STRIPE_COUNT.trailing_zeros();

/// Maps a code fingerprint to its stripe.
///
/// FNV-1a's low-order bits are its worst-dispersed, so the fingerprint is
/// first finalized with a Fibonacci multiply and the stripe read from the
/// *high* bits; [`CodeIndex`]'s internal hash map rehashes the full
/// fingerprint independently, so striping steals no index entropy.
#[must_use]
pub fn stripe_of(fingerprint: u64) -> usize {
    let mixed = (fingerprint ^ (fingerprint >> 32)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (mixed >> (64 - STRIPE_BITS)) as usize
}

/// One independently lockable stripe of the sharded visited set: an
/// append-only [`CodeArena`] plus its exact [`CodeIndex`].
///
/// The stripe itself carries no lock — the explorer wraps each stripe (plus
/// its per-state metadata) in one `Mutex`, so an insertion's dedup check,
/// arena append and metadata update are a single atomic step.
#[derive(Debug)]
pub struct Stripe {
    arena: CodeArena,
    index: CodeIndex,
}

impl Stripe {
    /// Creates an in-memory stripe for codes of `stride` words.
    #[must_use]
    pub fn new(stride: usize) -> Self {
        Self {
            arena: CodeArena::new(stride),
            index: CodeIndex::new(),
        }
    }

    /// Creates a stripe whose arena seals full chunks to a file under `dir`
    /// (each stripe gets its own uniquely named spill file).
    ///
    /// # Errors
    /// Returns the I/O error if the spill file cannot be created.
    #[cfg(feature = "spill")]
    pub fn with_spill_dir(stride: usize, dir: &std::path::Path) -> std::io::Result<Self> {
        Ok(Self {
            arena: CodeArena::with_spill_dir(stride, dir)?,
            index: CodeIndex::new(),
        })
    }

    /// Number of distinct codes stored in this stripe.
    #[must_use]
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// True when the stripe holds no codes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }

    /// The stripe's arena (for reads: decode, trace reconstruction).
    #[must_use]
    pub fn arena(&self) -> &CodeArena {
        &self.arena
    }

    /// Interns `code`: returns its stripe-local slot and whether it was
    /// freshly inserted.  Exact — fingerprint collisions fall back to
    /// [`CodeIndex`]'s side map.
    pub fn intern(&mut self, code: &StateCode) -> (u32, bool) {
        let next = self.arena.len() as u32;
        let (slot, inserted) = self.index.get_or_insert(code, next, &self.arena);
        if inserted {
            self.arena.push(code);
        }
        (slot, inserted)
    }

    /// Number of fingerprint collisions this stripe resolved exactly.
    #[must_use]
    pub fn collision_count(&self) -> usize {
        self.index.collision_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code(words: &[u64]) -> StateCode {
        StateCode::from_words(words)
    }

    #[test]
    fn arena_round_trips_codes() {
        let mut arena = CodeArena::new(2);
        assert!(arena.is_empty());
        for i in 0..100u64 {
            arena.push(&code(&[i, i * 3]));
        }
        assert_eq!(arena.len(), 100);
        assert_eq!(arena.stride(), 2);
        let mut out = Vec::new();
        arena.load(42, &mut out);
        assert_eq!(out, vec![42, 126]);
        assert!(arena.matches(7, &[7, 21]));
        assert!(!arena.matches(7, &[7, 22]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn arena_rejects_out_of_range_reads() {
        let arena = CodeArena::new(1);
        let mut out = Vec::new();
        arena.load(0, &mut out);
    }

    #[test]
    fn index_deduplicates_exactly() {
        let mut arena = CodeArena::new(2);
        let mut index = CodeIndex::new();
        let a = code(&[1, 2]);
        let (idx_a, inserted) = index.get_or_insert(&a, 0, &arena);
        assert!(inserted);
        assert_eq!(idx_a, 0);
        arena.push(&a);
        // Same code again: found, not inserted.
        let (again, inserted) = index.get_or_insert(&a, 1, &arena);
        assert!(!inserted);
        assert_eq!(again, 0);
        // A different code inserts fresh.
        let b = code(&[3, 4]);
        let (idx_b, inserted) = index.get_or_insert(&b, 1, &arena);
        assert!(inserted);
        assert_eq!(idx_b, 1);
        arena.push(&b);
        assert_eq!(index.collision_count(), 0);
    }

    #[test]
    fn stripe_interns_exactly_like_arena_plus_index() {
        let mut stripe = Stripe::new(2);
        assert!(stripe.is_empty());
        let a = code(&[1, 2]);
        let b = code(&[3, 4]);
        assert_eq!(stripe.intern(&a), (0, true));
        assert_eq!(stripe.intern(&b), (1, true));
        assert_eq!(stripe.intern(&a), (0, false));
        assert_eq!(stripe.len(), 2);
        assert!(stripe.arena().matches(1, &[3, 4]));
        assert_eq!(stripe.collision_count(), 0);
    }

    #[test]
    fn stripe_of_partitions_the_fingerprint_space() {
        assert!(STRIPE_COUNT.is_power_of_two());
        assert_eq!(1usize << STRIPE_BITS, STRIPE_COUNT);
        // Every fingerprint lands in exactly one valid stripe, and a spread
        // of fingerprints actually uses many stripes (the sharding would be
        // pointless if everything hashed to one lock).
        let mut seen = std::collections::HashSet::new();
        for i in 0..4096u64 {
            let s = stripe_of(code(&[i, i * 7 + 1]).fingerprint());
            assert!(s < STRIPE_COUNT);
            seen.insert(s);
        }
        assert_eq!(seen.len(), STRIPE_COUNT, "fingerprints must spread");
    }

    #[cfg(feature = "spill")]
    #[test]
    fn spilled_stripe_seals_and_rereads_across_a_chunk_boundary() {
        // The sharded store's disk tier: push one chunk plus a tail through a
        // Stripe, forcing a seal, then re-intern codes on both sides of the
        // chunk boundary — each must dedup against the sealed file, not
        // insert a duplicate.
        let dir = std::env::temp_dir();
        let mut stripe = Stripe::with_spill_dir(2, &dir).expect("spill stripe");
        let total = SPILL_CHUNK_CODES + 17;
        for i in 0..total as u64 {
            let (slot, inserted) = stripe.intern(&code(&[i, i ^ 0xABCD]));
            assert!(inserted);
            assert_eq!(slot as usize, i as usize);
        }
        // Rereads straddling the seal boundary (sealed side + tail side).
        for i in [
            0usize,
            SPILL_CHUNK_CODES - 1,
            SPILL_CHUNK_CODES,
            total - 1,
        ] {
            let w = [i as u64, (i as u64) ^ 0xABCD];
            assert!(stripe.arena().matches(i, &w), "code {i}");
            let (slot, inserted) = stripe.intern(&code(&w));
            assert!(!inserted, "code {i} must dedup against the sealed chunk");
            assert_eq!(slot as usize, i);
        }
        assert_eq!(stripe.len(), total);
    }

    #[cfg(feature = "spill")]
    #[test]
    fn spilled_arena_round_trips_across_chunks() {
        let dir = std::env::temp_dir();
        let mut arena = CodeArena::with_spill_dir(2, &dir).expect("spill file");
        // Three chunks plus a partial tail.
        let total = SPILL_CHUNK_CODES * 3 + 1234;
        for i in 0..total as u64 {
            arena.push(&code(&[i, !i]));
        }
        assert_eq!(arena.len(), total);
        let mut out = Vec::new();
        // Sequential reads (the BFS pattern).
        for i in (0..total).step_by(7919) {
            arena.load(i, &mut out);
            assert_eq!(out, vec![i as u64, !(i as u64)], "code {i}");
            assert!(arena.matches(i, &out));
        }
        // Random-ish revisits across sealed chunks.
        for i in [0usize, total - 1, SPILL_CHUNK_CODES, SPILL_CHUNK_CODES * 2 + 5] {
            arena.load(i, &mut out);
            assert_eq!(out, vec![i as u64, !(i as u64)], "code {i}");
        }
    }
}
