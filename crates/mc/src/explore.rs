//! Breadth-first explicit-state exploration with invariant checking.
//!
//! The explorer stores every visited state as a packed [`crate::code::StateCode`]
//! in a flat arena (16 bytes per state for the tree specification) instead of
//! a hash-of-struct map, and can optionally compress the visited set
//! orbit-wise under a specification-declared symmetry group
//! ([`ModelChecker::with_symmetry_reduction`]): one canonical representative
//! per orbit plus a bitmap of visited variants.  The search itself stays the
//! exact concrete BFS — same states, same transitions, same verdicts — only
//! the resident memory shrinks (up to the group order), and the orbit count
//! is reported as [`ExplorationReport::canonical_states`].  Together these
//! are what close out the full 4-process tree composition — ~40 M concrete
//! states — exhaustively in one in-memory run.

use std::fmt;

use bakery_sim::{Algorithm, Invariant, ProgState, RegisterSpec};

use crate::canon::Canonicalizer;
use crate::code::{fnv1a, StateCodec, FNV_OFFSET_BASIS};
use crate::store::{CodeArena, CodeIndex};

/// One step of a counterexample trace.
#[derive(Debug, Clone)]
pub struct TraceStep {
    /// The process that moved to reach this state (`None` for the initial
    /// state).
    pub pid: Option<usize>,
    /// `true` when the step was an injected crash rather than a program step.
    pub crash: bool,
    /// Program-counter label of the moving process after the step.
    pub label: String,
    /// Rendering of the state after the step.
    pub state: String,
}

/// An invariant violation together with its shortest counterexample.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Name of the violated invariant.
    pub invariant: String,
    /// Depth (number of steps from the initial state) of the violating state.
    pub depth: usize,
    /// Shortest trace from the initial state to the violation.
    pub trace: Vec<TraceStep>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "invariant {} violated at depth {}:",
            self.invariant, self.depth
        )?;
        for (i, step) in self.trace.iter().enumerate() {
            let actor = match (step.pid, step.crash) {
                (Some(pid), true) => format!("crash p{pid}"),
                (Some(pid), false) => format!("p{pid} -> {}", step.label),
                (None, _) => "initial".to_string(),
            };
            writeln!(f, "  {i:>3}: {actor:<28} {}", step.state)?;
        }
        Ok(())
    }
}

/// Statistics and findings of one exhaustive exploration.
#[derive(Debug, Clone)]
pub struct ExplorationReport {
    /// Name of the checked algorithm.
    pub algorithm: String,
    /// Number of distinct concrete states visited (identical with and
    /// without symmetry compression).
    pub states: usize,
    /// Number of distinct symmetry orbits the visited states fall into —
    /// the canonical state count.  Equal to `states` when no symmetry
    /// compression is active.
    pub canonical_states: usize,
    /// Number of transitions examined.
    pub transitions: usize,
    /// Depth of the deepest visited state (BFS level).
    pub max_depth: usize,
    /// True when exploration stopped early because `max_states` was reached.
    pub truncated: bool,
    /// Order of the symmetry group the visited set was compressed by
    /// (1 = none).
    pub symmetry_order: usize,
    /// Deterministic digest of the visited codes in discovery order; two
    /// runs of the same configuration must agree state-for-state.
    pub frontier_digest: u64,
    /// Renderings of reachable deadlock states (no process enabled).
    pub deadlocks: Vec<String>,
    /// Invariant violations with shortest counterexamples.
    pub violations: Vec<Violation>,
}

bakery_json::json_object!(TraceStep { pid, crash, label, state });
bakery_json::json_object!(Violation { invariant, depth, trace });
bakery_json::json_object!(ExplorationReport {
    algorithm,
    states,
    canonical_states,
    transitions,
    max_depth,
    truncated,
    symmetry_order,
    frontier_digest,
    deadlocks,
    violations,
});

impl ExplorationReport {
    /// True when no invariant violation and no deadlock was found.
    #[must_use]
    pub fn holds(&self) -> bool {
        self.violations.is_empty() && self.deadlocks.is_empty()
    }

    /// Names of the violated invariants (deduplicated, in discovery order).
    #[must_use]
    pub fn violated_invariants(&self) -> Vec<String> {
        let mut names = Vec::new();
        for v in &self.violations {
            if !names.contains(&v.invariant) {
                names.push(v.invariant.clone());
            }
        }
        names
    }
}

impl fmt::Display for ExplorationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} states, {} transitions, depth {}{}{}",
            self.algorithm,
            self.states,
            self.transitions,
            self.max_depth,
            if self.symmetry_order > 1 {
                format!(
                    " ({} canonical, symmetry /{})",
                    self.canonical_states, self.symmetry_order
                )
            } else {
                String::new()
            },
            if self.truncated { " (truncated)" } else { "" }
        )?;
        if self.deadlocks.is_empty() && self.violations.is_empty() {
            writeln!(f, "  all invariants hold; no deadlock")?;
        }
        for d in &self.deadlocks {
            writeln!(f, "  deadlock: {d}")?;
        }
        for v in &self.violations {
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

/// Breadth-first model checker over an [`Algorithm`] specification.
pub struct ModelChecker<'a, A: Algorithm + ?Sized> {
    algorithm: &'a A,
    invariants: Vec<Invariant<A>>,
    max_states: usize,
    enable_crashes: bool,
    stop_at_first_violation: bool,
    check_deadlock: bool,
    symmetry: bool,
    #[cfg(feature = "spill")]
    spill_dir: Option<std::path::PathBuf>,
}

/// The storage and bookkeeping of one exploration run.
///
/// Without symmetry compression the arena holds one packed code per concrete
/// state and state index == arena index.  With compression the arena holds
/// one **canonical** code per orbit, `masks[orbit]` records which variants
/// have been visited, and `log[state]` maps the concrete state index (BFS
/// discovery order) to its `(orbit, variant)` pair.  Either way the
/// structure records exactly the set of concrete states visited.
struct SearchState {
    codec: StateCodec,
    canon: Option<Canonicalizer>,
    arena: CodeArena,
    index: CodeIndex,
    /// Symmetry mode: visited-variant bitmap per orbit.
    masks: Vec<u64>,
    /// Symmetry mode: `orbit | variant << 32` per concrete state.
    log: Vec<u64>,
    /// Packed parent links: bits 0–31 parent state index, 32–47 moving pid,
    /// bit 48 crash, bit 49 "is the initial state".
    parent: Vec<u64>,
    depth: Vec<u32>,
    digest: u64,
}

impl SearchState {
    const ROOT: u64 = 1 << 49;

    fn pack_parent(parent: u32, pid: usize, crash: bool) -> u64 {
        u64::from(parent) | ((pid as u64) << 32) | (u64::from(crash) << 48)
    }

    /// Number of distinct concrete states recorded.
    fn state_count(&self) -> usize {
        match &self.canon {
            Some(_) => self.log.len(),
            None => self.arena.len(),
        }
    }

    /// Number of orbits (canonical states) recorded.
    fn canonical_count(&self) -> usize {
        self.arena.len()
    }

    /// Decodes concrete state `index` (BFS discovery order).
    fn decode(&self, index: usize) -> ProgState {
        let mut words = Vec::with_capacity(self.arena.stride());
        match &self.canon {
            Some(canon) => {
                let entry = self.log[index];
                let orbit = (entry & 0xFFFF_FFFF) as usize;
                let variant = (entry >> 32) as u8;
                self.arena.load(orbit, &mut words);
                canon.realize(&self.codec.decode_words(&words), variant)
            }
            None => {
                self.arena.load(index, &mut words);
                self.codec.decode_words(&words)
            }
        }
    }

    /// Records `state` if unseen; returns `(state index, inserted)`.
    fn insert(&mut self, state: &ProgState, parent: u64, depth: u32) -> (u32, bool) {
        match &self.canon {
            Some(canon) => {
                let (code, variant) = canon.factor(&self.codec, state);
                let next_orbit = self.arena.len() as u32;
                let (orbit, new_orbit) = self.index.get_or_insert(&code, next_orbit, &self.arena);
                if new_orbit {
                    self.arena.push(&code);
                    self.masks.push(0);
                }
                let bit = 1u64 << variant;
                if self.masks[orbit as usize] & bit != 0 {
                    // The orbit is known *and* this member was already seen.
                    // (Duplicate hits do not need the prior state index.)
                    return (u32::MAX, false);
                }
                self.masks[orbit as usize] |= bit;
                let state_index = self.log.len() as u32;
                self.log.push(u64::from(orbit) | (u64::from(variant) << 32));
                self.parent.push(parent);
                self.depth.push(depth);
                self.digest = fnv1a(self.digest, code.as_slice());
                self.digest = fnv1a(self.digest, &[u64::from(variant)]);
                (state_index, true)
            }
            None => {
                let code = self.codec.encode(state);
                let next = self.arena.len() as u32;
                let (index, inserted) = self.index.get_or_insert(&code, next, &self.arena);
                if inserted {
                    self.arena.push(&code);
                    self.parent.push(parent);
                    self.depth.push(depth);
                    self.digest = fnv1a(self.digest, code.as_slice());
                }
                (index, inserted)
            }
        }
    }
}

impl<'a, A: Algorithm + ?Sized> ModelChecker<'a, A> {
    /// Creates a checker for `algorithm` with no invariants installed and a
    /// default budget of one million states.
    #[must_use]
    pub fn new(algorithm: &'a A) -> Self {
        Self {
            algorithm,
            invariants: Vec::new(),
            max_states: 1_000_000,
            enable_crashes: false,
            stop_at_first_violation: true,
            check_deadlock: true,
            symmetry: false,
            #[cfg(feature = "spill")]
            spill_dir: None,
        }
    }

    /// Installs an invariant to check on every reachable state.
    #[must_use]
    pub fn with_invariant(mut self, invariant: Invariant<A>) -> Self {
        self.invariants.push(invariant);
        self
    }

    /// Installs the two invariants the paper model checks: mutual exclusion
    /// and overflow freedom (with the bounds precomputed for this checker's
    /// algorithm — the per-state register-list rebuild of the generic
    /// [`Invariant::register_bounds`] dominates multi-million-state runs).
    #[must_use]
    pub fn with_paper_invariants(self) -> Self {
        let bounds = Invariant::register_bounds_for(self.algorithm);
        self.with_invariant(Invariant::mutual_exclusion())
            .with_invariant(bounds)
    }

    /// Caps the number of distinct states explored.
    #[must_use]
    pub fn with_max_states(mut self, max_states: usize) -> Self {
        self.max_states = max_states;
        self
    }

    /// Also explores crash/restart transitions (paper assumptions 1.5–1.7).
    #[must_use]
    pub fn with_crashes(mut self, enabled: bool) -> Self {
        self.enable_crashes = enabled;
        self
    }

    /// Compresses the visited set orbit-wise under the algorithm's symmetry
    /// group ([`Algorithm::symmetry`]): one canonical representative per
    /// orbit plus a bitmap of visited variants.  The search itself is the
    /// exact concrete BFS — states, transitions, verdicts and traces are
    /// identical to the unreduced run — only resident memory shrinks (up to
    /// the group order) and [`ExplorationReport::canonical_states`] reports
    /// the orbit count.  No-op when the algorithm declares no symmetry or
    /// its group exceeds [`crate::canon::MAX_GROUP_ORDER`] elements.
    #[must_use]
    pub fn with_symmetry_reduction(mut self, enabled: bool) -> Self {
        self.symmetry = enabled;
        self
    }

    /// Spills sealed visited-set chunks to a temporary file under `dir`
    /// (`spill` cargo feature): the padded-mode sweeps trade read latency
    /// for resident memory.
    #[cfg(feature = "spill")]
    #[must_use]
    pub fn with_spill_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }

    /// Keep exploring after the first violation (collect all of them).
    #[must_use]
    pub fn collect_all_violations(mut self) -> Self {
        self.stop_at_first_violation = false;
        self
    }

    /// Disables deadlock reporting (useful for specs whose processes may
    /// legitimately all block, which none of the shipped specs do).
    #[must_use]
    pub fn without_deadlock_check(mut self) -> Self {
        self.check_deadlock = false;
        self
    }

    fn build_search(&self) -> SearchState {
        let codec = StateCodec::new(self.algorithm);
        let canon = if self.symmetry {
            self.algorithm
                .symmetry()
                .filter(|group| group.order() > 1 && group.order() <= crate::canon::MAX_GROUP_ORDER)
                .map(|group| Canonicalizer::new(&codec, group))
        } else {
            None
        };
        let stride = codec.words_per_state();
        #[cfg(feature = "spill")]
        let arena = match &self.spill_dir {
            Some(dir) => CodeArena::with_spill_dir(stride, dir)
                .expect("failed to create the spill arena"),
            None => CodeArena::new(stride),
        };
        #[cfg(not(feature = "spill"))]
        let arena = CodeArena::new(stride);
        SearchState {
            codec,
            canon,
            arena,
            index: CodeIndex::new(),
            masks: Vec::new(),
            log: Vec::new(),
            parent: Vec::new(),
            depth: Vec::new(),
            digest: FNV_OFFSET_BASIS,
        }
    }

    /// Runs the exhaustive exploration.
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn run(self) -> ExplorationReport {
        let alg = self.algorithm;
        let n = alg.processes();
        assert!(n < (1 << 16), "pid lanes in parent links are 16 bits");
        let registers: Vec<RegisterSpec> = alg.registers();
        let mut search = self.build_search();

        let mut report = ExplorationReport {
            algorithm: alg.name().to_string(),
            states: 0,
            canonical_states: 0,
            transitions: 0,
            max_depth: 0,
            truncated: false,
            symmetry_order: search.canon.as_ref().map_or(1, Canonicalizer::order),
            frontier_digest: 0,
            deadlocks: Vec::new(),
            violations: Vec::new(),
        };

        let finalize = |report: &mut ExplorationReport, search: &SearchState| {
            report.states = search.state_count();
            report.canonical_states = search.canonical_count();
            report.frontier_digest = search.digest;
        };

        let initial = alg.initial_state();
        search.insert(&initial, SearchState::ROOT, 0);

        // Check invariants on the initial state too.
        self.check_state(&initial, 0, &search, &registers, &mut report);
        if !report.violations.is_empty() && self.stop_at_first_violation {
            finalize(&mut report, &search);
            return report;
        }

        let mut successors = Vec::new();
        let mut head = 0usize;
        while head < search.state_count() {
            let current = head;
            head += 1;
            let state = search.decode(current);
            let current_depth = search.depth[current];
            report.max_depth = report.max_depth.max(current_depth as usize);

            let mut any_enabled = false;
            for pid in 0..n {
                successors.clear();
                alg.successors(&state, pid, &mut successors);
                if !successors.is_empty() {
                    any_enabled = true;
                }
                let crash_succ = if self.enable_crashes {
                    alg.crash(&state, pid)
                } else {
                    None
                };
                for (is_crash, next) in successors
                    .drain(..)
                    .map(|s| (false, s))
                    .chain(crash_succ.into_iter().map(|s| (true, s)))
                {
                    report.transitions += 1;
                    let parent = SearchState::pack_parent(current as u32, pid, is_crash);
                    let (index, inserted) = search.insert(&next, parent, current_depth + 1);
                    if inserted {
                        let violated = self.check_state(
                            &next,
                            index as usize,
                            &search,
                            &registers,
                            &mut report,
                        );
                        if violated && self.stop_at_first_violation {
                            finalize(&mut report, &search);
                            return report;
                        }
                    }
                }
            }

            if self.check_deadlock && !any_enabled {
                report.deadlocks.push(state.render(&registers));
                if self.stop_at_first_violation {
                    finalize(&mut report, &search);
                    return report;
                }
            }

            if search.state_count() >= self.max_states {
                report.truncated = true;
                break;
            }
        }

        finalize(&mut report, &search);
        report
    }

    /// Evaluates every invariant on `state` (the concrete state stored — or
    /// canonically represented — at arena index `idx`); returns true when at
    /// least one was violated (and records the counterexample).
    fn check_state(
        &self,
        state: &ProgState,
        idx: usize,
        search: &SearchState,
        registers: &[RegisterSpec],
        report: &mut ExplorationReport,
    ) -> bool {
        let mut violated = false;
        for invariant in &self.invariants {
            if !invariant.holds(self.algorithm, state) {
                violated = true;
                report.violations.push(Violation {
                    invariant: invariant.name().to_string(),
                    depth: search.depth[idx] as usize,
                    trace: self.rebuild_trace(search, idx, registers),
                });
            }
        }
        violated
    }

    /// Rebuilds the path from the initial state to arena index `idx` by
    /// decoding the stored codes along the parent chain.
    fn rebuild_trace(
        &self,
        search: &SearchState,
        idx: usize,
        registers: &[RegisterSpec],
    ) -> Vec<TraceStep> {
        let mut steps = Vec::new();
        let mut cursor = idx;
        loop {
            let packed = search.parent[cursor];
            let is_root = packed & SearchState::ROOT != 0;
            let (pid, crash) = if is_root {
                (None, false)
            } else {
                (
                    Some(((packed >> 32) & 0xFFFF) as usize),
                    packed & (1 << 48) != 0,
                )
            };
            let state = search.decode(cursor);
            let label = pid
                .map(|p| self.algorithm.pc_label(state.pc(p)).to_string())
                .unwrap_or_else(|| "init".to_string());
            steps.push(TraceStep {
                pid,
                crash,
                label,
                state: state.render(registers),
            });
            if is_root {
                break;
            }
            cursor = (packed & 0xFFFF_FFFF) as usize;
        }
        steps.reverse();
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bakery_spec::{BakeryPlusPlusSpec, BakerySpec, PetersonSpec, SafeReadMode, TicketSpec};

    #[test]
    fn peterson_satisfies_mutual_exclusion_exhaustively() {
        let spec = PetersonSpec::new();
        let report = ModelChecker::new(&spec).with_paper_invariants().run();
        assert!(report.holds(), "{report}");
        assert!(report.states > 10);
        assert!(!report.truncated);
        assert_eq!(report.symmetry_order, 1);
    }

    #[test]
    fn bakery_pp_theorem_no_overflow_and_mutual_exclusion() {
        // Experiment E2, the paper's TLC result: exhaustive for N=2, M=3.
        let spec = BakeryPlusPlusSpec::new(2, 3);
        let report = ModelChecker::new(&spec).with_paper_invariants().run();
        assert!(report.holds(), "{report}");
        assert!(!report.truncated, "state space must be finite and fully explored");
        assert!(report.states > 100);
    }

    #[test]
    fn bakery_pp_holds_under_flicker_reads() {
        let spec = BakeryPlusPlusSpec::new(2, 2).with_read_mode(SafeReadMode::Flicker);
        let report = ModelChecker::new(&spec).with_paper_invariants().run();
        assert!(report.holds(), "{report}");
    }

    #[test]
    fn bakery_pp_holds_with_crash_faults() {
        let spec = BakeryPlusPlusSpec::new(2, 2);
        let report = ModelChecker::new(&spec)
            .with_paper_invariants()
            .with_crashes(true)
            .run();
        assert!(report.holds(), "{report}");
    }

    #[test]
    fn symmetry_compression_is_search_invisible() {
        // The orbit-wise visited set must change nothing about the search:
        // same states, same transitions, same depth, same verdict — only
        // the canonical (orbit) count differs from the state count.
        let spec = BakeryPlusPlusSpec::new(2, 3);
        let plain = ModelChecker::new(&spec).with_paper_invariants().run();
        let reduced = ModelChecker::new(&spec)
            .with_paper_invariants()
            .with_symmetry_reduction(true)
            .run();
        assert!(plain.holds() && reduced.holds(), "{plain}\n{reduced}");
        assert!(!reduced.truncated);
        assert_eq!(reduced.symmetry_order, 2);
        assert_eq!(reduced.states, plain.states);
        assert_eq!(reduced.transitions, plain.transitions);
        assert_eq!(reduced.max_depth, plain.max_depth);
        assert_eq!(plain.canonical_states, plain.states);
        assert!(
            reduced.canonical_states < reduced.states,
            "orbits ({}) must be fewer than states ({})",
            reduced.canonical_states,
            reduced.states
        );
        // Orbits have at most |G| members.
        assert!(reduced.canonical_states * reduced.symmetry_order >= reduced.states);
    }

    #[test]
    fn symmetry_compression_with_crashes_preserves_the_verdict() {
        let spec = BakeryPlusPlusSpec::new(2, 2);
        let plain = ModelChecker::new(&spec)
            .with_paper_invariants()
            .with_crashes(true)
            .run();
        let reduced = ModelChecker::new(&spec)
            .with_paper_invariants()
            .with_crashes(true)
            .with_symmetry_reduction(true)
            .run();
        assert!(reduced.holds(), "{reduced}");
        assert!(!reduced.truncated);
        assert_eq!(reduced.states, plain.states);
        assert_eq!(reduced.transitions, plain.transitions);
    }

    #[test]
    fn symmetry_compression_still_finds_the_classic_overflow() {
        // The compressed store must reach the same NoOverflow violation at
        // the same depth as the plain store.
        let spec = BakerySpec::new(2, 3);
        let plain = ModelChecker::new(&spec)
            .with_paper_invariants()
            .with_max_states(2_000_000)
            .run();
        let reduced = ModelChecker::new(&spec)
            .with_paper_invariants()
            .with_symmetry_reduction(true)
            .with_max_states(2_000_000)
            .run();
        assert!(!reduced.holds(), "classic Bakery must overflow: {reduced}");
        assert_eq!(reduced.violated_invariants(), vec!["NoOverflow".to_string()]);
        assert_eq!(reduced.violations[0].depth, plain.violations[0].depth);
        assert_eq!(reduced.states, plain.states);
    }

    #[test]
    fn exploration_digest_is_deterministic() {
        let spec = BakeryPlusPlusSpec::new(2, 3);
        let run = || {
            ModelChecker::new(&spec)
                .with_paper_invariants()
                .with_symmetry_reduction(true)
                .run()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.states, b.states);
        assert_eq!(a.frontier_digest, b.frontier_digest);
        assert_ne!(a.frontier_digest, 0);
    }

    #[test]
    fn bounded_classic_bakery_overflow_is_reachable() {
        // The other half of E2: with the same bound, the classic Bakery can
        // reach a state that stores a value above M.
        // Both paper invariants are installed; breadth-first search finds the
        // shallowest violation first, so the assertion below also shows that
        // the *first* thing to go wrong in a bounded classic Bakery is the
        // overflow — mutual exclusion only breaks downstream of it.
        let spec = BakerySpec::new(2, 3);
        let report = ModelChecker::new(&spec)
            .with_paper_invariants()
            .with_max_states(2_000_000)
            .run();
        assert!(!report.holds(), "classic Bakery must overflow: {report}");
        assert_eq!(report.violated_invariants(), vec!["NoOverflow".to_string()]);
        let violation = &report.violations[0];
        assert!(violation.depth > 0);
        assert!(!violation.trace.is_empty());
        assert!(violation.to_string().contains("NoOverflow"));
    }

    #[test]
    fn corrupted_registers_break_classic_bakery_mutual_exclusion() {
        // Continue exploring *past* the overflow: once a register has been
        // corrupted by the bound, the classic Bakery really does admit two
        // processes to the critical section — the §3 malfunction end to end.
        let spec = BakerySpec::new(2, 3);
        let report = ModelChecker::new(&spec)
            .with_invariant(Invariant::mutual_exclusion())
            .with_max_states(500_000)
            .run();
        assert!(
            report
                .violated_invariants()
                .contains(&"MutualExclusion".to_string()),
            "expected a downstream mutual exclusion violation: {report}"
        );
    }

    #[test]
    fn classic_bakery_mutual_exclusion_holds_while_registers_suffice() {
        // With a bound far larger than anything reachable in the explored
        // region, the original algorithm is correct (Lamport 1974): no mutual
        // exclusion violation exists anywhere in the explored state space.
        let spec = BakerySpec::new(2, 1_000_000);
        let report = ModelChecker::new(&spec)
            .with_invariant(Invariant::mutual_exclusion())
            .with_max_states(150_000)
            .run();
        assert!(
            report.violations.is_empty(),
            "mutual exclusion must hold: {report}"
        );
        assert!(report.truncated, "the unbounded-ticket space is infinite");
    }

    #[test]
    fn ticket_lock_first_failure_is_the_overflow() {
        // The counter-based lock inherits the unbounded-growth problem: the
        // first invariant to fail (shallowest violation, BFS order) is
        // NoOverflow.  Mutual exclusion holds up to that point.
        let spec = TicketSpec::new(2, 4);
        let report = ModelChecker::new(&spec)
            .with_paper_invariants()
            .with_max_states(200_000)
            .run();
        assert!(!report.holds());
        assert_eq!(report.violated_invariants(), vec!["NoOverflow".to_string()]);
    }

    #[test]
    fn max_states_truncation_is_reported() {
        let spec = BakeryPlusPlusSpec::new(3, 3);
        let report = ModelChecker::new(&spec)
            .with_paper_invariants()
            .with_max_states(500)
            .run();
        assert!(report.truncated);
        assert!(report.states >= 500);
    }

    #[test]
    fn report_renders_summary() {
        let spec = PetersonSpec::new();
        let report = ModelChecker::new(&spec).with_paper_invariants().run();
        let text = report.to_string();
        assert!(text.contains("peterson"));
        assert!(text.contains("all invariants hold"));
        let json = bakery_json::to_string(&report).unwrap();
        assert!(json.contains("\"states\""));
        assert!(json.contains("\"symmetry_order\""));
    }

    #[cfg(feature = "spill")]
    #[test]
    fn spilled_exploration_matches_in_memory() {
        let spec = BakeryPlusPlusSpec::new(2, 3);
        let in_memory = ModelChecker::new(&spec).with_paper_invariants().run();
        let spilled = ModelChecker::new(&spec)
            .with_paper_invariants()
            .with_spill_dir(std::env::temp_dir())
            .run();
        assert!(spilled.holds(), "{spilled}");
        assert_eq!(spilled.states, in_memory.states);
        assert_eq!(spilled.frontier_digest, in_memory.frontier_digest);
    }
}
