//! Breadth-first explicit-state exploration with invariant checking —
//! level-synchronous and parallel over the sharded compact store.
//!
//! The explorer stores every visited state as a packed [`crate::code::StateCode`]
//! in a striped set of flat arenas (16 bytes per state for the tree
//! specification) instead of a hash-of-struct map, and can optionally
//! compress the visited set orbit-wise under a specification-declared
//! symmetry group ([`ModelChecker::with_symmetry_reduction`]): one canonical
//! representative per orbit plus a bitmap of visited variants.  The search
//! itself stays the exact concrete BFS — same states, same transitions, same
//! verdicts — only the resident memory shrinks (up to the group order), and
//! the orbit count is reported as [`ExplorationReport::canonical_states`].
//!
//! ## Parallel exploration
//!
//! [`ModelChecker::with_threads`] runs the same BFS with several workers:
//!
//! * the search is **level-synchronous** — every state at BFS depth *d* is
//!   expanded before any state at depth *d + 1*, so depth semantics (and
//!   therefore shortest-counterexample guarantees) are identical to the
//!   sequential walk;
//! * workers steal fixed-size chunks of the current level and publish
//!   next-level states into per-worker buffers that are merged at the level
//!   barrier;
//! * the visited set is sharded into [`crate::store::STRIPE_COUNT`]
//!   independently locked stripes keyed by code-fingerprint bits, so
//!   insertions from different workers almost never contend; which stripe a
//!   state lands in is a pure function of its code, never of the schedule;
//! * every reported quantity is reduced **deterministically**: counts and
//!   the frontier digest are order-independent by construction, and the
//!   first violation / the counterexample trace are selected by (depth,
//!   lowest canonical code) rather than by discovery race.
//!
//! For a run that covers its whole state space, `states`,
//! `canonical_states`, `transitions`, `max_depth` and `frontier_digest` are
//! bit-identical for every thread count (pinned by the
//! `parallel_differential` test suite).  A budget-truncated run always
//! reports the same `truncated` verdict at any thread count, and its counts
//! overshoot the budget by at most one state's successors per worker;
//! `threads == 1` reproduces the sequential stopping point exactly.
//!
//! Together these are what close out the full 4-process tree composition —
//! ~40 M concrete states — exhaustively in one in-memory run.

use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;

use bakery_core::sync::{AtomicUsize, Ordering};
use bakery_sim::{Algorithm, Invariant, ProgState, RegisterSpec};

use crate::canon::Canonicalizer;
use crate::code::{fnv1a, StateCode, StateCodec, FNV_OFFSET_BASIS};
use crate::store::{stripe_of, Stripe, STRIPE_BITS};

/// One step of a counterexample trace.
#[derive(Debug, Clone)]
pub struct TraceStep {
    /// The process that moved to reach this state (`None` for the initial
    /// state).
    pub pid: Option<usize>,
    /// `true` when the step was an injected crash rather than a program step.
    pub crash: bool,
    /// Program-counter label of the moving process after the step.
    pub label: String,
    /// Rendering of the state after the step.
    pub state: String,
}

/// An invariant violation together with its shortest counterexample.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Name of the violated invariant.
    pub invariant: String,
    /// Depth (number of steps from the initial state) of the violating state.
    pub depth: usize,
    /// Shortest trace from the initial state to the violation.
    pub trace: Vec<TraceStep>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "invariant {} violated at depth {}:",
            self.invariant, self.depth
        )?;
        for (i, step) in self.trace.iter().enumerate() {
            let actor = match (step.pid, step.crash) {
                (Some(pid), true) => format!("crash p{pid}"),
                (Some(pid), false) => format!("p{pid} -> {}", step.label),
                (None, _) => "initial".to_string(),
            };
            writeln!(f, "  {i:>3}: {actor:<28} {}", step.state)?;
        }
        Ok(())
    }
}

/// Statistics and findings of one exhaustive exploration.
#[derive(Debug, Clone)]
pub struct ExplorationReport {
    /// Name of the checked algorithm.
    pub algorithm: String,
    /// Number of distinct concrete states visited (identical with and
    /// without symmetry compression, and for every thread count).
    pub states: usize,
    /// Number of distinct symmetry orbits the visited states fall into —
    /// the canonical state count.  Equal to `states` when no symmetry
    /// compression is active.
    pub canonical_states: usize,
    /// Number of transitions examined.
    pub transitions: usize,
    /// Depth of the deepest expanded state (BFS level).
    pub max_depth: usize,
    /// True when exploration stopped early because `max_states` was reached.
    pub truncated: bool,
    /// Order of the symmetry group the visited set was compressed by
    /// (1 = none).
    pub symmetry_order: usize,
    /// Worker threads the exploration ran with (1 = sequential).
    pub threads: usize,
    /// Deterministic digest of the visited set, folded level by level from
    /// an order-independent per-level accumulation: runs of the same
    /// configuration agree state-for-state **regardless of thread count or
    /// schedule** (for complete, non-truncated explorations).
    pub frontier_digest: u64,
    /// Renderings of reachable deadlock states (no process enabled), in
    /// deterministic (depth, canonical code) order.
    pub deadlocks: Vec<String>,
    /// Invariant violations with shortest counterexamples.
    pub violations: Vec<Violation>,
}

bakery_json::json_object!(TraceStep { pid, crash, label, state });
bakery_json::json_object!(Violation { invariant, depth, trace });
bakery_json::json_object!(ExplorationReport {
    algorithm,
    states,
    canonical_states,
    transitions,
    max_depth,
    truncated,
    symmetry_order,
    threads,
    frontier_digest,
    deadlocks,
    violations,
});

impl ExplorationReport {
    /// True when no invariant violation and no deadlock was found.
    #[must_use]
    pub fn holds(&self) -> bool {
        self.violations.is_empty() && self.deadlocks.is_empty()
    }

    /// Names of the violated invariants (deduplicated, in discovery order).
    #[must_use]
    pub fn violated_invariants(&self) -> Vec<String> {
        let mut names = Vec::new();
        for v in &self.violations {
            if !names.contains(&v.invariant) {
                names.push(v.invariant.clone());
            }
        }
        names
    }
}

impl fmt::Display for ExplorationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} states, {} transitions, depth {}{}{}",
            self.algorithm,
            self.states,
            self.transitions,
            self.max_depth,
            if self.symmetry_order > 1 {
                format!(
                    " ({} canonical, symmetry /{})",
                    self.canonical_states, self.symmetry_order
                )
            } else {
                String::new()
            },
            if self.truncated { " (truncated)" } else { "" }
        )?;
        if self.deadlocks.is_empty() && self.violations.is_empty() {
            writeln!(f, "  all invariants hold; no deadlock")?;
        }
        for d in &self.deadlocks {
            writeln!(f, "  deadlock: {d}")?;
        }
        for v in &self.violations {
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

/// Breadth-first model checker over an [`Algorithm`] specification.
pub struct ModelChecker<'a, A: Algorithm + ?Sized> {
    algorithm: &'a A,
    invariants: Vec<Invariant<A>>,
    max_states: usize,
    enable_crashes: bool,
    stop_at_first_violation: bool,
    check_deadlock: bool,
    symmetry: bool,
    threads: usize,
    #[cfg(feature = "spill")]
    spill_dir: Option<std::path::PathBuf>,
}

/// Bits of a packed state id that hold the stripe-local slot; the stripe
/// index occupies the remaining high bits.  26 slot bits allow ~67 M states
/// per stripe — far beyond any per-stripe share of the shipped state spaces
/// (the fingerprint striping spreads states near-uniformly).
const SLOT_BITS: u32 = 32 - STRIPE_BITS;

/// States a worker claims from the current BFS level per cursor bump.  Large
/// enough that the claim atomic is cold, small enough that the tail of a
/// level does not leave workers idle.
const FRONTIER_CHUNK: usize = 1024;

/// Packs a (stripe, slot) pair into a global state id.
fn pack_id(stripe: usize, slot: u32) -> u32 {
    debug_assert!(slot < 1 << SLOT_BITS);
    ((stripe as u32) << SLOT_BITS) | slot
}

/// One stripe of the sharded visited set plus its per-state metadata, all
/// guarded by a single `Mutex` so a concurrent insertion is one atomic step.
///
/// Without symmetry compression the stripe's arena holds one packed code per
/// concrete state and the stripe-local slot doubles as the concrete state
/// slot.  With compression the arena holds one **canonical** code per orbit,
/// `masks[orbit]` records which variants have been visited, and `log[slot]`
/// maps the concrete slot to its `(orbit, variant)` pair.  Either way the
/// structure records exactly the set of concrete states visited.
struct Shard {
    store: Stripe,
    /// Symmetry mode: visited-variant bitmap per orbit.
    masks: Vec<u64>,
    /// Symmetry mode: `orbit | variant << 32` per concrete slot.
    log: Vec<u64>,
    /// Packed parent links per concrete slot: bits 0–31 parent state id,
    /// 32–47 moving pid, bit 48 crash, bit 49 "is the initial state".
    parent: Vec<u64>,
    /// Concrete states inserted during the *current* BFS level:
    /// `(orbit | variant << 32) -> (slot, parent selection key)`.  A
    /// same-level duplicate discovery re-parents the state iff its selection
    /// key is smaller, which makes the whole parent forest — and therefore
    /// every counterexample trace — independent of the worker schedule.
    /// Cleared at each level barrier.
    level_links: HashMap<u64, (u32, u64)>,
}

impl Shard {
    const ROOT: u64 = 1 << 49;

    fn pack_parent(parent_id: u32, pid: usize, crash: bool) -> u64 {
        u64::from(parent_id) | ((pid as u64) << 32) | (u64::from(crash) << 48)
    }

    /// Concrete states recorded in this shard.
    fn concrete_len(&self, symmetry: bool) -> usize {
        if symmetry {
            self.log.len()
        } else {
            self.store.len()
        }
    }
}

/// The outcome of inserting one successor state.
struct Inserted {
    id: u32,
    fresh: bool,
}

/// Everything the workers share, immutable or internally synchronized.
struct Engine<'a, A: Algorithm + ?Sized> {
    alg: &'a A,
    invariants: &'a [Invariant<A>],
    registers: Vec<RegisterSpec>,
    codec: StateCodec,
    canon: Option<Canonicalizer>,
    shards: Vec<Mutex<Shard>>,
    /// Total concrete states inserted — the budget counter.  `Relaxed` is
    /// sufficient: the counter is monotone and only gates *when workers stop
    /// claiming*, never what data they read (all state data is published via
    /// the shard mutexes and the level join barrier); a stale read merely
    /// delays the stop by at most one state per worker.
    count: AtomicUsize,
    max_states: usize,
    enable_crashes: bool,
    check_deadlock: bool,
    processes: usize,
}

/// A BFS level: packed `(id, variant)` metadata plus the canonical code
/// words of every state, carried inline so expansion never has to read the
/// (locked) arenas back.
struct Frontier {
    stride: usize,
    /// `id | variant << 32` per entry.
    meta: Vec<u64>,
    /// `stride` words per entry.
    words: Vec<u64>,
}

impl Frontier {
    fn new(stride: usize) -> Self {
        Self {
            stride,
            meta: Vec::new(),
            words: Vec::new(),
        }
    }

    fn len(&self) -> usize {
        self.meta.len()
    }

    fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    fn clear(&mut self) {
        self.meta.clear();
        self.words.clear();
    }

    fn push(&mut self, id: u32, variant: u8, words: &[u64]) {
        debug_assert_eq!(words.len(), self.stride);
        self.meta.push(u64::from(id) | (u64::from(variant) << 32));
        self.words.extend_from_slice(words);
    }

    fn entry(&self, i: usize) -> (u32, u8, &[u64]) {
        let meta = self.meta[i];
        let id = (meta & 0xFFFF_FFFF) as u32;
        let variant = (meta >> 32) as u8;
        (id, variant, &self.words[i * self.stride..(i + 1) * self.stride])
    }

    fn append(&mut self, other: &mut Frontier) {
        self.meta.append(&mut other.meta);
        self.words.append(&mut other.words);
    }
}

/// A violation discovered while inserting a state, keyed for deterministic
/// selection: `(canonical code, variant, invariant index)` — the depth is
/// the level it was found in, which is uniform per barrier.
struct Candidate {
    key: Vec<u64>,
    variant: u8,
    invariant: usize,
    id: u32,
}

/// A deadlock discovered while expanding a state, keyed like [`Candidate`].
struct DeadlockHit {
    key: Vec<u64>,
    variant: u8,
    render: String,
}

/// One worker's per-level workspace and outputs; reused across levels.
struct WorkerOut {
    next: Frontier,
    scratch: Vec<ProgState>,
    transitions: u64,
    inserted: u64,
    digest_sum: u64,
    processed: u64,
    budget_hit: bool,
    violations: Vec<Candidate>,
    deadlocks: Vec<DeadlockHit>,
}

impl WorkerOut {
    fn new(stride: usize) -> Self {
        Self {
            next: Frontier::new(stride),
            scratch: Vec::new(),
            transitions: 0,
            inserted: 0,
            digest_sum: 0,
            processed: 0,
            budget_hit: false,
            violations: Vec::new(),
            deadlocks: Vec::new(),
        }
    }

    fn reset(&mut self) {
        self.next.clear();
        self.transitions = 0;
        self.inserted = 0;
        self.digest_sum = 0;
        self.processed = 0;
        self.budget_hit = false;
        self.violations.clear();
        self.deadlocks.clear();
    }
}

impl<'a, A: Algorithm + ?Sized> Engine<'a, A> {
    /// Canonicalizes `state` into `(code, variant)` — worker-local, no lock.
    fn factor(&self, state: &ProgState) -> (StateCode, u8) {
        match &self.canon {
            Some(canon) => canon.factor(&self.codec, state),
            None => (self.codec.encode(state), 0),
        }
    }

    /// Order-independent per-state digest contribution.
    fn state_hash(&self, code: &StateCode, variant: u8) -> u64 {
        let h = fnv1a(FNV_OFFSET_BASIS, code.as_slice());
        if self.canon.is_some() {
            fnv1a(h, &[u64::from(variant)])
        } else {
            h
        }
    }

    /// Records the state `(code, variant)` if unseen.  `parent` is the
    /// packed parent link, `parent_key` the deterministic selection key used
    /// to resolve same-level duplicate discoveries.
    fn insert(&self, code: &StateCode, variant: u8, parent: u64, parent_key: u64) -> Inserted {
        let stripe = stripe_of(code.fingerprint());
        let mut shard = self.shards[stripe].lock().expect("shard lock poisoned");
        let shard = &mut *shard;
        match &self.canon {
            Some(_) => {
                let (orbit, new_orbit) = shard.store.intern(code);
                if new_orbit {
                    shard.masks.push(0);
                }
                let entry = u64::from(orbit) | (u64::from(variant) << 32);
                let bit = 1u64 << variant;
                if shard.masks[orbit as usize] & bit != 0 {
                    // The orbit is known *and* this member was already seen.
                    // If it was first seen in the *current* level, keep the
                    // parent with the smallest selection key so the trace
                    // forest is schedule-independent.
                    if let Some((slot, key)) = shard.level_links.get_mut(&entry) {
                        if parent_key < *key {
                            *key = parent_key;
                            shard.parent[*slot as usize] = parent;
                        }
                    }
                    return Inserted {
                        id: u32::MAX,
                        fresh: false,
                    };
                }
                shard.masks[orbit as usize] |= bit;
                let slot = shard.log.len() as u32;
                assert!((slot as u64) < 1 << SLOT_BITS, "stripe overflow");
                shard.log.push(entry);
                shard.parent.push(parent);
                shard.level_links.insert(entry, (slot, parent_key));
                self.count.fetch_add(1, Ordering::Relaxed); // mem: explorer-frontier
                Inserted {
                    id: pack_id(stripe, slot),
                    fresh: true,
                }
            }
            None => {
                let (slot, inserted) = shard.store.intern(code);
                if inserted {
                    assert!((slot as u64) < 1 << SLOT_BITS, "stripe overflow");
                    shard.parent.push(parent);
                    shard.level_links.insert(u64::from(slot), (slot, parent_key));
                    self.count.fetch_add(1, Ordering::Relaxed); // mem: explorer-frontier
                } else if let Some((slot, key)) =
                    shard.level_links.get_mut(&u64::from(slot))
                {
                    if parent_key < *key {
                        *key = parent_key;
                        shard.parent[*slot as usize] = parent;
                    }
                }
                Inserted {
                    id: pack_id(stripe, slot),
                    fresh: inserted,
                }
            }
        }
    }

    /// Decodes the concrete state behind a packed global id.
    fn decode(&self, id: u32) -> ProgState {
        let stripe = (id >> SLOT_BITS) as usize;
        let slot = (id & ((1 << SLOT_BITS) - 1)) as usize;
        let shard = self.shards[stripe].lock().expect("shard lock poisoned");
        let mut words = Vec::with_capacity(self.codec.words_per_state());
        match &self.canon {
            Some(canon) => {
                let entry = shard.log[slot];
                let orbit = (entry & 0xFFFF_FFFF) as usize;
                let variant = (entry >> 32) as u8;
                shard.store.arena().load(orbit, &mut words);
                canon.realize(&self.codec.decode_words(&words), variant)
            }
            None => {
                shard.store.arena().load(slot, &mut words);
                self.codec.decode_words(&words)
            }
        }
    }

    /// Reads the packed parent link of a global id.
    fn parent_of(&self, id: u32) -> u64 {
        let stripe = (id >> SLOT_BITS) as usize;
        let slot = (id & ((1 << SLOT_BITS) - 1)) as usize;
        self.shards[stripe].lock().expect("shard lock poisoned").parent[slot]
    }

    /// Total concrete states across all shards.
    fn state_count(&self) -> usize {
        let symmetry = self.canon.is_some();
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard lock poisoned").concrete_len(symmetry))
            .sum()
    }

    /// Total orbits (canonical states) across all shards.
    fn canonical_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard lock poisoned").store.len())
            .sum()
    }

    /// Clears the per-level duplicate-resolution maps (level barrier).
    fn clear_level_links(&self) {
        for shard in &self.shards {
            shard
                .lock()
                .expect("shard lock poisoned")
                .level_links
                .clear();
        }
    }

    /// Expands one chunk-claimed stretch of `frontier` (states at depth
    /// `depth`), publishing discoveries at `depth + 1` into `out`.
    fn run_level(&self, frontier: &Frontier, cursor: &AtomicUsize, out: &mut WorkerOut) {
        let n = self.processes;
        'claim: loop {
            let start = cursor.fetch_add(FRONTIER_CHUNK, Ordering::Relaxed); // mem: explorer-frontier
            if start >= frontier.len() {
                break;
            }
            let end = (start + FRONTIER_CHUNK).min(frontier.len());
            for i in start..end {
                // The budget gate: checked before every expansion, so a
                // sequential (threads = 1) run stops at exactly the state
                // the pre-parallel explorer stopped at, and a parallel run
                // overshoots by at most one state's successors per worker.
                let count = self.count.load(Ordering::Relaxed); // mem: explorer-frontier
                if count >= self.max_states {
                    out.budget_hit = true;
                    break 'claim;
                }
                let (id, variant, words) = frontier.entry(i);
                let rep = self.codec.decode_words(words);
                let state = match &self.canon {
                    Some(canon) => canon.realize(&rep, variant),
                    None => rep,
                };
                out.processed += 1;
                // Deterministic parent-selection key base for this state.
                let key_base = fnv1a(fnv1a(FNV_OFFSET_BASIS, words), &[u64::from(variant)]);

                let mut any_enabled = false;
                for pid in 0..n {
                    out.scratch.clear();
                    self.alg.successors(&state, pid, &mut out.scratch);
                    if !out.scratch.is_empty() {
                        any_enabled = true;
                    }
                    let crash_succ = if self.enable_crashes {
                        self.alg.crash(&state, pid)
                    } else {
                        None
                    };
                    let successors = std::mem::take(&mut out.scratch);
                    for (is_crash, next) in successors
                        .iter()
                        .map(|s| (false, s))
                        .chain(crash_succ.iter().map(|s| (true, s)))
                    {
                        out.transitions += 1;
                        let parent = Shard::pack_parent(id, pid, is_crash);
                        let parent_key =
                            fnv1a(key_base, &[pid as u64, u64::from(is_crash)]);
                        let (code, next_variant) = self.factor(next);
                        let ins = self.insert(&code, next_variant, parent, parent_key);
                        if ins.fresh {
                            out.inserted += 1;
                            out.digest_sum = out
                                .digest_sum
                                .wrapping_add(self.state_hash(&code, next_variant));
                            out.next.push(ins.id, next_variant, code.as_slice());
                            for (inv_idx, invariant) in self.invariants.iter().enumerate() {
                                if !invariant.holds(self.alg, next) {
                                    out.violations.push(Candidate {
                                        key: code.as_slice().to_vec(),
                                        variant: next_variant,
                                        invariant: inv_idx,
                                        id: ins.id,
                                    });
                                }
                            }
                        }
                    }
                    out.scratch = successors;
                }

                if self.check_deadlock && !any_enabled {
                    out.deadlocks.push(DeadlockHit {
                        key: words.to_vec(),
                        variant,
                        render: state.render(&self.registers),
                    });
                }
            }
        }
    }
}

impl<'a, A: Algorithm + ?Sized> ModelChecker<'a, A> {
    /// Creates a checker for `algorithm` with no invariants installed, a
    /// default budget of one million states, and one worker thread.
    #[must_use]
    pub fn new(algorithm: &'a A) -> Self {
        Self {
            algorithm,
            invariants: Vec::new(),
            max_states: 1_000_000,
            enable_crashes: false,
            stop_at_first_violation: true,
            check_deadlock: true,
            symmetry: false,
            threads: 1,
            #[cfg(feature = "spill")]
            spill_dir: None,
        }
    }

    /// Installs an invariant to check on every reachable state.
    #[must_use]
    pub fn with_invariant(mut self, invariant: Invariant<A>) -> Self {
        self.invariants.push(invariant);
        self
    }

    /// Installs the two invariants the paper model checks: mutual exclusion
    /// and overflow freedom (with the bounds precomputed for this checker's
    /// algorithm — the per-state register-list rebuild of the generic
    /// [`Invariant::register_bounds`] dominates multi-million-state runs).
    #[must_use]
    pub fn with_paper_invariants(self) -> Self {
        let bounds = Invariant::register_bounds_for(self.algorithm);
        self.with_invariant(Invariant::mutual_exclusion())
            .with_invariant(bounds)
    }

    /// Caps the number of distinct states explored.
    #[must_use]
    pub fn with_max_states(mut self, max_states: usize) -> Self {
        self.max_states = max_states;
        self
    }

    /// Also explores crash/restart transitions (paper assumptions 1.5–1.7).
    #[must_use]
    pub fn with_crashes(mut self, enabled: bool) -> Self {
        self.enable_crashes = enabled;
        self
    }

    /// Runs the exploration with `threads` worker threads (clamped to ≥ 1;
    /// default 1, which executes inline without spawning).
    ///
    /// The search is level-synchronous and its reductions deterministic, so
    /// for a complete (non-truncated) exploration the report — `states`,
    /// `canonical_states`, `transitions`, `max_depth`, `frontier_digest`,
    /// the violation verdict and its trace — is **bit-identical for every
    /// thread count**.  Budget-truncated runs report the same `truncated`
    /// verdict at any thread count; their counts are exact at `threads == 1`
    /// and overshoot by at most one state's successors per worker otherwise.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Compresses the visited set orbit-wise under the algorithm's symmetry
    /// group ([`Algorithm::symmetry`]): one canonical representative per
    /// orbit plus a bitmap of visited variants.  The search itself is the
    /// exact concrete BFS — states, transitions, verdicts and traces are
    /// identical to the unreduced run — only resident memory shrinks (up to
    /// the group order) and [`ExplorationReport::canonical_states`] reports
    /// the orbit count.  No-op when the algorithm declares no symmetry or
    /// its group exceeds [`crate::canon::MAX_GROUP_ORDER`] elements.
    #[must_use]
    pub fn with_symmetry_reduction(mut self, enabled: bool) -> Self {
        self.symmetry = enabled;
        self
    }

    /// Spills sealed visited-set chunks to temporary files under `dir`
    /// (`spill` cargo feature): the padded-mode sweeps trade read latency
    /// for resident memory.  Each stripe of the sharded store gets its own
    /// spill file.
    #[cfg(feature = "spill")]
    #[must_use]
    pub fn with_spill_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }

    /// Keep exploring after the first violation (collect all of them).
    #[must_use]
    pub fn collect_all_violations(mut self) -> Self {
        self.stop_at_first_violation = false;
        self
    }

    /// Disables deadlock reporting (useful for specs whose processes may
    /// legitimately all block, which none of the shipped specs do).
    #[must_use]
    pub fn without_deadlock_check(mut self) -> Self {
        self.check_deadlock = false;
        self
    }

    fn build_engine(&self) -> Engine<'_, A> {
        let codec = StateCodec::new(self.algorithm);
        let canon = if self.symmetry {
            self.algorithm
                .symmetry()
                .filter(|group| group.order() > 1 && group.order() <= crate::canon::MAX_GROUP_ORDER)
                .map(|group| Canonicalizer::new(&codec, group))
        } else {
            None
        };
        let stride = codec.words_per_state();
        let make_shard = || {
            #[cfg(feature = "spill")]
            let store = match &self.spill_dir {
                Some(dir) => {
                    Stripe::with_spill_dir(stride, dir).expect("failed to create the spill stripe")
                }
                None => Stripe::new(stride),
            };
            #[cfg(not(feature = "spill"))]
            let store = Stripe::new(stride);
            Mutex::new(Shard {
                store,
                masks: Vec::new(),
                log: Vec::new(),
                parent: Vec::new(),
                level_links: HashMap::new(),
            })
        };
        Engine {
            alg: self.algorithm,
            invariants: &self.invariants,
            registers: self.algorithm.registers(),
            codec,
            canon,
            shards: (0..crate::store::STRIPE_COUNT).map(|_| make_shard()).collect(),
            count: AtomicUsize::new(0),
            max_states: self.max_states,
            enable_crashes: self.enable_crashes,
            check_deadlock: self.check_deadlock,
            processes: self.algorithm.processes(),
        }
    }

    /// Runs the exhaustive exploration.
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn run(self) -> ExplorationReport {
        let alg = self.algorithm;
        let n = alg.processes();
        assert!(n < (1 << 16), "pid lanes in parent links are 16 bits");
        let threads = self.threads;
        let engine = self.build_engine();
        let stride = engine.codec.words_per_state();

        let mut report = ExplorationReport {
            algorithm: alg.name().to_string(),
            states: 0,
            canonical_states: 0,
            transitions: 0,
            max_depth: 0,
            truncated: false,
            symmetry_order: engine.canon.as_ref().map_or(1, Canonicalizer::order),
            threads,
            frontier_digest: 0,
            deadlocks: Vec::new(),
            violations: Vec::new(),
        };

        // Seed the search with the initial state (level 0).
        let initial = alg.initial_state();
        let (init_code, init_variant) = engine.factor(&initial);
        let init = engine.insert(&init_code, init_variant, Shard::ROOT, 0);
        let mut digest = fnv1a(
            FNV_OFFSET_BASIS,
            &[engine.state_hash(&init_code, init_variant), 1],
        );
        let mut frontier = Frontier::new(stride);
        frontier.push(init.id, init_variant, init_code.as_slice());

        // Check invariants on the initial state too.
        for invariant in &self.invariants {
            if !invariant.holds(alg, &initial) {
                report.violations.push(Violation {
                    invariant: invariant.name().to_string(),
                    depth: 0,
                    trace: self.rebuild_trace(&engine, init.id),
                });
            }
        }
        if !report.violations.is_empty() && self.stop_at_first_violation {
            report.states = 1;
            report.canonical_states = 1;
            report.frontier_digest = digest;
            return report;
        }

        let mut outs: Vec<WorkerOut> = (0..threads).map(|_| WorkerOut::new(stride)).collect();
        let mut depth: u32 = 0; // depth of the states in `frontier`
        let mut stopped_by_finding = false;

        while !frontier.is_empty() {
            engine.clear_level_links();
            for out in &mut outs {
                out.reset();
            }
            let cursor = AtomicUsize::new(0);
            if threads == 1 {
                engine.run_level(&frontier, &cursor, &mut outs[0]);
            } else {
                let engine_ref = &engine;
                let frontier_ref = &frontier;
                let cursor_ref = &cursor;
                std::thread::scope(|scope| {
                    for out in &mut outs {
                        scope.spawn(move || engine_ref.run_level(frontier_ref, cursor_ref, out));
                    }
                });
            }

            // Level barrier: deterministic reduction of the workers' outputs.
            let mut level_sum = 0u64;
            let mut level_inserted = 0u64;
            let mut processed = 0u64;
            let mut budget_hit = false;
            for out in &mut outs {
                report.transitions += out.transitions as usize;
                level_sum = level_sum.wrapping_add(out.digest_sum);
                level_inserted += out.inserted;
                processed += out.processed;
                budget_hit |= out.budget_hit;
            }
            if processed > 0 {
                report.max_depth = depth as usize;
            }
            if level_inserted > 0 {
                digest = fnv1a(digest, &[level_sum, level_inserted]);
            }

            // Violations: states inserted this level sit at depth + 1.  The
            // reported "first" violation is the deterministic minimum by
            // (depth, canonical code, variant, invariant order) — depth is
            // minimal by level synchrony, the rest by explicit selection.
            let mut candidates: Vec<Candidate> =
                outs.iter_mut().flat_map(|o| o.violations.drain(..)).collect();
            if !candidates.is_empty() {
                candidates.sort_by(|a, b| {
                    (&a.key, a.variant, a.invariant).cmp(&(&b.key, b.variant, b.invariant))
                });
                if self.stop_at_first_violation {
                    let first = &candidates[0];
                    let chosen: Vec<&Candidate> = candidates
                        .iter()
                        .filter(|c| c.key == first.key && c.variant == first.variant)
                        .collect();
                    for c in chosen {
                        report.violations.push(Violation {
                            invariant: self.invariants[c.invariant].name().to_string(),
                            depth: depth as usize + 1,
                            trace: self.rebuild_trace(&engine, c.id),
                        });
                    }
                    stopped_by_finding = true;
                } else {
                    for c in &candidates {
                        report.violations.push(Violation {
                            invariant: self.invariants[c.invariant].name().to_string(),
                            depth: depth as usize + 1,
                            trace: self.rebuild_trace(&engine, c.id),
                        });
                    }
                }
            }

            // Deadlocks, in deterministic (depth, canonical code) order.
            let mut deadlocks: Vec<DeadlockHit> =
                outs.iter_mut().flat_map(|o| o.deadlocks.drain(..)).collect();
            if !deadlocks.is_empty() {
                deadlocks.sort_by(|a, b| (&a.key, a.variant).cmp(&(&b.key, b.variant)));
                for d in deadlocks {
                    report.deadlocks.push(d.render);
                }
                if self.stop_at_first_violation {
                    stopped_by_finding = true;
                }
            }

            if stopped_by_finding {
                break;
            }
            let count = engine.count.load(Ordering::Relaxed); // mem: explorer-frontier
            if budget_hit || count >= engine.max_states {
                report.truncated = true;
                break;
            }

            // Merge the per-worker next-level buffers and advance.
            frontier.clear();
            for out in &mut outs {
                frontier.append(&mut out.next);
            }
            depth += 1;
        }

        report.states = engine.state_count();
        report.canonical_states = engine.canonical_count();
        report.frontier_digest = digest;
        report
    }

    /// Rebuilds the path from the initial state to global id `id` by
    /// decoding the stored codes along the parent chain.
    fn rebuild_trace(&self, engine: &Engine<'_, A>, id: u32) -> Vec<TraceStep> {
        let mut steps = Vec::new();
        let mut cursor = id;
        loop {
            let packed = engine.parent_of(cursor);
            let is_root = packed & Shard::ROOT != 0;
            let (pid, crash) = if is_root {
                (None, false)
            } else {
                (
                    Some(((packed >> 32) & 0xFFFF) as usize),
                    packed & (1 << 48) != 0,
                )
            };
            let state = engine.decode(cursor);
            let label = pid
                .map(|p| self.algorithm.pc_label(state.pc(p)).to_string())
                .unwrap_or_else(|| "init".to_string());
            steps.push(TraceStep {
                pid,
                crash,
                label,
                state: state.render(&engine.registers),
            });
            if is_root {
                break;
            }
            cursor = (packed & 0xFFFF_FFFF) as u32;
        }
        steps.reverse();
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bakery_spec::{BakeryPlusPlusSpec, BakerySpec, PetersonSpec, RegisterSemantics, TicketSpec};

    #[test]
    fn peterson_satisfies_mutual_exclusion_exhaustively() {
        let spec = PetersonSpec::new();
        let report = ModelChecker::new(&spec).with_paper_invariants().run();
        assert!(report.holds(), "{report}");
        assert!(report.states > 10);
        assert!(!report.truncated);
        assert_eq!(report.symmetry_order, 1);
        assert_eq!(report.threads, 1);
    }

    #[test]
    fn bakery_pp_theorem_no_overflow_and_mutual_exclusion() {
        // Experiment E2, the paper's TLC result: exhaustive for N=2, M=3.
        let spec = BakeryPlusPlusSpec::new(2, 3);
        let report = ModelChecker::new(&spec).with_paper_invariants().run();
        assert!(report.holds(), "{report}");
        assert!(!report.truncated, "state space must be finite and fully explored");
        assert!(report.states > 100);
    }

    #[test]
    fn bakery_pp_holds_under_flicker_reads() {
        let spec = BakeryPlusPlusSpec::new(2, 2).with_semantics(RegisterSemantics::Safe);
        let report = ModelChecker::new(&spec).with_paper_invariants().run();
        assert!(report.holds(), "{report}");
    }

    #[test]
    fn bakery_pp_holds_with_crash_faults() {
        let spec = BakeryPlusPlusSpec::new(2, 2);
        let report = ModelChecker::new(&spec)
            .with_paper_invariants()
            .with_crashes(true)
            .run();
        assert!(report.holds(), "{report}");
    }

    #[test]
    fn symmetry_compression_is_search_invisible() {
        // The orbit-wise visited set must change nothing about the search:
        // same states, same transitions, same depth, same verdict — only
        // the canonical (orbit) count differs from the state count.
        let spec = BakeryPlusPlusSpec::new(2, 3);
        let plain = ModelChecker::new(&spec).with_paper_invariants().run();
        let reduced = ModelChecker::new(&spec)
            .with_paper_invariants()
            .with_symmetry_reduction(true)
            .run();
        assert!(plain.holds() && reduced.holds(), "{plain}\n{reduced}");
        assert!(!reduced.truncated);
        assert_eq!(reduced.symmetry_order, 2);
        assert_eq!(reduced.states, plain.states);
        assert_eq!(reduced.transitions, plain.transitions);
        assert_eq!(reduced.max_depth, plain.max_depth);
        assert_eq!(plain.canonical_states, plain.states);
        assert!(
            reduced.canonical_states < reduced.states,
            "orbits ({}) must be fewer than states ({})",
            reduced.canonical_states,
            reduced.states
        );
        // Orbits have at most |G| members.
        assert!(reduced.canonical_states * reduced.symmetry_order >= reduced.states);
    }

    #[test]
    fn symmetry_compression_with_crashes_preserves_the_verdict() {
        let spec = BakeryPlusPlusSpec::new(2, 2);
        let plain = ModelChecker::new(&spec)
            .with_paper_invariants()
            .with_crashes(true)
            .run();
        let reduced = ModelChecker::new(&spec)
            .with_paper_invariants()
            .with_crashes(true)
            .with_symmetry_reduction(true)
            .run();
        assert!(reduced.holds(), "{reduced}");
        assert!(!reduced.truncated);
        assert_eq!(reduced.states, plain.states);
        assert_eq!(reduced.transitions, plain.transitions);
    }

    #[test]
    fn symmetry_compression_still_finds_the_classic_overflow() {
        // The compressed store must reach the same NoOverflow violation at
        // the same depth as the plain store.
        let spec = BakerySpec::new(2, 3);
        let plain = ModelChecker::new(&spec)
            .with_paper_invariants()
            .with_max_states(2_000_000)
            .run();
        let reduced = ModelChecker::new(&spec)
            .with_paper_invariants()
            .with_symmetry_reduction(true)
            .with_max_states(2_000_000)
            .run();
        assert!(!reduced.holds(), "classic Bakery must overflow: {reduced}");
        assert_eq!(reduced.violated_invariants(), vec!["NoOverflow".to_string()]);
        assert_eq!(reduced.violations[0].depth, plain.violations[0].depth);
        assert_eq!(reduced.states, plain.states);
    }

    #[test]
    fn exploration_digest_is_deterministic() {
        let spec = BakeryPlusPlusSpec::new(2, 3);
        let run = || {
            ModelChecker::new(&spec)
                .with_paper_invariants()
                .with_symmetry_reduction(true)
                .run()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.states, b.states);
        assert_eq!(a.frontier_digest, b.frontier_digest);
        assert_ne!(a.frontier_digest, 0);
    }

    #[test]
    fn bounded_classic_bakery_overflow_is_reachable() {
        // The other half of E2: with the same bound, the classic Bakery can
        // reach a state that stores a value above M.
        // Both paper invariants are installed; breadth-first search finds the
        // shallowest violation first, so the assertion below also shows that
        // the *first* thing to go wrong in a bounded classic Bakery is the
        // overflow — mutual exclusion only breaks downstream of it.
        let spec = BakerySpec::new(2, 3);
        let report = ModelChecker::new(&spec)
            .with_paper_invariants()
            .with_max_states(2_000_000)
            .run();
        assert!(!report.holds(), "classic Bakery must overflow: {report}");
        assert_eq!(report.violated_invariants(), vec!["NoOverflow".to_string()]);
        let violation = &report.violations[0];
        assert!(violation.depth > 0);
        assert!(!violation.trace.is_empty());
        assert!(violation.to_string().contains("NoOverflow"));
    }

    #[test]
    fn corrupted_registers_break_classic_bakery_mutual_exclusion() {
        // Continue exploring *past* the overflow: once a register has been
        // corrupted by the bound, the classic Bakery really does admit two
        // processes to the critical section — the §3 malfunction end to end.
        let spec = BakerySpec::new(2, 3);
        let report = ModelChecker::new(&spec)
            .with_invariant(Invariant::mutual_exclusion())
            .with_max_states(500_000)
            .run();
        assert!(
            report
                .violated_invariants()
                .contains(&"MutualExclusion".to_string()),
            "expected a downstream mutual exclusion violation: {report}"
        );
    }

    #[test]
    fn classic_bakery_mutual_exclusion_holds_while_registers_suffice() {
        // With a bound far larger than anything reachable in the explored
        // region, the original algorithm is correct (Lamport 1974): no mutual
        // exclusion violation exists anywhere in the explored state space.
        let spec = BakerySpec::new(2, 1_000_000);
        let report = ModelChecker::new(&spec)
            .with_invariant(Invariant::mutual_exclusion())
            .with_max_states(150_000)
            .run();
        assert!(
            report.violations.is_empty(),
            "mutual exclusion must hold: {report}"
        );
        assert!(report.truncated, "the unbounded-ticket space is infinite");
    }

    #[test]
    fn ticket_lock_first_failure_is_the_overflow() {
        // The counter-based lock inherits the unbounded-growth problem: the
        // first invariant to fail (shallowest violation, BFS order) is
        // NoOverflow.  Mutual exclusion holds up to that point.
        let spec = TicketSpec::new(2, 4);
        let report = ModelChecker::new(&spec)
            .with_paper_invariants()
            .with_max_states(200_000)
            .run();
        assert!(!report.holds());
        assert_eq!(report.violated_invariants(), vec!["NoOverflow".to_string()]);
    }

    #[test]
    fn max_states_truncation_is_reported() {
        let spec = BakeryPlusPlusSpec::new(3, 3);
        let report = ModelChecker::new(&spec)
            .with_paper_invariants()
            .with_max_states(500)
            .run();
        assert!(report.truncated);
        assert!(report.states >= 500);
    }

    #[test]
    fn report_renders_summary() {
        let spec = PetersonSpec::new();
        let report = ModelChecker::new(&spec).with_paper_invariants().run();
        let text = report.to_string();
        assert!(text.contains("peterson"));
        assert!(text.contains("all invariants hold"));
        let json = bakery_json::to_string(&report).unwrap();
        assert!(json.contains("\"states\""));
        assert!(json.contains("\"symmetry_order\""));
        assert!(json.contains("\"threads\""));
    }

    #[test]
    fn violating_run_is_thread_count_invariant() {
        // The deterministic violation selection: the reported first
        // violation (invariant, depth, trace) and the counts must not
        // depend on the worker count even for a run that stops early.
        let spec = BakerySpec::new(2, 3);
        let run = |threads: usize| {
            ModelChecker::new(&spec)
                .with_paper_invariants()
                .with_max_states(2_000_000)
                .with_threads(threads)
                .run()
        };
        let seq = run(1);
        for threads in [2, 3] {
            let par = run(threads);
            assert_eq!(par.states, seq.states, "threads {threads}");
            assert_eq!(par.transitions, seq.transitions, "threads {threads}");
            assert_eq!(par.frontier_digest, seq.frontier_digest, "threads {threads}");
            assert_eq!(par.violations.len(), seq.violations.len());
            assert_eq!(par.violations[0].invariant, seq.violations[0].invariant);
            assert_eq!(par.violations[0].depth, seq.violations[0].depth);
            let render = |v: &Violation| v.trace.iter().map(|s| s.state.clone()).collect::<Vec<_>>();
            assert_eq!(
                render(&par.violations[0]),
                render(&seq.violations[0]),
                "threads {threads}: counterexample trace must be schedule-independent"
            );
        }
    }

    #[cfg(feature = "spill")]
    #[test]
    fn spilled_exploration_matches_in_memory() {
        let spec = BakeryPlusPlusSpec::new(2, 3);
        let in_memory = ModelChecker::new(&spec).with_paper_invariants().run();
        let spilled = ModelChecker::new(&spec)
            .with_paper_invariants()
            .with_spill_dir(std::env::temp_dir())
            .run();
        assert!(spilled.holds(), "{spilled}");
        assert_eq!(spilled.states, in_memory.states);
        assert_eq!(spilled.frontier_digest, in_memory.frontier_digest);
    }
}
