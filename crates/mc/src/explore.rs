//! Breadth-first explicit-state exploration with invariant checking.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use bakery_sim::{Algorithm, Invariant, ProgState, RegisterSpec};

/// One step of a counterexample trace.
#[derive(Debug, Clone)]
pub struct TraceStep {
    /// The process that moved to reach this state (`None` for the initial
    /// state).
    pub pid: Option<usize>,
    /// `true` when the step was an injected crash rather than a program step.
    pub crash: bool,
    /// Program-counter label of the moving process after the step.
    pub label: String,
    /// Rendering of the state after the step.
    pub state: String,
}

/// An invariant violation together with its shortest counterexample.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Name of the violated invariant.
    pub invariant: String,
    /// Depth (number of steps from the initial state) of the violating state.
    pub depth: usize,
    /// Shortest trace from the initial state to the violation.
    pub trace: Vec<TraceStep>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "invariant {} violated at depth {}:",
            self.invariant, self.depth
        )?;
        for (i, step) in self.trace.iter().enumerate() {
            let actor = match (step.pid, step.crash) {
                (Some(pid), true) => format!("crash p{pid}"),
                (Some(pid), false) => format!("p{pid} -> {}", step.label),
                (None, _) => "initial".to_string(),
            };
            writeln!(f, "  {i:>3}: {actor:<28} {}", step.state)?;
        }
        Ok(())
    }
}

/// Statistics and findings of one exhaustive exploration.
#[derive(Debug, Clone)]
pub struct ExplorationReport {
    /// Name of the checked algorithm.
    pub algorithm: String,
    /// Number of distinct reachable states visited.
    pub states: usize,
    /// Number of transitions examined.
    pub transitions: usize,
    /// Depth of the deepest visited state (BFS level).
    pub max_depth: usize,
    /// True when exploration stopped early because `max_states` was reached.
    pub truncated: bool,
    /// Renderings of reachable deadlock states (no process enabled).
    pub deadlocks: Vec<String>,
    /// Invariant violations with shortest counterexamples.
    pub violations: Vec<Violation>,
}

bakery_json::json_object!(TraceStep { pid, crash, label, state });
bakery_json::json_object!(Violation { invariant, depth, trace });
bakery_json::json_object!(ExplorationReport {
    algorithm,
    states,
    transitions,
    max_depth,
    truncated,
    deadlocks,
    violations,
});

impl ExplorationReport {
    /// True when no invariant violation and no deadlock was found.
    #[must_use]
    pub fn holds(&self) -> bool {
        self.violations.is_empty() && self.deadlocks.is_empty()
    }

    /// Names of the violated invariants (deduplicated, in discovery order).
    #[must_use]
    pub fn violated_invariants(&self) -> Vec<String> {
        let mut names = Vec::new();
        for v in &self.violations {
            if !names.contains(&v.invariant) {
                names.push(v.invariant.clone());
            }
        }
        names
    }
}

impl fmt::Display for ExplorationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} states, {} transitions, depth {}{}",
            self.algorithm,
            self.states,
            self.transitions,
            self.max_depth,
            if self.truncated { " (truncated)" } else { "" }
        )?;
        if self.deadlocks.is_empty() && self.violations.is_empty() {
            writeln!(f, "  all invariants hold; no deadlock")?;
        }
        for d in &self.deadlocks {
            writeln!(f, "  deadlock: {d}")?;
        }
        for v in &self.violations {
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

/// Breadth-first model checker over an [`Algorithm`] specification.
pub struct ModelChecker<'a, A: Algorithm + ?Sized> {
    algorithm: &'a A,
    invariants: Vec<Invariant<A>>,
    max_states: usize,
    enable_crashes: bool,
    stop_at_first_violation: bool,
    check_deadlock: bool,
}

impl<'a, A: Algorithm + ?Sized> ModelChecker<'a, A> {
    /// Creates a checker for `algorithm` with no invariants installed and a
    /// default budget of one million states.
    #[must_use]
    pub fn new(algorithm: &'a A) -> Self {
        Self {
            algorithm,
            invariants: Vec::new(),
            max_states: 1_000_000,
            enable_crashes: false,
            stop_at_first_violation: true,
            check_deadlock: true,
        }
    }

    /// Installs an invariant to check on every reachable state.
    #[must_use]
    pub fn with_invariant(mut self, invariant: Invariant<A>) -> Self {
        self.invariants.push(invariant);
        self
    }

    /// Installs the two invariants the paper model checks: mutual exclusion
    /// and overflow freedom.
    #[must_use]
    pub fn with_paper_invariants(self) -> Self {
        self.with_invariant(Invariant::mutual_exclusion())
            .with_invariant(Invariant::register_bounds())
    }

    /// Caps the number of distinct states explored.
    #[must_use]
    pub fn with_max_states(mut self, max_states: usize) -> Self {
        self.max_states = max_states;
        self
    }

    /// Also explores crash/restart transitions (paper assumptions 1.5–1.7).
    #[must_use]
    pub fn with_crashes(mut self, enabled: bool) -> Self {
        self.enable_crashes = enabled;
        self
    }

    /// Keep exploring after the first violation (collect all of them).
    #[must_use]
    pub fn collect_all_violations(mut self) -> Self {
        self.stop_at_first_violation = false;
        self
    }

    /// Disables deadlock reporting (useful for specs whose processes may
    /// legitimately all block, which none of the shipped specs do).
    #[must_use]
    pub fn without_deadlock_check(mut self) -> Self {
        self.check_deadlock = false;
        self
    }

    /// Runs the exhaustive exploration.
    #[must_use]
    pub fn run(self) -> ExplorationReport {
        let alg = self.algorithm;
        let n = alg.processes();
        let registers: Vec<RegisterSpec> = alg.registers();

        // State store: index -> state, plus dedup map and BFS bookkeeping.
        let mut states: Vec<ProgState> = Vec::new();
        let mut index: HashMap<ProgState, usize> = HashMap::new();
        // parent[i] = (parent index, pid, was_crash)
        let mut parent: Vec<Option<(usize, usize, bool)>> = Vec::new();
        let mut depth: Vec<usize> = Vec::new();
        let mut queue: VecDeque<usize> = VecDeque::new();

        let mut report = ExplorationReport {
            algorithm: alg.name().to_string(),
            states: 0,
            transitions: 0,
            max_depth: 0,
            truncated: false,
            deadlocks: Vec::new(),
            violations: Vec::new(),
        };

        let initial = alg.initial_state();
        states.push(initial.clone());
        index.insert(initial, 0);
        parent.push(None);
        depth.push(0);
        queue.push_back(0);

        // Check invariants on the initial state too.
        self.check_state(&states, &parent, &depth, 0, &registers, &mut report);
        if !report.violations.is_empty() && self.stop_at_first_violation {
            report.states = 1;
            return report;
        }

        let mut successors = Vec::new();
        while let Some(current) = queue.pop_front() {
            let state = states[current].clone();
            let current_depth = depth[current];
            report.max_depth = report.max_depth.max(current_depth);

            let mut any_enabled = false;
            for pid in 0..n {
                successors.clear();
                alg.successors(&state, pid, &mut successors);
                if !successors.is_empty() {
                    any_enabled = true;
                }
                let crash_succ = if self.enable_crashes {
                    alg.crash(&state, pid)
                } else {
                    None
                };
                for (is_crash, next) in successors
                    .drain(..)
                    .map(|s| (false, s))
                    .chain(crash_succ.into_iter().map(|s| (true, s)))
                {
                    report.transitions += 1;
                    let next_index = match index.get(&next) {
                        Some(&existing) => existing,
                        None => {
                            let new_index = states.len();
                            states.push(next.clone());
                            index.insert(next, new_index);
                            parent.push(Some((current, pid, is_crash)));
                            depth.push(current_depth + 1);
                            queue.push_back(new_index);
                            let violated = self.check_state(
                                &states,
                                &parent,
                                &depth,
                                new_index,
                                &registers,
                                &mut report,
                            );
                            if violated && self.stop_at_first_violation {
                                report.states = states.len();
                                return report;
                            }
                            new_index
                        }
                    };
                    let _ = next_index;
                }
            }

            if self.check_deadlock && !any_enabled {
                report
                    .deadlocks
                    .push(states[current].render(&registers));
                if self.stop_at_first_violation {
                    report.states = states.len();
                    return report;
                }
            }

            if states.len() >= self.max_states {
                report.truncated = true;
                break;
            }
        }

        report.states = states.len();
        report
    }

    /// Evaluates every invariant on state `idx`; returns true when at least
    /// one was violated (and records the counterexample).
    fn check_state(
        &self,
        states: &[ProgState],
        parent: &[Option<(usize, usize, bool)>],
        depth: &[usize],
        idx: usize,
        registers: &[RegisterSpec],
        report: &mut ExplorationReport,
    ) -> bool {
        let mut violated = false;
        for invariant in &self.invariants {
            if !invariant.holds(self.algorithm, &states[idx]) {
                violated = true;
                report.violations.push(Violation {
                    invariant: invariant.name().to_string(),
                    depth: depth[idx],
                    trace: self.rebuild_trace(states, parent, idx, registers),
                });
            }
        }
        violated
    }

    /// Rebuilds the path from the initial state to `idx`.
    fn rebuild_trace(
        &self,
        states: &[ProgState],
        parent: &[Option<(usize, usize, bool)>],
        idx: usize,
        registers: &[RegisterSpec],
    ) -> Vec<TraceStep> {
        let mut steps = Vec::new();
        let mut cursor = Some(idx);
        while let Some(i) = cursor {
            let (pid, crash) = match parent[i] {
                Some((_, pid, crash)) => (Some(pid), crash),
                None => (None, false),
            };
            let label = pid
                .map(|p| self.algorithm.pc_label(states[i].pc(p)).to_string())
                .unwrap_or_else(|| "init".to_string());
            steps.push(TraceStep {
                pid,
                crash,
                label,
                state: states[i].render(registers),
            });
            cursor = parent[i].map(|(parent_idx, _, _)| parent_idx);
        }
        steps.reverse();
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bakery_spec::{BakeryPlusPlusSpec, BakerySpec, PetersonSpec, SafeReadMode, TicketSpec};

    #[test]
    fn peterson_satisfies_mutual_exclusion_exhaustively() {
        let spec = PetersonSpec::new();
        let report = ModelChecker::new(&spec).with_paper_invariants().run();
        assert!(report.holds(), "{report}");
        assert!(report.states > 10);
        assert!(!report.truncated);
    }

    #[test]
    fn bakery_pp_theorem_no_overflow_and_mutual_exclusion() {
        // Experiment E2, the paper's TLC result: exhaustive for N=2, M=3.
        let spec = BakeryPlusPlusSpec::new(2, 3);
        let report = ModelChecker::new(&spec).with_paper_invariants().run();
        assert!(report.holds(), "{report}");
        assert!(!report.truncated, "state space must be finite and fully explored");
        assert!(report.states > 100);
    }

    #[test]
    fn bakery_pp_holds_under_flicker_reads() {
        let spec = BakeryPlusPlusSpec::new(2, 2).with_read_mode(SafeReadMode::Flicker);
        let report = ModelChecker::new(&spec).with_paper_invariants().run();
        assert!(report.holds(), "{report}");
    }

    #[test]
    fn bakery_pp_holds_with_crash_faults() {
        let spec = BakeryPlusPlusSpec::new(2, 2);
        let report = ModelChecker::new(&spec)
            .with_paper_invariants()
            .with_crashes(true)
            .run();
        assert!(report.holds(), "{report}");
    }

    #[test]
    fn bounded_classic_bakery_overflow_is_reachable() {
        // The other half of E2: with the same bound, the classic Bakery can
        // reach a state that stores a value above M.
        // Both paper invariants are installed; breadth-first search finds the
        // shallowest violation first, so the assertion below also shows that
        // the *first* thing to go wrong in a bounded classic Bakery is the
        // overflow — mutual exclusion only breaks downstream of it.
        let spec = BakerySpec::new(2, 3);
        let report = ModelChecker::new(&spec)
            .with_paper_invariants()
            .with_max_states(2_000_000)
            .run();
        assert!(!report.holds(), "classic Bakery must overflow: {report}");
        assert_eq!(report.violated_invariants(), vec!["NoOverflow".to_string()]);
        let violation = &report.violations[0];
        assert!(violation.depth > 0);
        assert!(!violation.trace.is_empty());
        assert!(violation.to_string().contains("NoOverflow"));
    }

    #[test]
    fn corrupted_registers_break_classic_bakery_mutual_exclusion() {
        // Continue exploring *past* the overflow: once a register has been
        // corrupted by the bound, the classic Bakery really does admit two
        // processes to the critical section — the §3 malfunction end to end.
        let spec = BakerySpec::new(2, 3);
        let report = ModelChecker::new(&spec)
            .with_invariant(Invariant::mutual_exclusion())
            .with_max_states(500_000)
            .run();
        assert!(
            report
                .violated_invariants()
                .contains(&"MutualExclusion".to_string()),
            "expected a downstream mutual exclusion violation: {report}"
        );
    }

    #[test]
    fn classic_bakery_mutual_exclusion_holds_while_registers_suffice() {
        // With a bound far larger than anything reachable in the explored
        // region, the original algorithm is correct (Lamport 1974): no mutual
        // exclusion violation exists anywhere in the explored state space.
        let spec = BakerySpec::new(2, 1_000_000);
        let report = ModelChecker::new(&spec)
            .with_invariant(Invariant::mutual_exclusion())
            .with_max_states(150_000)
            .run();
        assert!(
            report.violations.is_empty(),
            "mutual exclusion must hold: {report}"
        );
        assert!(report.truncated, "the unbounded-ticket space is infinite");
    }

    #[test]
    fn ticket_lock_first_failure_is_the_overflow() {
        // The counter-based lock inherits the unbounded-growth problem: the
        // first invariant to fail (shallowest violation, BFS order) is
        // NoOverflow.  Mutual exclusion holds up to that point.
        let spec = TicketSpec::new(2, 4);
        let report = ModelChecker::new(&spec)
            .with_paper_invariants()
            .with_max_states(200_000)
            .run();
        assert!(!report.holds());
        assert_eq!(report.violated_invariants(), vec!["NoOverflow".to_string()]);
    }

    #[test]
    fn max_states_truncation_is_reported() {
        let spec = BakeryPlusPlusSpec::new(3, 3);
        let report = ModelChecker::new(&spec)
            .with_paper_invariants()
            .with_max_states(500)
            .run();
        assert!(report.truncated);
        assert!(report.states >= 500);
    }

    #[test]
    fn report_renders_summary() {
        let spec = PetersonSpec::new();
        let report = ModelChecker::new(&spec).with_paper_invariants().run();
        let text = report.to_string();
        assert!(text.contains("peterson"));
        assert!(text.contains("all invariants hold"));
        let json = bakery_json::to_string(&report).unwrap();
        assert!(json.contains("\"states\""));
    }
}
