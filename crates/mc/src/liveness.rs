//! Starvation-cycle search: the liveness side of the paper's Section 6.3.
//!
//! The paper argues that a process can in principle be parked forever at
//! Bakery++'s `L1` guard: two fast processes keep driving the ticket values up
//! to `M`, reset, and climb again, while an "incredibly slow" process never
//! observes a legitimate situation.  In model-checking terms that scenario is
//! a **cycle in the reachable state graph in which the victim satisfies some
//! "still waiting" predicate throughout and only the other processes move** —
//! reachable under an unfair scheduler, impossible to escape without a
//! fairness assumption.
//!
//! [`find_starvation_cycle_where`] searches for exactly that witness under an
//! arbitrary predicate; [`find_starvation_cycle`] uses the algorithm's own
//! trying-region predicate.  Finding a witness does not contradict the paper —
//! Bakery itself already lacks a liveness guarantee, as Section 6.3 notes.
//! The interesting contrast (experiment **E5**) is *which* waiting positions
//! are protected: a Bakery/Bakery++ process that has **completed its doorway**
//! can never be overtaken forever (FCFS), whereas a process parked at `L1`
//! before announcing itself can be.

use std::collections::{HashMap, VecDeque};

use bakery_sim::{Algorithm, ProgState};

/// A starvation witness: a reachable cycle during which the victim process
/// satisfies the waiting predicate and never takes a step.
#[derive(Debug, Clone)]
pub struct StarvationWitness {
    /// The starved process.
    pub victim: usize,
    /// BFS depth of the state where the cycle was entered.
    pub prefix_length: usize,
    /// Renderings of the states on the cycle.
    pub cycle: Vec<String>,
}

impl StarvationWitness {
    /// Number of states on the cycle.
    #[must_use]
    pub fn cycle_length(&self) -> usize {
        self.cycle.len()
    }
}

/// Searches for a reachable cycle in which process `victim` continuously
/// satisfies its trying-region predicate ([`Algorithm::is_trying`]) while only
/// other processes take steps.
#[must_use]
pub fn find_starvation_cycle<A: Algorithm + ?Sized>(
    algorithm: &A,
    victim: usize,
    max_states: usize,
) -> Option<StarvationWitness> {
    find_starvation_cycle_where(algorithm, victim, max_states, |alg, state| {
        alg.is_trying(state, victim)
    })
}

/// Like [`find_starvation_cycle`] but with a caller-supplied predicate that
/// defines which states count as "the victim is still waiting".
///
/// Returns `None` if no such cycle exists within the explored portion of the
/// state space (bounded by `max_states`).
#[must_use]
pub fn find_starvation_cycle_where<A, F>(
    algorithm: &A,
    victim: usize,
    max_states: usize,
    waiting: F,
) -> Option<StarvationWitness>
where
    A: Algorithm + ?Sized,
    F: Fn(&A, &ProgState) -> bool,
{
    let n = algorithm.processes();
    assert!(victim < n, "victim {victim} out of range");

    // Phase 1: build the reachable graph (bounded), remembering depth.
    let mut states: Vec<ProgState> = Vec::new();
    let mut index: HashMap<ProgState, usize> = HashMap::new();
    let mut depth: Vec<usize> = Vec::new();
    let mut edges: Vec<Vec<(usize, usize)>> = Vec::new(); // (pid, target)
    let mut queue: VecDeque<usize> = VecDeque::new();

    let initial = algorithm.initial_state();
    index.insert(initial.clone(), 0);
    states.push(initial);
    depth.push(0);
    edges.push(Vec::new());
    queue.push_back(0);

    let mut successors = Vec::new();
    while let Some(current) = queue.pop_front() {
        if states.len() >= max_states {
            break;
        }
        let state = states[current].clone();
        for pid in 0..n {
            successors.clear();
            algorithm.successors(&state, pid, &mut successors);
            for next in successors.drain(..) {
                let target = match index.get(&next) {
                    Some(&existing) => existing,
                    None => {
                        let new_index = states.len();
                        index.insert(next.clone(), new_index);
                        states.push(next);
                        depth.push(depth[current] + 1);
                        edges.push(Vec::new());
                        queue.push_back(new_index);
                        new_index
                    }
                };
                edges[current].push((pid, target));
            }
        }
    }

    // Phase 2: restrict to states where the victim is waiting and to edges
    // taken by other processes, then look for a cycle with an iterative DFS.
    let eligible: Vec<bool> = states
        .iter()
        .map(|s| waiting(algorithm, s))
        .collect();

    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }
    let mut color = vec![Color::White; states.len()];
    let registers = algorithm.registers();

    for start in 0..states.len() {
        if !eligible[start] || color[start] != Color::White {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        color[start] = Color::Grey;
        let mut path: Vec<usize> = vec![start];
        while let Some(&mut (node, ref mut edge_idx)) = stack.last_mut() {
            let restricted: Vec<usize> = edges[node]
                .iter()
                .filter(|(pid, target)| *pid != victim && eligible[*target])
                .map(|(_, target)| *target)
                .collect();
            if *edge_idx < restricted.len() {
                let target = restricted[*edge_idx];
                *edge_idx += 1;
                match color[target] {
                    Color::Grey => {
                        // Found a cycle: extract it from the current DFS path.
                        let cycle_start = path.iter().position(|&s| s == target).unwrap_or(0);
                        let cycle: Vec<String> = path[cycle_start..]
                            .iter()
                            .map(|&s| states[s].render(&registers))
                            .collect();
                        return Some(StarvationWitness {
                            victim,
                            prefix_length: depth[target],
                            cycle,
                        });
                    }
                    Color::White => {
                        color[target] = Color::Grey;
                        stack.push((target, 0));
                        path.push(target);
                    }
                    Color::Black => {}
                }
            } else {
                color[node] = Color::Black;
                stack.pop();
                path.pop();
            }
        }
    }

    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use bakery_spec::{pc, BakeryPlusPlusSpec, BakerySpec, PetersonSpec};

    #[test]
    fn bakery_pp_slow_process_can_be_starved_at_l1() {
        // The §6.3 scenario: two fast processes (0 and 1) can keep the slow
        // process 2 parked at L1 forever under an unfair scheduler.
        let spec = BakeryPlusPlusSpec::new(3, 2);
        let witness = find_starvation_cycle_where(&spec, 2, 150_000, |_, state| {
            state.pc(2) == pc::L1_SCAN
        });
        let witness = witness.expect("a starvation cycle at L1 should exist for M = 2");
        assert_eq!(witness.victim, 2);
        assert!(witness.cycle_length() >= 2);
    }

    #[test]
    fn any_trying_process_can_be_starved_by_an_unfair_scheduler() {
        // Even with a large bound, a process that has not yet announced itself
        // can be ignored forever — this is a property of unfair scheduling,
        // not of Bakery++ (Bakery behaves the same, §6.3).
        let spec = BakeryPlusPlusSpec::new(2, 10);
        let witness = find_starvation_cycle(&spec, 1, 100_000);
        assert!(witness.is_some());
    }

    #[test]
    fn bakery_ticket_holder_is_never_starved() {
        // FCFS at work: once the victim holds a ticket (doorway completed),
        // the other process cannot complete rounds forever — it must wait for
        // the victim at L3, so no cycle exists in the restricted graph.
        let n = 2;
        let spec = BakerySpec::new(n, 1_000_000);
        let number_idx_victim = n + 1; // number[1]
        let witness = find_starvation_cycle_where(&spec, 1, 120_000, |alg, state| {
            alg.is_trying(state, 1) && state.read(number_idx_victim) != 0
        });
        assert!(
            witness.is_none(),
            "a Bakery ticket holder must not be starvable: {witness:?}"
        );
    }

    #[test]
    fn bakery_pp_ticket_holder_below_the_bound_is_never_starved() {
        // The same FCFS protection carries over to Bakery++ once the doorway
        // is complete, as long as the held ticket is below M (a ticket equal
        // to M parks *other* processes at L1 instead, which is the situation
        // the admission guard exists to resolve).
        let n = 2;
        let bound = 4;
        let spec = BakeryPlusPlusSpec::new(n, bound);
        let number_idx_victim = n + 1; // number[1]
        let witness = find_starvation_cycle_where(&spec, 1, 150_000, |alg, state| {
            let ticket = state.read(number_idx_victim);
            alg.is_trying(state, 1)
                && ticket != 0
                && ticket < bound
                && state.pc(1) != pc::RESET_NUMBER
                && state.pc(1) != pc::WRITE_MAX
                && state.pc(1) != pc::CHECK_BOUND
        });
        assert!(
            witness.is_none(),
            "a Bakery++ ticket holder below M must not be starvable: {witness:?}"
        );
    }

    #[test]
    fn peterson_waiter_with_flag_raised_is_never_starved() {
        // Peterson's algorithm is starvation-free once the flag is raised: the
        // other process hands over the turn on its next attempt.
        let spec = PetersonSpec::new();
        let witness = find_starvation_cycle_where(&spec, 1, 50_000, |alg, state| {
            alg.is_trying(state, 1) && state.read(1) == 1 // flag[1] == 1
        });
        assert!(witness.is_none(), "{witness:?}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn victim_must_be_a_valid_process() {
        let spec = BakeryPlusPlusSpec::new(2, 2);
        let _ = find_starvation_cycle(&spec, 5, 1_000);
    }
}
