//! Starvation-cycle search: the liveness side of the paper's Section 6.3.
//!
//! The paper argues that a process can in principle be parked forever at
//! Bakery++'s `L1` guard: two fast processes keep driving the ticket values up
//! to `M`, reset, and climb again, while an "incredibly slow" process never
//! observes a legitimate situation.  In model-checking terms that scenario is
//! a **cycle in the reachable state graph in which the victim satisfies some
//! "still waiting" predicate throughout and only the other processes move** —
//! reachable under an unfair scheduler, impossible to escape without a
//! fairness assumption.
//!
//! [`starvation_report_where`] searches for exactly that witness under an
//! arbitrary predicate and returns a [`LivenessReport`] that also says
//! whether the underlying graph construction **covered the whole reachable
//! state space or hit its budget**: a "no cycle" answer from a truncated
//! graph is evidence, not a proof, and the experiment tables (E5) print it
//! as a "bounded" verdict rather than an exhaustive one.  The
//! [`find_starvation_cycle`] / [`find_starvation_cycle_where`] wrappers keep
//! the original option-returning shape.
//!
//! Finding a witness does not contradict the paper — Bakery itself already
//! lacks a liveness guarantee, as Section 6.3 notes.  The interesting
//! contrast (experiment **E5**) is *which* waiting positions are protected: a
//! Bakery/Bakery++ process that has **completed its doorway** can never be
//! overtaken forever (FCFS), whereas a process parked at `L1` before
//! announcing itself can be.
//!
//! The reachable-graph phase stores packed [`crate::code::StateCode`]s in a
//! flat arena (the same compact plane the BFS explorer uses) instead of full
//! `ProgState` structs, so the budget can be raised substantially before
//! memory becomes the limit.  No symmetry reduction is applied here: the
//! waiting predicate pins a concrete victim, which process relabelling would
//! not preserve.
//!
//! The graph construction can run with several worker threads
//! ([`starvation_report_where_with_threads`]): each BFS level is expanded in
//! parallel (decode + successor enumeration + encode are the dominant cost
//! and are pure), then the per-head results are **merged in head order** by
//! one thread.  The merge replays exactly the insertion sequence of the
//! sequential loop, so arena ids, depths, edges, the truncation point and
//! therefore the DFS witness are bit-identical for every thread count.

use std::sync::Mutex;

use bakery_core::sync::{AtomicUsize, Ordering};
use bakery_sim::{Algorithm, ProgState};

use crate::code::{StateCode, StateCodec};
use crate::store::{CodeArena, CodeIndex};

/// A starvation witness: a reachable cycle during which the victim process
/// satisfies the waiting predicate and never takes a step.
#[derive(Debug, Clone)]
pub struct StarvationWitness {
    /// The starved process.
    pub victim: usize,
    /// BFS depth of the state where the cycle was entered.
    pub prefix_length: usize,
    /// Renderings of the states on the cycle.
    pub cycle: Vec<String>,
}

impl StarvationWitness {
    /// Number of states on the cycle.
    #[must_use]
    pub fn cycle_length(&self) -> usize {
        self.cycle.len()
    }
}

/// Outcome of a starvation-cycle search, including whether the search was
/// exhaustive: a liveness claim from a truncated graph must not be reported
/// as a proof.
#[derive(Debug, Clone)]
pub struct LivenessReport {
    /// The victim process the predicate pinned.
    pub victim: usize,
    /// States in the explored (possibly truncated) reachable graph.
    pub states: usize,
    /// True when the graph construction stopped at its state budget; a
    /// `witness == None` result is then *bounded evidence*, not a proof of
    /// starvation freedom.
    pub truncated: bool,
    /// The starvation cycle, when one exists in the explored graph.
    pub witness: Option<StarvationWitness>,
}

impl LivenessReport {
    /// True when the search proves no starvation cycle exists: none found
    /// *and* the whole (finite) state space was covered.
    #[must_use]
    pub fn proves_starvation_freedom(&self) -> bool {
        self.witness.is_none() && !self.truncated
    }

    /// Human-readable verdict for experiment tables: distinguishes an
    /// exhaustive "no cycle" proof from a budget-bounded one.
    #[must_use]
    pub fn verdict(&self) -> &'static str {
        match (&self.witness, self.truncated) {
            (Some(_), _) => "cycle found",
            (None, false) => "no cycle (exhaustive)",
            (None, true) => "no cycle (bounded)",
        }
    }
}

/// Searches for a reachable cycle in which process `victim` continuously
/// satisfies its trying-region predicate ([`Algorithm::is_trying`]) while only
/// other processes take steps.
#[must_use]
pub fn find_starvation_cycle<A: Algorithm + ?Sized>(
    algorithm: &A,
    victim: usize,
    max_states: usize,
) -> Option<StarvationWitness> {
    find_starvation_cycle_where(algorithm, victim, max_states, |alg, state| {
        alg.is_trying(state, victim)
    })
}

/// Like [`find_starvation_cycle`] but with a caller-supplied predicate that
/// defines which states count as "the victim is still waiting".
///
/// Returns `None` if no such cycle exists within the explored portion of the
/// state space (bounded by `max_states`); use [`starvation_report_where`]
/// when the caller needs to distinguish "proved absent" from "not found
/// within budget".
#[must_use]
pub fn find_starvation_cycle_where<A, F>(
    algorithm: &A,
    victim: usize,
    max_states: usize,
    waiting: F,
) -> Option<StarvationWitness>
where
    A: Algorithm + ?Sized,
    F: Fn(&A, &ProgState) -> bool + Sync,
{
    starvation_report_where(algorithm, victim, max_states, waiting).witness
}

/// [`find_starvation_cycle`] with the full [`LivenessReport`] outcome.
#[must_use]
pub fn starvation_report<A: Algorithm + ?Sized>(
    algorithm: &A,
    victim: usize,
    max_states: usize,
) -> LivenessReport {
    starvation_report_where(algorithm, victim, max_states, |alg, state| {
        alg.is_trying(state, victim)
    })
}

/// [`starvation_report`] with a worker-thread count for the graph phase.
#[must_use]
pub fn starvation_report_with_threads<A: Algorithm + ?Sized>(
    algorithm: &A,
    victim: usize,
    max_states: usize,
    threads: usize,
) -> LivenessReport {
    starvation_report_where_with_threads(algorithm, victim, max_states, threads, |alg, state| {
        alg.is_trying(state, victim)
    })
}

/// [`find_starvation_cycle_where`] with the full [`LivenessReport`] outcome.
#[must_use]
pub fn starvation_report_where<A, F>(
    algorithm: &A,
    victim: usize,
    max_states: usize,
    waiting: F,
) -> LivenessReport
where
    A: Algorithm + ?Sized,
    F: Fn(&A, &ProgState) -> bool + Sync,
{
    starvation_report_where_with_threads(algorithm, victim, max_states, 1, waiting)
}

/// [`starvation_report_where`] with `threads` workers expanding the
/// reachable-graph phase (clamped to ≥ 1; `1` runs inline without spawning).
///
/// Each BFS level is expanded in parallel and merged in head order, which
/// replays the sequential insertion sequence exactly: the report — states,
/// truncation, witness cycle — is **bit-identical for every thread count**,
/// including budget-truncated runs.  The cycle-search DFS itself stays
/// sequential; the graph construction dominates the wall time.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn starvation_report_where_with_threads<A, F>(
    algorithm: &A,
    victim: usize,
    max_states: usize,
    threads: usize,
    waiting: F,
) -> LivenessReport
where
    A: Algorithm + ?Sized,
    F: Fn(&A, &ProgState) -> bool + Sync,
{
    let threads = threads.max(1);
    let n = algorithm.processes();
    assert!(victim < n, "victim {victim} out of range");
    let codec = StateCodec::new(algorithm);

    // Phase 1: build the reachable graph (bounded), remembering depth.
    // States live in the packed arena; decode on demand.
    let mut arena = CodeArena::new(codec.words_per_state());
    let mut index = CodeIndex::new();
    let mut depth: Vec<u32> = Vec::new();
    let mut edges: Vec<Vec<(u32, u32)>> = Vec::new(); // (pid, target)
    // Filled while the state is decoded for expansion anyway.  A state left
    // unexpanded by truncation stays ineligible, which cannot change the
    // answer: it also has no outgoing edges, so it can never lie on a cycle.
    let mut eligible: Vec<bool> = Vec::new();

    let decode = |arena: &CodeArena, i: usize| {
        let mut words = Vec::with_capacity(arena.stride());
        arena.load(i, &mut words);
        codec.decode_words(&words)
    };

    let initial_code = codec.encode(&algorithm.initial_state());
    index.get_or_insert(&initial_code, 0, &arena);
    arena.push(&initial_code);
    depth.push(0);
    edges.push(Vec::new());
    eligible.push(false);

    // One expanded head: its index, its waiting flag, and its outgoing
    // (pid, successor code) steps in enumeration order.
    type HeadOut = (usize, bool, Vec<(u32, StateCode)>);

    let mut truncated = false;
    let mut level_start = 0usize;
    'bfs: while level_start < arena.len() {
        let level_end = arena.len();

        // Expand every head of the level.  Decoding, successor enumeration,
        // the waiting predicate and re-encoding are pure, so this part runs
        // on the workers; the arena is immutable for the duration.
        let expand = |i: usize| -> HeadOut {
            let state = decode(&arena, i);
            let is_waiting = waiting(algorithm, &state);
            let mut steps = Vec::new();
            let mut successors = Vec::new();
            for pid in 0..n {
                successors.clear();
                algorithm.successors(&state, pid, &mut successors);
                for next in successors.drain(..) {
                    steps.push((pid as u32, codec.encode(&next)));
                }
            }
            (i, is_waiting, steps)
        };
        let mut outs: Vec<HeadOut> = Vec::with_capacity(level_end - level_start);
        if threads == 1 {
            outs.extend((level_start..level_end).map(expand));
        } else {
            let cursor = AtomicUsize::new(level_start);
            let collected: Mutex<Vec<Vec<HeadOut>>> = Mutex::new(Vec::new());
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed); // mem: explorer-frontier
                            if i >= level_end {
                                break;
                            }
                            local.push(expand(i));
                        }
                        collected
                            .lock()
                            .expect("liveness worker buffer poisoned")
                            .push(local);
                    });
                }
            });
            for buf in collected.into_inner().expect("liveness worker buffer poisoned") {
                outs.extend(buf);
            }
            // Head order makes the merge below replay the sequential loop.
            outs.sort_unstable_by_key(|&(i, _, _)| i);
        }

        // Merge in head order: identical insertion sequence — and identical
        // truncation point — to the single-threaded walk.  Heads past the
        // truncation point stay unexpanded (no edges, not eligible), exactly
        // as if the sequential loop had stopped before them.
        for (current, is_waiting, steps) in outs {
            if arena.len() >= max_states {
                truncated = true;
                break 'bfs;
            }
            eligible[current] = is_waiting;
            for (pid, code) in steps {
                let candidate = arena.len() as u32;
                let (target, inserted) = index.get_or_insert(&code, candidate, &arena);
                if inserted {
                    arena.push(&code);
                    depth.push(depth[current] + 1);
                    edges.push(Vec::new());
                    eligible.push(false);
                }
                edges[current].push((pid, target));
            }
        }
        level_start = level_end;
    }

    // Phase 2: restrict to states where the victim is waiting and to edges
    // taken by other processes, then look for a cycle with an iterative DFS.

    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }
    let mut color = vec![Color::White; arena.len()];
    let registers = algorithm.registers();

    let mut witness = None;
    'search: for start in 0..arena.len() {
        if !eligible[start] || color[start] != Color::White {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        color[start] = Color::Grey;
        let mut path: Vec<usize> = vec![start];
        while let Some(&mut (node, ref mut edge_idx)) = stack.last_mut() {
            let restricted: Vec<usize> = edges[node]
                .iter()
                .filter(|(pid, target)| *pid as usize != victim && eligible[*target as usize])
                .map(|(_, target)| *target as usize)
                .collect();
            if *edge_idx < restricted.len() {
                let target = restricted[*edge_idx];
                *edge_idx += 1;
                match color[target] {
                    Color::Grey => {
                        // Found a cycle: extract it from the current DFS path.
                        let cycle_start = path.iter().position(|&s| s == target).unwrap_or(0);
                        let cycle: Vec<String> = path[cycle_start..]
                            .iter()
                            .map(|&s| decode(&arena, s).render(&registers))
                            .collect();
                        witness = Some(StarvationWitness {
                            victim,
                            prefix_length: depth[target] as usize,
                            cycle,
                        });
                        break 'search;
                    }
                    Color::White => {
                        color[target] = Color::Grey;
                        stack.push((target, 0));
                        path.push(target);
                    }
                    Color::Black => {}
                }
            } else {
                color[node] = Color::Black;
                stack.pop();
                path.pop();
            }
        }
    }

    LivenessReport {
        victim,
        states: arena.len(),
        truncated,
        witness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bakery_spec::{pc, BakeryPlusPlusSpec, BakerySpec, PetersonSpec};

    #[test]
    fn bakery_pp_slow_process_can_be_starved_at_l1() {
        // The §6.3 scenario: two fast processes (0 and 1) can keep the slow
        // process 2 parked at L1 forever under an unfair scheduler.
        let spec = BakeryPlusPlusSpec::new(3, 2);
        let report = starvation_report_where(&spec, 2, 150_000, |_, state| {
            state.pc(2) == pc::L1_SCAN
        });
        assert_eq!(report.verdict(), "cycle found");
        assert!(!report.proves_starvation_freedom());
        let witness = report
            .witness
            .expect("a starvation cycle at L1 should exist for M = 2");
        assert_eq!(witness.victim, 2);
        assert!(witness.cycle_length() >= 2);
    }

    #[test]
    fn any_trying_process_can_be_starved_by_an_unfair_scheduler() {
        // Even with a large bound, a process that has not yet announced itself
        // can be ignored forever — this is a property of unfair scheduling,
        // not of Bakery++ (Bakery behaves the same, §6.3).
        let spec = BakeryPlusPlusSpec::new(2, 10);
        let witness = find_starvation_cycle(&spec, 1, 100_000);
        assert!(witness.is_some());
    }

    #[test]
    fn bakery_ticket_holder_is_never_starved() {
        // FCFS at work: once the victim holds a ticket (doorway completed),
        // the other process cannot complete rounds forever — it must wait for
        // the victim at L3, so no cycle exists in the restricted graph.
        //
        // The unbounded classic Bakery has an infinite state space, so this
        // is necessarily a *bounded* verdict: no cycle within the budget.
        let n = 2;
        let spec = BakerySpec::new(n, 1_000_000);
        let number_idx_victim = n + 1; // number[1]
        let report = starvation_report_where(&spec, 1, 120_000, |alg, state| {
            alg.is_trying(state, 1) && state.read(number_idx_victim) != 0
        });
        assert!(
            report.witness.is_none(),
            "a Bakery ticket holder must not be starvable: {:?}",
            report.witness
        );
        assert!(report.truncated, "the unbounded ticket space cannot close");
        assert_eq!(report.verdict(), "no cycle (bounded)");
        assert!(!report.proves_starvation_freedom());
    }

    #[test]
    fn bakery_pp_ticket_holder_below_the_bound_is_never_starved() {
        // The same FCFS protection carries over to Bakery++ once the doorway
        // is complete, as long as the held ticket is below M (a ticket equal
        // to M parks *other* processes at L1 instead, which is the situation
        // the admission guard exists to resolve).  Bakery++'s bounded
        // registers make the state space finite, so this one is a proof.
        let n = 2;
        let bound = 4;
        let spec = BakeryPlusPlusSpec::new(n, bound);
        let number_idx_victim = n + 1; // number[1]
        let report = starvation_report_where(&spec, 1, 150_000, |alg, state| {
            let ticket = state.read(number_idx_victim);
            alg.is_trying(state, 1)
                && ticket != 0
                && ticket < bound
                && state.pc(1) != pc::RESET_NUMBER
                && state.pc(1) != pc::WRITE_MAX
                && state.pc(1) != pc::CHECK_BOUND
        });
        assert!(
            report.witness.is_none(),
            "a Bakery++ ticket holder below M must not be starvable: {:?}",
            report.witness
        );
        assert!(!report.truncated, "Bakery++'s bounded space must close out");
        assert_eq!(report.verdict(), "no cycle (exhaustive)");
        assert!(report.proves_starvation_freedom());
    }

    #[test]
    fn peterson_waiter_with_flag_raised_is_never_starved() {
        // Peterson's algorithm is starvation-free once the flag is raised: the
        // other process hands over the turn on its next attempt.
        let spec = PetersonSpec::new();
        let report = starvation_report_where(&spec, 1, 50_000, |alg, state| {
            alg.is_trying(state, 1) && state.read(1) == 1 // flag[1] == 1
        });
        assert!(report.proves_starvation_freedom(), "{:?}", report.witness);
    }

    #[test]
    fn liveness_search_is_thread_count_invariant() {
        // The ordered merge replays the sequential insertion sequence, so
        // the whole report — including the concrete witness cycle, which
        // depends on arena ids — must not change with the worker count,
        // for a complete graph and for a budget-truncated one.
        let spec = BakeryPlusPlusSpec::new(3, 2);
        let run = |threads: usize, budget: usize| {
            starvation_report_where_with_threads(&spec, 2, budget, threads, |_, state| {
                state.pc(2) == pc::L1_SCAN
            })
        };
        for budget in [150_000, 4_000] {
            let seq = run(1, budget);
            for threads in [2, 4] {
                let par = run(threads, budget);
                assert_eq!(par.states, seq.states, "threads {threads} budget {budget}");
                assert_eq!(par.truncated, seq.truncated, "threads {threads} budget {budget}");
                assert_eq!(
                    par.witness.as_ref().map(|w| (w.prefix_length, w.cycle.clone())),
                    seq.witness.as_ref().map(|w| (w.prefix_length, w.cycle.clone())),
                    "threads {threads} budget {budget}: witness must be schedule-independent"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn victim_must_be_a_valid_process() {
        let spec = BakeryPlusPlusSpec::new(2, 2);
        let _ = find_starvation_cycle(&spec, 5, 1_000);
    }
}
