//! The ratchet baseline: per-file ordering counts pinned in
//! `lint-baseline.json` (bakery-json wire format).
//!
//! The baseline makes unjustified-`SeqCst` debt one-directional: a file's
//! `SeqCst` count may shrink freely but can only grow through an explicit
//! `--update-baseline`, which shows up in review as a diff to the committed
//! file.

use std::collections::BTreeMap;

use bakery_json::Value;

use crate::lexer::{FileScan, TokenKind};

/// Schema tag written into the baseline file.
pub const SCHEMA: &str = "bakery-lint-baseline/v1";

/// Ordering counts for one file (non-test scope only).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FileCounts {
    /// `Ordering::SeqCst` tokens.
    pub seqcst: u64,
    /// `Ordering::Relaxed` tokens.
    pub relaxed: u64,
    /// `Ordering::Acquire` tokens.
    pub acquire: u64,
    /// `Ordering::Release` tokens.
    pub release: u64,
    /// `Ordering::AcqRel` tokens.
    pub acqrel: u64,
    /// `fence(` calls.
    pub fences: u64,
}

impl FileCounts {
    /// Counts a scan's non-test events.
    #[must_use]
    pub fn of(scan: &FileScan) -> Self {
        let mut c = Self::default();
        for e in scan.events.iter().filter(|e| !e.in_test) {
            match e.kind {
                TokenKind::SeqCst => c.seqcst += 1,
                TokenKind::Relaxed => c.relaxed += 1,
                TokenKind::Acquire => c.acquire += 1,
                TokenKind::Release => c.release += 1,
                TokenKind::AcqRel => c.acqrel += 1,
                TokenKind::Fence => c.fences += 1,
                TokenKind::Unsafe | TokenKind::AtomicImport => {}
            }
        }
        c
    }

    fn is_zero(&self) -> bool {
        *self == Self::default()
    }
}

/// The parsed (or freshly computed) baseline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Per-file counts, keyed by workspace-relative path.
    pub files: BTreeMap<String, FileCounts>,
}

impl Baseline {
    /// Builds a baseline from a fresh scan (files with all-zero counts are
    /// omitted, so the committed JSON stays small and diff-friendly).
    #[must_use]
    pub fn from_scans(scans: &[FileScan]) -> Self {
        let mut files = BTreeMap::new();
        for scan in scans {
            let counts = FileCounts::of(scan);
            if !counts.is_zero() {
                files.insert(scan.rel.clone(), counts);
            }
        }
        Self { files }
    }

    /// The ratcheted `SeqCst` allowance for `path` (0 for unknown files).
    #[must_use]
    pub fn seqcst_for(&self, path: &str) -> u64 {
        self.files.get(path).map_or(0, |c| c.seqcst)
    }

    /// Serializes to the committed JSON document.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let files = self
            .files
            .iter()
            .map(|(path, c)| {
                Value::Object(vec![
                    ("path".into(), Value::Str(path.clone())),
                    ("seqcst".into(), Value::Int(c.seqcst.into())),
                    ("relaxed".into(), Value::Int(c.relaxed.into())),
                    ("acquire".into(), Value::Int(c.acquire.into())),
                    ("release".into(), Value::Int(c.release.into())),
                    ("acqrel".into(), Value::Int(c.acqrel.into())),
                    ("fences".into(), Value::Int(c.fences.into())),
                ])
            })
            .collect();
        Value::Object(vec![
            ("schema".into(), Value::Str(SCHEMA.into())),
            ("files".into(), Value::Array(files)),
        ])
    }

    /// Parses the committed JSON document.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value = bakery_json::parse(text).map_err(|e| e.to_string())?;
        let schema = value.get("schema").and_then(Value::as_str).unwrap_or_default();
        if schema != SCHEMA {
            return Err(format!("unexpected baseline schema `{schema}`"));
        }
        let mut files = BTreeMap::new();
        let entries = value
            .get("files")
            .and_then(Value::as_array)
            .ok_or_else(|| "baseline has no `files` array".to_string())?;
        for entry in entries {
            let path = entry
                .get("path")
                .and_then(Value::as_str)
                .ok_or_else(|| "baseline entry without `path`".to_string())?
                .to_string();
            let count = |key: &str| -> u64 {
                entry.get(key).and_then(Value::as_i128).unwrap_or(0).max(0) as u64
            };
            files.insert(
                path,
                FileCounts {
                    seqcst: count("seqcst"),
                    relaxed: count("relaxed"),
                    acquire: count("acquire"),
                    release: count("release"),
                    acqrel: count("acqrel"),
                    fences: count("fences"),
                },
            );
        }
        Ok(Self { files })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan_str;

    #[test]
    fn baseline_round_trips_through_json() {
        let scans = vec![
            scan_str("a.rs", "fn f() { a.load(Ordering::SeqCst); fence(Ordering::SeqCst); }", false),
            scan_str("b.rs", "fn g() { b.load(Ordering::Relaxed); }", false),
            scan_str("c.rs", "fn h() {}", false),
        ];
        let baseline = Baseline::from_scans(&scans);
        assert_eq!(baseline.seqcst_for("a.rs"), 2);
        assert_eq!(baseline.seqcst_for("c.rs"), 0, "all-zero files are omitted");
        let text = baseline.to_json().to_pretty_string();
        let reparsed = Baseline::from_json(&text).unwrap();
        assert_eq!(reparsed, baseline);
    }

    #[test]
    fn test_scope_does_not_count() {
        let scans = vec![scan_str(
            "a.rs",
            "#[cfg(test)]\nmod tests { fn f() { a.load(Ordering::SeqCst); } }",
            false,
        )];
        assert_eq!(Baseline::from_scans(&scans).seqcst_for("a.rs"), 0);
    }
}
