//! A tiny comment/string/raw-string aware Rust scanner.
//!
//! `bakery-lint` deliberately does not parse Rust (`syn` is not in the
//! vendored dependency set, and the build is offline): it lexes just enough
//! of the language to separate *code* from comments and string literals, and
//! then extracts the handful of tokens the rules care about — ordering
//! names, `fence` calls, `unsafe`, direct `std::sync::atomic` import paths,
//! `#![forbid(unsafe_code)]`, `// mem:` annotations, and `#[cfg(test)] mod`
//! regions (whose contents are exempt from the source-code rules).

/// What kind of interesting token an [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// `Ordering::SeqCst` (through any `*Ordering`-named path segment).
    SeqCst,
    /// `Ordering::Relaxed`.
    Relaxed,
    /// `Ordering::Acquire`.
    Acquire,
    /// `Ordering::Release`.
    Release,
    /// `Ordering::AcqRel`.
    AcqRel,
    /// A `fence(` call.
    Fence,
    /// The `unsafe` keyword.
    Unsafe,
    /// A direct `std::sync::atomic` / `core::sync::atomic` /
    /// `loom::sync::atomic` path (a facade bypass unless allowlisted).
    AtomicImport,
}

impl TokenKind {
    /// True for the two orderings that require a `// mem:` justification.
    #[must_use]
    pub fn needs_justification(self) -> bool {
        matches!(self, TokenKind::SeqCst | TokenKind::Relaxed)
    }
}

/// One interesting token in a scanned file.
#[derive(Debug, Clone)]
pub struct Event {
    /// 1-based line number.
    pub line: usize,
    /// Token kind.
    pub kind: TokenKind,
    /// Whether the token sits in test-exempt scope (a `#[cfg(test)]` module,
    /// or a file under `tests/` / `examples/`).
    pub in_test: bool,
}

/// A `// mem: <protocol>[.<side>]` annotation.
#[derive(Debug, Clone)]
pub struct Annotation {
    /// 1-based line number of the comment itself.
    pub line: usize,
    /// The line the annotation covers: its own line for trailing comments,
    /// the next line for standalone comment lines.
    pub covers: usize,
    /// Protocol name (before the optional `.side`).
    pub protocol: String,
    /// Optional side tag for paired protocols.
    pub side: Option<String>,
    /// Whether the annotation sits in test-exempt scope.
    pub in_test: bool,
}

/// The scan result for one file.
#[derive(Debug, Clone)]
pub struct FileScan {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Interesting tokens, in file order.
    pub events: Vec<Event>,
    /// `// mem:` annotations, in file order.
    pub annotations: Vec<Annotation>,
    /// Whether the file contains `#![forbid(unsafe_code)]`.
    pub has_forbid_unsafe: bool,
    /// Whether the whole file is test-exempt (path under `tests/`,
    /// `examples/` or a benches directory).
    pub test_path: bool,
}

/// Replaces comments and string/char literals with spaces (newlines kept) so
/// token extraction can treat the result as pure code, and collects plain
/// `//` line comments (doc comments excluded) as `(byte_offset, text)`.
fn strip(content: &str) -> (Vec<u8>, Vec<(usize, String)>) {
    let b = content.as_bytes();
    let mut out = b.to_vec();
    let mut comments = Vec::new();
    let blank = |out: &mut Vec<u8>, from: usize, to: usize| {
        for slot in &mut out[from..to] {
            if *slot != b'\n' {
                *slot = b' ';
            }
        }
    };
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                i += 2;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                let text = &content[start + 2..i];
                // `///` and `//!` are doc comments, not annotations.
                if !text.starts_with('/') && !text.starts_with('!') {
                    comments.push((start, text.to_string()));
                }
                blank(&mut out, start, i);
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                blank(&mut out, start, i);
            }
            b'"' => {
                let start = i;
                i += 1;
                while i < b.len() {
                    match b[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                blank(&mut out, start, i);
            }
            b'r' | b'b' if !prev_is_ident(b, i) && raw_string_start(b, i).is_some() => {
                let (body_start, hashes) = raw_string_start(b, i).expect("checked above");
                let start = i;
                i = body_start;
                let closer: Vec<u8> = std::iter::once(b'"')
                    .chain(std::iter::repeat_n(b'#', hashes))
                    .collect();
                while i < b.len() {
                    if b[i] == b'"' && b[i..].starts_with(&closer) {
                        i += closer.len();
                        break;
                    }
                    i += 1;
                }
                blank(&mut out, start, i);
            }
            b'b' if !prev_is_ident(b, i) && i + 1 < b.len() && b[i + 1] == b'"' => {
                // b"..." byte string: let the `"` arm handle it next round.
                i += 1;
            }
            b'\'' => {
                // Lifetime vs char literal.
                if i + 1 < b.len() && b[i + 1] == b'\\' {
                    let start = i;
                    i += 2;
                    while i < b.len() && b[i] != b'\'' {
                        i += 1;
                    }
                    i = (i + 1).min(b.len());
                    blank(&mut out, start, i);
                } else if i + 2 < b.len() && b[i + 2] == b'\'' && b[i + 1] != b'\'' {
                    blank(&mut out, i, i + 3);
                    i += 3;
                } else {
                    // A lifetime (or a stray quote): leave as code.
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    (out, comments)
}

fn prev_is_ident(b: &[u8], i: usize) -> bool {
    i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_')
}

/// If `i` starts a raw (byte) string opener (`r"`, `r#"`, `br##"`, ...),
/// returns `(body_start, hash_count)`.
fn raw_string_start(b: &[u8], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j >= b.len() || b[j] != b'r' {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j < b.len() && b[j] == b'"' {
        Some((j + 1, hashes))
    } else {
        None
    }
}

/// Byte ranges of `#[cfg(test)] mod { ... }` bodies in the code-only text.
fn test_mod_ranges(code: &[u8]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while let Some(pos) = find(code, b"cfg", i) {
        i = pos + 3;
        if !cfg_mentions_test(code, pos + 3) {
            continue;
        }
        // A test cfg: does a `mod` follow closely (the attribute's item)?
        let window_end = (pos + 160).min(code.len());
        let Some(mod_pos) = find_word(code, b"mod", pos, window_end) else {
            continue;
        };
        let Some(brace) = code[mod_pos..window_end.max(mod_pos + 80).min(code.len())]
            .iter()
            .position(|&c| c == b'{')
            .map(|p| mod_pos + p)
        else {
            continue;
        };
        let mut depth = 1usize;
        let mut j = brace + 1;
        while j < code.len() && depth > 0 {
            match code[j] {
                b'{' => depth += 1,
                b'}' => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        ranges.push((brace, j));
        i = j;
    }
    ranges
}

/// True when the parenthesised list right after a `cfg` occurrence names
/// `test` (covers `cfg(test)`, `cfg(all(test, ...))`, `cfg(any(..., test))`).
fn cfg_mentions_test(code: &[u8], after_cfg: usize) -> bool {
    if after_cfg >= code.len() || code[after_cfg] != b'(' {
        return false;
    }
    let mut depth = 0usize;
    let mut j = after_cfg;
    let mut end = code.len();
    while j < code.len() {
        match code[j] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    end = j;
                    break;
                }
            }
            _ => {}
        }
        j += 1;
    }
    find_word(code, b"test", after_cfg, end).is_some()
}

fn find(hay: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if from >= hay.len() {
        return None;
    }
    hay[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| p + from)
}

/// Finds `word` in `hay[from..to]` at identifier boundaries.
fn find_word(hay: &[u8], word: &[u8], from: usize, to: usize) -> Option<usize> {
    let mut i = from;
    let to = to.min(hay.len());
    while let Some(pos) = find(&hay[..to], word, i) {
        let before_ok = !prev_is_ident(hay, pos);
        let after = pos + word.len();
        let after_ok =
            after >= hay.len() || (!hay[after].is_ascii_alphanumeric() && hay[after] != b'_');
        if before_ok && after_ok {
            return Some(pos);
        }
        i = pos + 1;
    }
    None
}

const ORDERING_WORDS: [(&str, TokenKind); 5] = [
    ("SeqCst", TokenKind::SeqCst),
    ("Relaxed", TokenKind::Relaxed),
    ("Acquire", TokenKind::Acquire),
    ("Release", TokenKind::Release),
    ("AcqRel", TokenKind::AcqRel),
];

const ATOMIC_PATHS: [&str; 3] = ["std::sync::atomic", "core::sync::atomic", "loom::sync::atomic"];

/// Scans one file's contents.
#[must_use]
pub fn scan_str(rel: &str, content: &str, test_path: bool) -> FileScan {
    let (code, comments) = strip(content);
    let test_ranges = test_mod_ranges(&code);
    let in_test_at =
        |off: usize| test_path || test_ranges.iter().any(|&(s, e)| off >= s && off < e);

    // Byte offset of each line start, for offset -> line mapping.
    let mut line_starts = vec![0usize];
    for (i, &c) in code.iter().enumerate() {
        if c == b'\n' {
            line_starts.push(i + 1);
        }
    }
    let line_of = |off: usize| match line_starts.binary_search(&off) {
        Ok(i) => i + 1,
        Err(i) => i,
    };

    let mut events = Vec::new();
    // Ordering words: only behind a `::` whose previous path segment ends in
    // `Ordering` (so `SiteKind::Release` or `cmp::Ordering::Less` never
    // match, while `StdOrdering::SeqCst` aliases do).
    for (word, kind) in ORDERING_WORDS {
        let mut i = 0;
        while let Some(pos) = find_word(&code, word.as_bytes(), i, code.len()) {
            i = pos + word.len();
            if pos >= 2 && &code[pos - 2..pos] == b"::" {
                let mut seg_end = pos - 2;
                while seg_end > 0
                    && (code[seg_end - 1].is_ascii_alphanumeric() || code[seg_end - 1] == b'_')
                {
                    seg_end -= 1;
                }
                let segment = &code[seg_end..pos - 2];
                if segment.ends_with(b"Ordering") {
                    events.push(Event { line: line_of(pos), kind, in_test: in_test_at(pos) });
                }
            }
        }
    }
    // `fence(` calls.
    let mut i = 0;
    while let Some(pos) = find_word(&code, b"fence", i, code.len()) {
        i = pos + 5;
        let mut j = pos + 5;
        while j < code.len() && (code[j] == b' ' || code[j] == b'\t') {
            j += 1;
        }
        if j < code.len() && code[j] == b'(' {
            events.push(Event { line: line_of(pos), kind: TokenKind::Fence, in_test: in_test_at(pos) });
        }
    }
    // `unsafe` keyword.
    let mut i = 0;
    while let Some(pos) = find_word(&code, b"unsafe", i, code.len()) {
        i = pos + 6;
        events.push(Event { line: line_of(pos), kind: TokenKind::Unsafe, in_test: in_test_at(pos) });
    }
    // Direct atomic import paths.
    for path in ATOMIC_PATHS {
        let mut i = 0;
        while let Some(pos) = find(&code, path.as_bytes(), i) {
            i = pos + path.len();
            if !prev_is_ident(&code, pos) {
                events.push(Event {
                    line: line_of(pos),
                    kind: TokenKind::AtomicImport,
                    in_test: in_test_at(pos),
                });
            }
        }
    }
    events.sort_by_key(|e| e.line);

    // Annotations from plain line comments.
    let mut annotations = Vec::new();
    for (off, text) in &comments {
        let Some(mem_pos) = text.find("mem:") else {
            continue;
        };
        let boundary_ok = mem_pos == 0
            || matches!(text.as_bytes()[mem_pos - 1], b' ' | b'\t' | b'/');
        if !boundary_ok {
            continue;
        }
        let spec = text[mem_pos + 4..].trim_start();
        let name: String = spec
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_' || *c == '.')
            .collect();
        if name.is_empty() {
            continue;
        }
        let line = line_of(*off);
        // Standalone comment line (nothing but whitespace before it in the
        // code-only text) covers the next line; trailing covers its own.
        let ls = line_starts[line - 1];
        let own_line = code[ls..*off].iter().all(|&c| c == b' ' || c == b'\t');
        let (protocol, side) = match name.split_once('.') {
            Some((p, s)) => (p.to_string(), Some(s.to_string())),
            None => (name.clone(), None),
        };
        annotations.push(Annotation {
            line,
            covers: if own_line { line + 1 } else { line },
            protocol,
            side,
            in_test: in_test_at(*off),
        });
    }

    let has_forbid_unsafe = content.contains("forbid(unsafe_code)");
    FileScan { rel: rel.to_string(), events, annotations, has_forbid_unsafe, test_path }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_not_code() {
        let scan = scan_str(
            "x.rs",
            r##"
fn f() {
    let _s = "Ordering::SeqCst inside a string";
    let _r = r#"Ordering::Relaxed raw"#;
    // a comment mentioning Ordering::SeqCst
    /* block Ordering::SeqCst */
    a.load(Ordering::SeqCst) // mem: epoch-cycle
}
"##,
            false,
        );
        let seqcst: Vec<_> =
            scan.events.iter().filter(|e| e.kind == TokenKind::SeqCst).collect();
        assert_eq!(seqcst.len(), 1);
        assert_eq!(seqcst[0].line, 7);
        assert_eq!(scan.annotations.len(), 1);
        assert_eq!(scan.annotations[0].protocol, "epoch-cycle");
        assert_eq!(scan.annotations[0].covers, 7);
    }

    #[test]
    fn non_ordering_paths_do_not_match() {
        let scan = scan_str(
            "x.rs",
            "fn f() { let _ = SiteKind::Release; let _ = std::cmp::Ordering::Less; }",
            false,
        );
        assert!(scan.events.iter().all(|e| e.kind != TokenKind::Release));
    }

    #[test]
    fn aliased_ordering_paths_match() {
        let scan = scan_str(
            "x.rs",
            "fn f() { a.load(StdOrdering::SeqCst); fence(Ordering::SeqCst); }",
            false,
        );
        assert_eq!(
            scan.events.iter().filter(|e| e.kind == TokenKind::SeqCst).count(),
            2
        );
        assert_eq!(
            scan.events.iter().filter(|e| e.kind == TokenKind::Fence).count(),
            1
        );
    }

    #[test]
    fn cfg_test_mod_is_exempt_scope() {
        let src = "
fn f() { a.load(Ordering::SeqCst); }
#[cfg(all(test, not(loom)))]
mod tests {
    fn g() { b.load(Ordering::SeqCst); }
}
";
        let scan = scan_str("x.rs", src, false);
        let flags: Vec<bool> = scan
            .events
            .iter()
            .filter(|e| e.kind == TokenKind::SeqCst)
            .map(|e| e.in_test)
            .collect();
        assert_eq!(flags, vec![false, true]);
    }

    #[test]
    fn standalone_annotation_covers_next_line() {
        let src = "fn f() {\n    // mem: seat-word\n    a.load(Ordering::SeqCst);\n}\n";
        let scan = scan_str("x.rs", src, false);
        assert_eq!(scan.annotations[0].covers, 3);
    }

    #[test]
    fn facade_bypass_and_own_facade_paths() {
        let scan = scan_str(
            "x.rs",
            "use std::sync::atomic::{AtomicU64, Ordering};\nuse bakery_core::sync::AtomicU64;\n",
            false,
        );
        assert_eq!(
            scan.events.iter().filter(|e| e.kind == TokenKind::AtomicImport).count(),
            1
        );
    }

    #[test]
    fn char_literals_and_lifetimes_survive() {
        let scan = scan_str(
            "x.rs",
            "fn f<'a>(x: &'a str) { let _c = '\"'; let _d = '\\''; a.load(Ordering::SeqCst); }",
            false,
        );
        assert_eq!(
            scan.events.iter().filter(|e| e.kind == TokenKind::SeqCst).count(),
            1
        );
    }

    #[test]
    fn doc_comments_never_annotate() {
        let scan = scan_str(
            "x.rs",
            "/// mem: epoch-cycle\nfn f() { a.load(Ordering::SeqCst); }\n",
            false,
        );
        assert!(scan.annotations.is_empty());
    }

    #[test]
    fn side_tags_parse() {
        let scan = scan_str(
            "x.rs",
            "fence(Ordering::SeqCst); // mem: doorway-dekker.publish\n",
            false,
        );
        assert_eq!(scan.annotations[0].protocol, "doorway-dekker");
        assert_eq!(scan.annotations[0].side.as_deref(), Some("publish"));
    }

    #[test]
    fn unsafe_token_is_reported() {
        let scan = scan_str("x.rs", "fn f() { unsafe { g(); } }", false);
        assert_eq!(
            scan.events.iter().filter(|e| e.kind == TokenKind::Unsafe).count(),
            1
        );
    }
}
