//! `bakery-lint` CLI: `cargo run -p bakery-lint -- --check` is the CI gate.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use bakery_lint::{LintRun, BASELINE_FILE};

const USAGE: &str = "\
bakery-lint — memory-ordering & sync-discipline static analysis

USAGE:
    bakery-lint [--check] [--update-baseline] [--json PATH] [--root PATH]

MODES:
    --check             scan the workspace and exit non-zero on any finding
                        (the default when no mode is given)
    --update-baseline   rewrite lint-baseline.json from a fresh scan

OPTIONS:
    --json PATH         also write the JSON report to PATH
    --root PATH         workspace root (default: discovered from the cwd)
";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut update_baseline = false;
    let mut json_out: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => {}
            "--update-baseline" => update_baseline = true,
            "--json" => match args.next() {
                Some(path) => json_out = Some(PathBuf::from(path)),
                None => return usage_error("--json needs a path"),
            },
            "--root" => match args.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => return usage_error("--root needs a path"),
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().expect("cwd");
            match bakery_lint::workspace::find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "bakery-lint: no workspace root (Cargo.toml + MEMORY_ORDERING.md) \
                         above {}",
                        cwd.display()
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let run = match LintRun::check(&root) {
        Ok(run) => run,
        Err(err) => {
            eprintln!("bakery-lint: scan failed: {err}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = &json_out {
        let text = run.report().to_pretty_string();
        if let Err(err) = std::fs::write(path, text + "\n") {
            eprintln!("bakery-lint: cannot write report {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
    }

    if update_baseline {
        let text = run.fresh_baseline().to_json().to_pretty_string();
        let path = root.join(BASELINE_FILE);
        if let Err(err) = std::fs::write(&path, text + "\n") {
            eprintln!("bakery-lint: cannot write {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
        println!("bakery-lint: wrote {}", path.display());
        // Ratchet findings are expected to clear on the refreshed baseline;
        // everything else still gates.
        let remaining: Vec<_> =
            run.diagnostics.iter().filter(|d| d.rule != "ratchet").collect();
        for d in &remaining {
            eprintln!("{d}");
        }
        return if remaining.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    for d in &run.diagnostics {
        eprintln!("{d}");
    }
    let counts = run
        .scans
        .iter()
        .map(bakery_lint::baseline::FileCounts::of)
        .fold((0u64, 0u64), |acc, c| (acc.0 + c.seqcst, acc.1 + c.relaxed));
    println!(
        "bakery-lint: {} files, {} SeqCst + {} Relaxed justified sites, {} findings",
        run.scans.len(),
        counts.0,
        counts.1,
        run.diagnostics.len()
    );
    if run.diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("bakery-lint: {message}\n\n{USAGE}");
    ExitCode::FAILURE
}
