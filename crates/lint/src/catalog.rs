//! Parser for the `MEMORY_ORDERING.md` protocol catalog.
//!
//! The catalog is ordinary markdown; the lint only reads the `## `-level
//! entry headings, which look like:
//!
//! ```markdown
//! ## `doorway-dekker` (paired: publish/scan)
//! ## `stats-relaxed`
//! ```
//!
//! A `(paired: a/b)` suffix declares a two-sided handshake whose annotations
//! must carry a `.a` / `.b` side tag, and whose sides must *both* appear
//! somewhere in the workspace.

use std::collections::BTreeMap;

/// One catalog entry.
#[derive(Debug, Clone)]
pub struct Protocol {
    /// Entry name (the annotation spells this exactly).
    pub name: String,
    /// Declared sides for paired protocols, empty for unpaired ones.
    pub sides: Vec<String>,
}

/// The parsed catalog.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    entries: BTreeMap<String, Protocol>,
}

impl Catalog {
    /// Parses the catalog out of `MEMORY_ORDERING.md` text.
    #[must_use]
    pub fn parse(text: &str) -> Self {
        let mut entries = BTreeMap::new();
        for line in text.lines() {
            let Some(rest) = line.strip_prefix("## `") else {
                continue;
            };
            let Some(tick) = rest.find('`') else {
                continue;
            };
            let name = rest[..tick].to_string();
            let suffix = &rest[tick + 1..];
            let sides = suffix
                .find("(paired:")
                .map(|p| {
                    suffix[p + 8..]
                        .trim_end()
                        .trim_end_matches(')')
                        .split('/')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect()
                })
                .unwrap_or_default();
            entries.insert(name.clone(), Protocol { name, sides });
        }
        Self { entries }
    }

    /// Looks up an entry by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Protocol> {
        self.entries.get(name)
    }

    /// All entries in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Protocol> {
        self.entries.values()
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the catalog has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paired_and_unpaired_entries() {
        let cat = Catalog::parse(
            "# title\n## `doorway-dekker` (paired: publish/scan)\nprose\n## `stats-relaxed`\n",
        );
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.get("doorway-dekker").unwrap().sides, vec!["publish", "scan"]);
        assert!(cat.get("stats-relaxed").unwrap().sides.is_empty());
        assert!(cat.get("nope").is_none());
    }
}
