//! # bakery-lint
//!
//! A zero-dependency static-analysis plane for the bakery workspace's
//! memory-ordering and synchronization discipline.  The paper's correctness
//! argument (and PR 1's "acquire/release plus two targeted `SeqCst` fences"
//! regime) depends on *which* ordering every atomic access uses; this crate
//! keeps those choices honest as the codebase grows:
//!
//! * **ordering-justification** — every `Ordering::SeqCst` / `Relaxed` site
//!   in non-test code must carry a `// mem: <protocol>` annotation naming an
//!   entry in the `MEMORY_ORDERING.md` catalog; paired (Dekker) protocols
//!   must annotate both sides or the workspace fails the lint.
//! * **sync-facade** — non-test code must reach atomics through the
//!   `bakery_core::sync` facade so the loom shim always interposes; the
//!   explicit [`rules::FACADE_ALLOWLIST`] carries the only exceptions, each
//!   with a reason.
//! * **forbid-unsafe** — every crate root keeps `#![forbid(unsafe_code)]`
//!   and no `unsafe` token appears anywhere.
//! * **ratchet** — per-file ordering counts are pinned in the committed
//!   `lint-baseline.json`; `SeqCst` debt can only shrink without an explicit
//!   `--update-baseline`.
//!
//! The scanner is a purpose-built lexer (comment / string / raw-string /
//! char-literal aware, `#[cfg(test)] mod`-skipping) rather than a full
//! parser: the build environment is offline and vendored, so `syn` is not
//! available — and none of the rules need more than token extraction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baseline;
pub mod catalog;
pub mod lexer;
pub mod rules;
pub mod workspace;

use std::path::Path;

use bakery_json::Value;

use baseline::Baseline;
use catalog::Catalog;
use lexer::FileScan;
use rules::Diagnostic;

/// Name of the committed ratchet file at the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.json";
/// Name of the protocol catalog at the workspace root.
pub const CATALOG_FILE: &str = "MEMORY_ORDERING.md";
/// Schema tag of the JSON report.
pub const REPORT_SCHEMA: &str = "bakery-lint-report/v1";

/// Everything one lint run produces.
#[derive(Debug)]
pub struct LintRun {
    /// Per-file scans, sorted by path.
    pub scans: Vec<FileScan>,
    /// The parsed catalog.
    pub catalog: Catalog,
    /// Findings (empty means the workspace is clean).
    pub diagnostics: Vec<Diagnostic>,
}

impl LintRun {
    /// Scans the workspace at `root` and runs every rule against the
    /// committed catalog and baseline.
    pub fn check(root: &Path) -> std::io::Result<Self> {
        let catalog_text = std::fs::read_to_string(root.join(CATALOG_FILE))?;
        let catalog = Catalog::parse(&catalog_text);
        let scans = workspace::scan_workspace(root)?;
        let baseline = match std::fs::read_to_string(root.join(BASELINE_FILE)) {
            Ok(text) => Baseline::from_json(&text).ok(),
            Err(_) => None,
        };
        let diagnostics = rules::check_files(&scans, &catalog, baseline.as_ref());
        Ok(Self { scans, catalog, diagnostics })
    }

    /// The JSON report (uploaded as a CI artifact).
    #[must_use]
    pub fn report(&self) -> Value {
        let mut totals = baseline::FileCounts::default();
        let mut annotated = 0u64;
        for scan in &self.scans {
            let c = baseline::FileCounts::of(scan);
            totals.seqcst += c.seqcst;
            totals.relaxed += c.relaxed;
            totals.acquire += c.acquire;
            totals.release += c.release;
            totals.acqrel += c.acqrel;
            totals.fences += c.fences;
            annotated += scan.annotations.iter().filter(|a| !a.in_test).count() as u64;
        }
        let diagnostics = self
            .diagnostics
            .iter()
            .map(|d| {
                Value::Object(vec![
                    ("rule".into(), Value::Str(d.rule.into())),
                    ("path".into(), Value::Str(d.path.clone())),
                    ("line".into(), Value::Int(d.line as i128)),
                    ("message".into(), Value::Str(d.message.clone())),
                ])
            })
            .collect();
        let allowlist = rules::FACADE_ALLOWLIST
            .iter()
            .map(|(path, reason)| {
                Value::Object(vec![
                    ("path".into(), Value::Str((*path).into())),
                    ("reason".into(), Value::Str((*reason).into())),
                ])
            })
            .collect();
        Value::Object(vec![
            ("schema".into(), Value::Str(REPORT_SCHEMA.into())),
            ("files_scanned".into(), Value::Int(self.scans.len() as i128)),
            ("catalog_entries".into(), Value::Int(self.catalog.len() as i128)),
            (
                "sites".into(),
                Value::Object(vec![
                    ("seqcst".into(), Value::Int(totals.seqcst.into())),
                    ("relaxed".into(), Value::Int(totals.relaxed.into())),
                    ("acquire".into(), Value::Int(totals.acquire.into())),
                    ("release".into(), Value::Int(totals.release.into())),
                    ("acqrel".into(), Value::Int(totals.acqrel.into())),
                    ("fences".into(), Value::Int(totals.fences.into())),
                ]),
            ),
            ("annotations".into(), Value::Int(annotated.into())),
            ("diagnostics".into(), Value::Array(diagnostics)),
            ("facade_allowlist".into(), Value::Array(allowlist)),
        ])
    }

    /// A fresh ratchet baseline computed from this run's scans.
    #[must_use]
    pub fn fresh_baseline(&self) -> Baseline {
        Baseline::from_scans(&self.scans)
    }
}
