//! The rule engine: ordering-justification, sync-facade, forbid-unsafe and
//! the ratchet, over [`FileScan`]s produced by the lexer.

use std::collections::{BTreeMap, BTreeSet};

use crate::baseline::Baseline;
use crate::catalog::Catalog;
use crate::lexer::{FileScan, TokenKind};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule identifier (`ordering-justification`, `sync-facade`,
    /// `forbid-unsafe`, `ratchet`).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line (0 for file-level findings).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)
    }
}

/// The facade rule's allowlist: files allowed to touch `std::sync::atomic`
/// directly, each with a one-line reason (surfaced in the JSON report).
pub const FACADE_ALLOWLIST: [(&str, &str); 1] = [(
    "crates/core/src/sync.rs",
    "the facade itself: re-exports std (or loom) atomics behind --cfg loom",
)];

/// Crate roots that must carry `#![forbid(unsafe_code)]`: every `src/lib.rs`
/// and every binary root (`src/main.rs`, `src/bin/*.rs`).
fn is_crate_root(rel: &str) -> bool {
    rel.ends_with("src/lib.rs")
        || rel.ends_with("src/main.rs")
        || (rel.contains("/src/bin/") && rel.ends_with(".rs"))
}

/// Runs every per-file and cross-file rule. `baseline` is `None` when the
/// committed `lint-baseline.json` is missing (itself a diagnostic).
#[must_use]
pub fn check_files(
    files: &[FileScan],
    catalog: &Catalog,
    baseline: Option<&Baseline>,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    // Paired-protocol side tracking: protocol -> sides seen (non-test).
    let mut sides_seen: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut first_use: BTreeMap<String, (String, usize)> = BTreeMap::new();

    for scan in files {
        ordering_justification(scan, catalog, &mut sides_seen, &mut first_use, &mut diags);
        sync_facade(scan, &mut diags);
        forbid_unsafe(scan, &mut diags);
    }

    // Workspace-level half of the pairing rule: a paired protocol used with
    // only a subset of its declared sides is a one-sided Dekker.
    for (name, seen) in &sides_seen {
        let Some(proto) = catalog.get(name) else {
            continue; // unknown-protocol already reported per site
        };
        if proto.sides.is_empty() {
            continue;
        }
        let missing: Vec<&String> =
            proto.sides.iter().filter(|s| !seen.contains(*s)).collect();
        if !missing.is_empty() {
            let (path, line) = first_use.get(name).cloned().unwrap_or_default();
            diags.push(Diagnostic {
                rule: "ordering-justification",
                path,
                line,
                message: format!(
                    "paired protocol `{name}` is one-sided: side(s) {} never annotated \
                     anywhere in the workspace",
                    missing.iter().map(|s| format!("`{s}`")).collect::<Vec<_>>().join(", ")
                ),
            });
        }
    }

    ratchet(files, baseline, &mut diags);
    diags.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    diags
}

fn ordering_justification(
    scan: &FileScan,
    catalog: &Catalog,
    sides_seen: &mut BTreeMap<String, BTreeSet<String>>,
    first_use: &mut BTreeMap<String, (String, usize)>,
    diags: &mut Vec<Diagnostic>,
) {
    // Lines covered by at least one annotation, and per-annotation validity.
    let mut covered: BTreeSet<usize> = BTreeSet::new();
    for ann in scan.annotations.iter().filter(|a| !a.in_test) {
        covered.insert(ann.covers);
        match catalog.get(&ann.protocol) {
            None => diags.push(Diagnostic {
                rule: "ordering-justification",
                path: scan.rel.clone(),
                line: ann.line,
                message: format!(
                    "`// mem: {}` names no MEMORY_ORDERING.md catalog entry",
                    ann.protocol
                ),
            }),
            Some(proto) => {
                if proto.sides.is_empty() {
                    if let Some(side) = &ann.side {
                        diags.push(Diagnostic {
                            rule: "ordering-justification",
                            path: scan.rel.clone(),
                            line: ann.line,
                            message: format!(
                                "protocol `{}` is unpaired but the annotation carries side \
                                 `.{side}`",
                                ann.protocol
                            ),
                        });
                    }
                } else {
                    match &ann.side {
                        None => diags.push(Diagnostic {
                            rule: "ordering-justification",
                            path: scan.rel.clone(),
                            line: ann.line,
                            message: format!(
                                "paired protocol `{}` needs a side tag ({})",
                                ann.protocol,
                                proto.sides.join("/")
                            ),
                        }),
                        Some(side) if !proto.sides.contains(side) => diags.push(Diagnostic {
                            rule: "ordering-justification",
                            path: scan.rel.clone(),
                            line: ann.line,
                            message: format!(
                                "`.{side}` is not a side of `{}` (declared: {})",
                                ann.protocol,
                                proto.sides.join("/")
                            ),
                        }),
                        Some(side) => {
                            sides_seen
                                .entry(ann.protocol.clone())
                                .or_default()
                                .insert(side.clone());
                            first_use
                                .entry(ann.protocol.clone())
                                .or_insert_with(|| (scan.rel.clone(), ann.line));
                        }
                    }
                }
            }
        }
        // A justification that covers no SeqCst/Relaxed token is stale: it
        // would silently stop gating if the site under it moved away.
        let covers_site = scan
            .events
            .iter()
            .any(|e| e.line == ann.covers && e.kind.needs_justification() && !e.in_test);
        if !covers_site {
            diags.push(Diagnostic {
                rule: "ordering-justification",
                path: scan.rel.clone(),
                line: ann.line,
                message: format!(
                    "stale `// mem: {}`: no SeqCst/Relaxed site on the covered line",
                    ann.protocol
                ),
            });
        }
    }

    // Every SeqCst/Relaxed token outside test scope must sit on a covered
    // line.  One diagnostic per line, not per token: a line with both CAS
    // orderings is one site to fix.
    let mut flagged: BTreeSet<usize> = BTreeSet::new();
    for event in &scan.events {
        if event.in_test || !event.kind.needs_justification() {
            continue;
        }
        if !covered.contains(&event.line) && flagged.insert(event.line) {
            let name = match event.kind {
                TokenKind::SeqCst => "SeqCst",
                _ => "Relaxed",
            };
            diags.push(Diagnostic {
                rule: "ordering-justification",
                path: scan.rel.clone(),
                line: event.line,
                message: format!(
                    "unannotated `Ordering::{name}`: add `// mem: <protocol>` naming a \
                     MEMORY_ORDERING.md entry"
                ),
            });
        }
    }
}

fn sync_facade(scan: &FileScan, diags: &mut Vec<Diagnostic>) {
    if scan.test_path {
        return;
    }
    if FACADE_ALLOWLIST.iter().any(|(path, _)| scan.rel == *path) {
        return;
    }
    for event in &scan.events {
        if event.kind == TokenKind::AtomicImport && !event.in_test {
            diags.push(Diagnostic {
                rule: "sync-facade",
                path: scan.rel.clone(),
                line: event.line,
                message: "direct std/loom atomic path bypasses the `bakery_core::sync` \
                          facade (loom would not interpose here)"
                    .to_string(),
            });
        }
    }
}

fn forbid_unsafe(scan: &FileScan, diags: &mut Vec<Diagnostic>) {
    if is_crate_root(&scan.rel) && !scan.has_forbid_unsafe {
        diags.push(Diagnostic {
            rule: "forbid-unsafe",
            path: scan.rel.clone(),
            line: 0,
            message: "crate root lacks `#![forbid(unsafe_code)]`".to_string(),
        });
    }
    for event in &scan.events {
        if event.kind == TokenKind::Unsafe {
            diags.push(Diagnostic {
                rule: "forbid-unsafe",
                path: scan.rel.clone(),
                line: event.line,
                message: "`unsafe` token in a forbid(unsafe_code) workspace".to_string(),
            });
        }
    }
}

fn ratchet(files: &[FileScan], baseline: Option<&Baseline>, diags: &mut Vec<Diagnostic>) {
    let Some(baseline) = baseline else {
        diags.push(Diagnostic {
            rule: "ratchet",
            path: "lint-baseline.json".to_string(),
            line: 0,
            message: "committed baseline missing: run `bakery-lint --update-baseline`"
                .to_string(),
        });
        return;
    };
    for scan in files {
        let counts = crate::baseline::FileCounts::of(scan);
        let allowed = baseline.seqcst_for(&scan.rel);
        if counts.seqcst > allowed {
            diags.push(Diagnostic {
                rule: "ratchet",
                path: scan.rel.clone(),
                line: 0,
                message: format!(
                    "SeqCst count {} exceeds the ratchet baseline {} — justify the new \
                     site(s), then refresh with `bakery-lint --update-baseline`",
                    counts.seqcst, allowed
                ),
            });
        }
    }
}
