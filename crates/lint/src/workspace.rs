//! Workspace discovery and file walking.

use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::{scan_str, FileScan};

/// Directories never scanned: build output, the vendored dependency stubs
/// (`vendor/loom` *must* reference `std::sync::atomic` — it is the shim the
/// facade interposes), and VCS metadata.
const SKIP_DIRS: [&str; 4] = ["target", "vendor", ".git", "node_modules"];

/// Finds the workspace root by walking up from `start` to the first
/// directory holding both `Cargo.toml` and `MEMORY_ORDERING.md`.
#[must_use]
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("MEMORY_ORDERING.md").is_file() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// True when the path is test-exempt by location: integration tests,
/// examples and benches are scaffolding, not protocol code.
fn is_test_path(rel: &str) -> bool {
    rel.split('/').any(|part| part == "tests" || part == "examples" || part == "benches")
}

/// Scans every `.rs` file under `root` (excluding [`SKIP_DIRS`]), returning
/// scans sorted by relative path.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<FileScan>> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort();
    let mut scans = Vec::with_capacity(files.len());
    for path in files {
        let content = fs::read_to_string(root.join(&path))?;
        let test_path = is_test_path(&path);
        scans.push(scan_str(&path, &content, test_path));
    }
    Ok(scans)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .expect("walk stays under root")
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_paths_are_recognized() {
        assert!(is_test_path("tests/conformance.rs"));
        assert!(is_test_path("crates/core/tests/loom.rs"));
        assert!(is_test_path("examples/quickstart.rs"));
        assert!(!is_test_path("crates/core/src/wait.rs"));
    }

    #[test]
    fn find_root_from_this_crate() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_root(here).expect("workspace root above crates/lint");
        assert!(root.join("MEMORY_ORDERING.md").is_file());
        assert!(root.join("crates/lint").is_dir());
    }
}
