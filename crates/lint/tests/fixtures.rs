//! Fixture-based self-tests for every `bakery-lint` rule, plus the two
//! workspace-level pins the PR's acceptance criteria name: the committed
//! ratchet baseline must equal a fresh scan, and removing any single
//! `// mem:` annotation from real protocol code must produce a finding.

#![forbid(unsafe_code)]

use std::path::Path;

use bakery_lint::baseline::Baseline;
use bakery_lint::catalog::Catalog;
use bakery_lint::lexer::scan_str;
use bakery_lint::rules::{check_files, Diagnostic};
use bakery_lint::{workspace, LintRun, BASELINE_FILE};

/// The fixture catalog: one unpaired entry, one justified-Relaxed entry and
/// one paired Dekker handshake.
fn fixture_catalog() -> Catalog {
    Catalog::parse(
        "# fixture\n\
         ## `epoch-cycle`\n\
         ## `stats-relaxed`\n\
         ## `doorway-dekker` (paired: choosing/ticket)\n",
    )
}

/// Lints one non-test fixture file against a baseline derived from itself,
/// so only non-ratchet rules can fire.
fn lint_fixture(src: &str) -> Vec<Diagnostic> {
    let scans = vec![scan_str("crates/demo/src/lib.rs", src, false)];
    let baseline = Baseline::from_scans(&scans);
    check_files(&scans, &fixture_catalog(), Some(&baseline))
}

fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.rule).collect()
}

const GOOD_HEADER: &str = "#![forbid(unsafe_code)]\nuse bakery_core::sync::Ordering;\n";

// ---------------------------------------------------------------- ordering

#[test]
fn unannotated_seqcst_is_exactly_one_diagnostic() {
    let bad = format!("{GOOD_HEADER}fn f(a: &A) {{ a.load(Ordering::SeqCst); }}\n");
    let diags = lint_fixture(&bad);
    assert_eq!(rules_of(&diags), vec!["ordering-justification"], "{diags:?}");
    assert_eq!(diags[0].line, 3);
    assert!(diags[0].message.contains("unannotated `Ordering::SeqCst`"));
}

#[test]
fn annotated_seqcst_passes() {
    let good =
        format!("{GOOD_HEADER}fn f(a: &A) {{ a.load(Ordering::SeqCst); }} // mem: epoch-cycle\n");
    assert_eq!(lint_fixture(&good), vec![], "annotated fixture must be clean");
}

#[test]
fn standalone_annotation_covers_next_line() {
    let good = format!(
        "{GOOD_HEADER}fn f(a: &A) {{\n    // mem: epoch-cycle\n    a.load(Ordering::SeqCst);\n}}\n"
    );
    assert_eq!(lint_fixture(&good), vec![]);
}

#[test]
fn unknown_protocol_is_exactly_one_diagnostic() {
    let bad =
        format!("{GOOD_HEADER}fn f(a: &A) {{ a.load(Ordering::SeqCst); }} // mem: no-such-entry\n");
    let diags = lint_fixture(&bad);
    assert_eq!(rules_of(&diags), vec!["ordering-justification"], "{diags:?}");
    assert!(diags[0].message.contains("names no MEMORY_ORDERING.md catalog entry"));
}

#[test]
fn stale_annotation_is_exactly_one_diagnostic() {
    // The annotation sits on a line with no SeqCst/Relaxed token at all.
    let bad = format!("{GOOD_HEADER}fn f() {{ let x = 1; }} // mem: epoch-cycle\n");
    let diags = lint_fixture(&bad);
    assert_eq!(rules_of(&diags), vec!["ordering-justification"], "{diags:?}");
    assert!(diags[0].message.contains("stale"));
}

#[test]
fn paired_protocol_without_side_is_exactly_one_diagnostic() {
    let bad = format!(
        "{GOOD_HEADER}fn f() {{ fence(Ordering::SeqCst); }} // mem: doorway-dekker\n"
    );
    let diags = lint_fixture(&bad);
    assert_eq!(rules_of(&diags), vec!["ordering-justification"], "{diags:?}");
    assert!(diags[0].message.contains("needs a side tag"));
}

#[test]
fn side_on_unpaired_protocol_is_exactly_one_diagnostic() {
    let bad = format!(
        "{GOOD_HEADER}fn f(a: &A) {{ a.load(Ordering::SeqCst); }} // mem: epoch-cycle.waiter\n"
    );
    let diags = lint_fixture(&bad);
    assert_eq!(rules_of(&diags), vec!["ordering-justification"], "{diags:?}");
    assert!(diags[0].message.contains("unpaired but the annotation carries side"));
}

#[test]
fn one_sided_dekker_is_exactly_one_diagnostic() {
    // Only the `choosing` side appears anywhere: the workspace-level pairing
    // check must flag the missing `ticket` side.
    let bad = format!(
        "{GOOD_HEADER}fn f() {{ fence(Ordering::SeqCst); }} // mem: doorway-dekker.choosing\n"
    );
    let diags = lint_fixture(&bad);
    assert_eq!(rules_of(&diags), vec!["ordering-justification"], "{diags:?}");
    assert!(diags[0].message.contains("one-sided"), "{}", diags[0].message);
    assert!(diags[0].message.contains("`ticket`"));
}

#[test]
fn both_sides_anywhere_in_workspace_pass() {
    let a = format!(
        "{GOOD_HEADER}fn f() {{ fence(Ordering::SeqCst); }} // mem: doorway-dekker.choosing\n"
    );
    let b = format!(
        "{GOOD_HEADER}fn g() {{ fence(Ordering::SeqCst); }} // mem: doorway-dekker.ticket\n"
    );
    let scans = vec![
        scan_str("crates/demo/src/lib.rs", &a, false),
        scan_str("crates/demo/src/other.rs", &b, false),
    ];
    let baseline = Baseline::from_scans(&scans);
    let diags = check_files(&scans, &fixture_catalog(), Some(&baseline));
    assert_eq!(diags, vec![], "two-sided pairing must be clean");
}

#[test]
fn test_scope_needs_no_annotation() {
    let good = format!(
        "{GOOD_HEADER}#[cfg(test)]\nmod tests {{\n    fn probe(a: &A) {{ a.load(Ordering::SeqCst); }}\n}}\n"
    );
    assert_eq!(lint_fixture(&good), vec![]);
}

// ------------------------------------------------------------- sync-facade

#[test]
fn direct_atomic_import_is_exactly_one_diagnostic() {
    let bad = "#![forbid(unsafe_code)]\nuse std::sync::atomic::{AtomicU64, Ordering};\n\
         fn f(a: &AtomicU64) { a.load(Ordering::SeqCst); } // mem: epoch-cycle\n";
    let diags = lint_fixture(bad);
    assert_eq!(rules_of(&diags), vec!["sync-facade"], "{diags:?}");
    assert_eq!(diags[0].line, 2);
    assert!(diags[0].message.contains("bakery_core::sync"));
}

#[test]
fn facade_import_passes() {
    let good = "#![forbid(unsafe_code)]\nuse bakery_core::sync::{AtomicU64, Ordering};\n\
         fn f(a: &AtomicU64) { a.load(Ordering::SeqCst); } // mem: epoch-cycle\n";
    assert_eq!(lint_fixture(good), vec![]);
}

#[test]
fn test_files_may_import_atomics_directly() {
    let src = "use std::sync::atomic::{AtomicU64, Ordering};\nfn f() {}\n";
    let scans = vec![scan_str("crates/demo/tests/probe.rs", src, true)];
    let baseline = Baseline::from_scans(&scans);
    let diags = check_files(&scans, &fixture_catalog(), Some(&baseline));
    assert_eq!(diags, vec![]);
}

// ----------------------------------------------------------- forbid-unsafe

#[test]
fn crate_root_without_forbid_is_exactly_one_diagnostic() {
    let bad = "use bakery_core::sync::Ordering;\nfn f() {}\n";
    let diags = lint_fixture(bad);
    assert_eq!(rules_of(&diags), vec!["forbid-unsafe"], "{diags:?}");
    assert!(diags[0].message.contains("#![forbid(unsafe_code)]"));
}

#[test]
fn unsafe_token_is_exactly_one_diagnostic() {
    let bad = format!("{GOOD_HEADER}fn f() {{ let p = unsafe {{ *core::ptr::null::<u8>() }}; }}\n");
    let diags = lint_fixture(&bad);
    assert_eq!(rules_of(&diags), vec!["forbid-unsafe"], "{diags:?}");
    assert!(diags[0].message.contains("`unsafe` token"));
}

#[test]
fn unsafe_in_comment_or_string_does_not_count() {
    let good = format!("{GOOD_HEADER}// unsafe is fine in prose\nfn f() -> &'static str {{ \"unsafe\" }}\n");
    assert_eq!(lint_fixture(&good), vec![]);
}

// ----------------------------------------------------------------- ratchet

#[test]
fn seqcst_above_baseline_is_exactly_one_diagnostic() {
    let src = format!(
        "{GOOD_HEADER}fn f(a: &A) {{ a.load(Ordering::SeqCst); a.load(Ordering::SeqCst); }} // mem: epoch-cycle\n"
    );
    let scans = vec![scan_str("crates/demo/src/lib.rs", &src, false)];
    // Pin the file at one SeqCst; the fixture has two.
    let pinned = format!(
        "{GOOD_HEADER}fn f(a: &A) {{ a.load(Ordering::SeqCst); }} // mem: epoch-cycle\n"
    );
    let baseline =
        Baseline::from_scans(&[scan_str("crates/demo/src/lib.rs", &pinned, false)]);
    let diags = check_files(&scans, &fixture_catalog(), Some(&baseline));
    assert_eq!(rules_of(&diags), vec!["ratchet"], "{diags:?}");
    assert!(diags[0].message.contains("exceeds the ratchet baseline 1"));
}

#[test]
fn missing_baseline_is_exactly_one_diagnostic() {
    let good =
        format!("{GOOD_HEADER}fn f(a: &A) {{ a.load(Ordering::SeqCst); }} // mem: epoch-cycle\n");
    let scans = vec![scan_str("crates/demo/src/lib.rs", &good, false)];
    let diags = check_files(&scans, &fixture_catalog(), None);
    assert_eq!(rules_of(&diags), vec!["ratchet"], "{diags:?}");
    assert!(diags[0].message.contains("baseline missing"));
}

// ------------------------------------------------------- workspace-level pins

fn workspace_root() -> std::path::PathBuf {
    workspace::find_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/lint")
}

#[test]
fn workspace_is_lint_clean() {
    let run = LintRun::check(&workspace_root()).expect("scan");
    assert_eq!(
        run.diagnostics,
        vec![],
        "the committed workspace must pass its own lint"
    );
}

#[test]
fn committed_baseline_matches_fresh_scan() {
    let root = workspace_root();
    let run = LintRun::check(&root).expect("scan");
    let committed = std::fs::read_to_string(root.join(BASELINE_FILE)).expect("baseline file");
    let committed = Baseline::from_json(&committed).expect("baseline parses");
    assert_eq!(
        committed,
        run.fresh_baseline(),
        "lint-baseline.json is stale: run `bakery-lint --update-baseline`"
    );
}

/// Removing any single `// mem:` annotation from real protocol code must
/// fail the lint — either the uncovered site fires (trailing form) or the
/// now-uncovered next line fires, and paired protocols may additionally go
/// one-sided.  This is the acceptance pin for the annotation discipline.
#[test]
fn removing_any_single_annotation_fails_the_lint() {
    let root = workspace_root();
    let catalog_text =
        std::fs::read_to_string(root.join("MEMORY_ORDERING.md")).expect("catalog");
    let catalog = Catalog::parse(&catalog_text);
    let scans = workspace::scan_workspace(&root).expect("scan");
    let baseline = Baseline::from_scans(&scans);
    let clean = check_files(&scans, &catalog, Some(&baseline));
    assert_eq!(clean, vec![], "precondition: workspace is clean");

    let mut checked = 0usize;
    for scan in &scans {
        // One representative (the first non-test annotation) per file keeps
        // the test fast while still covering every file and protocol.
        let Some(ann) = scan.annotations.iter().find(|a| !a.in_test) else {
            continue;
        };
        let path = root.join(&scan.rel);
        let content = std::fs::read_to_string(&path).expect("source file");
        let mutated: String = content
            .lines()
            .enumerate()
            .map(|(i, line)| {
                if i + 1 == ann.line {
                    match line.find("// mem:") {
                        Some(pos) => line[..pos].trim_end().to_string(),
                        None => line.to_string(),
                    }
                } else {
                    line.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        assert_ne!(mutated, content, "{}: annotation not found to strip", scan.rel);

        let mut mutated_scans: Vec<_> = scans
            .iter()
            .filter(|s| s.rel != scan.rel)
            .cloned()
            .collect();
        mutated_scans.push(scan_str(&scan.rel, &mutated, scan.test_path));
        mutated_scans.sort_by(|a, b| a.rel.cmp(&b.rel));
        let diags = check_files(&mutated_scans, &catalog, Some(&baseline));
        assert!(
            !diags.is_empty(),
            "{}:{}: stripping `// mem: {}` produced no finding",
            scan.rel,
            ann.line,
            ann.protocol
        );
        checked += 1;
    }
    assert!(checked >= 20, "expected >= 20 annotated files, saw {checked}");
}
