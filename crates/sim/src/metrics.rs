//! Per-run metrics reported by the simulator.

/// A named invariant violation found during a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The invariant that failed.
    pub invariant: String,
    /// The step at which it first failed.
    pub step: u64,
    /// Rendering of the offending state.
    pub state: String,
}

/// Summary of one simulator run.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// The algorithm that was run.
    pub algorithm: String,
    /// Steps actually executed (may be less than requested on deadlock or
    /// first violation).
    pub steps: u64,
    /// Critical-section entries per process.
    pub cs_entries: Vec<u64>,
    /// Steps on which each process was blocked when it was scheduled (the
    /// scheduler had to pick someone else).
    pub blocked_picks: Vec<u64>,
    /// Crashes injected per process.
    pub crashes: Vec<u64>,
    /// Invariant violations discovered.
    pub violations: Vec<Violation>,
    /// True when a state with no enabled process was reached.
    pub deadlocked: bool,
    /// Largest value ever observed in any shared register.
    pub max_register_value: u64,
    /// Number of Bakery++-style overflow-avoidance resets observed.
    pub overflow_avoidance_resets: u64,
    /// Number of register-overflow attempts observed.
    pub overflow_attempts: u64,
}

bakery_json::json_object!(Violation { invariant, step, state });
bakery_json::json_object!(RunReport {
    algorithm,
    steps,
    cs_entries,
    blocked_picks,
    crashes,
    violations,
    deadlocked,
    max_register_value,
    overflow_avoidance_resets,
    overflow_attempts,
});

impl RunReport {
    /// Creates an empty report for an algorithm with `processes` processes.
    #[must_use]
    pub fn new(algorithm: impl Into<String>, processes: usize) -> Self {
        Self {
            algorithm: algorithm.into(),
            steps: 0,
            cs_entries: vec![0; processes],
            blocked_picks: vec![0; processes],
            crashes: vec![0; processes],
            violations: Vec::new(),
            deadlocked: false,
            max_register_value: 0,
            overflow_avoidance_resets: 0,
            overflow_attempts: 0,
        }
    }

    /// Total critical-section entries across all processes.
    #[must_use]
    pub fn total_cs_entries(&self) -> u64 {
        self.cs_entries.iter().sum()
    }

    /// True when no invariant was violated and no deadlock occurred.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && !self.deadlocked
    }

    /// The smallest and largest per-process critical-section counts — a crude
    /// fairness indicator (0 spread = perfectly even service).
    #[must_use]
    pub fn cs_entry_spread(&self) -> (u64, u64) {
        let min = self.cs_entries.iter().copied().min().unwrap_or(0);
        let max = self.cs_entries.iter().copied().max().unwrap_or(0);
        (min, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_report_is_clean_and_zeroed() {
        let r = RunReport::new("bakery", 3);
        assert!(r.is_clean());
        assert_eq!(r.total_cs_entries(), 0);
        assert_eq!(r.cs_entries.len(), 3);
        assert_eq!(r.cs_entry_spread(), (0, 0));
    }

    #[test]
    fn totals_and_spread() {
        let mut r = RunReport::new("x", 3);
        r.cs_entries = vec![5, 9, 2];
        assert_eq!(r.total_cs_entries(), 16);
        assert_eq!(r.cs_entry_spread(), (2, 9));
    }

    #[test]
    fn violations_make_report_dirty() {
        let mut r = RunReport::new("x", 1);
        assert!(r.is_clean());
        r.violations.push(Violation {
            invariant: "MutualExclusion".into(),
            step: 10,
            state: "[..]".into(),
        });
        assert!(!r.is_clean());
        let mut r2 = RunReport::new("y", 1);
        r2.deadlocked = true;
        assert!(!r2.is_clean());
    }

    #[test]
    fn report_serializes() {
        let r = RunReport::new("bakery++", 2);
        let json = bakery_json::to_string(&r).unwrap();
        let back: RunReport = bakery_json::from_str(&json).unwrap();
        assert_eq!(back.algorithm, "bakery++");
        assert_eq!(back.cs_entries.len(), 2);
    }
}
