//! # bakery-sim
//!
//! A step-machine concurrency simulator: the substrate on which the
//! model-checkable specifications of Bakery, Bakery++ and the baseline
//! algorithms run (crate `bakery-spec`), and which the explicit-state model
//! checker (crate `bakery-mc`) explores exhaustively.
//!
//! The paper verifies Bakery++ by writing a PlusCal specification and running
//! the TLC model checker over it.  This crate plays the role of PlusCal's
//! execution model:
//!
//! * an algorithm is a set of **guarded atomic steps** per process over a
//!   [`ProgState`] (shared bounded registers + per-process program counter
//!   and locals) — see [`Algorithm`];
//! * a **scheduler** picks which process moves next
//!   ([`scheduler::Scheduler`]): round-robin, seeded random, adversarial
//!   priority, or an exact replay of a recorded trace;
//! * **invariants** ([`invariant::Invariant`]) are checked after every step:
//!   mutual exclusion, register bounds (the no-overflow property), and
//!   arbitrary user predicates;
//! * **fault injection** ([`faults::FaultPlan`]) crashes and restarts
//!   processes according to the paper's failure assumptions 1.5–1.7;
//! * every run produces a [`trace::Trace`] that can be replayed, diffed, and
//!   reduced to its observable events for the refinement experiment (**E4**).
//!
//! The model checker in `bakery-mc` uses the same [`Algorithm`] trait but
//! enumerates *all* schedules instead of sampling one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algorithm;
pub mod faults;
pub mod invariant;
pub mod metrics;
pub mod runner;
pub mod scheduler;
pub mod state;
pub mod symmetry;
pub mod trace;

pub use algorithm::{Algorithm, Observation, RegisterSemantics, StateBounds};
pub use faults::FaultPlan;
pub use invariant::Invariant;
pub use metrics::RunReport;
pub use runner::{RunConfig, Simulator};
pub use scheduler::{AdversarialScheduler, RandomScheduler, ReplayScheduler, RoundRobinScheduler, Scheduler};
pub use state::{PendingWrite, ProcState, ProgState, RegisterSpec};
pub use symmetry::{StatePermutation, SymmetryGroup};
pub use trace::{Trace, TraceEvent};
