//! Schedulers: who moves next.
//!
//! The paper's system model makes no assumption about relative process speeds
//! (correctness condition 5), so any schedule must preserve the algorithm's
//! properties.  The simulator samples schedules; the model checker enumerates
//! all of them.  Four samplers are provided:
//!
//! * [`RoundRobinScheduler`] — the friendliest schedule, every process moves
//!   in turn;
//! * [`RandomScheduler`] — uniformly random enabled process, seeded and
//!   reproducible;
//! * [`AdversarialScheduler`] — prefers a subset of "fast" processes and only
//!   lets the remaining "slow" processes move occasionally, reproducing the
//!   slow-reader scenario of the paper's Section 6.3;
//! * [`ReplayScheduler`] — replays a previously recorded choice sequence
//!   exactly (used by trace replay and the refinement experiment).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Picks which process takes the next step.
pub trait Scheduler {
    /// Chooses one of `enabled` (guaranteed non-empty, sorted ascending).
    /// `step` is the number of steps taken so far.
    fn pick(&mut self, enabled: &[usize], step: u64) -> usize;

    /// Chooses among `count` nondeterministic successors of the chosen
    /// process (defaults to the first).
    fn pick_branch(&mut self, count: usize, _step: u64) -> usize {
        debug_assert!(count > 0);
        0
    }
}

/// Cycles through processes in index order, skipping disabled ones.
#[derive(Debug, Default)]
pub struct RoundRobinScheduler {
    next: usize,
}

impl RoundRobinScheduler {
    /// Creates a round-robin scheduler starting at process 0.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobinScheduler {
    fn pick(&mut self, enabled: &[usize], _step: u64) -> usize {
        // Pick the first enabled pid >= self.next, wrapping around.
        let chosen = enabled
            .iter()
            .copied()
            .find(|&pid| pid >= self.next)
            .unwrap_or(enabled[0]);
        self.next = chosen + 1;
        chosen
    }
}

/// Uniformly random choice with a fixed seed.
#[derive(Debug)]
pub struct RandomScheduler {
    rng: StdRng,
}

impl RandomScheduler {
    /// Creates a random scheduler from a seed (same seed ⇒ same schedule).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn pick(&mut self, enabled: &[usize], _step: u64) -> usize {
        enabled[self.rng.gen_range(0..enabled.len())]
    }

    fn pick_branch(&mut self, count: usize, _step: u64) -> usize {
        self.rng.gen_range(0..count)
    }
}

/// Prefers the `fast` processes; a process outside that set only moves when
/// either no fast process is enabled or a biased coin (1 in `slowdown`) says
/// so.  This reproduces the paper's §6.3 scenario of "an extremely slow
/// process against two processes that are quite fast".
#[derive(Debug)]
pub struct AdversarialScheduler {
    fast: Vec<usize>,
    slowdown: u32,
    rng: StdRng,
}

impl AdversarialScheduler {
    /// Creates an adversarial scheduler favouring `fast` processes; the other
    /// processes move roughly once every `slowdown` opportunities.
    #[must_use]
    pub fn new(fast: Vec<usize>, slowdown: u32, seed: u64) -> Self {
        assert!(slowdown > 0, "slowdown must be positive");
        Self {
            fast,
            slowdown,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for AdversarialScheduler {
    fn pick(&mut self, enabled: &[usize], _step: u64) -> usize {
        let fast_enabled: Vec<usize> = enabled
            .iter()
            .copied()
            .filter(|pid| self.fast.contains(pid))
            .collect();
        let slow_enabled: Vec<usize> = enabled
            .iter()
            .copied()
            .filter(|pid| !self.fast.contains(pid))
            .collect();
        let give_slow_a_turn = self.rng.gen_ratio(1, self.slowdown);
        if fast_enabled.is_empty() || (give_slow_a_turn && !slow_enabled.is_empty()) {
            slow_enabled[self.rng.gen_range(0..slow_enabled.len())]
        } else {
            fast_enabled[self.rng.gen_range(0..fast_enabled.len())]
        }
    }

    fn pick_branch(&mut self, count: usize, _step: u64) -> usize {
        self.rng.gen_range(0..count)
    }
}

/// Replays an explicit `(pid, branch)` choice sequence.
///
/// Once the recorded choices are exhausted (or a recorded pid is not enabled,
/// which means the run being replayed has diverged) it falls back to the first
/// enabled process.
#[derive(Debug)]
pub struct ReplayScheduler {
    choices: Vec<(usize, usize)>,
    cursor: usize,
    diverged: bool,
}

impl ReplayScheduler {
    /// Creates a replay scheduler from a recorded `(pid, branch)` sequence.
    #[must_use]
    pub fn new(choices: Vec<(usize, usize)>) -> Self {
        Self {
            choices,
            cursor: 0,
            diverged: false,
        }
    }

    /// True when the replay ran past its recording or hit a disabled pid.
    #[must_use]
    pub fn diverged(&self) -> bool {
        self.diverged
    }
}

impl Scheduler for ReplayScheduler {
    fn pick(&mut self, enabled: &[usize], _step: u64) -> usize {
        if let Some(&(pid, _)) = self.choices.get(self.cursor) {
            if enabled.contains(&pid) {
                return pid;
            }
            self.diverged = true;
        } else {
            self.diverged = true;
        }
        enabled[0]
    }

    fn pick_branch(&mut self, count: usize, _step: u64) -> usize {
        let branch = self
            .choices
            .get(self.cursor)
            .map_or(0, |&(_, branch)| branch);
        self.cursor += 1;
        if branch < count {
            branch
        } else {
            self.diverged = true;
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles_through_processes() {
        let mut s = RoundRobinScheduler::new();
        let enabled = vec![0, 1, 2];
        let picks: Vec<usize> = (0..6).map(|i| s.pick(&enabled, i)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_skips_disabled() {
        let mut s = RoundRobinScheduler::new();
        assert_eq!(s.pick(&[0, 2], 0), 0);
        assert_eq!(s.pick(&[0, 2], 1), 2);
        assert_eq!(s.pick(&[1], 2), 1);
    }

    #[test]
    fn random_scheduler_is_reproducible() {
        let enabled = vec![0, 1, 2, 3];
        let seq_a: Vec<usize> = {
            let mut s = RandomScheduler::new(7);
            (0..32).map(|i| s.pick(&enabled, i)).collect()
        };
        let seq_b: Vec<usize> = {
            let mut s = RandomScheduler::new(7);
            (0..32).map(|i| s.pick(&enabled, i)).collect()
        };
        assert_eq!(seq_a, seq_b);
        let seq_c: Vec<usize> = {
            let mut s = RandomScheduler::new(8);
            (0..32).map(|i| s.pick(&enabled, i)).collect()
        };
        assert_ne!(seq_a, seq_c, "different seeds give different schedules");
    }

    #[test]
    fn random_scheduler_only_picks_enabled() {
        let mut s = RandomScheduler::new(99);
        for i in 0..100 {
            let pick = s.pick(&[1, 3], i);
            assert!(pick == 1 || pick == 3);
        }
    }

    #[test]
    fn adversarial_scheduler_starves_the_slow_process() {
        let mut s = AdversarialScheduler::new(vec![0, 1], 1000, 42);
        let enabled = vec![0, 1, 2];
        let slow_turns = (0..1000).filter(|&i| s.pick(&enabled, i) == 2).count();
        assert!(
            slow_turns < 50,
            "slow process moved {slow_turns} times out of 1000"
        );
    }

    #[test]
    fn adversarial_scheduler_falls_back_to_slow_when_fast_blocked() {
        let mut s = AdversarialScheduler::new(vec![0], 10, 1);
        assert_eq!(s.pick(&[2], 0), 2);
    }

    #[test]
    #[should_panic(expected = "slowdown must be positive")]
    fn adversarial_rejects_zero_slowdown() {
        let _ = AdversarialScheduler::new(vec![0], 0, 1);
    }

    #[test]
    fn replay_scheduler_follows_recording_then_flags_divergence() {
        let mut s = ReplayScheduler::new(vec![(1, 0), (0, 1)]);
        assert_eq!(s.pick(&[0, 1], 0), 1);
        assert_eq!(s.pick_branch(1, 0), 0);
        assert_eq!(s.pick(&[0, 1], 1), 0);
        assert_eq!(s.pick_branch(2, 1), 1);
        assert!(!s.diverged());
        // Recording exhausted: falls back and reports divergence.
        assert_eq!(s.pick(&[0], 2), 0);
        s.pick_branch(1, 2);
        assert!(s.diverged());
    }

    #[test]
    fn replay_scheduler_detects_disabled_pid() {
        let mut s = ReplayScheduler::new(vec![(3, 0)]);
        assert_eq!(s.pick(&[0, 1], 0), 0, "falls back to first enabled");
        assert!(s.diverged());
    }
}
