//! Global program states for step-machine algorithms.
//!
//! A [`ProgState`] is the complete instantaneous description of a run: the
//! contents of every shared register plus, for each process, its program
//! counter, its local variables and whether it is currently crashed.  States
//! are plain data — `Clone + Eq + Hash` — so the model checker can store and
//! deduplicate millions of them, and `serde`-serialisable so counterexample
//! traces can be exported as JSON.

use std::fmt;

/// Description of one shared register: its name (for traces and reports) and
/// its bound `M` (the largest value it may legally hold).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RegisterSpec {
    /// Human-readable name, e.g. `"number[1]"`.
    pub name: String,
    /// The register bound; storing a value above this is an overflow.
    pub bound: u64,
    /// Index of the owning process, if the register is single-writer.
    pub owner: Option<usize>,
}

impl RegisterSpec {
    /// Creates a register spec owned by process `owner`.
    #[must_use]
    pub fn owned(name: impl Into<String>, bound: u64, owner: usize) -> Self {
        Self {
            name: name.into(),
            bound,
            owner: Some(owner),
        }
    }

    /// Creates a multi-writer register spec (no single owner).
    #[must_use]
    pub fn shared(name: impl Into<String>, bound: u64) -> Self {
        Self {
            name: name.into(),
            bound,
            owner: None,
        }
    }
}

/// Per-process component of a [`ProgState`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProcState {
    /// Program counter; the meaning of each value is algorithm-specific
    /// (see [`crate::Algorithm::pc_label`]).
    pub pc: u32,
    /// Local (unshared) variables, e.g. the loop index `j` or a saved maximum.
    pub locals: Vec<u64>,
    /// True while the process is crashed (it takes no steps until restarted).
    pub crashed: bool,
}

impl ProcState {
    /// Creates a process state at program counter `pc` with the given locals.
    #[must_use]
    pub fn new(pc: u32, locals: Vec<u64>) -> Self {
        Self {
            pc,
            locals,
            crashed: false,
        }
    }
}

/// An in-progress (begun but not yet committed) write to one shared
/// register, used only under [`crate::RegisterSemantics::Safe`].
///
/// The normalisation invariant — relied on by the model checker's packed
/// encoding — is: `writers == 0` implies `value == 0 && !clash`, and
/// `clash` implies `value == 0` (a clash has no single pending value; the
/// eventual committed value is arbitrary in `[0, bound]`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct PendingWrite {
    /// Bitmask of process ids with a write in flight on this register.
    pub writers: u64,
    /// The pending value, when exactly one writer is in flight (no clash).
    pub value: u64,
    /// True when two or more writes overlapped on this register; the value
    /// eventually committed is then arbitrary within the register's bound.
    pub clash: bool,
}

impl PendingWrite {
    /// True when no write is in flight on this register.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.writers == 0
    }

    /// Re-establishes the normalisation invariant after clearing a writer
    /// bit: an idle cell is all-zero, and a clash carries no pending value.
    fn normalize(&mut self) {
        if self.writers == 0 {
            self.value = 0;
            self.clash = false;
        } else if self.clash {
            self.value = 0;
        }
    }
}

/// A complete global state: shared registers plus every process's state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProgState {
    /// Shared register values, indexed consistently with the algorithm's
    /// [`crate::Algorithm::registers`] list.
    pub shared: Vec<u64>,
    /// Per-process program counters and locals.
    pub procs: Vec<ProcState>,
    /// In-progress writes, index-aligned with `shared`.  **Empty** under
    /// [`crate::RegisterSemantics::Atomic`] (the common case), so atomic-mode
    /// states hash, compare and encode exactly as they did before the
    /// weak-register plane existed.
    pub writes: Vec<PendingWrite>,
}

bakery_json::json_object!(RegisterSpec { name, bound, owner });
bakery_json::json_object!(ProcState { pc, locals, crashed });
bakery_json::json_object!(PendingWrite {
    writers,
    value,
    clash
});
bakery_json::json_object!(ProgState {
    shared,
    procs,
    writes
});

impl ProgState {
    /// Creates a state with `registers` shared cells (all zero, as the paper
    /// requires) and the given per-process initial states.  The state carries
    /// no pending-write cells — this is the atomic-semantics constructor.
    #[must_use]
    pub fn new(registers: usize, procs: Vec<ProcState>) -> Self {
        Self {
            shared: vec![0; registers],
            procs,
            writes: Vec::new(),
        }
    }

    /// Creates a state for [`crate::RegisterSemantics::Safe`] execution: like
    /// [`ProgState::new`] but with one (idle) pending-write cell per register.
    #[must_use]
    pub fn new_weak(registers: usize, procs: Vec<ProcState>) -> Self {
        Self {
            shared: vec![0; registers],
            procs,
            writes: vec![PendingWrite::default(); registers],
        }
    }

    /// Number of participating processes.
    #[must_use]
    pub fn process_count(&self) -> usize {
        self.procs.len()
    }

    /// Reads shared register `idx`.
    #[must_use]
    pub fn read(&self, idx: usize) -> u64 {
        self.shared[idx]
    }

    /// Returns a copy of this state with register `idx` set to `value`.
    #[must_use]
    pub fn with_write(&self, idx: usize, value: u64) -> Self {
        let mut next = self.clone();
        next.shared[idx] = value;
        next
    }

    /// Returns a copy of this state with process `pid` moved to `pc`.
    #[must_use]
    pub fn with_pc(&self, pid: usize, pc: u32) -> Self {
        let mut next = self.clone();
        next.procs[pid].pc = pc;
        next
    }

    /// Returns a copy with process `pid` moved to `pc` and local `slot`
    /// updated to `value`.
    #[must_use]
    pub fn with_pc_and_local(&self, pid: usize, pc: u32, slot: usize, value: u64) -> Self {
        let mut next = self.clone();
        next.procs[pid].pc = pc;
        next.procs[pid].locals[slot] = value;
        next
    }

    /// In-place mutators used by builders that construct successors piecemeal.
    pub fn set_pc(&mut self, pid: usize, pc: u32) {
        self.procs[pid].pc = pc;
    }

    /// Sets local variable `slot` of process `pid`.
    pub fn set_local(&mut self, pid: usize, slot: usize, value: u64) {
        self.procs[pid].locals[slot] = value;
    }

    /// Sets shared register `idx`.
    pub fn set_shared(&mut self, idx: usize, value: u64) {
        self.shared[idx] = value;
    }

    /// Starts a safe-semantics write of `value` to register `idx` by process
    /// `pid` (in place).  If another write is already in flight the two
    /// overlap and the cell degrades to a *clash*: the committed value will
    /// be arbitrary within the register's bound.
    pub fn begin_write(&mut self, idx: usize, value: u64, pid: usize) {
        let cell = &mut self.writes[idx];
        if cell.writers == 0 {
            cell.writers = 1 << pid;
            cell.value = value;
            cell.clash = false;
        } else {
            cell.writers |= 1 << pid;
            cell.clash = true;
            cell.value = 0;
        }
    }

    /// The values `pid`'s in-flight write on register `idx` may commit:
    /// the single pending value normally, or every value in `[0, bound]`
    /// after a clash.
    #[must_use]
    pub fn commit_values(&self, idx: usize, bound: u64) -> Vec<u64> {
        let cell = &self.writes[idx];
        if cell.clash {
            (0..=bound).collect()
        } else {
            vec![cell.value]
        }
    }

    /// Completes `pid`'s in-flight write on register `idx` (in place),
    /// committing `value` to the register.  Any clash mark persists while
    /// other writers remain in flight.
    pub fn end_write(&mut self, idx: usize, pid: usize, value: u64) {
        self.shared[idx] = value;
        let cell = &mut self.writes[idx];
        cell.writers &= !(1 << pid);
        cell.normalize();
    }

    /// Aborts every in-flight write by `pid` (in place) — the crash rule for
    /// safe registers: the pending value is dropped, never committed.  A
    /// clash with surviving writers persists (their outcome stays arbitrary).
    pub fn abort_writes(&mut self, pid: usize) {
        for cell in &mut self.writes {
            if cell.writers & (1 << pid) != 0 {
                cell.writers &= !(1 << pid);
                cell.normalize();
            }
        }
    }

    /// The register index of `pid`'s in-flight write, if it has one.  The
    /// specifications issue at most one write at a time per process, so a
    /// single index suffices.
    #[must_use]
    pub fn write_in_progress_by(&self, pid: usize) -> Option<usize> {
        self.writes
            .iter()
            .position(|cell| cell.writers & (1 << pid) != 0)
    }

    /// The values a safe-semantics read of register `idx` may return: the
    /// committed value when no write is in flight, otherwise every value in
    /// `[0, bound]` (a flickering read).
    #[must_use]
    pub fn read_values(&self, idx: usize, bound: u64) -> Vec<u64> {
        match self.writes.get(idx) {
            Some(cell) if !cell.is_idle() => (0..=bound).collect(),
            _ => vec![self.shared[idx]],
        }
    }

    /// The value most recently *stored to* register `idx` by its writer: the
    /// pending value while a (non-clash) write is in flight, otherwise the
    /// committed value.  Used by observers that need the writer's intent
    /// rather than a reader's view.
    #[must_use]
    pub fn last_stored(&self, idx: usize) -> u64 {
        match self.writes.get(idx) {
            Some(cell) if !cell.is_idle() && !cell.clash => cell.value,
            _ => self.shared[idx],
        }
    }

    /// Local variable `slot` of process `pid`.
    #[must_use]
    pub fn local(&self, pid: usize, slot: usize) -> u64 {
        self.procs[pid].locals[slot]
    }

    /// Program counter of process `pid`.
    #[must_use]
    pub fn pc(&self, pid: usize) -> u32 {
        self.procs[pid].pc
    }

    /// True when process `pid` is currently crashed.
    #[must_use]
    pub fn is_crashed(&self, pid: usize) -> bool {
        self.procs[pid].crashed
    }

    /// Compact single-line rendering used in counterexample traces.
    #[must_use]
    pub fn render(&self, registers: &[RegisterSpec]) -> String {
        let shared: Vec<String> = self
            .shared
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let name = registers
                    .get(i)
                    .map_or_else(|| format!("r{i}"), |r| r.name.clone());
                match self.writes.get(i) {
                    Some(cell) if !cell.is_idle() => {
                        let pending = if cell.clash {
                            "clash".to_string()
                        } else {
                            cell.value.to_string()
                        };
                        format!("{name}={v}*{pending}")
                    }
                    _ => format!("{name}={v}"),
                }
            })
            .collect();
        let procs: Vec<String> = self
            .procs
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let crash = if p.crashed { "!" } else { "" };
                format!("p{i}{crash}@{}", p.pc)
            })
            .collect();
        format!("[{}] [{}]", shared.join(" "), procs.join(" "))
    }
}

impl fmt::Display for ProgState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(&[]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn two_proc_state() -> ProgState {
        ProgState::new(
            4,
            vec![ProcState::new(0, vec![0, 0]), ProcState::new(0, vec![0, 0])],
        )
    }

    #[test]
    fn new_state_is_all_zero() {
        let s = two_proc_state();
        assert_eq!(s.shared, vec![0, 0, 0, 0]);
        assert_eq!(s.process_count(), 2);
        assert_eq!(s.pc(0), 0);
        assert!(!s.is_crashed(1));
    }

    #[test]
    fn with_write_is_persistent() {
        let s = two_proc_state();
        let t = s.with_write(2, 9);
        assert_eq!(s.read(2), 0, "original untouched");
        assert_eq!(t.read(2), 9);
    }

    #[test]
    fn with_pc_and_local_updates_only_target() {
        let s = two_proc_state();
        let t = s.with_pc_and_local(1, 7, 0, 3);
        assert_eq!(t.pc(1), 7);
        assert_eq!(t.local(1, 0), 3);
        assert_eq!(t.pc(0), 0);
        assert_eq!(t.local(0, 0), 0);
    }

    #[test]
    fn states_hash_and_compare_structurally() {
        let a = two_proc_state().with_write(0, 1);
        let b = two_proc_state().with_write(0, 1);
        let c = two_proc_state().with_write(0, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let set: HashSet<ProgState> = [a, b, c].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn render_names_registers() {
        let regs = vec![
            RegisterSpec::owned("number[0]", 5, 0),
            RegisterSpec::owned("number[1]", 5, 1),
        ];
        let s = ProgState::new(2, vec![ProcState::new(3, vec![])]).with_write(1, 4);
        let text = s.render(&regs);
        assert!(text.contains("number[1]=4"));
        assert!(text.contains("p0@3"));
    }

    #[test]
    fn register_spec_constructors() {
        let owned = RegisterSpec::owned("choosing[2]", 1, 2);
        assert_eq!(owned.owner, Some(2));
        let shared = RegisterSpec::shared("color", 1);
        assert_eq!(shared.owner, None);
        assert_eq!(shared.bound, 1);
    }

    #[test]
    fn states_serialize_round_trip() {
        let s = two_proc_state().with_write(3, 7).with_pc(0, 5);
        let json = bakery_json::to_string(&s).unwrap();
        let back: ProgState = bakery_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    fn weak_two_proc_state() -> ProgState {
        ProgState::new_weak(
            2,
            vec![ProcState::new(0, vec![0]), ProcState::new(0, vec![0])],
        )
    }

    #[test]
    fn single_writer_begin_end_commits_pending_value() {
        let mut s = weak_two_proc_state();
        s.begin_write(1, 5, 0);
        assert_eq!(s.write_in_progress_by(0), Some(1));
        assert_eq!(s.read(1), 0, "committed value unchanged until end_write");
        assert_eq!(s.last_stored(1), 5, "writer's intent visible");
        assert_eq!(s.read_values(1, 7), (0..=7).collect::<Vec<_>>(), "flicker");
        assert_eq!(s.commit_values(1, 7), vec![5]);
        s.end_write(1, 0, 5);
        assert_eq!(s.read(1), 5);
        assert!(s.writes[1].is_idle());
        assert_eq!(s.read_values(1, 7), vec![5], "quiescent read is exact");
    }

    #[test]
    fn overlapping_writes_clash_and_commit_arbitrarily() {
        let mut s = weak_two_proc_state();
        s.begin_write(0, 3, 0);
        s.begin_write(0, 1, 1);
        assert!(s.writes[0].clash);
        assert_eq!(s.writes[0].value, 0, "clash carries no pending value");
        assert_eq!(s.commit_values(0, 2), vec![0, 1, 2]);
        s.end_write(0, 0, 2);
        assert!(s.writes[0].clash, "clash persists while a writer remains");
        s.end_write(0, 1, 1);
        assert!(s.writes[0].is_idle());
        assert!(!s.writes[0].clash);
    }

    #[test]
    fn abort_drops_pending_value_and_normalizes() {
        let mut s = weak_two_proc_state();
        s.begin_write(1, 6, 1);
        s.abort_writes(1);
        assert!(s.writes[1].is_idle());
        assert_eq!(s.writes[1].value, 0);
        assert_eq!(s.read(1), 0, "aborted value never committed");
        assert_eq!(s.write_in_progress_by(1), None);
    }

    #[test]
    fn weak_states_serialize_round_trip() {
        let mut s = weak_two_proc_state();
        s.begin_write(0, 2, 0);
        let json = bakery_json::to_string(&s).unwrap();
        let back: ProgState = bakery_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
