//! Global program states for step-machine algorithms.
//!
//! A [`ProgState`] is the complete instantaneous description of a run: the
//! contents of every shared register plus, for each process, its program
//! counter, its local variables and whether it is currently crashed.  States
//! are plain data — `Clone + Eq + Hash` — so the model checker can store and
//! deduplicate millions of them, and `serde`-serialisable so counterexample
//! traces can be exported as JSON.

use std::fmt;

/// Description of one shared register: its name (for traces and reports) and
/// its bound `M` (the largest value it may legally hold).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RegisterSpec {
    /// Human-readable name, e.g. `"number[1]"`.
    pub name: String,
    /// The register bound; storing a value above this is an overflow.
    pub bound: u64,
    /// Index of the owning process, if the register is single-writer.
    pub owner: Option<usize>,
}

impl RegisterSpec {
    /// Creates a register spec owned by process `owner`.
    #[must_use]
    pub fn owned(name: impl Into<String>, bound: u64, owner: usize) -> Self {
        Self {
            name: name.into(),
            bound,
            owner: Some(owner),
        }
    }

    /// Creates a multi-writer register spec (no single owner).
    #[must_use]
    pub fn shared(name: impl Into<String>, bound: u64) -> Self {
        Self {
            name: name.into(),
            bound,
            owner: None,
        }
    }
}

/// Per-process component of a [`ProgState`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProcState {
    /// Program counter; the meaning of each value is algorithm-specific
    /// (see [`crate::Algorithm::pc_label`]).
    pub pc: u32,
    /// Local (unshared) variables, e.g. the loop index `j` or a saved maximum.
    pub locals: Vec<u64>,
    /// True while the process is crashed (it takes no steps until restarted).
    pub crashed: bool,
}

impl ProcState {
    /// Creates a process state at program counter `pc` with the given locals.
    #[must_use]
    pub fn new(pc: u32, locals: Vec<u64>) -> Self {
        Self {
            pc,
            locals,
            crashed: false,
        }
    }
}

/// A complete global state: shared registers plus every process's state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProgState {
    /// Shared register values, indexed consistently with the algorithm's
    /// [`crate::Algorithm::registers`] list.
    pub shared: Vec<u64>,
    /// Per-process program counters and locals.
    pub procs: Vec<ProcState>,
}

bakery_json::json_object!(RegisterSpec { name, bound, owner });
bakery_json::json_object!(ProcState { pc, locals, crashed });
bakery_json::json_object!(ProgState { shared, procs });

impl ProgState {
    /// Creates a state with `registers` shared cells (all zero, as the paper
    /// requires) and the given per-process initial states.
    #[must_use]
    pub fn new(registers: usize, procs: Vec<ProcState>) -> Self {
        Self {
            shared: vec![0; registers],
            procs,
        }
    }

    /// Number of participating processes.
    #[must_use]
    pub fn process_count(&self) -> usize {
        self.procs.len()
    }

    /// Reads shared register `idx`.
    #[must_use]
    pub fn read(&self, idx: usize) -> u64 {
        self.shared[idx]
    }

    /// Returns a copy of this state with register `idx` set to `value`.
    #[must_use]
    pub fn with_write(&self, idx: usize, value: u64) -> Self {
        let mut next = self.clone();
        next.shared[idx] = value;
        next
    }

    /// Returns a copy of this state with process `pid` moved to `pc`.
    #[must_use]
    pub fn with_pc(&self, pid: usize, pc: u32) -> Self {
        let mut next = self.clone();
        next.procs[pid].pc = pc;
        next
    }

    /// Returns a copy with process `pid` moved to `pc` and local `slot`
    /// updated to `value`.
    #[must_use]
    pub fn with_pc_and_local(&self, pid: usize, pc: u32, slot: usize, value: u64) -> Self {
        let mut next = self.clone();
        next.procs[pid].pc = pc;
        next.procs[pid].locals[slot] = value;
        next
    }

    /// In-place mutators used by builders that construct successors piecemeal.
    pub fn set_pc(&mut self, pid: usize, pc: u32) {
        self.procs[pid].pc = pc;
    }

    /// Sets local variable `slot` of process `pid`.
    pub fn set_local(&mut self, pid: usize, slot: usize, value: u64) {
        self.procs[pid].locals[slot] = value;
    }

    /// Sets shared register `idx`.
    pub fn set_shared(&mut self, idx: usize, value: u64) {
        self.shared[idx] = value;
    }

    /// Local variable `slot` of process `pid`.
    #[must_use]
    pub fn local(&self, pid: usize, slot: usize) -> u64 {
        self.procs[pid].locals[slot]
    }

    /// Program counter of process `pid`.
    #[must_use]
    pub fn pc(&self, pid: usize) -> u32 {
        self.procs[pid].pc
    }

    /// True when process `pid` is currently crashed.
    #[must_use]
    pub fn is_crashed(&self, pid: usize) -> bool {
        self.procs[pid].crashed
    }

    /// Compact single-line rendering used in counterexample traces.
    #[must_use]
    pub fn render(&self, registers: &[RegisterSpec]) -> String {
        let shared: Vec<String> = self
            .shared
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let name = registers
                    .get(i)
                    .map_or_else(|| format!("r{i}"), |r| r.name.clone());
                format!("{name}={v}")
            })
            .collect();
        let procs: Vec<String> = self
            .procs
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let crash = if p.crashed { "!" } else { "" };
                format!("p{i}{crash}@{}", p.pc)
            })
            .collect();
        format!("[{}] [{}]", shared.join(" "), procs.join(" "))
    }
}

impl fmt::Display for ProgState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(&[]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn two_proc_state() -> ProgState {
        ProgState::new(
            4,
            vec![ProcState::new(0, vec![0, 0]), ProcState::new(0, vec![0, 0])],
        )
    }

    #[test]
    fn new_state_is_all_zero() {
        let s = two_proc_state();
        assert_eq!(s.shared, vec![0, 0, 0, 0]);
        assert_eq!(s.process_count(), 2);
        assert_eq!(s.pc(0), 0);
        assert!(!s.is_crashed(1));
    }

    #[test]
    fn with_write_is_persistent() {
        let s = two_proc_state();
        let t = s.with_write(2, 9);
        assert_eq!(s.read(2), 0, "original untouched");
        assert_eq!(t.read(2), 9);
    }

    #[test]
    fn with_pc_and_local_updates_only_target() {
        let s = two_proc_state();
        let t = s.with_pc_and_local(1, 7, 0, 3);
        assert_eq!(t.pc(1), 7);
        assert_eq!(t.local(1, 0), 3);
        assert_eq!(t.pc(0), 0);
        assert_eq!(t.local(0, 0), 0);
    }

    #[test]
    fn states_hash_and_compare_structurally() {
        let a = two_proc_state().with_write(0, 1);
        let b = two_proc_state().with_write(0, 1);
        let c = two_proc_state().with_write(0, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let set: HashSet<ProgState> = [a, b, c].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn render_names_registers() {
        let regs = vec![
            RegisterSpec::owned("number[0]", 5, 0),
            RegisterSpec::owned("number[1]", 5, 1),
        ];
        let s = ProgState::new(2, vec![ProcState::new(3, vec![])]).with_write(1, 4);
        let text = s.render(&regs);
        assert!(text.contains("number[1]=4"));
        assert!(text.contains("p0@3"));
    }

    #[test]
    fn register_spec_constructors() {
        let owned = RegisterSpec::owned("choosing[2]", 1, 2);
        assert_eq!(owned.owner, Some(2));
        let shared = RegisterSpec::shared("color", 1);
        assert_eq!(shared.owner, None);
        assert_eq!(shared.bound, 1);
    }

    #[test]
    fn states_serialize_round_trip() {
        let s = two_proc_state().with_write(3, 7).with_pc(0, 5);
        let json = bakery_json::to_string(&s).unwrap();
        let back: ProgState = bakery_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
