//! The simulator: runs an [`Algorithm`] under a [`Scheduler`] for a bounded
//! number of steps, checking invariants and recording a trace.
//!
//! One run is one *sampled schedule*; exhaustive exploration of all schedules
//! lives in the `bakery-mc` crate.  The simulator is what the experiment
//! harness uses for long, statistically meaningful runs (millions of steps)
//! that would be far beyond exhaustive checking.

use crate::algorithm::{Algorithm, Observation};
use crate::faults::FaultPlan;
use crate::invariant::Invariant;
use crate::metrics::{RunReport, Violation};
use crate::scheduler::Scheduler;
use crate::state::ProgState;
use crate::trace::{Trace, TraceEvent};

/// Configuration of a single simulator run.
pub struct RunConfig<A: ?Sized> {
    /// Maximum number of steps to execute.
    pub max_steps: u64,
    /// Invariants checked after every step.
    pub invariants: Vec<Invariant<A>>,
    /// Whether to stop at the first invariant violation.
    pub stop_on_violation: bool,
    /// Crash-injection plan.
    pub faults: FaultPlan,
    /// Whether to record the full trace (schedule + observations).
    pub record_trace: bool,
}

impl<A: Algorithm + ?Sized> RunConfig<A> {
    /// A run of `max_steps` steps with the two paper invariants installed.
    #[must_use]
    pub fn checked(max_steps: u64) -> Self {
        Self {
            max_steps,
            invariants: vec![Invariant::mutual_exclusion(), Invariant::register_bounds()],
            stop_on_violation: true,
            faults: FaultPlan::none(),
            record_trace: true,
        }
    }

    /// A run with no invariants (pure performance measurement).
    #[must_use]
    pub fn unchecked(max_steps: u64) -> Self {
        Self {
            max_steps,
            invariants: Vec::new(),
            stop_on_violation: false,
            faults: FaultPlan::none(),
            record_trace: false,
        }
    }

    /// Adds an invariant.
    #[must_use]
    pub fn with_invariant(mut self, invariant: Invariant<A>) -> Self {
        self.invariants.push(invariant);
        self
    }

    /// Sets the fault plan.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Enables or disables trace recording.
    #[must_use]
    pub fn with_trace(mut self, record: bool) -> Self {
        self.record_trace = record;
        self
    }
}

/// The outcome of [`Simulator::run`]: the metrics report, the final state and
/// (if requested) the recorded trace.
#[derive(Debug)]
pub struct RunOutcome {
    /// Aggregated metrics.
    pub report: RunReport,
    /// The state the run ended in.
    pub final_state: ProgState,
    /// The recorded trace (empty if recording was disabled).
    pub trace: Trace,
}

/// Runs algorithms under sampled schedules.
#[derive(Debug, Default)]
pub struct Simulator;

impl Simulator {
    /// Creates a simulator.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// Runs `algorithm` under `scheduler` according to `config`.
    pub fn run<A: Algorithm + ?Sized>(
        &self,
        algorithm: &A,
        scheduler: &mut dyn Scheduler,
        config: &RunConfig<A>,
    ) -> RunOutcome {
        let n = algorithm.processes();
        let mut report = RunReport::new(algorithm.name().to_string(), n);
        let mut trace = Trace::new();
        let mut state = algorithm.initial_state();
        let mut injector = config.faults.injector(n);
        let registers = algorithm.registers();

        // Track which processes were in their critical section in the
        // previous state so CS entries can be counted without spec support.
        let mut was_in_cs = vec![false; n];

        for step in 0..config.max_steps {
            // Fault injection happens "before" the scheduled step, at any
            // instant, as the paper allows.
            if let Some(victim) = injector.maybe_crash() {
                if let Some(crashed) = algorithm.crash(&state, victim) {
                    report.crashes[victim] += 1;
                    if config.record_trace {
                        trace.observe(step, Observation::Crashed { pid: victim });
                    }
                    state = crashed;
                }
            }

            // Collect enabled processes and their successor sets.
            let mut enabled: Vec<usize> = Vec::with_capacity(n);
            let mut successor_sets: Vec<Vec<ProgState>> = vec![Vec::new(); n];
            for (pid, slot) in successor_sets.iter_mut().enumerate() {
                let succs = algorithm.successors_vec(&state, pid);
                if succs.is_empty() {
                    report.blocked_picks[pid] += 1;
                } else {
                    enabled.push(pid);
                }
                *slot = succs;
            }

            if enabled.is_empty() {
                report.deadlocked = true;
                report.steps = step;
                return RunOutcome {
                    report,
                    final_state: state,
                    trace,
                };
            }

            let pid = scheduler.pick(&enabled, step);
            debug_assert!(enabled.contains(&pid), "scheduler picked a blocked pid");
            let branches = &successor_sets[pid];
            let branch = scheduler.pick_branch(branches.len(), step);
            let next = branches[branch].clone();

            // Observations and CS accounting.
            if let Some(obs) = algorithm.observe(&state, &next, pid) {
                match obs {
                    Observation::OverflowAvoided { .. } => report.overflow_avoidance_resets += 1,
                    Observation::Overflowed { .. } => report.overflow_attempts += 1,
                    _ => {}
                }
                if config.record_trace {
                    trace.observe(step, obs);
                }
            }
            let now_in_cs = algorithm.in_critical_section(&next, pid);
            if now_in_cs && !was_in_cs[pid] {
                report.cs_entries[pid] += 1;
            }
            was_in_cs[pid] = now_in_cs;

            if config.record_trace {
                trace.push(TraceEvent {
                    step,
                    pid,
                    branch,
                    pc_after: next.pc(pid),
                });
            }

            state = next;
            report.steps = step + 1;
            report.max_register_value = report
                .max_register_value
                .max(state.shared.iter().copied().max().unwrap_or(0));

            // Invariant checking.
            let mut stop = false;
            for invariant in &config.invariants {
                if !invariant.holds(algorithm, &state) {
                    report.violations.push(Violation {
                        invariant: invariant.name().to_string(),
                        step,
                        state: state.render(&registers),
                    });
                    if config.stop_on_violation {
                        stop = true;
                    }
                }
            }
            if stop {
                break;
            }
        }

        RunOutcome {
            report,
            final_state: state,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::test_support::BrokenLock;
    use crate::scheduler::{RandomScheduler, ReplayScheduler, RoundRobinScheduler};

    #[test]
    fn broken_lock_violates_mutual_exclusion_under_round_robin() {
        let alg = BrokenLock {
            processes: 2,
            bound: 1_000,
        };
        let config = RunConfig::<BrokenLock>::checked(100);
        let outcome = Simulator::new().run(&alg, &mut RoundRobinScheduler::new(), &config);
        assert!(!outcome.report.is_clean());
        assert_eq!(outcome.report.violations[0].invariant, "MutualExclusion");
        assert!(outcome.report.steps < 100, "stopped at first violation");
    }

    #[test]
    fn register_bound_violation_is_reported() {
        let alg = BrokenLock {
            processes: 1,
            bound: 2,
        };
        // A single process cannot violate mutual exclusion, but its entry
        // counter overflows the bound after three critical sections.
        let config = RunConfig::<BrokenLock>::checked(100);
        let outcome = Simulator::new().run(&alg, &mut RoundRobinScheduler::new(), &config);
        assert!(outcome
            .report
            .violations
            .iter()
            .any(|v| v.invariant == "NoOverflow"));
        assert!(outcome.report.max_register_value >= 3);
    }

    #[test]
    fn unchecked_run_counts_cs_entries() {
        let alg = BrokenLock {
            processes: 2,
            bound: u64::MAX,
        };
        let config = RunConfig::<BrokenLock>::unchecked(600);
        let outcome = Simulator::new().run(&alg, &mut RoundRobinScheduler::new(), &config);
        assert!(outcome.report.is_clean());
        assert_eq!(outcome.report.steps, 600);
        // Each process cycles through 3 steps per CS entry: 600 / 3 / 2 = 100.
        assert_eq!(outcome.report.total_cs_entries(), 200);
        assert_eq!(outcome.report.cs_entry_spread(), (100, 100));
        assert!(outcome.trace.is_empty(), "tracing disabled");
    }

    #[test]
    fn recorded_trace_replays_to_the_same_final_state() {
        let alg = BrokenLock {
            processes: 3,
            bound: u64::MAX,
        };
        let config = RunConfig::<BrokenLock>::unchecked(200).with_trace(true);
        let original = Simulator::new().run(&alg, &mut RandomScheduler::new(13), &config);
        let mut replay = ReplayScheduler::new(original.trace.choices());
        let replayed = Simulator::new().run(&alg, &mut replay, &config);
        assert_eq!(original.final_state, replayed.final_state);
        assert_eq!(
            original.report.cs_entries, replayed.report.cs_entries,
            "replay reproduces per-process service counts"
        );
        assert!(!replay.diverged());
    }

    #[test]
    fn observations_are_recorded_in_the_trace() {
        let alg = BrokenLock {
            processes: 2,
            bound: u64::MAX,
        };
        let config = RunConfig::<BrokenLock>::unchecked(60).with_trace(true);
        let outcome = Simulator::new().run(&alg, &mut RoundRobinScheduler::new(), &config);
        assert_eq!(
            outcome.trace.cs_entries(),
            outcome.report.total_cs_entries()
        );
        assert_eq!(outcome.trace.len() as u64, outcome.report.steps);
    }

    #[test]
    fn custom_invariant_without_stop_keeps_running() {
        let alg = BrokenLock {
            processes: 1,
            bound: u64::MAX,
        };
        let mut config = RunConfig::<BrokenLock>::unchecked(30)
            .with_invariant(Invariant::new("EntriesBelowFive", |_, s: &ProgState| {
                s.read(0) < 5
            }));
        config.stop_on_violation = false;
        let outcome = Simulator::new().run(&alg, &mut RoundRobinScheduler::new(), &config);
        assert_eq!(outcome.report.steps, 30);
        assert!(
            outcome.report.violations.len() > 1,
            "kept collecting violations after the first"
        );
    }
}
