//! The [`Algorithm`] trait: algorithms as guarded atomic steps.
//!
//! An implementation describes, for every process and every global state,
//! which successor states that process can move to.  This is exactly the shape
//! of a PlusCal/TLA+ next-state relation, which is what makes the same
//! description usable both by the random-schedule [`crate::Simulator`] and by
//! the exhaustive model checker in `bakery-mc`.
//!
//! Conventions shared by all specifications in `bakery-spec`:
//!
//! * a *blocked* process (a busy-wait whose guard is false) simply has **no
//!   successors** — the scheduler will try someone else, and the model checker
//!   treats a state where nobody has a successor as a deadlock;
//! * nondeterminism (e.g. a safe-register read that overlaps a write and may
//!   return an arbitrary value) is expressed by returning **several**
//!   successors for the same process;
//! * crash/restart faults are separate transitions produced by
//!   [`Algorithm::crash`], so fault injection can be switched on and off
//!   without touching the algorithm itself.

use crate::state::{ProgState, RegisterSpec};
use crate::symmetry::SymmetryGroup;

/// Which register model a specification's shared variables obey.
///
/// * [`RegisterSemantics::Atomic`] — the classic interleaving model: every
///   read and write is one indivisible step.  This is the default, and
///   algorithms running under it carry **no** pending-write state
///   ([`ProgState::writes`] stays empty), so atomic-mode state spaces,
///   hashes and packed encodings are bit-identical to the pre-knob plane.
///
/// * [`RegisterSemantics::Safe`] — Lamport's *safe* (non-atomic,
///   "flickering") registers, the model the bakery algorithm was designed
///   to survive.  The exact rules:
///
///   1. A write is **two** steps: `begin_write(r, v)` marks the register
///      busy and records the pending value (the writer's pc advances on
///      this step); a later `end_write` commits a value and clears the
///      mark.  Program order is enforced — a process with a write in
///      flight can only take its commit step next.
///   2. A read that does **not** overlap any write returns the last
///      committed value, exactly.
///   3. A read that overlaps an in-progress write returns **any** value in
///      `[0, bound]` for that register (nondeterministic branch per value).
///      The flicker range is the declared bound, not the transient
///      physical range — reads never observe an overflow sentinel.
///   4. Overlapping writes to the same register *clash*: the value
///      eventually committed by each writer is arbitrary in `[0, bound]`.
///      (Single-writer registers never clash by construction; this rule
///      only bites multi-writer registers such as Peterson's `turn`.)
///   5. A crash mid-write **aborts** the write: the pending value is
///      dropped, the busy mark (for that writer) is cleared, and the
///      register obeys the paper's crash rule (owned registers read zero).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum RegisterSemantics {
    /// Indivisible reads and writes (the default).
    #[default]
    Atomic,
    /// Safe/flickering registers: two-step writes, arbitrary in-range
    /// values for overlapping reads, clash semantics for overlapping writes.
    Safe,
}

/// Upper bounds on the non-register components of a [`ProgState`], used by
/// the model checker's compact state encoding to size bit lanes.
///
/// The defaults ([`StateBounds::conservative`]) are always sound — full-width
/// lanes for every field — but a specification that knows its pc range and
/// local-variable ranges should override [`Algorithm::state_bounds`] so its
/// states pack into a few words instead of a few dozen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateBounds {
    /// The largest program-counter value any reachable state contains.
    pub max_pc: u32,
    /// Per-slot upper bounds for the local variables (uniform across
    /// processes).  Slots beyond the vector's length are treated as
    /// unbounded (full 64-bit lanes).
    pub local_bounds: Vec<u64>,
}

impl StateBounds {
    /// Sound-for-everything defaults: 32-bit pc lanes, 64-bit local lanes.
    #[must_use]
    pub fn conservative() -> Self {
        Self {
            max_pc: u32::MAX,
            local_bounds: Vec::new(),
        }
    }

    /// Bounds with an explicit pc maximum and per-slot local maxima.
    #[must_use]
    pub fn new(max_pc: u32, local_bounds: Vec<u64>) -> Self {
        Self {
            max_pc,
            local_bounds,
        }
    }

    /// The upper bound for local slot `slot`.
    #[must_use]
    pub fn local_bound(&self, slot: usize) -> u64 {
        self.local_bounds.get(slot).copied().unwrap_or(u64::MAX)
    }
}

impl Default for StateBounds {
    fn default() -> Self {
        Self::conservative()
    }
}

/// An observable event extracted from one transition, used by the trace
/// refinement and fairness analyses (experiments **E4** and **E8**).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Observation {
    /// The process completed its doorway and now holds ticket `number`.
    TicketTaken {
        /// Process that took the ticket.
        pid: usize,
        /// The ticket value stored in its `number` register.
        number: u64,
    },
    /// The process entered its critical section.
    EnterCs {
        /// Process entering.
        pid: usize,
    },
    /// The process left its critical section.
    ExitCs {
        /// Process leaving.
        pid: usize,
    },
    /// The process reset its registers on Bakery++'s overflow-avoidance path.
    OverflowAvoided {
        /// Process that took the reset branch.
        pid: usize,
    },
    /// The process attempted to store a value above a register's bound.
    Overflowed {
        /// Process that overflowed.
        pid: usize,
        /// The value it attempted to store.
        attempted: u64,
    },
    /// The process crashed and restarted in its noncritical section.
    Crashed {
        /// Process that crashed.
        pid: usize,
    },
}

/// A mutual-exclusion algorithm expressed as a next-state relation.
pub trait Algorithm: Send + Sync {
    /// Short name used in reports (e.g. `"bakery++"`).
    fn name(&self) -> &str;

    /// Number of participating processes.
    fn processes(&self) -> usize;

    /// Descriptions of the shared registers, index-aligned with
    /// [`ProgState::shared`].
    fn registers(&self) -> Vec<RegisterSpec>;

    /// The initial global state (all registers zero, every process in its
    /// noncritical section).
    fn initial_state(&self) -> ProgState;

    /// Appends to `out` every state process `pid` can reach in one atomic
    /// step from `state`.  An empty result means the process is blocked
    /// (waiting) or crashed.
    fn successors(&self, state: &ProgState, pid: usize, out: &mut Vec<ProgState>);

    /// True when process `pid` is inside its critical section in `state`.
    fn in_critical_section(&self, state: &ProgState, pid: usize) -> bool;

    /// True when process `pid` is in its trying region (wants the critical
    /// section but has not entered yet).  Used by liveness/starvation checks.
    fn is_trying(&self, state: &ProgState, pid: usize) -> bool;

    /// A crash transition for process `pid` (paper assumptions 1.5–1.7):
    /// the process resets the registers it owns to zero and restarts in its
    /// noncritical section.  Returns `None` if the algorithm does not model
    /// crashes or `pid` is already idle.
    fn crash(&self, _state: &ProgState, _pid: usize) -> Option<ProgState> {
        None
    }

    /// Human-readable label for a program-counter value (for traces).
    fn pc_label(&self, _pc: u32) -> &'static str {
        "?"
    }

    /// The observable event (if any) produced by the transition
    /// `prev → next` taken by process `pid`.
    fn observe(&self, _prev: &ProgState, _next: &ProgState, _pid: usize) -> Option<Observation> {
        None
    }

    /// Upper bounds on pc and local-variable values, used to size the model
    /// checker's compact state encoding.  The conservative default is always
    /// sound; override to shrink the per-state footprint.
    fn state_bounds(&self) -> StateBounds {
        StateBounds::conservative()
    }

    /// The register model this instance's shared variables obey.  Defaults
    /// to [`RegisterSemantics::Atomic`]; implementations with a semantics
    /// knob return [`RegisterSemantics::Safe`] when it is switched on, which
    /// tells the model checker's compact encoding to add pending-write lanes.
    fn register_semantics(&self) -> RegisterSemantics {
        RegisterSemantics::Atomic
    }

    /// The symmetry group the specification's states may be quotiented by
    /// (see [`crate::symmetry`] for the exact soundness contract the
    /// `bakery-mc` explorer relies on).  `None` — the default — means no
    /// reduction is available.
    fn symmetry(&self) -> Option<SymmetryGroup> {
        None
    }

    /// Convenience: collects the successors of `pid` into a fresh vector.
    fn successors_vec(&self, state: &ProgState, pid: usize) -> Vec<ProgState> {
        let mut out = Vec::new();
        self.successors(state, pid, &mut out);
        out
    }

    /// True when no process has any successor from `state` (a deadlock, since
    /// the specifications model cyclic processes that always want to move).
    fn is_deadlock(&self, state: &ProgState) -> bool {
        (0..self.processes()).all(|pid| self.successors_vec(state, pid).is_empty())
    }

    /// Number of processes simultaneously inside their critical sections.
    fn processes_in_cs(&self, state: &ProgState) -> usize {
        (0..self.processes())
            .filter(|&pid| self.in_critical_section(state, pid))
            .count()
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! A tiny, deliberately *incorrect* algorithm used to exercise the
    //! simulator, scheduler, invariant and model-checking machinery without
    //! depending on the real specifications in `bakery-spec`.

    use super::*;
    use crate::state::ProcState;

    /// A toy two-phase lock with **no protection at all**: every process can
    /// walk straight into the critical section.  Program counters:
    /// 0 = noncritical, 1 = trying, 2 = critical.
    ///
    /// The shared register `entries` counts completed critical sections and
    /// has a configurable bound so register-bound violations can be provoked.
    #[derive(Debug)]
    pub struct BrokenLock {
        pub processes: usize,
        pub bound: u64,
    }

    impl Algorithm for BrokenLock {
        fn name(&self) -> &str {
            "broken-lock"
        }

        fn processes(&self) -> usize {
            self.processes
        }

        fn registers(&self) -> Vec<RegisterSpec> {
            vec![RegisterSpec::shared("entries", self.bound)]
        }

        fn initial_state(&self) -> ProgState {
            ProgState::new(
                1,
                (0..self.processes)
                    .map(|_| ProcState::new(0, vec![]))
                    .collect(),
            )
        }

        fn successors(&self, state: &ProgState, pid: usize, out: &mut Vec<ProgState>) {
            if state.is_crashed(pid) {
                return;
            }
            match state.pc(pid) {
                0 => out.push(state.with_pc(pid, 1)),
                1 => out.push(state.with_pc(pid, 2)),
                2 => {
                    let mut next = state.with_pc(pid, 0);
                    next.set_shared(0, state.read(0) + 1);
                    out.push(next);
                }
                _ => {}
            }
        }

        fn in_critical_section(&self, state: &ProgState, pid: usize) -> bool {
            state.pc(pid) == 2
        }

        fn is_trying(&self, state: &ProgState, pid: usize) -> bool {
            state.pc(pid) == 1
        }

        fn pc_label(&self, pc: u32) -> &'static str {
            match pc {
                0 => "noncritical",
                1 => "trying",
                2 => "critical",
                _ => "?",
            }
        }

        fn observe(
            &self,
            prev: &ProgState,
            next: &ProgState,
            pid: usize,
        ) -> Option<Observation> {
            match (prev.pc(pid), next.pc(pid)) {
                (1, 2) => Some(Observation::EnterCs { pid }),
                (2, 0) => Some(Observation::ExitCs { pid }),
                _ => None,
            }
        }
    }

    #[test]
    fn broken_lock_violates_mutual_exclusion_quickly() {
        let alg = BrokenLock {
            processes: 2,
            bound: 100,
        };
        let s0 = alg.initial_state();
        // Walk both processes into the critical section.
        let s1 = alg.successors_vec(&s0, 0)[0].clone();
        let s2 = alg.successors_vec(&s1, 0)[0].clone();
        let s3 = alg.successors_vec(&s2, 1)[0].clone();
        let s4 = alg.successors_vec(&s3, 1)[0].clone();
        assert!(alg.in_critical_section(&s4, 0));
        assert!(alg.in_critical_section(&s4, 1));
        assert_eq!(alg.processes_in_cs(&s4), 2);
        assert!(!alg.is_deadlock(&s4));
    }

    #[test]
    fn observations_are_emitted_on_cs_boundaries() {
        let alg = BrokenLock {
            processes: 1,
            bound: 10,
        };
        let s0 = alg.initial_state();
        let s1 = alg.successors_vec(&s0, 0)[0].clone();
        let s2 = alg.successors_vec(&s1, 0)[0].clone();
        let s3 = alg.successors_vec(&s2, 0)[0].clone();
        assert_eq!(alg.observe(&s0, &s1, 0), None);
        assert_eq!(alg.observe(&s1, &s2, 0), Some(Observation::EnterCs { pid: 0 }));
        assert_eq!(alg.observe(&s2, &s3, 0), Some(Observation::ExitCs { pid: 0 }));
        assert_eq!(s3.read(0), 1, "exit increments the shared counter");
    }
}
