//! Execution traces: recording, replay and observable-event analysis.
//!
//! Every simulator run can record a [`Trace`]: the schedule that was taken
//! (which process moved, which nondeterministic branch was chosen) together
//! with the observable events the algorithm reported.  Traces serve three
//! purposes:
//!
//! 1. **reproduction** — a trace can be replayed exactly with
//!    [`crate::ReplayScheduler`];
//! 2. **refinement checking** (experiment **E4**) — the observable projection
//!    of a Bakery++ trace is checked against the Bakery specification's
//!    service discipline by [`refinement::check_fcfs_by_ticket`];
//! 3. **fairness analysis** (experiment **E8**) — FIFO inversions are counted
//!    from the doorway/entry event order.

use crate::algorithm::Observation;

/// One recorded step of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Step index (0-based).
    pub step: u64,
    /// The process that moved.
    pub pid: usize,
    /// Which nondeterministic successor was taken (0 when deterministic).
    pub branch: usize,
    /// Program counter of `pid` after the step.
    pub pc_after: u32,
}

/// A recorded run: the schedule plus the observable events it produced.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// The scheduling/branch decisions, in order.
    pub events: Vec<TraceEvent>,
    /// Observable events in the order they occurred, as `(step, observation)`.
    /// Not part of the JSON wire format (only the replayable schedule is).
    pub observations: Vec<(u64, Observation)>,
}

bakery_json::json_object!(TraceEvent { step, pid, branch, pc_after });
bakery_json::json_object!(Trace { events } skip { observations });

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded steps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Records one step.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// Records an observable event.
    pub fn observe(&mut self, step: u64, observation: Observation) {
        self.observations.push((step, observation));
    }

    /// The `(pid, branch)` choice sequence for [`crate::ReplayScheduler`].
    #[must_use]
    pub fn choices(&self) -> Vec<(usize, usize)> {
        self.events.iter().map(|e| (e.pid, e.branch)).collect()
    }

    /// All observations of a given process.
    #[must_use]
    pub fn observations_of(&self, pid: usize) -> Vec<Observation> {
        self.observations
            .iter()
            .filter(|(_, obs)| obs_pid(obs) == Some(pid))
            .map(|(_, obs)| *obs)
            .collect()
    }

    /// The order in which processes entered the critical section.
    #[must_use]
    pub fn entry_order(&self) -> Vec<usize> {
        self.observations
            .iter()
            .filter_map(|(_, obs)| match obs {
                Observation::EnterCs { pid } => Some(*pid),
                _ => None,
            })
            .collect()
    }

    /// The sequence of `(pid, ticket)` doorway completions.
    #[must_use]
    pub fn ticket_order(&self) -> Vec<(usize, u64)> {
        self.observations
            .iter()
            .filter_map(|(_, obs)| match obs {
                Observation::TicketTaken { pid, number } => Some((*pid, *number)),
                _ => None,
            })
            .collect()
    }

    /// Total critical-section entries recorded.
    #[must_use]
    pub fn cs_entries(&self) -> u64 {
        self.entry_order().len() as u64
    }
}

fn obs_pid(obs: &Observation) -> Option<usize> {
    match obs {
        Observation::TicketTaken { pid, .. }
        | Observation::EnterCs { pid }
        | Observation::ExitCs { pid }
        | Observation::OverflowAvoided { pid }
        | Observation::Overflowed { pid, .. }
        | Observation::Crashed { pid } => Some(*pid),
    }
}

/// Refinement and service-discipline checks over observable traces.
pub mod refinement {
    use super::Trace;
    use crate::algorithm::Observation;

    /// The verdict of a refinement/service-order check.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct RefinementReport {
        /// Number of critical-section entries examined.
        pub entries_checked: u64,
        /// Violations found, as human-readable descriptions.
        pub violations: Vec<String>,
    }

    impl RefinementReport {
        /// True when no violation was found.
        #[must_use]
        pub fn holds(&self) -> bool {
            self.violations.is_empty()
        }
    }

    /// Checks the Bakery service discipline on an observable trace:
    ///
    /// 1. critical-section entries and exits alternate correctly per process
    ///    and never overlap across processes (mutual exclusion at the
    ///    observable level);
    /// 2. among processes that hold tickets simultaneously, the one with the
    ///    smaller `(number, pid)` pair enters first — the paper's
    ///    first-come-first-served property, which is exactly the observable
    ///    behaviour of the original Bakery.  A Bakery++ trace that passes this
    ///    check is therefore (observably) a valid Bakery execution, which is
    ///    the content of the paper's refinement claim (§6.2).
    #[must_use]
    pub fn check_fcfs_by_ticket(trace: &Trace) -> RefinementReport {
        let mut violations = Vec::new();
        let mut entries_checked = 0u64;

        // Live tickets: (pid, number) currently held (doorway done, CS not yet exited).
        let mut live: Vec<(usize, u64)> = Vec::new();
        let mut in_cs: Option<usize> = None;

        for (step, obs) in &trace.observations {
            match obs {
                Observation::TicketTaken { pid, number } => {
                    live.retain(|(p, _)| p != pid);
                    live.push((*pid, *number));
                }
                Observation::OverflowAvoided { pid } | Observation::Crashed { pid } => {
                    live.retain(|(p, _)| p != pid);
                }
                Observation::Overflowed { pid, attempted } => {
                    violations.push(format!(
                        "step {step}: process {pid} overflowed a register (attempted {attempted})"
                    ));
                }
                Observation::EnterCs { pid } => {
                    entries_checked += 1;
                    if let Some(holder) = in_cs {
                        violations.push(format!(
                            "step {step}: process {pid} entered while process {holder} was inside"
                        ));
                    }
                    in_cs = Some(*pid);
                    // FCFS: no other live ticket may strictly precede ours.
                    let mine = live.iter().find(|(p, _)| p == pid).copied();
                    if let Some((_, my_number)) = mine {
                        for &(other, other_number) in &live {
                            if other == *pid {
                                continue;
                            }
                            let precedes = other_number < my_number
                                || (other_number == my_number && other < *pid);
                            if precedes {
                                violations.push(format!(
                                    "step {step}: process {pid} (ticket {my_number}) entered before \
                                     process {other} (ticket {other_number})"
                                ));
                            }
                        }
                    } else {
                        violations.push(format!(
                            "step {step}: process {pid} entered without a recorded ticket"
                        ));
                    }
                }
                Observation::ExitCs { pid } => {
                    if in_cs == Some(*pid) {
                        in_cs = None;
                    } else {
                        violations.push(format!(
                            "step {step}: process {pid} exited a critical section it did not hold"
                        ));
                    }
                    live.retain(|(p, _)| p != pid);
                }
            }
        }

        RefinementReport {
            entries_checked,
            violations,
        }
    }

    /// Counts FIFO inversions: critical-section entries that overtake a
    /// process which is still waiting, completed its doorway **earlier** and
    /// holds a **strictly smaller** ticket number (i.e. a customer who came
    /// first in the paper's sense — its doorway finished before the
    /// overtaker's began, which in the Bakery family implies a strictly
    /// smaller number).  Used by the fairness experiment (**E8**); FCFS
    /// algorithms score 0, and pairs with overlapping doorways (equal ticket
    /// numbers) are not counted because FCFS imposes no order on them.
    #[must_use]
    pub fn count_fifo_inversions(trace: &Trace) -> u64 {
        // Assign each doorway completion an arrival index, then walk entries.
        let mut arrival_counter = 0u64;
        // (pid, arrival index, ticket number) of processes waiting to enter.
        let mut pending: Vec<(usize, u64, u64)> = Vec::new();
        let mut inversions = 0u64;

        for (_, obs) in &trace.observations {
            match obs {
                Observation::TicketTaken { pid, number } => {
                    pending.retain(|(p, _, _)| p != pid);
                    pending.push((*pid, arrival_counter, *number));
                    arrival_counter += 1;
                }
                Observation::OverflowAvoided { pid } | Observation::Crashed { pid } => {
                    pending.retain(|(p, _, _)| p != pid);
                }
                Observation::EnterCs { pid } => {
                    let mine = pending.iter().find(|(p, _, _)| p == pid).copied();
                    if let Some((_, my_arrival, my_number)) = mine {
                        // Everyone still pending who both arrived earlier and
                        // holds a strictly smaller ticket was overtaken.
                        inversions += pending
                            .iter()
                            .filter(|(p, arrival, number)| {
                                p != pid && *arrival < my_arrival && *number < my_number
                            })
                            .count() as u64;
                    }
                    pending.retain(|(p, _, _)| p != pid);
                }
                _ => {}
            }
        }
        inversions
    }
}

#[cfg(test)]
mod tests {
    use super::refinement::{check_fcfs_by_ticket, count_fifo_inversions};
    use super::*;

    fn obs_trace(observations: Vec<Observation>) -> Trace {
        let mut t = Trace::new();
        for (i, o) in observations.into_iter().enumerate() {
            t.observe(i as u64, o);
        }
        t
    }

    #[test]
    fn empty_trace_basics() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.cs_entries(), 0);
        assert!(check_fcfs_by_ticket(&t).holds());
        assert_eq!(count_fifo_inversions(&t), 0);
    }

    #[test]
    fn choices_round_trip() {
        let mut t = Trace::new();
        t.push(TraceEvent {
            step: 0,
            pid: 1,
            branch: 0,
            pc_after: 2,
        });
        t.push(TraceEvent {
            step: 1,
            pid: 0,
            branch: 2,
            pc_after: 1,
        });
        assert_eq!(t.choices(), vec![(1, 0), (0, 2)]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn entry_and_ticket_order_extraction() {
        let t = obs_trace(vec![
            Observation::TicketTaken { pid: 0, number: 1 },
            Observation::TicketTaken { pid: 1, number: 2 },
            Observation::EnterCs { pid: 0 },
            Observation::ExitCs { pid: 0 },
            Observation::EnterCs { pid: 1 },
            Observation::ExitCs { pid: 1 },
        ]);
        assert_eq!(t.entry_order(), vec![0, 1]);
        assert_eq!(t.ticket_order(), vec![(0, 1), (1, 2)]);
        assert_eq!(t.cs_entries(), 2);
        assert_eq!(t.observations_of(1).len(), 3);
    }

    #[test]
    fn fcfs_check_accepts_ordered_service() {
        let t = obs_trace(vec![
            Observation::TicketTaken { pid: 0, number: 1 },
            Observation::TicketTaken { pid: 1, number: 2 },
            Observation::EnterCs { pid: 0 },
            Observation::ExitCs { pid: 0 },
            Observation::EnterCs { pid: 1 },
            Observation::ExitCs { pid: 1 },
        ]);
        let report = check_fcfs_by_ticket(&t);
        assert!(report.holds(), "{:?}", report.violations);
        assert_eq!(report.entries_checked, 2);
    }

    #[test]
    fn fcfs_check_rejects_out_of_order_service() {
        let t = obs_trace(vec![
            Observation::TicketTaken { pid: 0, number: 1 },
            Observation::TicketTaken { pid: 1, number: 2 },
            Observation::EnterCs { pid: 1 },
            Observation::ExitCs { pid: 1 },
            Observation::EnterCs { pid: 0 },
            Observation::ExitCs { pid: 0 },
        ]);
        let report = check_fcfs_by_ticket(&t);
        assert!(!report.holds());
        assert!(report.violations[0].contains("entered before"));
    }

    #[test]
    fn fcfs_check_rejects_overlapping_critical_sections() {
        let t = obs_trace(vec![
            Observation::TicketTaken { pid: 0, number: 1 },
            Observation::TicketTaken { pid: 1, number: 2 },
            Observation::EnterCs { pid: 0 },
            Observation::EnterCs { pid: 1 },
        ]);
        let report = check_fcfs_by_ticket(&t);
        assert!(!report.holds());
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("while process 0 was inside")));
    }

    #[test]
    fn fcfs_check_flags_overflow_events() {
        let t = obs_trace(vec![Observation::Overflowed {
            pid: 1,
            attempted: 300,
        }]);
        let report = check_fcfs_by_ticket(&t);
        assert!(!report.holds());
        assert!(report.violations[0].contains("overflowed"));
    }

    #[test]
    fn reset_and_crash_release_the_ticket() {
        let t = obs_trace(vec![
            Observation::TicketTaken { pid: 0, number: 1 },
            Observation::OverflowAvoided { pid: 0 },
            Observation::TicketTaken { pid: 1, number: 1 },
            Observation::EnterCs { pid: 1 },
            Observation::ExitCs { pid: 1 },
        ]);
        let report = check_fcfs_by_ticket(&t);
        assert!(report.holds(), "{:?}", report.violations);
    }

    #[test]
    fn inversion_count_detects_overtaking() {
        let t = obs_trace(vec![
            Observation::TicketTaken { pid: 0, number: 1 },
            Observation::TicketTaken { pid: 1, number: 2 },
            Observation::TicketTaken { pid: 2, number: 3 },
            Observation::EnterCs { pid: 2 }, // overtakes 0 and 1
            Observation::EnterCs { pid: 0 },
            Observation::EnterCs { pid: 1 },
        ]);
        assert_eq!(count_fifo_inversions(&t), 2);
    }

    #[test]
    fn inversion_count_zero_for_fifo_service() {
        let t = obs_trace(vec![
            Observation::TicketTaken { pid: 0, number: 1 },
            Observation::EnterCs { pid: 0 },
            Observation::TicketTaken { pid: 1, number: 2 },
            Observation::EnterCs { pid: 1 },
        ]);
        assert_eq!(count_fifo_inversions(&t), 0);
    }

    #[test]
    fn trace_serializes_schedule() {
        let mut t = Trace::new();
        t.push(TraceEvent {
            step: 0,
            pid: 0,
            branch: 0,
            pc_after: 1,
        });
        let json = bakery_json::to_string(&t).unwrap();
        let back: Trace = bakery_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back.events[0].pid, 0);
    }
}
