//! Crash/restart fault injection.
//!
//! The paper's correctness conditions 3 and 4 (Section 1.2) and the proof
//! assumptions 1.5–1.7 (Section 6.1) require the algorithms to tolerate a
//! process failing at any instant, restarting in its noncritical section, and
//! having its shared registers read as zero afterwards.  [`FaultPlan`]
//! describes *when* the simulator should inject such crashes; the actual state
//! change is produced by [`crate::Algorithm::crash`], so each specification
//! controls which registers it owns and therefore resets.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A randomized crash-injection plan.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Probability (per simulation step) that some process crashes.
    pub crash_probability: f64,
    /// Upper bound on the total number of injected crashes.
    pub max_crashes: u64,
    /// Processes eligible for crashing (empty = all).
    pub victims: Vec<usize>,
    /// RNG seed so fault schedules are reproducible.
    pub seed: u64,
    /// A fixed `(step, victim)` schedule (see [`FaultPlan::at_steps`]).  When
    /// non-empty it *replaces* the probabilistic draw: crashes fire exactly
    /// at the listed steps, nowhere else.
    pub schedule: Vec<(u64, usize)>,
}

impl FaultPlan {
    /// A plan that never injects any fault.
    #[must_use]
    pub fn none() -> Self {
        Self {
            crash_probability: 0.0,
            max_crashes: 0,
            victims: Vec::new(),
            seed: 0,
            schedule: Vec::new(),
        }
    }

    /// A plan that crashes random processes with probability `p` per step, at
    /// most `max_crashes` times.
    #[must_use]
    pub fn random(p: f64, max_crashes: u64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        Self {
            crash_probability: p,
            max_crashes,
            victims: Vec::new(),
            seed,
            schedule: Vec::new(),
        }
    }

    /// A fully deterministic plan: crash exactly `victim` at exactly `step`
    /// (0-based, counted in calls to [`FaultInjector::maybe_crash`]) for each
    /// `(step, victim)` pair — no RNG anywhere.  This is what the E12
    /// kill-and-recover harness and the regression suites want: the same
    /// schedule replays the same run, bit for bit.
    ///
    /// Pairs may be given in any order (they are sorted by step); duplicate
    /// steps keep their relative order and fire on consecutive calls from
    /// that step on (one crash per call).
    #[must_use]
    pub fn at_steps(schedule: impl IntoIterator<Item = (u64, usize)>) -> Self {
        let mut schedule: Vec<(u64, usize)> = schedule.into_iter().collect();
        schedule.sort_by_key(|&(step, _)| step);
        Self {
            crash_probability: 0.0,
            max_crashes: schedule.len() as u64,
            victims: Vec::new(),
            seed: 0,
            schedule,
        }
    }

    /// Restricts crashes to the given processes.
    #[must_use]
    pub fn with_victims(mut self, victims: Vec<usize>) -> Self {
        self.victims = victims;
        self
    }

    /// True when the plan can never produce a crash.
    #[must_use]
    pub fn is_disabled(&self) -> bool {
        if !self.schedule.is_empty() {
            return false;
        }
        self.crash_probability <= 0.0 || self.max_crashes == 0
    }

    /// Builds the runtime injector for this plan over `processes` processes.
    #[must_use]
    pub fn injector(&self, processes: usize) -> FaultInjector {
        let victims = if self.victims.is_empty() {
            (0..processes).collect()
        } else {
            self.victims.clone()
        };
        FaultInjector {
            plan: self.clone(),
            victims,
            injected: 0,
            step: 0,
            cursor: 0,
            rng: StdRng::seed_from_u64(self.seed),
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// Stateful fault injector produced by [`FaultPlan::injector`].
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    victims: Vec<usize>,
    injected: u64,
    step: u64,
    cursor: usize,
    rng: StdRng,
}

impl FaultInjector {
    /// Decides whether to crash a process at this step; returns the victim.
    /// Each call advances the injector's step counter by one, whether or not
    /// a crash fires.
    pub fn maybe_crash(&mut self) -> Option<usize> {
        let step = self.step;
        self.step += 1;
        if !self.plan.schedule.is_empty() {
            // Deterministic mode: fire exactly the scheduled entries whose
            // step has arrived, one per call, in order.
            let &(due, victim) = self.plan.schedule.get(self.cursor)?;
            if due <= step {
                self.cursor += 1;
                self.injected += 1;
                return Some(victim);
            }
            return None;
        }
        if self.plan.is_disabled() || self.injected >= self.plan.max_crashes {
            return None;
        }
        if self.victims.is_empty() {
            return None;
        }
        if self.rng.gen_bool(self.plan.crash_probability) {
            self.injected += 1;
            let victim = self.victims[self.rng.gen_range(0..self.victims.len())];
            Some(victim)
        } else {
            None
        }
    }

    /// Number of crashes injected so far.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Number of [`FaultInjector::maybe_crash`] calls made so far.
    #[must_use]
    pub fn step(&self) -> u64 {
        self.step
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_disabled() {
        let plan = FaultPlan::none();
        assert!(plan.is_disabled());
        let mut injector = plan.injector(4);
        for _ in 0..100 {
            assert_eq!(injector.maybe_crash(), None);
        }
        assert_eq!(injector.injected(), 0);
    }

    #[test]
    fn default_is_none() {
        assert!(FaultPlan::default().is_disabled());
    }

    #[test]
    fn random_plan_injects_up_to_budget() {
        let plan = FaultPlan::random(1.0, 3, 42);
        let mut injector = plan.injector(2);
        let crashes: Vec<Option<usize>> = (0..10).map(|_| injector.maybe_crash()).collect();
        let count = crashes.iter().filter(|c| c.is_some()).count();
        assert_eq!(count, 3, "budget caps the number of crashes");
        assert_eq!(injector.injected(), 3);
        for victim in crashes.into_iter().flatten() {
            assert!(victim < 2);
        }
    }

    #[test]
    fn victims_are_respected() {
        let plan = FaultPlan::random(1.0, 100, 7).with_victims(vec![3]);
        let mut injector = plan.injector(8);
        for _ in 0..50 {
            if let Some(victim) = injector.maybe_crash() {
                assert_eq!(victim, 3);
            }
        }
    }

    #[test]
    fn fault_schedule_is_reproducible() {
        let collect = || {
            let mut injector = FaultPlan::random(0.3, 100, 99).injector(4);
            (0..64).map(|_| injector.maybe_crash()).collect::<Vec<_>>()
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    #[should_panic(expected = "probability must be in [0, 1]")]
    fn out_of_range_probability_rejected() {
        let _ = FaultPlan::random(1.5, 1, 0);
    }

    #[test]
    fn at_steps_fires_exactly_on_schedule() {
        let plan = FaultPlan::at_steps([(2, 1), (5, 0)]);
        assert!(!plan.is_disabled());
        let mut injector = plan.injector(2);
        let fired: Vec<Option<usize>> = (0..8).map(|_| injector.maybe_crash()).collect();
        assert_eq!(
            fired,
            vec![None, None, Some(1), None, None, Some(0), None, None]
        );
        assert_eq!(injector.injected(), 2);
        assert_eq!(injector.step(), 8);
    }

    #[test]
    fn at_steps_sorts_and_replays_identically() {
        let run = || {
            let mut injector = FaultPlan::at_steps([(6, 2), (1, 0), (3, 1)]).injector(4);
            (0..10).map(|_| injector.maybe_crash()).collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run(), "a fixed schedule replays bit for bit");
        assert_eq!(
            a.iter().flatten().copied().collect::<Vec<_>>(),
            vec![0, 1, 2],
            "victims fire in step order regardless of construction order"
        );
    }

    #[test]
    fn at_steps_duplicate_steps_fire_on_consecutive_calls() {
        let mut injector = FaultPlan::at_steps([(2, 0), (2, 1)]).injector(2);
        let fired: Vec<Option<usize>> = (0..5).map(|_| injector.maybe_crash()).collect();
        assert_eq!(fired, vec![None, None, Some(0), Some(1), None]);
    }

    #[test]
    fn empty_schedule_is_a_none_plan() {
        let plan = FaultPlan::at_steps([]);
        assert!(plan.is_disabled());
        let mut injector = plan.injector(3);
        assert_eq!(injector.maybe_crash(), None);
        assert_eq!(injector.step(), 1);
    }
}
