//! Invariants: state predicates checked after every step / on every state.
//!
//! The two invariants the paper model checks are provided ready-made —
//! **mutual exclusion** ([`Invariant::mutual_exclusion`]) and **no overflow**
//! ([`Invariant::register_bounds`]) — plus a generic constructor for custom
//! predicates.  Invariants are deliberately simple `Fn(&A, &ProgState) ->
//! bool` closures so the simulator and the model checker can share them.

use std::fmt;
use std::sync::Arc;

use crate::algorithm::Algorithm;
use crate::state::ProgState;

/// A named state predicate over an algorithm `A`.
pub struct Invariant<A: ?Sized> {
    name: String,
    #[allow(clippy::type_complexity)]
    check: Arc<dyn Fn(&A, &ProgState) -> bool + Send + Sync>,
}

impl<A: ?Sized> Clone for Invariant<A> {
    fn clone(&self) -> Self {
        Self {
            name: self.name.clone(),
            check: Arc::clone(&self.check),
        }
    }
}

impl<A: ?Sized> fmt::Debug for Invariant<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Invariant").field("name", &self.name).finish()
    }
}

impl<A: Algorithm + ?Sized> Invariant<A> {
    /// Creates a named invariant from a predicate.
    pub fn new(
        name: impl Into<String>,
        check: impl Fn(&A, &ProgState) -> bool + Send + Sync + 'static,
    ) -> Self {
        Self {
            name: name.into(),
            check: Arc::new(check),
        }
    }

    /// The invariant's name (used in violation reports).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Evaluates the invariant on `state`.
    #[must_use]
    pub fn holds(&self, algorithm: &A, state: &ProgState) -> bool {
        (self.check)(algorithm, state)
    }

    /// *MutualExclusion*: at most one process is in its critical section.
    #[must_use]
    pub fn mutual_exclusion() -> Self {
        Self::new("MutualExclusion", |alg: &A, state: &ProgState| {
            alg.processes_in_cs(state) <= 1
        })
    }

    /// *NoOverflow*: every shared register holds a value within its bound.
    ///
    /// This is the invariant the paper's Theorem (§6.1) establishes for
    /// Bakery++ and which the bounded classic Bakery violates.
    ///
    /// Rebuilds the register list on every evaluation, so the instance may
    /// be reused across algorithms; exhaustive explorations that check
    /// millions of states should use [`Invariant::register_bounds_for`],
    /// which precomputes the bounds for one algorithm instance.
    #[must_use]
    pub fn register_bounds() -> Self {
        Self::new("NoOverflow", |alg: &A, state: &ProgState| {
            let specs = alg.registers();
            state
                .shared
                .iter()
                .zip(specs.iter())
                .all(|(value, spec)| *value <= spec.bound)
                // Under safe semantics an in-progress write is an overflow
                // the moment its pending value exceeds the bound — waiting
                // for the commit would let a crash hide the attempt.  Idle
                // cells are normalised to value 0, so no idle-check needed.
                && state
                    .writes
                    .iter()
                    .zip(specs.iter())
                    .all(|(cell, spec)| cell.value <= spec.bound)
        })
    }

    /// [`Invariant::register_bounds`] with the bounds precomputed from
    /// `algorithm`: building the full `Vec<RegisterSpec>` (with its
    /// formatted names) once per checked state dominates a multi-million
    /// state exploration.  Sound by construction — the bounds are captured
    /// from the instance the caller is about to check, so the cache cannot
    /// be poisoned by reuse across different algorithms.
    #[must_use]
    pub fn register_bounds_for(algorithm: &A) -> Self {
        let bounds: Vec<u64> = algorithm.registers().iter().map(|spec| spec.bound).collect();
        Self::new("NoOverflow", move |_alg: &A, state: &ProgState| {
            // Hard assert: a zip would silently truncate if this invariant
            // were reused on a same-type spec of a different size, leaving
            // registers unchecked — unsound in exactly the release builds
            // the exhaustive close-out runs in.
            assert_eq!(
                bounds.len(),
                state.shared.len(),
                "register_bounds_for reused across differently-sized algorithms"
            );
            state
                .shared
                .iter()
                .zip(bounds.iter())
                .all(|(value, bound)| value <= bound)
                && state
                    .writes
                    .iter()
                    .zip(bounds.iter())
                    .all(|(cell, bound)| cell.value <= *bound)
        })
    }

    /// *SingleWriterZeroWhenCrashed*: a crashed process's own registers read
    /// as zero (paper assumption 1.7, checked after the crash transition).
    #[must_use]
    pub fn crashed_registers_are_zero() -> Self {
        Self::new("CrashedRegistersZero", |alg: &A, state: &ProgState| {
            let specs = alg.registers();
            (0..alg.processes()).all(|pid| {
                if !state.is_crashed(pid) {
                    return true;
                }
                // A crash mid-write must abort the write: the crashed pid
                // may hold no writer bit on any register (safe semantics).
                let no_pending = state
                    .writes
                    .iter()
                    .all(|cell| cell.writers & (1 << pid) == 0);
                no_pending
                    && specs
                        .iter()
                        .enumerate()
                        .filter(|(_, spec)| spec.owner == Some(pid))
                        .all(|(idx, _)| state.read(idx) == 0)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::test_support::BrokenLock;

    #[test]
    fn mutual_exclusion_detects_double_entry() {
        let alg = BrokenLock {
            processes: 2,
            bound: 10,
        };
        let inv = Invariant::<BrokenLock>::mutual_exclusion();
        assert_eq!(inv.name(), "MutualExclusion");
        let mut state = alg.initial_state();
        assert!(inv.holds(&alg, &state));
        state.set_pc(0, 2);
        assert!(inv.holds(&alg, &state));
        state.set_pc(1, 2);
        assert!(!inv.holds(&alg, &state));
    }

    #[test]
    fn register_bounds_detects_overflowed_register() {
        let alg = BrokenLock {
            processes: 1,
            bound: 3,
        };
        let inv = Invariant::<BrokenLock>::register_bounds();
        let mut state = alg.initial_state();
        state.set_shared(0, 3);
        assert!(inv.holds(&alg, &state));
        state.set_shared(0, 4);
        assert!(!inv.holds(&alg, &state));
    }

    #[test]
    fn custom_invariant_and_clone() {
        let alg = BrokenLock {
            processes: 2,
            bound: 10,
        };
        let inv = Invariant::<BrokenLock>::new("EntriesEven", |_, s| s.read(0) % 2 == 0);
        let copy = inv.clone();
        let state = alg.initial_state();
        assert!(inv.holds(&alg, &state));
        assert!(copy.holds(&alg, &state));
        let odd = state.with_write(0, 1);
        assert!(!copy.holds(&alg, &odd));
        assert!(format!("{inv:?}").contains("EntriesEven"));
    }

    #[test]
    fn register_bounds_flags_overlarge_pending_writes() {
        let alg = BrokenLock {
            processes: 1,
            bound: 3,
        };
        let plain = Invariant::<BrokenLock>::register_bounds();
        let fast = Invariant::<BrokenLock>::register_bounds_for(&alg);
        let mut state = alg.initial_state();
        state.writes = vec![crate::state::PendingWrite::default()];
        state.begin_write(0, 3, 0);
        assert!(plain.holds(&alg, &state));
        assert!(fast.holds(&alg, &state));
        state.end_write(0, 0, 3);
        state.begin_write(0, 4, 0);
        assert!(!plain.holds(&alg, &state), "pending 4 > bound 3");
        assert!(!fast.holds(&alg, &state));
    }

    #[test]
    fn crashed_process_may_hold_no_inflight_write() {
        let alg = BrokenLock {
            processes: 2,
            bound: 10,
        };
        let inv = Invariant::<BrokenLock>::crashed_registers_are_zero();
        let mut state = alg.initial_state();
        state.writes = vec![crate::state::PendingWrite::default()];
        state.begin_write(0, 2, 0);
        state.procs[0].crashed = true;
        assert!(!inv.holds(&alg, &state), "crash must abort in-flight writes");
        state.abort_writes(0);
        assert!(inv.holds(&alg, &state));
    }

    #[test]
    fn crashed_register_invariant_checks_only_owned_registers() {
        let alg = BrokenLock {
            processes: 1,
            bound: 10,
        };
        // BrokenLock's register is shared (no owner), so the invariant holds
        // trivially even when the process is crashed with a non-zero value.
        let inv = Invariant::<BrokenLock>::crashed_registers_are_zero();
        let mut state = alg.initial_state();
        state.set_shared(0, 5);
        state.procs[0].crashed = true;
        assert!(inv.holds(&alg, &state));
    }
}
