//! Process/register permutation symmetries of a specification.
//!
//! A [`StatePermutation`] relabels the processes of a [`ProgState`] and
//! applies the induced relabelling to the shared registers (a process
//! permutation only makes sense together with the register permutation it
//! induces through the algorithm's layout — `choosing[i]`/`number[i]` must
//! follow process `i` to its new name).  A [`SymmetryGroup`] is a *closed* set
//! of such permutations (composition and inverses stay inside, the identity is
//! a member), generated from a handful of generators the specification
//! declares via [`crate::Algorithm::symmetry`].
//!
//! ## What the model checker does with this (and why it is sound)
//!
//! The Bakery-family specifications are **not** strictly symmetric: the scan
//! loops visit processes in index order and ties on equal tickets are broken
//! by process index, so a permutation is generally *not* an automorphism of
//! the transition graph, and the classic symmetry *quotient* (explore one
//! representative per orbit) would be unsound — it merges states with
//! genuinely different futures.  The `bakery-mc` explorer therefore never
//! merges orbit members.  It uses the group purely as a **lossless
//! compression scheme for the visited set**: every concrete state is
//! factored into `(canonical representative, group element)` — a bijective
//! re-coordinatisation — so the store keeps one packed representative per
//! orbit plus a small bitmap of which orbit members have been seen.  The
//! search, its verdicts and its traces are bit-identical to the unreduced
//! run; only resident memory shrinks (up to the group order), and the orbit
//! count doubles as a meaningful "canonical state count" statistic.
//!
//! Closure under composition/inverse is what makes the factorisation
//! total: whichever group element minimises the representative's code, its
//! inverse (the variant id) is also a group member.

use crate::state::ProgState;

/// A simultaneous relabelling of processes and shared registers.
///
/// `proc_map[p]` is the new index of process `p`; `shared_map[r]` is the new
/// index of shared register `r`.  Applying the permutation moves each
/// process's entire [`crate::ProcState`] (pc, locals, crash flag) to its new
/// slot and each register value to its new cell.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StatePermutation {
    proc_map: Vec<usize>,
    shared_map: Vec<usize>,
}

impl StatePermutation {
    /// Creates a permutation from the two index maps.
    ///
    /// # Panics
    /// Panics if either map is not a bijection on `0..len`.
    #[must_use]
    pub fn new(proc_map: Vec<usize>, shared_map: Vec<usize>) -> Self {
        assert!(is_bijection(&proc_map), "proc_map must be a bijection");
        assert!(is_bijection(&shared_map), "shared_map must be a bijection");
        Self {
            proc_map,
            shared_map,
        }
    }

    /// The identity on `procs` processes and `shared` registers.
    #[must_use]
    pub fn identity(procs: usize, shared: usize) -> Self {
        Self {
            proc_map: (0..procs).collect(),
            shared_map: (0..shared).collect(),
        }
    }

    /// True when both maps are the identity.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.proc_map.iter().enumerate().all(|(i, &v)| i == v)
            && self.shared_map.iter().enumerate().all(|(i, &v)| i == v)
    }

    /// New index of process `p`.
    #[must_use]
    pub fn map_process(&self, p: usize) -> usize {
        self.proc_map[p]
    }

    /// New index of shared register `r`.
    #[must_use]
    pub fn map_register(&self, r: usize) -> usize {
        self.shared_map[r]
    }

    /// Number of processes acted on.
    #[must_use]
    pub fn processes(&self) -> usize {
        self.proc_map.len()
    }

    /// Number of shared registers acted on.
    #[must_use]
    pub fn registers(&self) -> usize {
        self.shared_map.len()
    }

    /// The composition "`self` after `first`": applying the result equals
    /// applying `first`, then `self`.
    #[must_use]
    pub fn after(&self, first: &Self) -> Self {
        Self {
            proc_map: first.proc_map.iter().map(|&p| self.proc_map[p]).collect(),
            shared_map: first
                .shared_map
                .iter()
                .map(|&r| self.shared_map[r])
                .collect(),
        }
    }

    /// The inverse permutation.
    #[must_use]
    pub fn inverse(&self) -> Self {
        let mut proc_map = vec![0; self.proc_map.len()];
        for (old, &new) in self.proc_map.iter().enumerate() {
            proc_map[new] = old;
        }
        let mut shared_map = vec![0; self.shared_map.len()];
        for (old, &new) in self.shared_map.iter().enumerate() {
            shared_map[new] = old;
        }
        Self {
            proc_map,
            shared_map,
        }
    }

    /// Applies the permutation to a state, producing the relabelled state.
    ///
    /// # Panics
    /// Panics if the state's shape does not match the permutation's.
    #[must_use]
    pub fn apply(&self, state: &ProgState) -> ProgState {
        assert_eq!(state.procs.len(), self.proc_map.len(), "process count");
        assert_eq!(state.shared.len(), self.shared_map.len(), "register count");
        let mut next = state.clone();
        for (old, &new) in self.proc_map.iter().enumerate() {
            next.procs[new] = state.procs[old].clone();
        }
        for (old, &new) in self.shared_map.iter().enumerate() {
            next.shared[new] = state.shared[old];
        }
        // Pending-write cells (safe-register semantics) follow their
        // registers, and the writer bitmasks follow the process relabelling.
        if !state.writes.is_empty() {
            for (old, &new) in self.shared_map.iter().enumerate() {
                let mut cell = state.writes[old].clone();
                cell.writers = self.map_writer_mask(cell.writers);
                next.writes[new] = cell;
            }
        }
        next
    }

    /// Applies the process relabelling to a writer bitmask.
    #[must_use]
    pub fn map_writer_mask(&self, mask: u64) -> u64 {
        let mut mapped = 0u64;
        for (old, &new) in self.proc_map.iter().enumerate() {
            if mask & (1 << old) != 0 {
                mapped |= 1 << new;
            }
        }
        mapped
    }
}

fn is_bijection(map: &[usize]) -> bool {
    let mut seen = vec![false; map.len()];
    map.iter().all(|&v| {
        if v >= seen.len() || seen[v] {
            return false;
        }
        seen[v] = true;
        true
    })
}

/// A closed set of [`StatePermutation`]s: the group a specification's states
/// are quotiented by (see the module docs for the soundness argument).
#[derive(Debug, Clone)]
pub struct SymmetryGroup {
    elements: Vec<StatePermutation>,
}

impl SymmetryGroup {
    /// The trivial group (identity only).
    #[must_use]
    pub fn trivial(procs: usize, shared: usize) -> Self {
        Self {
            elements: vec![StatePermutation::identity(procs, shared)],
        }
    }

    /// Generates the closure of `generators` under composition, capped at
    /// `cap` elements.  Returns `None` when the closure exceeds the cap
    /// (callers fall back to no reduction rather than an unsound partial
    /// group) or when the generators act on mismatched shapes.
    #[must_use]
    pub fn generate(generators: &[StatePermutation], cap: usize) -> Option<Self> {
        let first = generators.first()?;
        let (procs, shared) = (first.processes(), first.registers());
        if generators
            .iter()
            .any(|g| g.processes() != procs || g.registers() != shared)
        {
            return None;
        }
        let mut elements = vec![StatePermutation::identity(procs, shared)];
        let mut frontier = elements.clone();
        while let Some(current) = frontier.pop() {
            for generator in generators {
                let composed = generator.after(&current);
                if !elements.contains(&composed) {
                    if elements.len() >= cap {
                        return None;
                    }
                    elements.push(composed.clone());
                    frontier.push(composed);
                }
            }
        }
        Some(Self { elements })
    }

    /// Restricts the group to elements that preserve a per-process mask
    /// (`mask[p] == mask[map_process(p)]` for every process).  The result is
    /// a subgroup, hence still closed.
    #[must_use]
    pub fn stabilizing(mut self, mask: &[bool]) -> Self {
        self.elements.retain(|perm| {
            (0..perm.processes()).all(|p| mask[p] == mask[perm.map_process(p)])
        });
        self
    }

    /// Number of group elements (including the identity).
    #[must_use]
    pub fn order(&self) -> usize {
        self.elements.len()
    }

    /// The group elements; the identity is always present.
    #[must_use]
    pub fn elements(&self) -> &[StatePermutation] {
        &self.elements
    }

    /// The distinct states in `state`'s orbit (deduplicated, stable order).
    #[must_use]
    pub fn orbit(&self, state: &ProgState) -> Vec<ProgState> {
        let mut orbit: Vec<ProgState> = Vec::with_capacity(self.elements.len());
        for perm in &self.elements {
            let image = perm.apply(state);
            if !orbit.contains(&image) {
                orbit.push(image);
            }
        }
        orbit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ProcState;

    fn state(shared: Vec<u64>, pcs: Vec<u32>) -> ProgState {
        ProgState {
            shared,
            procs: pcs.into_iter().map(|pc| ProcState::new(pc, vec![])).collect(),
            writes: Vec::new(),
        }
    }

    #[test]
    fn identity_applies_to_itself() {
        let id = StatePermutation::identity(3, 2);
        assert!(id.is_identity());
        let s = state(vec![4, 5], vec![1, 2, 3]);
        assert_eq!(id.apply(&s), s);
    }

    #[test]
    #[should_panic(expected = "bijection")]
    fn non_bijective_maps_are_rejected() {
        let _ = StatePermutation::new(vec![0, 0], vec![0, 1]);
    }

    #[test]
    fn apply_moves_procs_and_registers() {
        // Swap processes 0 and 1 and registers 0 and 1.
        let swap = StatePermutation::new(vec![1, 0], vec![1, 0]);
        let s = state(vec![7, 9], vec![3, 4]);
        let t = swap.apply(&s);
        assert_eq!(t.shared, vec![9, 7]);
        assert_eq!(t.pc(0), 4);
        assert_eq!(t.pc(1), 3);
        assert!(!swap.is_identity());
    }

    #[test]
    fn compose_and_inverse_round_trip() {
        let cycle = StatePermutation::new(vec![1, 2, 0], vec![0]);
        let inv = cycle.inverse();
        assert!(cycle.after(&inv).is_identity());
        assert!(inv.after(&cycle).is_identity());
        let s = state(vec![0], vec![10, 20, 30]);
        assert_eq!(inv.apply(&cycle.apply(&s)), s);
    }

    #[test]
    fn closure_of_a_transposition_has_order_two() {
        let swap = StatePermutation::new(vec![1, 0], vec![1, 0]);
        let group = SymmetryGroup::generate(&[swap], 16).unwrap();
        assert_eq!(group.order(), 2);
    }

    #[test]
    fn closure_of_adjacent_transpositions_is_symmetric_group() {
        let a = StatePermutation::new(vec![1, 0, 2], vec![0]);
        let b = StatePermutation::new(vec![0, 2, 1], vec![0]);
        let group = SymmetryGroup::generate(&[a, b], 16).unwrap();
        assert_eq!(group.order(), 6, "S3 has 6 elements");
        // Closed under inverse: every element's inverse is a member.
        for perm in group.elements() {
            assert!(group.elements().contains(&perm.inverse()));
        }
    }

    #[test]
    fn cap_overflow_returns_none() {
        let a = StatePermutation::new(vec![1, 0, 2], vec![0]);
        let b = StatePermutation::new(vec![0, 2, 1], vec![0]);
        assert!(SymmetryGroup::generate(&[a, b], 5).is_none());
    }

    #[test]
    fn stabilizer_keeps_mask_preserving_elements() {
        let a = StatePermutation::new(vec![1, 0, 2], vec![0]);
        let b = StatePermutation::new(vec![0, 2, 1], vec![0]);
        let group = SymmetryGroup::generate(&[a, b], 16).unwrap();
        // Only process 2 is active: the stabilizer may permute 0 and 1 only.
        let stab = group.stabilizing(&[false, false, true]);
        assert_eq!(stab.order(), 2);
        for perm in stab.elements() {
            assert_eq!(perm.map_process(2), 2);
        }
    }

    #[test]
    fn orbit_deduplicates_symmetric_states() {
        let swap = StatePermutation::new(vec![1, 0], vec![1, 0]);
        let group = SymmetryGroup::generate(&[swap], 16).unwrap();
        // A fully symmetric state has a singleton orbit.
        let sym = state(vec![5, 5], vec![1, 1]);
        assert_eq!(group.orbit(&sym).len(), 1);
        // An asymmetric state has the full orbit.
        let asym = state(vec![5, 6], vec![1, 2]);
        assert_eq!(group.orbit(&asym).len(), 2);
    }

    #[test]
    fn pending_writes_permute_with_registers_and_writer_masks() {
        let swap = StatePermutation::new(vec![1, 0], vec![1, 0]);
        let mut s = ProgState::new_weak(
            2,
            vec![ProcState::new(1, vec![]), ProcState::new(2, vec![])],
        );
        s.set_shared(0, 7);
        s.begin_write(0, 3, 0); // p0 writing 3 to register 0
        let t = swap.apply(&s);
        assert_eq!(t.shared, vec![0, 7]);
        assert_eq!(t.writes[1].writers, 0b10, "writer bit follows p0 -> p1");
        assert_eq!(t.writes[1].value, 3);
        assert!(t.writes[0].is_idle());
        // Round trip through the inverse restores the original.
        assert_eq!(swap.inverse().apply(&t), s);
    }

    #[test]
    fn trivial_group_is_identity_only() {
        let group = SymmetryGroup::trivial(4, 8);
        assert_eq!(group.order(), 1);
        assert!(group.elements()[0].is_identity());
    }
}
