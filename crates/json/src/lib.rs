//! # bakery-json
//!
//! A small, zero-dependency JSON layer shared by the whole suite: the
//! simulator's trace/state/metrics exports, the model checker's reports, the
//! harness's experiment tables and the `bench-json` perf baseline all go
//! through this crate.  It replaces the serde/serde_json dependency the
//! modules were originally written against (the build environment is
//! offline), and gives the suite one place that owns its wire format.
//!
//! Three pieces:
//!
//! * [`Value`] — a JSON document model with a compact and a pretty printer;
//! * [`parse`] / [`from_str`] — a strict recursive-descent parser;
//! * [`ToJson`] / [`FromJson`] + [`json_object!`] — object mapping for plain
//!   structs; the macro generates both directions from a field list, with an
//!   optional `skip { ... }` section for fields that stay out of the wire
//!   format (they are restored with `Default::default()` on parse).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (covers the full u64/i64 ranges losslessly).
    Int(i128),
    /// A non-integer number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// Errors produced by parsing or by [`FromJson`] conversions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl Value {
    /// Looks up a key in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object fields, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer value, if this is an in-range integer.
    #[must_use]
    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The number as an `f64` (integers are converted).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Renders the value compactly (no whitespace).
    #[must_use]
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders the value with two-space indentation.
    #[must_use]
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Float(f) => {
                if f.is_finite() {
                    out.push_str(&format!("{f}"));
                } else {
                    // JSON has no Inf/NaN; match serde_json's lossy `null`.
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            Value::Object(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                    let (key, value) = &fields[i];
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.bump() == Some(byte) {
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at offset {}",
                byte as char,
                self.pos.saturating_sub(1)
            )))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(Error::new("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(Value::Object(fields)),
                _ => return Err(Error::new("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let code = self.hex4()?;
                        // Surrogate pairs: parse the low half when present.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(Error::new("unpaired surrogate"));
                            }
                            let low = self.hex4()?;
                            let combined =
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(code)
                        };
                        out.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                    }
                    _ => return Err(Error::new("invalid escape sequence")),
                },
                Some(byte) => {
                    // Collect the full UTF-8 sequence starting at `byte`.
                    let start = self.pos - 1;
                    let width = utf8_width(byte);
                    self.pos = start + width;
                    let slice = self
                        .bytes
                        .get(start..start + width)
                        .ok_or_else(|| Error::new("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = self
                .bump()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| Error::new("invalid \\u escape"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number '{text}'")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid number '{text}'")))
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Types that can render themselves as a [`Value`].
pub trait ToJson {
    /// Converts to a JSON value.
    fn to_json(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait FromJson: Sized {
    /// Converts from a JSON value.
    fn from_json(value: &Value) -> Result<Self, Error>;
}

/// Renders `value` compactly.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().to_compact_string())
}

/// Renders `value` with two-space indentation.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().to_pretty_string())
}

/// Parses `text` into a `T`.
pub fn from_str<T: FromJson>(text: &str) -> Result<T, Error> {
    T::from_json(&parse(text)?)
}

macro_rules! impl_json_uint {
    ($($ty:ty),*) => {
        $(
            impl ToJson for $ty {
                fn to_json(&self) -> Value {
                    Value::Int(i128::from(*self as u64))
                }
            }
            impl FromJson for $ty {
                fn from_json(value: &Value) -> Result<Self, Error> {
                    let raw = value
                        .as_i128()
                        .ok_or_else(|| Error::new(concat!("expected ", stringify!($ty))))?;
                    <$ty>::try_from(raw)
                        .map_err(|_| Error::new(concat!("out of range for ", stringify!($ty))))
                }
            }
        )*
    };
}
impl_json_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_json_int {
    ($($ty:ty),*) => {
        $(
            impl ToJson for $ty {
                fn to_json(&self) -> Value {
                    Value::Int(i128::from(*self as i64))
                }
            }
            impl FromJson for $ty {
                fn from_json(value: &Value) -> Result<Self, Error> {
                    let raw = value
                        .as_i128()
                        .ok_or_else(|| Error::new(concat!("expected ", stringify!($ty))))?;
                    <$ty>::try_from(raw)
                        .map_err(|_| Error::new(concat!("out of range for ", stringify!($ty))))
                }
            }
        )*
    };
}
impl_json_int!(i8, i16, i32, i64);

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| Error::new("expected number"))
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(value: &Value) -> Result<Self, Error> {
        value.as_bool().ok_or_else(|| Error::new("expected bool"))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::new("expected string"))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::new("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(inner) => inner.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(value: &Value) -> Result<Self, Error> {
        match value.as_array() {
            Some([a, b]) => Ok((A::from_json(a)?, B::from_json(b)?)),
            _ => Err(Error::new("expected 2-element array")),
        }
    }
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl FromJson for Value {
    fn from_json(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

/// Implements [`ToJson`] and [`FromJson`] for a plain struct from its field
/// list.  Fields in the optional `skip { ... }` section are excluded from the
/// wire format and restored with `Default::default()` when parsing.
///
/// ```
/// #[derive(Debug, PartialEq)]
/// struct Point { x: u64, y: u64, cached_norm: Option<f64> }
/// bakery_json::json_object!(Point { x, y } skip { cached_norm });
///
/// let p = Point { x: 1, y: 2, cached_norm: Some(2.23) };
/// let text = bakery_json::to_string(&p).unwrap();
/// assert_eq!(text, r#"{"x":1,"y":2}"#);
/// let back: Point = bakery_json::from_str(&text).unwrap();
/// assert_eq!(back.cached_norm, None);
/// ```
#[macro_export]
macro_rules! json_object {
    ($ty:ident { $($field:ident),* $(,)? }) => {
        $crate::json_object!($ty { $($field),* } skip { });
    };
    ($ty:ident { $($field:ident),* $(,)? } skip { $($skipped:ident),* $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Value {
                $crate::Value::Object(vec![
                    $((stringify!($field).to_string(), $crate::ToJson::to_json(&self.$field)),)*
                ])
            }
        }

        impl $crate::FromJson for $ty {
            fn from_json(value: &$crate::Value) -> Result<Self, $crate::Error> {
                if value.as_object().is_none() {
                    return Err($crate::Error {
                        message: format!("expected object for {}", stringify!($ty)),
                    });
                }
                Ok(Self {
                    $($field: match value.get(stringify!($field)) {
                        Some(field_value) => $crate::FromJson::from_json(field_value)?,
                        None => Default::default(),
                    },)*
                    $($skipped: Default::default(),)*
                })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_printers_round_trip_through_parser() {
        let value = Value::Object(vec![
            ("name".into(), Value::Str("bakery \"++\"\n".into())),
            ("count".into(), Value::Int(18446744073709551615)),
            ("ratio".into(), Value::Float(0.25)),
            ("flag".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            (
                "items".into(),
                Value::Array(vec![Value::Int(1), Value::Int(-2)]),
            ),
            ("empty".into(), Value::Array(vec![])),
        ]);
        for text in [value.to_compact_string(), value.to_pretty_string()] {
            assert_eq!(parse(&text).unwrap(), value, "{text}");
        }
    }

    #[test]
    fn pretty_printing_uses_key_space_value() {
        let value = Value::Object(vec![("k".into(), Value::Int(1))]);
        assert_eq!(value.to_pretty_string(), "{\n  \"k\": 1\n}");
        assert_eq!(value.to_compact_string(), "{\"k\":1}");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn parser_handles_escapes_and_unicode() {
        let parsed = parse(r#""aéb\nA 😀""#).unwrap();
        assert_eq!(parsed, Value::Str("aéb\nA 😀".to_string()));
        let raw_unicode = parse("\"caché ± λ\"").unwrap();
        assert_eq!(raw_unicode, Value::Str("caché ± λ".to_string()));
    }

    #[test]
    fn primitive_round_trips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<Option<usize>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<usize>>("3").unwrap(), Some(3));
        assert_eq!(
            from_str::<Vec<(u64, bool)>>("[[1,true],[2,false]]").unwrap(),
            vec![(1, true), (2, false)]
        );
        assert!(from_str::<u8>("300").is_err());
        assert!(from_str::<bool>("7").is_err());
    }

    #[derive(Debug, PartialEq)]
    struct Sample {
        name: String,
        values: Vec<u64>,
        owner: Option<usize>,
        scratch: Vec<String>,
    }
    json_object!(Sample { name, values, owner } skip { scratch });

    #[test]
    fn json_object_macro_round_trips_and_skips() {
        let sample = Sample {
            name: "demo".into(),
            values: vec![1, 2, 3],
            owner: Some(4),
            scratch: vec!["not serialized".into()],
        };
        let text = to_string(&sample).unwrap();
        assert_eq!(text, r#"{"name":"demo","values":[1,2,3],"owner":4}"#);
        let back: Sample = from_str(&text).unwrap();
        assert_eq!(back.name, "demo");
        assert_eq!(back.owner, Some(4));
        assert!(back.scratch.is_empty(), "skipped fields default");
    }

    #[test]
    fn missing_fields_default_on_parse() {
        let back: Sample = from_str(r#"{"name":"x"}"#).unwrap();
        assert_eq!(back.name, "x");
        assert!(back.values.is_empty());
        assert_eq!(back.owner, None);
    }
}
