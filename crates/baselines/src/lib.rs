//! # bakery-baselines
//!
//! Every mutual-exclusion algorithm the Bakery++ paper positions itself
//! against, implemented as real, atomics-based locks behind the same
//! object-safe [`RawMutexAlgorithm`] trait as the headline locks in
//! `bakery-core`.  Having the baselines live means the paper's comparative
//! claims (Section 4 and Section 7) can be *measured* rather than quoted:
//!
//! | module | algorithm | paper's framing |
//! |---|---|---|
//! | [`peterson`] | Peterson's 2-process algorithm | uses a shared multi-writer `turn` variable |
//! | [`tournament`] | Peterson tournament tree for N processes | ditto, O(log N) path |
//! | [`filter`] | the Filter lock (Peterson generalisation) | shared multi-writer `victim[]` |
//! | [`szymanski`] | Szymanski's FCFS algorithm | "much more complicated than Bakery++", 2 more shared values per process |
//! | [`black_white`] | Taubenfeld's Black-White Bakery | bounded via an extra shared colour bit (approach 2) |
//! | [`modulo_bakery`] | Jayanti et al. style bounded Bakery | bounded via modulo arithmetic, redefining `<` and `maximum` (approach 1) |
//! | [`dijkstra`] | Dijkstra's 1965 algorithm | the original solution, not FCFS, all processes write `k` |
//! | [`ticket_lock`] | fetch-and-add ticket lock | "not a true mutual exclusion algorithm": relies on atomic RMW |
//! | [`spin`] | TAS / TTAS spin locks | ditto |
//!
//! All locks follow the conventions of `bakery-core`: process slots, RAII
//! guards, SeqCst protocol accesses, [`LockStats`] counters and a
//! `shared_word_count()` report used by the spatial-complexity experiment
//! (**E6**).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod black_white;
pub mod dijkstra;
pub mod filter;
pub mod modulo_bakery;
pub mod peterson;
pub mod registry;
pub mod spin;
pub mod szymanski;
pub mod ticket_lock;
pub mod tournament;

pub use black_white::BlackWhiteBakeryLock;
pub use dijkstra::DijkstraLock;
pub use filter::FilterLock;
pub use modulo_bakery::ModuloBakeryLock;
pub use peterson::PetersonLock;
pub use registry::{all_algorithms, AlgorithmId, LockFactory};
pub use spin::{TasLock, TtasLock};
pub use szymanski::SzymanskiLock;
pub use ticket_lock::TicketLock;
pub use tournament::TournamentLock;

// Re-export the traits so downstream users only need one crate in scope.
pub use bakery_core::{LockStats, RawMutexAlgorithm, Slot};

/// Expands to the [`RawMutexAlgorithm`] accessor methods for a lock struct
/// that stores its slot allocator in a field named `slots`, its statistics
/// in `stats` and its [`bakery_core::wait::WaitHandle`] in `waits`.  Invoked
/// *inside* each lock's `impl RawMutexAlgorithm` block, so every algorithm
/// has exactly one trait impl and zero facade boilerplate.
macro_rules! lock_accessors {
    () => {
        fn slot_allocator(&self) -> &std::sync::Arc<bakery_core::slots::SlotAllocator> {
            &self.slots
        }

        fn stats(&self) -> &bakery_core::LockStats {
            &self.stats
        }

        fn wait_handle(&self) -> Option<&bakery_core::wait::WaitHandle> {
            Some(&self.waits)
        }

        fn as_raw(&self) -> &dyn bakery_core::RawMutexAlgorithm {
            self
        }
    };
}
pub(crate) use lock_accessors;

/// Shared test/stress utilities.
///
/// Exposed (hidden from docs) so the workspace-level integration tests and the
/// benchmark harness can reuse the same mutual-exclusion stress routine the
/// unit tests use.
#[doc(hidden)]
pub mod testutil {
    use bakery_core::sync::{AtomicU64, Ordering};
    use std::sync::Arc;

    use bakery_core::RawMutexAlgorithm;

    /// Runs `threads` real threads, each entering the critical section
    /// `iterations` times, and asserts mutual exclusion throughout.
    ///
    /// Returns the total number of critical-section entries observed.
    /// `L` may be unsized (`dyn RawMutexAlgorithm + Send + Sync`), so the
    /// integration suites can stress factory-built locks too.
    pub fn assert_mutual_exclusion<L>(lock: Arc<L>, threads: usize, iterations: u64) -> u64
    where
        L: RawMutexAlgorithm + Send + Sync + ?Sized + 'static,
    {
        let counter = Arc::new(AtomicU64::new(0));
        let in_cs = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                let in_cs = Arc::clone(&in_cs);
                scope.spawn(move || {
                    let slot = lock.register().expect("a free slot");
                    for _ in 0..iterations {
                        let _guard = lock.lock(&slot);
                        let inside = in_cs.fetch_add(1, Ordering::SeqCst); // mem: baseline-seqcst
                        assert_eq!(inside, 0, "mutual exclusion violated");
                        counter.fetch_add(1, Ordering::SeqCst); // mem: baseline-seqcst
                        in_cs.fetch_sub(1, Ordering::SeqCst); // mem: baseline-seqcst
                    }
                });
            }
        });
        counter.load(Ordering::SeqCst) // mem: baseline-seqcst
    }
}
