//! Szymanski's mutual exclusion algorithm.
//!
//! The paper (Section 4) cites Szymanski's first-come-first-served algorithm
//! as "much more complicated than Bakery++" and as using two more shared
//! values per process.  This module implements the classic five-state version
//! so that claim can be inspected and so the algorithm participates in the
//! throughput/fairness experiments.
//!
//! Each process advertises a state in `flag[i] ∈ {0,…,4}`:
//!
//! | value | meaning |
//! |---|---|
//! | 0 | noncritical section |
//! | 1 | standing outside the waiting room, wants to enter |
//! | 2 | waiting inside for the door to close |
//! | 3 | standing in the doorway |
//! | 4 | door closed, in (or about to enter) the critical section |

use std::sync::Arc;

use bakery_core::slots::SlotAllocator;
use bakery_core::sync::{AtomicUsize, Ordering};
use bakery_core::wait::{WaitHandle, WaitToken};
use bakery_core::{LockStats, RawMutexAlgorithm};
use crossbeam::utils::CachePadded;

use crate::lock_accessors;

/// Szymanski's N-process mutual exclusion lock.
///
/// ```
/// use bakery_baselines::SzymanskiLock;
/// use bakery_core::RawMutexAlgorithm;
///
/// let lock = SzymanskiLock::new(3);
/// let slot = lock.register().unwrap();
/// let _guard = lock.lock(&slot);
/// ```
#[derive(Debug)]
pub struct SzymanskiLock {
    flag: Box<[CachePadded<AtomicUsize>]>,
    slots: Arc<SlotAllocator>,
    stats: LockStats,
    waits: WaitHandle,
}

impl SzymanskiLock {
    /// Creates a Szymanski lock for `n` processes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a lock needs at least one process slot");
        Self {
            flag: (0..n)
                .map(|_| CachePadded::new(AtomicUsize::new(0)))
                .collect(),
            slots: SlotAllocator::new(n),
            stats: LockStats::new(),
            waits: WaitHandle::default_handle(),
        }
    }

    /// The waiting-room state of process `pid`.
    #[must_use]
    pub fn state_of(&self, pid: usize) -> usize {
        self.flag[pid].load(Ordering::SeqCst) // mem: baseline-seqcst
    }

    fn flag_of(&self, j: usize) -> usize {
        self.flag[j].load(Ordering::SeqCst) // mem: baseline-seqcst
    }

    /// One wait episode: spins (then parks, strategy permitting) until `cond`
    /// holds, returning the number of wait rounds.
    fn wait_until<F: Fn() -> bool>(&self, cond: F) -> u64 {
        let mut token = WaitToken::new();
        let mut waits = 0u64;
        while !cond() {
            waits += 1;
            self.waits
                .wait(self.waits.guard(), &mut token, &mut || !cond());
        }
        waits
    }
}

impl RawMutexAlgorithm for SzymanskiLock {
    fn capacity(&self) -> usize {
        self.flag.len()
    }

    fn acquire(&self, pid: usize) {
        let n = self.capacity();
        assert!(pid < n, "pid {pid} out of range");
        let mut waits = 0u64;

        // Stand outside the waiting room and wait for the door to be open.
        self.flag[pid].store(1, Ordering::SeqCst); // mem: baseline-seqcst
        waits += self.wait_until(|| (0..n).all(|j| self.flag_of(j) < 3));

        // Step into the doorway.
        self.flag[pid].store(3, Ordering::SeqCst); // mem: baseline-seqcst

        // If someone else is still outside waiting (state 1), step back into
        // the waiting room (state 2) and wait for a peer to close the door
        // (state 4).
        if (0..n).any(|j| j != pid && self.flag_of(j) == 1) {
            self.flag[pid].store(2, Ordering::SeqCst); // mem: baseline-seqcst
            waits += self.wait_until(|| (0..n).any(|j| self.flag_of(j) == 4));
        }

        // Close the door behind us.
        self.flag[pid].store(4, Ordering::SeqCst); // mem: baseline-seqcst

        // Wait for every lower-numbered process to finish its exit protocol.
        waits += self.wait_until(|| (0..pid).all(|j| self.flag_of(j) < 2));

        self.stats.record_doorway_waits(waits);
    }

    fn release(&self, pid: usize) {
        let n = self.capacity();
        // Make sure every higher-numbered process in the doorway has noticed
        // that the door is closed before reopening it.
        let _ = self.wait_until(|| {
            (pid + 1..n).all(|j| {
                let f = self.flag_of(j);
                f < 2 || f == 4
            })
        });
        self.flag[pid].store(0, Ordering::SeqCst); // mem: baseline-seqcst
        self.waits.notify(self.waits.guard());
    }

    fn algorithm_name(&self) -> &'static str {
        "szymanski"
    }

    fn shared_word_count(&self) -> usize {
        self.flag.len()
    }
    lock_accessors!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::assert_mutual_exclusion;
    use bakery_core::RawMutexAlgorithm;

    #[test]
    fn single_process_reenters() {
        let lock = SzymanskiLock::new(1);
        let slot = lock.register().unwrap();
        for _ in 0..10 {
            let _g = lock.lock(&slot);
        }
        assert_eq!(lock.stats().cs_entries(), 10);
    }

    #[test]
    fn state_transitions_visible() {
        let lock = SzymanskiLock::new(2);
        let slot = lock.register().unwrap();
        assert_eq!(lock.state_of(0), 0);
        let g = lock.lock(&slot);
        assert_eq!(lock.state_of(0), 4, "holder has closed the door");
        drop(g);
        assert_eq!(lock.state_of(0), 0);
    }

    #[test]
    fn metadata() {
        let lock = SzymanskiLock::new(5);
        assert_eq!(lock.capacity(), 5);
        assert_eq!(lock.shared_word_count(), 5, "one flag word per process");
        assert_eq!(lock.algorithm_name(), "szymanski");
    }

    #[test]
    fn mutual_exclusion_four_threads() {
        let total = assert_mutual_exclusion(std::sync::Arc::new(SzymanskiLock::new(4)), 4, 400);
        assert_eq!(total, 1600);
    }

    #[test]
    fn mutual_exclusion_two_threads_long() {
        let total = assert_mutual_exclusion(std::sync::Arc::new(SzymanskiLock::new(2)), 2, 2000);
        assert_eq!(total, 4000);
    }
}
