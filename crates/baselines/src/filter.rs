//! The Filter lock — Peterson's algorithm generalised to `N` processes.
//!
//! The filter lock funnels processes through `N - 1` levels; at each level at
//! least one process is blocked as the `victim`, so at most one process
//! reaches the final level.  Like Peterson's algorithm it relies on
//! multi-writer shared variables (`victim[level]` is written by every process
//! passing that level), which is exactly the property Bakery/Bakery++ avoid.
//! It is not first-come-first-served, which shows up in the fairness
//! experiment (**E8**).

use std::sync::Arc;

use bakery_core::slots::SlotAllocator;
use bakery_core::sync::{AtomicUsize, Ordering};
use bakery_core::wait::{WaitHandle, WaitToken};
use bakery_core::{LockStats, RawMutexAlgorithm};
use crossbeam::utils::CachePadded;

use crate::lock_accessors;

/// Sentinel meaning "no victim recorded at this level yet".
const NO_VICTIM: usize = usize::MAX;

/// The Filter lock for `N` processes.
///
/// ```
/// use bakery_baselines::FilterLock;
/// use bakery_core::RawMutexAlgorithm;
///
/// let lock = FilterLock::new(3);
/// let slot = lock.register().unwrap();
/// let _guard = lock.lock(&slot);
/// ```
#[derive(Debug)]
pub struct FilterLock {
    /// `level[i]` — the highest level process `i` has reached (0 = idle).
    level: Box<[CachePadded<AtomicUsize>]>,
    /// `victim[l]` — the most recent process to enter level `l` (multi-writer).
    victim: Box<[CachePadded<AtomicUsize>]>,
    slots: Arc<SlotAllocator>,
    stats: LockStats,
    waits: WaitHandle,
}

impl FilterLock {
    /// Creates a Filter lock for `n` processes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a lock needs at least one process slot");
        Self {
            level: (0..n)
                .map(|_| CachePadded::new(AtomicUsize::new(0)))
                .collect(),
            victim: (0..n)
                .map(|_| CachePadded::new(AtomicUsize::new(NO_VICTIM)))
                .collect(),
            slots: SlotAllocator::new(n),
            stats: LockStats::new(),
            waits: WaitHandle::default_handle(),
        }
    }

    /// The level process `pid` currently occupies (0 when idle).
    #[must_use]
    pub fn level_of(&self, pid: usize) -> usize {
        self.level[pid].load(Ordering::SeqCst) // mem: baseline-seqcst
    }

    fn exists_conflict(&self, pid: usize, l: usize) -> bool {
        let n = self.level.len();
        (0..n).any(|k| k != pid && self.level[k].load(Ordering::SeqCst) >= l) // mem: baseline-seqcst
            && self.victim[l].load(Ordering::SeqCst) == pid // mem: baseline-seqcst
    }
}

impl RawMutexAlgorithm for FilterLock {
    fn capacity(&self) -> usize {
        self.level.len()
    }

    fn acquire(&self, pid: usize) {
        let n = self.capacity();
        assert!(pid < n, "pid {pid} out of range");
        let mut waits = 0u64;
        for l in 1..n {
            self.level[pid].store(l, Ordering::SeqCst); // mem: baseline-seqcst
            self.victim[l].store(pid, Ordering::SeqCst); // mem: baseline-seqcst
            // Fresh token per level: each level is its own wait episode.
            let mut token = WaitToken::new();
            while self.exists_conflict(pid, l) {
                waits += 1;
                self.waits.wait(self.waits.guard(), &mut token, &mut || {
                    self.exists_conflict(pid, l)
                });
            }
        }
        // With a single slot the loop body never runs; the lock is still
        // correct because only one process exists.
        self.stats.record_doorway_waits(waits);
    }

    fn release(&self, pid: usize) {
        self.level[pid].store(0, Ordering::SeqCst); // mem: baseline-seqcst
        self.waits.notify(self.waits.guard());
    }

    fn algorithm_name(&self) -> &'static str {
        "filter"
    }

    fn shared_word_count(&self) -> usize {
        // level[0..N] plus victim[1..N-1]; we allocate N victim slots for
        // simplicity but level 0 is unused, matching the textbook 2N - 1.
        2 * self.level.len() - 1
    }
    lock_accessors!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::assert_mutual_exclusion;
    use bakery_core::RawMutexAlgorithm;

    #[test]
    fn single_process_reenters() {
        let lock = FilterLock::new(1);
        let slot = lock.register().unwrap();
        for _ in 0..10 {
            let _g = lock.lock(&slot);
        }
        assert_eq!(lock.stats().cs_entries(), 10);
    }

    #[test]
    fn level_tracks_acquire_release() {
        let lock = FilterLock::new(3);
        let slot = lock.register().unwrap();
        assert_eq!(lock.level_of(0), 0);
        let g = lock.lock(&slot);
        assert_eq!(lock.level_of(0), 2, "holder sits at level N-1");
        drop(g);
        assert_eq!(lock.level_of(0), 0);
    }

    #[test]
    fn metadata() {
        let lock = FilterLock::new(5);
        assert_eq!(lock.capacity(), 5);
        assert_eq!(lock.shared_word_count(), 9);
        assert_eq!(lock.algorithm_name(), "filter");
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_capacity_rejected() {
        let _ = FilterLock::new(0);
    }

    #[test]
    fn mutual_exclusion_four_threads() {
        let total = assert_mutual_exclusion(std::sync::Arc::new(FilterLock::new(4)), 4, 500);
        assert_eq!(total, 2000);
    }
}
