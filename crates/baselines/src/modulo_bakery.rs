//! A bounded Bakery variant in the style of Jayanti et al. (2001).
//!
//! Jayanti, Tan, Friedland and Katz bound Lamport's Bakery by **redefining the
//! `maximum` function and the `<` operator over a modular ticket space** (the
//! paper's "approach 1", partly combined with approach 2).  This module
//! implements that idea: tickets live on a ring of size `ring` and are
//! compared by *modular distance*, so the stored values never exceed the ring
//! size even though logically the sequence of tickets is unbounded.
//!
//! The comparison is sound as long as the tickets simultaneously present in
//! the bakery span less than half the ring, which is guaranteed when
//! `ring ≥ 2·N + 2` because a new ticket is always the successor of the
//! current maximum and at most `N` tickets are live at once.  The constructor
//! enforces that requirement.
//!
//! This is exactly the kind of solution the Bakery++ paper contrasts itself
//! with: it works, but the ordering operator is no longer the plain integer
//! `<` of the original algorithm, and arguing its correctness requires the
//! windowing lemma above.  Bakery++ keeps plain integers and adds two `if`s.

use std::sync::Arc;

use bakery_core::slots::SlotAllocator;
use bakery_core::sync::{AtomicBool, AtomicU64, Ordering};
use bakery_core::wait::{WaitHandle, WaitToken};
use bakery_core::{LockStats, RawMutexAlgorithm};
use crossbeam::utils::CachePadded;

use crate::lock_accessors;

/// Modular-arithmetic comparison of two live tickets on a ring of size `ring`.
///
/// Returns `true` when `a` precedes `b` — i.e. `a` was drawn earlier, assuming
/// the two tickets are less than `ring / 2` drawing steps apart.
#[must_use]
pub fn mod_precedes(a: u64, b: u64, ring: u64) -> bool {
    debug_assert!(a >= 1 && a <= ring && b >= 1 && b <= ring);
    if a == b {
        return false;
    }
    // Distance travelled going forward from a to b on the ring 1..=ring.
    let dist = if b > a { b - a } else { ring - (a - b) };
    dist <= ring / 2
}

/// Successor of a ticket on the ring `1..=ring`.
#[must_use]
pub fn mod_successor(t: u64, ring: u64) -> u64 {
    if t == 0 || t == ring {
        1
    } else {
        t + 1
    }
}

/// The modular maximum of a set of live tickets: the ticket that no other
/// ticket precedes.  Returns 0 when the set is empty.
#[must_use]
pub fn mod_maximum(values: &[u64], ring: u64) -> u64 {
    let live: Vec<u64> = values.iter().copied().filter(|&v| v != 0).collect();
    let mut best = 0u64;
    for &v in &live {
        if best == 0 || mod_precedes(best, v, ring) {
            best = v;
        }
    }
    best
}

/// Bounded Bakery lock using modular ticket arithmetic.
///
/// ```
/// use bakery_baselines::ModuloBakeryLock;
/// use bakery_core::RawMutexAlgorithm;
///
/// let lock = ModuloBakeryLock::new(3);
/// let slot = lock.register().unwrap();
/// let _guard = lock.lock(&slot);
/// ```
#[derive(Debug)]
pub struct ModuloBakeryLock {
    choosing: Box<[CachePadded<AtomicBool>]>,
    number: Box<[CachePadded<AtomicU64>]>,
    ring: u64,
    slots: Arc<SlotAllocator>,
    stats: LockStats,
    waits: WaitHandle,
}

impl ModuloBakeryLock {
    /// Creates a modulo-Bakery lock for `n` processes with the minimal safe
    /// ring size `2·n + 2`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self::with_ring(n, 2 * n as u64 + 2)
    }

    /// Creates a modulo-Bakery lock with an explicit ring size.
    ///
    /// # Panics
    /// Panics if `ring < 2·n + 2`, the bound required for modular comparison
    /// to be unambiguous.
    #[must_use]
    pub fn with_ring(n: usize, ring: u64) -> Self {
        assert!(n > 0, "a lock needs at least one process slot");
        assert!(
            ring >= 2 * n as u64 + 2,
            "ring size {ring} is too small for {n} processes (need at least {})",
            2 * n as u64 + 2
        );
        Self {
            choosing: (0..n)
                .map(|_| CachePadded::new(AtomicBool::new(false)))
                .collect(),
            number: (0..n)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            ring,
            slots: SlotAllocator::new(n),
            stats: LockStats::new(),
            waits: WaitHandle::default_handle(),
        }
    }

    /// The ring size (maximum storable ticket value).
    #[must_use]
    pub fn ring(&self) -> u64 {
        self.ring
    }

    /// The ticket number currently held by `pid` (0 when idle).
    #[must_use]
    pub fn number_of(&self, pid: usize) -> u64 {
        self.number[pid].load(Ordering::SeqCst) // mem: baseline-seqcst
    }

    fn must_wait_for(&self, me_num: u64, me_pid: usize, other_num: u64, other_pid: usize) -> bool {
        if other_num == 0 {
            return false;
        }
        if other_num == me_num {
            return other_pid < me_pid;
        }
        mod_precedes(other_num, me_num, self.ring)
    }
}

impl RawMutexAlgorithm for ModuloBakeryLock {
    fn capacity(&self) -> usize {
        self.number.len()
    }

    fn acquire(&self, pid: usize) {
        let n = self.capacity();
        assert!(pid < n, "pid {pid} out of range");
        let mut waits = 0u64;

        // Doorway with the redefined maximum and successor.
        self.choosing[pid].store(true, Ordering::SeqCst); // mem: baseline-seqcst
        let snapshot: Vec<u64> = (0..n)
            .map(|j| self.number[j].load(Ordering::SeqCst)) // mem: baseline-seqcst
            .collect();
        let max = mod_maximum(&snapshot, self.ring);
        let ticket = mod_successor(max, self.ring);
        self.number[pid].store(ticket, Ordering::SeqCst); // mem: baseline-seqcst
        self.stats.record_ticket(ticket);
        self.choosing[pid].store(false, Ordering::SeqCst); // mem: baseline-seqcst

        // Scan with the redefined comparison.
        for j in 0..n {
            if j == pid {
                continue;
            }
            // Fresh token per watched contender; a second fresh one for the
            // ticket stage (the L2/L3 split of the episode policy).
            let mut token = WaitToken::new();
            while self.choosing[j].load(Ordering::SeqCst) { // mem: baseline-seqcst
                waits += 1;
                self.waits.wait(self.waits.choosing(j), &mut token, &mut || {
                    self.choosing[j].load(Ordering::SeqCst) // mem: baseline-seqcst
                });
            }
            let mut token = WaitToken::new();
            loop {
                let me_num = self.number[pid].load(Ordering::SeqCst); // mem: baseline-seqcst
                let other_num = self.number[j].load(Ordering::SeqCst); // mem: baseline-seqcst
                if !self.must_wait_for(me_num, pid, other_num, j) {
                    break;
                }
                waits += 1;
                self.waits.wait(self.waits.ticket(j), &mut token, &mut || {
                    let other_num = self.number[j].load(Ordering::SeqCst); // mem: baseline-seqcst
                    self.must_wait_for(me_num, pid, other_num, j)
                });
            }
        }
        self.stats.record_doorway_waits(waits);
    }

    fn release(&self, pid: usize) {
        self.number[pid].store(0, Ordering::SeqCst); // mem: baseline-seqcst
        self.waits.notify(self.waits.ticket(pid));
    }

    fn algorithm_name(&self) -> &'static str {
        "modulo-bakery"
    }

    fn shared_word_count(&self) -> usize {
        2 * self.number.len()
    }

    fn register_bound(&self) -> Option<u64> {
        Some(self.ring)
    }
    lock_accessors!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::assert_mutual_exclusion;
    use bakery_core::RawMutexAlgorithm;
    use proptest::prelude::*;

    #[test]
    fn successor_wraps_around_the_ring() {
        assert_eq!(mod_successor(0, 8), 1);
        assert_eq!(mod_successor(3, 8), 4);
        assert_eq!(mod_successor(8, 8), 1);
    }

    #[test]
    fn precedes_handles_wraparound() {
        // 7 was drawn before 1 on a ring of 8 (1 is 2 steps ahead of 7).
        assert!(mod_precedes(7, 1, 8));
        assert!(!mod_precedes(1, 7, 8));
        assert!(mod_precedes(2, 4, 8));
        assert!(!mod_precedes(4, 2, 8));
        assert!(!mod_precedes(5, 5, 8));
    }

    #[test]
    fn maximum_respects_modular_order() {
        assert_eq!(mod_maximum(&[0, 0, 0], 8), 0);
        assert_eq!(mod_maximum(&[2, 4, 0], 8), 4);
        // With live tickets {7, 1}, 1 is the newer one.
        assert_eq!(mod_maximum(&[7, 1, 0], 8), 1);
    }

    #[test]
    fn tickets_never_exceed_ring() {
        let lock = ModuloBakeryLock::new(2);
        let slot = lock.register().unwrap();
        for _ in 0..100 {
            let _g = lock.lock(&slot);
        }
        assert!(lock.stats().max_ticket() <= lock.ring());
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn undersized_ring_rejected() {
        let _ = ModuloBakeryLock::with_ring(4, 6);
    }

    #[test]
    fn metadata() {
        let lock = ModuloBakeryLock::new(4);
        assert_eq!(lock.capacity(), 4);
        assert_eq!(lock.ring(), 10);
        assert_eq!(lock.shared_word_count(), 8);
        assert_eq!(lock.register_bound(), Some(10));
        assert_eq!(lock.algorithm_name(), "modulo-bakery");
    }

    #[test]
    fn mutual_exclusion_four_threads() {
        let lock = std::sync::Arc::new(ModuloBakeryLock::new(4));
        let total = assert_mutual_exclusion(std::sync::Arc::clone(&lock), 4, 500);
        assert_eq!(total, 2000);
        assert!(lock.stats().max_ticket() <= lock.ring());
    }

    proptest! {
        /// Antisymmetry of the modular order for distinct live tickets that
        /// are within the safe window of each other.
        #[test]
        fn modular_order_is_antisymmetric(ring in 6u64..64, a in 1u64..64, steps in 1u64..16) {
            let a = (a - 1) % ring + 1;
            prop_assume!(steps * 2 < ring);
            // b is `steps` draws after a.
            let mut b = a;
            for _ in 0..steps {
                b = mod_successor(b, ring);
            }
            prop_assert!(mod_precedes(a, b, ring));
            prop_assert!(!mod_precedes(b, a, ring));
        }

        /// The successor stays within the ring and never returns 0.
        #[test]
        fn successor_stays_on_ring(ring in 2u64..100, t in 0u64..100) {
            let t = t % (ring + 1);
            let s = mod_successor(t, ring);
            prop_assert!(s >= 1 && s <= ring);
        }
    }
}
